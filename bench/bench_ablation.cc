// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own figures: Grid Tree histogram resolution (§4.3.2's 128 bins), the
// skew-tree merge regularizer (§4.3.2's 10% factor), the region budget,
// parallel index construction (§6.1), CDF model choice (§2.2: "the choice
// of modeling technique is orthogonal"), snapshot reopen vs rebuild
// (§8 Persistence), derived phase columns for periodic correlations
// (§8 Complex Correlations), and the disjoint-box decomposition that backs
// OR / IN / NOT clauses.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench/bench_util.h"
#include "src/cdf/cdf_model.h"
#include "src/core/periodic.h"
#include "src/exec/thread_pool.h"
#include "src/query/bool_expr.h"

using namespace tsunami;

namespace {

double BuildAndMeasure(const Benchmark& bench, const TsunamiOptions& options,
                       TsunamiIndex::Stats* stats_out) {
  TsunamiIndex index(bench.data, bench.workload, options);
  if (stats_out != nullptr) *stats_out = index.stats();
  return bench::MeasureAvgQueryNanos(index, bench.workload, 2) / 1e3;
}

}  // namespace

int main() {
  int64_t rows = RowsFromEnv(100000);
  Benchmark bench = MakeTaxiBenchmark(rows);
  TsunamiOptions base = bench::BenchTsunami(rows);

  bench::PrintHeader("Ablation 1: Grid Tree histogram bins (Sec 4.3.2)");
  std::printf("%8s %12s %10s %10s\n", "bins", "query (us)", "regions",
              "tree B");
  for (int bins : {16, 64, 128, 256}) {
    TsunamiOptions options = base;
    options.tree.hist_bins = bins;
    TsunamiIndex index(bench.data, bench.workload, options);
    std::printf("%8d %12.1f %10d %10lld\n", bins,
                bench::MeasureAvgQueryNanos(index, bench.workload, 2) / 1e3,
                index.stats().num_regions,
                static_cast<long long>(index.grid_tree().SizeBytes()));
    std::fflush(stdout);
  }

  bench::PrintHeader(
      "Ablation 2: skew-tree merge regularizer (Sec 4.3.2, default 1.10)");
  std::printf("%8s %12s %10s %10s\n", "factor", "query (us)", "nodes",
              "regions");
  for (double factor : {1.0, 1.1, 1.3, 2.0}) {
    TsunamiOptions options = base;
    options.tree.merge_factor = factor;
    TsunamiIndex::Stats stats;
    double micros = BuildAndMeasure(bench, options, &stats);
    std::printf("%8.2f %12.1f %10d %10d\n", factor, micros, stats.tree_nodes,
                stats.num_regions);
  }

  // The budget is a soft stop: reaching it ends further splitting, but all
  // children of already-committed multi-way splits still become regions
  // (the paper's Tab. 4 trees behave the same way: budget 40, 27-39 leaves).
  bench::PrintHeader("Ablation 3: region budget (Tab. 4 trees: 27-39 leaves)");
  std::printf("%8s %12s %10s %12s\n", "budget", "query (us)", "regions",
              "cells");
  for (int max_regions : {1, 4, 16, 40}) {
    TsunamiOptions options = base;
    options.tree.max_regions = max_regions;
    if (max_regions == 1) options.use_grid_tree = false;
    TsunamiIndex::Stats stats;
    double micros = BuildAndMeasure(bench, options, &stats);
    std::printf("%8d %12.1f %10d %12lld\n", max_regions, micros,
                stats.num_regions,
                static_cast<long long>(stats.total_cells));
  }

  bench::PrintHeader("Ablation 4: parallel build (Sec 6.1)");
  std::printf("%8s %12s %14s\n", "threads", "build (s)", "query (us)");
  std::printf("(this machine reports %d hardware threads)\n",
              ThreadPool::DefaultThreads());
  for (int threads : {1, 2, 4}) {
    TsunamiOptions options = base;
    options.build_threads = threads;
    Timer timer;
    TsunamiIndex index(bench.data, bench.workload, options);
    double build = timer.ElapsedSeconds();
    std::printf("%8d %12.2f %14.1f\n", threads, build,
                bench::MeasureAvgQueryNanos(index, bench.workload, 2) / 1e3);
  }

  bench::PrintHeader(
      "Ablation 5: CDF model choice (Sec 2.2: 'orthogonal') — fare column");
  {
    std::vector<Value> column(bench.data.size());
    for (int64_t r = 0; r < bench.data.size(); ++r) {
      column[r] = bench.data.at(r, 4);
    }
    std::vector<Value> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    std::printf("%12s %12s %12s %12s\n", "model", "build (ms)", "bytes",
                "mean |err|");
    for (int which = 0; which < 2; ++which) {
      Timer timer;
      std::unique_ptr<CdfModel> model;
      if (which == 0) {
        model = EquiDepthCdf::Build(column, 1024);
      } else {
        model = RmiCdf::Build(column, 256);
      }
      double build_ms = timer.ElapsedSeconds() * 1e3;
      // Mean absolute CDF error against the exact empirical CDF.
      double err = 0.0;
      const int kProbes = 2000;
      for (int i = 0; i < kProbes; ++i) {
        Value v = sorted[static_cast<int64_t>(
            static_cast<double>(i) / kProbes * (sorted.size() - 1))];
        double exact =
            static_cast<double>(std::lower_bound(sorted.begin(), sorted.end(),
                                                 v) -
                                sorted.begin()) /
            static_cast<double>(sorted.size());
        err += std::abs(model->Cdf(v) - exact);
      }
      std::printf("%12s %12.2f %12lld %12.5f\n",
                  which == 0 ? "EquiDepth" : "RMI", build_ms,
                  static_cast<long long>(model->SizeBytes()),
                  err / kProbes);
    }
  }

  bench::PrintHeader("Ablation 6: snapshot reopen vs rebuild (Sec 8)");
  {
    TsunamiOptions options = base;
    Timer timer;
    TsunamiIndex index(bench.data, bench.workload, options);
    double build = timer.ElapsedSeconds();
    const std::string path =
        (std::filesystem::temp_directory_path() / "ablation.snapshot")
            .string();
    timer.Reset();
    std::string error;
    bool saved = index.SaveToFile(path, &error);
    double save = timer.ElapsedSeconds();
    timer.Reset();
    auto loaded = TsunamiIndex::LoadFromFile(path, &error);
    double load = timer.ElapsedSeconds();
    std::printf("rebuild %.2fs | save %.3fs | reopen %.3fs (%s)\n", build,
                save, load,
                saved && loaded != nullptr ? "ok" : error.c_str());
    std::remove(path.c_str());
  }

  bench::PrintHeader(
      "Ablation 7: derived phase column for periodic data (Sec 8)");
  {
    // Time/load table with a daily cycle; the workload asks phase-of-day
    // questions ("this hour band, any day").
    constexpr Value kDay = 1440;
    Rng rng(2025);
    Dataset raw(2, {});
    int64_t n = std::min<int64_t>(rows, 200000);
    for (int64_t i = 0; i < n; ++i) {
      Value t = rng.UniformValue(0, 90 * kDay - 1);
      double angle = 2.0 * M_PI * static_cast<double>(t % kDay) / kDay;
      raw.AppendRow({t, static_cast<Value>(520.0 - 380.0 * std::cos(angle) +
                                           40.0 * rng.NextGaussian())});
    }
    Dataset augmented = AugmentWithPhases(raw, {PhaseColumnSpec{0, kDay}});
    Workload phase_queries;
    for (int i = 0; i < 100; ++i) {
      Value m = rng.UniformValue(0, kDay - 61);
      Value lo = rng.UniformValue(100, 800);
      Query q;
      q.filters = {Predicate{2, m, m + 60}, Predicate{1, lo, lo + 99}};
      q.type = 0;
      phase_queries.push_back(q);
    }
    // Raw schema: the index can only use the load band.
    Workload load_only;
    for (const Query& q : phase_queries) {
      Query r;
      r.filters = {q.filters[1]};
      r.type = 0;
      load_only.push_back(r);
    }
    TsunamiOptions options = base;
    TsunamiIndex raw_index(raw, load_only, options);
    TsunamiIndex aug_index(augmented, phase_queries, options);
    int64_t fetched = 0, scanned = 0;
    for (size_t i = 0; i < phase_queries.size(); ++i) {
      fetched += raw_index.Execute(load_only[i]).matched;
      scanned += aug_index.Execute(phase_queries[i]).scanned;
    }
    std::printf("%-28s %14s %14s\n", "variant", "query (us)",
                "rows touched");
    std::printf("%-28s %14.1f %14lld\n", "raw + app post-filter",
                bench::MeasureAvgQueryNanos(raw_index, load_only, 2) / 1e3,
                static_cast<long long>(fetched));
    std::printf("%-28s %14.1f %14lld\n", "phase-augmented index",
                bench::MeasureAvgQueryNanos(aug_index, phase_queries, 2) /
                    1e3,
                static_cast<long long>(scanned));
  }

  bench::PrintHeader(
      "Ablation 8: disjoint-box decomposition for OR clauses");
  {
    TsunamiOptions options = base;
    TsunamiIndex index(bench.data, bench.workload, options);
    // k-way IN-style disjunctions over the first dimension.
    Rng rng(9);
    std::printf("%8s %12s %12s\n", "OR arms", "boxes", "query (us)");
    for (int arms : {1, 2, 4, 8}) {
      std::vector<BoolExpr> alts;
      for (int a = 0; a < arms; ++a) {
        Value lo = rng.UniformValue(0, 800000);
        alts.push_back(BoolExpr::Leaf(Predicate{0, lo, lo + 50000}));
      }
      BoolExpr expr = BoolExpr::Or(std::move(alts));
      NormalizeResult norm = ToDisjointBoxes(expr, bench.data.dims());
      Query proto;
      Timer timer;
      const int kReps = 200;
      for (int rep = 0; rep < kReps; ++rep) {
        ExecuteBoxUnion(index, norm.boxes, proto);
      }
      std::printf("%8d %12zu %12.1f\n", arms, norm.boxes.size(),
                  timer.ElapsedNanos() / 1e3 / kReps);
    }
  }

  std::printf(
      "\nshape check: 128 bins and factor 1.1 sit on the flat part of their\n"
      "curves; more regions help until region overhead dominates; build\n"
      "time scales down with threads (on multi-core machines) while query\n"
      "time is unchanged; both\n"
      "CDF models are accurate (the grid only needs monotonicity); reopen\n"
      "is orders faster than rebuild; the phase column turns periodic\n"
      "queries from result-sized fetches into index-pruned scans; OR cost\n"
      "grows linearly in the number of disjoint boxes.\n");
  return 0;
}
