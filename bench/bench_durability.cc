// Durable-ingest benchmark (ROADMAP "Durable ingest"): what the WAL's
// fsync'd group commit costs on the insert path, how well concurrent
// writers coalesce onto shared fsyncs, and how recovery wall time scales
// with the WAL tail it must replay.
//
//   durable_insert          insert throughput + per-batch latency vs batch
//                           size, WAL off (in-memory IngestStore) against
//                           two WAL-on modes: sync acks (every batch blocks
//                           on its fsync — the per-ack durability price) and
//                           pipelined acks (durable_acks=false; the group
//                           committer drains concurrently and the clock
//                           stops only after CommitPending() has every row
//                           on stable storage). The pipelined ratio is the
//                           acceptance floor: group commit must sustain
//                           >= 80% of in-memory throughput at batch >= 64.
//   group_commit_coalescing N writers x batch-1 durable inserts: the group
//                           committer must merge their records into far
//                           fewer write+fsync batches than appends.
//   durable_recovery        reopen wall time vs WAL tail length (rows
//                           replayed into fresh delta chunks).
//
// Emits BENCH_durability.json; the summary rows are hand-merged into
// BENCH_query_service.json alongside the other serving-path benches. The
// durability directory lives under the system temp root — on a tmpfs /tmp
// fsync measures the syscall + page-cache path, not rotational latency;
// build_config and git_revision are stamped per row as always.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/durability/durable_store.h"
#include "src/ingest/ingest_store.h"

using namespace tsunami;

namespace {

constexpr int64_t kBaseRows = 60000;
// Both divisible by every batch size. The sync-ack run pays one real fsync
// per batch, so it gets the short stream; the pipelined/in-memory pair runs
// long enough to amortize the final drain fsync into the steady state.
constexpr int64_t kInsertRows = 98304;
constexpr int64_t kSyncInsertRows = 24576;
constexpr uint64_t kSeed = 11;

Dataset BaseData() {
  Rng rng(kSeed);
  Dataset data(3, {});
  data.Reserve(kBaseRows);
  for (int64_t i = 0; i < kBaseRows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return data;
}

Workload BaseWorkload() {
  Rng rng(kSeed + 1);
  Workload workload;
  for (int i = 0; i < 64; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    workload.push_back(q);
  }
  return workload;
}

ingest::IngestOptions InsertOptions() {
  ingest::IngestOptions o;
  o.index.cluster_queries = false;
  o.index.sample_rows = 20000;
  o.index.agd.max_sample_points = 512;
  o.index.agd.max_sample_queries = 32;
  o.index.agd.max_iters = 2;
  o.index.agd.max_cells = 1 << 12;
  // No folds during the measurement: this isolates the logging cost from
  // the (separately benchmarked) compaction pipeline.
  o.background_compaction = false;
  return o;
}

std::string FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tsunami_bench_durability_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<std::vector<Value>> MakeRows(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    rows.push_back(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return rows;
}

struct InsertRun {
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Inserts `rows` in `batch_size` chunks through `insert`, timing each call.
template <typename InsertFn>
InsertRun TimeInserts(const std::vector<std::vector<Value>>& rows,
                      int64_t batch_size, const InsertFn& insert) {
  std::vector<std::vector<Value>> batch;
  batch.reserve(batch_size);
  std::vector<double> lat_us;
  lat_us.reserve(rows.size() / batch_size + 1);
  Timer total;
  for (size_t i = 0; i < rows.size(); i += batch_size) {
    batch.assign(rows.begin() + i, rows.begin() + i + batch_size);
    Timer t;
    insert(batch);
    lat_us.push_back(static_cast<double>(t.ElapsedNanos()) / 1000.0);
  }
  InsertRun run;
  run.seconds = total.ElapsedSeconds();
  run.p50_us = Percentile(lat_us, 50);
  run.p99_us = Percentile(lat_us, 99);
  return run;
}

}  // namespace

int main() {
  const std::string tier = SimdTierName(DetectSimdTier());
  const Dataset data = BaseData();
  const Workload workload = BaseWorkload();
  const std::vector<std::vector<Value>> rows = MakeRows(kInsertRows, kSeed + 2);
  std::vector<std::string> records;

  // --- durable_insert: throughput vs batch size, WAL off / sync / pipelined -
  bench::PrintHeader(
      "durable insert: WAL + fsync'd group commit vs in-memory");
  std::printf("%8s %14s %14s %14s %7s %12s %12s\n", "batch", "mem rows/s",
              "sync rows/s", "pipe rows/s", "ratio", "sync p50 us",
              "sync p99 us");
  for (int64_t batch_size : {int64_t{1}, int64_t{16}, int64_t{64},
                             int64_t{256}}) {
    ingest::IngestStore mem(data, workload, InsertOptions());
    const InsertRun mem_run = TimeInserts(
        rows, batch_size,
        [&mem](const std::vector<std::vector<Value>>& b) { mem.InsertBatch(b); });

    // Sync acks: each batch blocks until its own record is fsync'd. A
    // single writer pays one full fsync per batch, so this measures the
    // per-ack durability price, not the group committer's ceiling.
    const std::string sync_dir =
        FreshDir("insert_sync_b" + std::to_string(batch_size));
    durability::DurabilityOptions dopts;
    dopts.dir = sync_dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    const std::vector<std::vector<Value>> sync_rows(
        rows.begin(), rows.begin() + kSyncInsertRows);
    const InsertRun sync_run = TimeInserts(
        sync_rows, batch_size,
        [&durable](const std::vector<std::vector<Value>>& b) {
          durable->InsertBatch(b);
        });
    const durability::DurableIngestStore::Stats sync_stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(sync_dir);

    // Pipelined acks: inserts do not wait per batch; the group committer
    // drains concurrently and the clock stops only after CommitPending()
    // reports every logged row on stable storage. This is the sustained
    // group-commit throughput the acceptance floor is about.
    const std::string pipe_dir =
        FreshDir("insert_pipe_b" + std::to_string(batch_size));
    dopts.dir = pipe_dir;
    dopts.durable_acks = false;
    durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    Timer pipe_timer;
    TimeInserts(rows, batch_size,
                [&durable](const std::vector<std::vector<Value>>& b) {
                  durable->InsertBatch(b);
                });
    if (!durable->wal().CommitPending()) {
      std::fprintf(stderr, "pipelined drain failed\n");
      return 1;
    }
    const double pipe_seconds = pipe_timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats pipe_stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(pipe_dir);
    dopts.durable_acks = true;

    const double mem_rps = kInsertRows / mem_run.seconds;
    const double sync_rps = kSyncInsertRows / sync_run.seconds;
    const double pipe_rps = kInsertRows / pipe_seconds;
    const double ratio = pipe_rps / mem_rps;
    std::printf("%8lld %14.0f %14.0f %14.0f %6.0f%% %12.2f %12.2f\n",
                static_cast<long long>(batch_size), mem_rps, sync_rps,
                pipe_rps, 100.0 * ratio, sync_run.p50_us, sync_run.p99_us);
    records.push_back(
        bench::EnvRecord("durable_insert", tier, /*threads=*/1, batch_size)
            .Int("rows", kInsertRows)
            .Num("mem_rows_per_sec", mem_rps)
            .Num("sync_ack_rows_per_sec", sync_rps)
            .Num("sync_ack_ratio", sync_rps / mem_rps)
            .Num("pipelined_rows_per_sec", pipe_rps)
            .Num("throughput_ratio", ratio)
            .Num("mem_p50_us", mem_run.p50_us)
            .Num("sync_p50_us", sync_run.p50_us)
            .Num("sync_p99_us", sync_run.p99_us)
            .Int("sync_group_commits", sync_stats.wal.group_commits)
            .Int("pipelined_group_commits", pipe_stats.wal.group_commits)
            .Int("pipelined_max_group_records",
                 pipe_stats.wal.max_group_records)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- durable_insert_mt: concurrent writers, payload encode in parallel ----
  // Writers encode their WAL payloads outside the sequencer lock, so with a
  // few concurrent writers the durable path approaches the in-memory rate:
  // the serial section is just frame prefix + memcpy + the same in-memory
  // apply the baseline pays.
  bench::PrintHeader("durable insert, concurrent writers (pipelined acks)");
  constexpr int kWriters = 4;
  for (int64_t batch_size : {int64_t{64}, int64_t{256}}) {
    const int64_t per_writer = kInsertRows / kWriters;
    const auto run_mt = [&](const auto& insert) {
      std::vector<std::thread> threads;
      for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
          std::vector<std::vector<Value>> batch;
          batch.reserve(batch_size);
          for (int64_t i = w * per_writer; i < (w + 1) * per_writer;
               i += batch_size) {
            batch.assign(rows.begin() + i, rows.begin() + i + batch_size);
            insert(batch);
          }
        });
      }
      for (std::thread& t : threads) t.join();
    };

    ingest::IngestStore mem(data, workload, InsertOptions());
    Timer mem_timer;
    run_mt([&mem](const std::vector<std::vector<Value>>& b) {
      mem.InsertBatch(b);
    });
    const double mem_seconds = mem_timer.ElapsedSeconds();

    const std::string dir = FreshDir("insert_mt_b" + std::to_string(batch_size));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    dopts.durable_acks = false;
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    Timer wal_timer;
    run_mt([&durable](const std::vector<std::vector<Value>>& b) {
      durable->InsertBatch(b);
    });
    if (!durable->wal().CommitPending()) {
      std::fprintf(stderr, "mt drain failed\n");
      return 1;
    }
    const double wal_seconds = wal_timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(dir);

    const double mem_rps = kInsertRows / mem_seconds;
    const double wal_rps = kInsertRows / wal_seconds;
    const double ratio = wal_rps / mem_rps;
    std::printf(
        "batch %4lld x %d writers: mem %8.0f rows/s, wal %8.0f rows/s "
        "(%3.0f%%), %lld commits, max group %lld\n",
        static_cast<long long>(batch_size), kWriters, mem_rps, wal_rps,
        100.0 * ratio, static_cast<long long>(stats.wal.group_commits),
        static_cast<long long>(stats.wal.max_group_records));
    records.push_back(
        bench::EnvRecord("durable_insert_mt", tier, kWriters, batch_size)
            .Int("rows", kInsertRows)
            .Num("mem_rows_per_sec", mem_rps)
            .Num("wal_rows_per_sec", wal_rps)
            .Num("throughput_ratio", ratio)
            .Int("group_commits", stats.wal.group_commits)
            .Int("max_group_records", stats.wal.max_group_records)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- group_commit_coalescing: N writers share fsyncs ----------------------
  bench::PrintHeader("group commit: concurrent batch-1 writers");
  for (int writers : {1, 4, 8}) {
    const std::string dir = FreshDir("coalesce_w" + std::to_string(writers));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    constexpr int64_t kAcksPerWriter = 2048;
    std::atomic<int64_t> failed{0};
    Timer timer;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&durable, &failed, w] {
        Rng rng(9000 + static_cast<uint64_t>(w));
        for (int64_t i = 0; i < kAcksPerWriter; ++i) {
          Value x = rng.UniformValue(0, 1000000);
          if (!durable->Insert({x, x + rng.UniformValue(-5000, 5000),
                                rng.UniformValue(0, 10000)})) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(dir);

    const int64_t acks = int64_t{writers} * kAcksPerWriter;
    const double acks_per_commit =
        stats.wal.group_commits > 0
            ? static_cast<double>(stats.wal.records_committed) /
                  static_cast<double>(stats.wal.group_commits)
            : 0.0;
    std::printf(
        "%d writers: %7.0f acks/s, %lld group commits for %lld acks "
        "(%.2f acks/fsync, max group %lld)%s\n",
        writers, acks / seconds,
        static_cast<long long>(stats.wal.group_commits),
        static_cast<long long>(acks), acks_per_commit,
        static_cast<long long>(stats.wal.max_group_records),
        failed.load() > 0 ? "  [FAILED ACKS]" : "");
    records.push_back(
        bench::EnvRecord("group_commit_coalescing", tier, writers,
                         /*batch_size=*/1)
            .Int("acks", acks)
            .Num("acks_per_sec", acks / seconds)
            .Int("group_commits", stats.wal.group_commits)
            .Num("acks_per_fsync", acks_per_commit)
            .Int("max_group_records", stats.wal.max_group_records)
            .Int("failed_acks", failed.load())
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- durable_recovery: reopen wall time vs WAL tail length ----------------
  bench::PrintHeader("recovery: wall time vs WAL tail length");
  for (int64_t tail_rows : {int64_t{8192}, int64_t{32768}, int64_t{131072}}) {
    const std::string dir = FreshDir("recover_t" + std::to_string(tail_rows));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    const std::vector<std::vector<Value>> tail =
        MakeRows(tail_rows, kSeed + 3);
    for (size_t i = 0; i < tail.size(); i += 256) {
      durable->InsertBatch(std::vector<std::vector<Value>>(
          tail.begin() + i, tail.begin() + i + 256));
    }
    durable.reset();

    durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "reopen failed: %s\n", error.c_str());
      return 1;
    }
    const durability::RecoveryInfo rec = durable->recovery();
    durable.reset();
    std::filesystem::remove_all(dir);

    std::printf(
        "tail %7lld rows: recovered in %8.4fs (%9.0f rows/s replay, "
        "checkpoint %lld rows, %lld segments)\n",
        static_cast<long long>(tail_rows), rec.seconds,
        static_cast<double>(rec.replayed_rows) / rec.seconds,
        static_cast<long long>(rec.checkpoint_rows),
        static_cast<long long>(rec.segments_read));
    records.push_back(
        bench::EnvRecord("durable_recovery", tier, /*threads=*/1,
                         /*batch_size=*/256)
            .Int("wal_tail_rows", tail_rows)
            .Num("recovery_seconds", rec.seconds)
            .Num("replay_rows_per_sec",
                 static_cast<double>(rec.replayed_rows) / rec.seconds)
            .Int("checkpoint_rows", rec.checkpoint_rows)
            .Int("segments_read", rec.segments_read)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  if (bench::WriteBenchJson("BENCH_durability.json", "durability", records)) {
    std::printf("\nwrote BENCH_durability.json (merge the durability rows "
                "into BENCH_query_service.json)\n");
  }
  return 0;
}
