// Durable-ingest benchmark (ROADMAP "Durable ingest"): what the WAL's
// fsync'd group commit costs on the insert path, how well concurrent
// writers coalesce onto shared fsyncs, and how recovery wall time scales
// with the WAL tail it must replay.
//
//   durable_insert          insert throughput + per-batch latency vs batch
//                           size, WAL off (in-memory IngestStore) against
//                           two WAL-on modes: sync acks (every batch blocks
//                           on its fsync — the per-ack durability price) and
//                           pipelined acks (durable_acks=false; the group
//                           committer drains concurrently and the clock
//                           stops only after CommitPending() has every row
//                           on stable storage). The pipelined ratio is the
//                           acceptance floor: group commit must sustain
//                           >= 80% of in-memory throughput at batch >= 64.
//   group_commit_coalescing N writers x batch-1 durable inserts: the group
//                           committer must merge their records into far
//                           fewer write+fsync batches than appends.
//   commit_delay            WalOptions::max_commit_delay_micros sweep: per-ack
//                           p50/p99 vs acks-per-fsync — the latency the knob
//                           spends and the fsync coalescing it buys.
//   governed_ingest         4-writer TryInsertBatch throughput at 100%/75%/50%
//                           of the delta-backlog memory budget: how much
//                           ingest rate survives when admission control, not
//                           CPU, paces the writers.
//   scrubber_overhead       serving p50/p99 with the background Scrubber off
//                           vs on (niced, 1 ms cadence) — the p99 overhead
//                           must stay under the 5% target.
//   durable_recovery        reopen wall time vs WAL tail length (rows
//                           replayed into fresh delta chunks).
//
// Emits BENCH_durability.json; the summary rows are hand-merged into
// BENCH_query_service.json alongside the other serving-path benches. The
// durability directory lives under the system temp root — on a tmpfs /tmp
// fsync measures the syscall + page-cache path, not rotational latency;
// build_config and git_revision are stamped per row as always.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/resource_governor.h"
#include "src/common/stats.h"
#include "src/durability/durable_store.h"
#include "src/ingest/ingest_store.h"
#include "src/ingest/scrubber.h"

using namespace tsunami;

namespace {

constexpr int64_t kBaseRows = 60000;
// Both divisible by every batch size. The sync-ack run pays one real fsync
// per batch, so it gets the short stream; the pipelined/in-memory pair runs
// long enough to amortize the final drain fsync into the steady state.
constexpr int64_t kInsertRows = 98304;
constexpr int64_t kSyncInsertRows = 24576;
constexpr uint64_t kSeed = 11;

Dataset BaseData() {
  Rng rng(kSeed);
  Dataset data(3, {});
  data.Reserve(kBaseRows);
  for (int64_t i = 0; i < kBaseRows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return data;
}

Workload BaseWorkload() {
  Rng rng(kSeed + 1);
  Workload workload;
  for (int i = 0; i < 64; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    workload.push_back(q);
  }
  return workload;
}

ingest::IngestOptions InsertOptions() {
  ingest::IngestOptions o;
  o.index.cluster_queries = false;
  o.index.sample_rows = 20000;
  o.index.agd.max_sample_points = 512;
  o.index.agd.max_sample_queries = 32;
  o.index.agd.max_iters = 2;
  o.index.agd.max_cells = 1 << 12;
  // No folds during the measurement: this isolates the logging cost from
  // the (separately benchmarked) compaction pipeline.
  o.background_compaction = false;
  return o;
}

std::string FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tsunami_bench_durability_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<std::vector<Value>> MakeRows(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    rows.push_back(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return rows;
}

struct InsertRun {
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Inserts `rows` in `batch_size` chunks through `insert`, timing each call.
template <typename InsertFn>
InsertRun TimeInserts(const std::vector<std::vector<Value>>& rows,
                      int64_t batch_size, const InsertFn& insert) {
  std::vector<std::vector<Value>> batch;
  batch.reserve(batch_size);
  std::vector<double> lat_us;
  lat_us.reserve(rows.size() / batch_size + 1);
  Timer total;
  for (size_t i = 0; i < rows.size(); i += batch_size) {
    batch.assign(rows.begin() + i, rows.begin() + i + batch_size);
    Timer t;
    insert(batch);
    lat_us.push_back(static_cast<double>(t.ElapsedNanos()) / 1000.0);
  }
  InsertRun run;
  run.seconds = total.ElapsedSeconds();
  run.p50_us = Percentile(lat_us, 50);
  run.p99_us = Percentile(lat_us, 99);
  return run;
}

}  // namespace

int main() {
  const std::string tier = SimdTierName(DetectSimdTier());
  const Dataset data = BaseData();
  const Workload workload = BaseWorkload();
  const std::vector<std::vector<Value>> rows = MakeRows(kInsertRows, kSeed + 2);
  std::vector<std::string> records;

  // --- durable_insert: throughput vs batch size, WAL off / sync / pipelined -
  bench::PrintHeader(
      "durable insert: WAL + fsync'd group commit vs in-memory");
  std::printf("%8s %14s %14s %14s %7s %12s %12s\n", "batch", "mem rows/s",
              "sync rows/s", "pipe rows/s", "ratio", "sync p50 us",
              "sync p99 us");
  for (int64_t batch_size : {int64_t{1}, int64_t{16}, int64_t{64},
                             int64_t{256}}) {
    ingest::IngestStore mem(data, workload, InsertOptions());
    const InsertRun mem_run = TimeInserts(
        rows, batch_size,
        [&mem](const std::vector<std::vector<Value>>& b) { mem.InsertBatch(b); });

    // Sync acks: each batch blocks until its own record is fsync'd. A
    // single writer pays one full fsync per batch, so this measures the
    // per-ack durability price, not the group committer's ceiling.
    const std::string sync_dir =
        FreshDir("insert_sync_b" + std::to_string(batch_size));
    durability::DurabilityOptions dopts;
    dopts.dir = sync_dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    const std::vector<std::vector<Value>> sync_rows(
        rows.begin(), rows.begin() + kSyncInsertRows);
    const InsertRun sync_run = TimeInserts(
        sync_rows, batch_size,
        [&durable](const std::vector<std::vector<Value>>& b) {
          durable->InsertBatch(b);
        });
    const durability::DurableIngestStore::Stats sync_stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(sync_dir);

    // Pipelined acks: inserts do not wait per batch; the group committer
    // drains concurrently and the clock stops only after CommitPending()
    // reports every logged row on stable storage. This is the sustained
    // group-commit throughput the acceptance floor is about.
    const std::string pipe_dir =
        FreshDir("insert_pipe_b" + std::to_string(batch_size));
    dopts.dir = pipe_dir;
    dopts.durable_acks = false;
    durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    Timer pipe_timer;
    TimeInserts(rows, batch_size,
                [&durable](const std::vector<std::vector<Value>>& b) {
                  durable->InsertBatch(b);
                });
    if (!durable->wal().CommitPending()) {
      std::fprintf(stderr, "pipelined drain failed\n");
      return 1;
    }
    const double pipe_seconds = pipe_timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats pipe_stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(pipe_dir);
    dopts.durable_acks = true;

    const double mem_rps = kInsertRows / mem_run.seconds;
    const double sync_rps = kSyncInsertRows / sync_run.seconds;
    const double pipe_rps = kInsertRows / pipe_seconds;
    const double ratio = pipe_rps / mem_rps;
    std::printf("%8lld %14.0f %14.0f %14.0f %6.0f%% %12.2f %12.2f\n",
                static_cast<long long>(batch_size), mem_rps, sync_rps,
                pipe_rps, 100.0 * ratio, sync_run.p50_us, sync_run.p99_us);
    records.push_back(
        bench::EnvRecord("durable_insert", tier, /*threads=*/1, batch_size)
            .Int("rows", kInsertRows)
            .Num("mem_rows_per_sec", mem_rps)
            .Num("sync_ack_rows_per_sec", sync_rps)
            .Num("sync_ack_ratio", sync_rps / mem_rps)
            .Num("pipelined_rows_per_sec", pipe_rps)
            .Num("throughput_ratio", ratio)
            .Num("mem_p50_us", mem_run.p50_us)
            .Num("sync_p50_us", sync_run.p50_us)
            .Num("sync_p99_us", sync_run.p99_us)
            .Int("sync_group_commits", sync_stats.wal.group_commits)
            .Int("pipelined_group_commits", pipe_stats.wal.group_commits)
            .Int("pipelined_max_group_records",
                 pipe_stats.wal.max_group_records)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- durable_insert_mt: concurrent writers, payload encode in parallel ----
  // Writers encode their WAL payloads outside the sequencer lock, so with a
  // few concurrent writers the durable path approaches the in-memory rate:
  // the serial section is just frame prefix + memcpy + the same in-memory
  // apply the baseline pays.
  bench::PrintHeader("durable insert, concurrent writers (pipelined acks)");
  constexpr int kWriters = 4;
  for (int64_t batch_size : {int64_t{64}, int64_t{256}}) {
    const int64_t per_writer = kInsertRows / kWriters;
    const auto run_mt = [&](const auto& insert) {
      std::vector<std::thread> threads;
      for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
          std::vector<std::vector<Value>> batch;
          batch.reserve(batch_size);
          for (int64_t i = w * per_writer; i < (w + 1) * per_writer;
               i += batch_size) {
            batch.assign(rows.begin() + i, rows.begin() + i + batch_size);
            insert(batch);
          }
        });
      }
      for (std::thread& t : threads) t.join();
    };

    ingest::IngestStore mem(data, workload, InsertOptions());
    Timer mem_timer;
    run_mt([&mem](const std::vector<std::vector<Value>>& b) {
      mem.InsertBatch(b);
    });
    const double mem_seconds = mem_timer.ElapsedSeconds();

    const std::string dir = FreshDir("insert_mt_b" + std::to_string(batch_size));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    dopts.durable_acks = false;
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    Timer wal_timer;
    run_mt([&durable](const std::vector<std::vector<Value>>& b) {
      durable->InsertBatch(b);
    });
    if (!durable->wal().CommitPending()) {
      std::fprintf(stderr, "mt drain failed\n");
      return 1;
    }
    const double wal_seconds = wal_timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(dir);

    const double mem_rps = kInsertRows / mem_seconds;
    const double wal_rps = kInsertRows / wal_seconds;
    const double ratio = wal_rps / mem_rps;
    std::printf(
        "batch %4lld x %d writers: mem %8.0f rows/s, wal %8.0f rows/s "
        "(%3.0f%%), %lld commits, max group %lld\n",
        static_cast<long long>(batch_size), kWriters, mem_rps, wal_rps,
        100.0 * ratio, static_cast<long long>(stats.wal.group_commits),
        static_cast<long long>(stats.wal.max_group_records));
    records.push_back(
        bench::EnvRecord("durable_insert_mt", tier, kWriters, batch_size)
            .Int("rows", kInsertRows)
            .Num("mem_rows_per_sec", mem_rps)
            .Num("wal_rows_per_sec", wal_rps)
            .Num("throughput_ratio", ratio)
            .Int("group_commits", stats.wal.group_commits)
            .Int("max_group_records", stats.wal.max_group_records)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- group_commit_coalescing: N writers share fsyncs ----------------------
  bench::PrintHeader("group commit: concurrent batch-1 writers");
  for (int writers : {1, 4, 8}) {
    const std::string dir = FreshDir("coalesce_w" + std::to_string(writers));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    constexpr int64_t kAcksPerWriter = 2048;
    std::atomic<int64_t> failed{0};
    Timer timer;
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&durable, &failed, w] {
        Rng rng(9000 + static_cast<uint64_t>(w));
        for (int64_t i = 0; i < kAcksPerWriter; ++i) {
          Value x = rng.UniformValue(0, 1000000);
          if (!durable->Insert({x, x + rng.UniformValue(-5000, 5000),
                                rng.UniformValue(0, 10000)})) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(dir);

    const int64_t acks = int64_t{writers} * kAcksPerWriter;
    const double acks_per_commit =
        stats.wal.group_commits > 0
            ? static_cast<double>(stats.wal.records_committed) /
                  static_cast<double>(stats.wal.group_commits)
            : 0.0;
    std::printf(
        "%d writers: %7.0f acks/s, %lld group commits for %lld acks "
        "(%.2f acks/fsync, max group %lld)%s\n",
        writers, acks / seconds,
        static_cast<long long>(stats.wal.group_commits),
        static_cast<long long>(acks), acks_per_commit,
        static_cast<long long>(stats.wal.max_group_records),
        failed.load() > 0 ? "  [FAILED ACKS]" : "");
    records.push_back(
        bench::EnvRecord("group_commit_coalescing", tier, writers,
                         /*batch_size=*/1)
            .Int("acks", acks)
            .Num("acks_per_sec", acks / seconds)
            .Int("group_commits", stats.wal.group_commits)
            .Num("acks_per_fsync", acks_per_commit)
            .Int("max_group_records", stats.wal.max_group_records)
            .Int("failed_acks", failed.load())
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- commit_delay: the p50-vs-acks-per-fsync trade --------------------------
  // WalOptions::max_commit_delay_micros holds the group committer open after
  // the first pending record so more acks coalesce into one fsync. The price
  // is per-ack p50 latency; the payoff is fewer fsyncs for the same acks.
  bench::PrintHeader("commit delay: ack latency vs fsync coalescing");
  for (uint32_t delay_us : {uint32_t{0}, uint32_t{200}, uint32_t{1000}}) {
    const std::string dir = FreshDir("delay_" + std::to_string(delay_us));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    dopts.wal_commit_delay_micros = delay_us;
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    constexpr int kDelayWriters = 4;
    constexpr int64_t kAcks = 1024;
    std::vector<std::vector<double>> lat_us(kDelayWriters);
    Timer timer;
    std::vector<std::thread> threads;
    for (int w = 0; w < kDelayWriters; ++w) {
      threads.emplace_back([&durable, &lat_us, w] {
        Rng rng(9500 + static_cast<uint64_t>(w));
        lat_us[static_cast<size_t>(w)].reserve(kAcks);
        for (int64_t i = 0; i < kAcks; ++i) {
          Value x = rng.UniformValue(0, 1000000);
          Timer t;
          durable->Insert({x, x + rng.UniformValue(-5000, 5000),
                           rng.UniformValue(0, 10000)});
          lat_us[static_cast<size_t>(w)].push_back(
              static_cast<double>(t.ElapsedNanos()) / 1000.0);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = timer.ElapsedSeconds();
    const durability::DurableIngestStore::Stats stats = durable->stats();
    durable.reset();
    std::filesystem::remove_all(dir);

    std::vector<double> all;
    for (const std::vector<double>& v : lat_us) {
      all.insert(all.end(), v.begin(), v.end());
    }
    const int64_t acks = int64_t{kDelayWriters} * kAcks;
    const double acks_per_commit =
        stats.wal.group_commits > 0
            ? static_cast<double>(stats.wal.records_committed) /
                  static_cast<double>(stats.wal.group_commits)
            : 0.0;
    std::printf(
        "delay %4u us: p50 %7.1f us, p99 %8.1f us, %6.2f acks/fsync "
        "(%lld commits, %lld delayed), %7.0f acks/s\n",
        delay_us, Percentile(all, 50), Percentile(all, 99), acks_per_commit,
        static_cast<long long>(stats.wal.group_commits),
        static_cast<long long>(stats.wal.delayed_commits), acks / seconds);
    records.push_back(
        bench::EnvRecord("commit_delay", tier, kDelayWriters,
                         /*batch_size=*/1)
            .Int("max_commit_delay_micros", delay_us)
            .Int("acks", acks)
            .Num("ack_p50_us", Percentile(all, 50))
            .Num("ack_p99_us", Percentile(all, 99))
            .Num("acks_per_fsync", acks_per_commit)
            .Int("group_commits", stats.wal.group_commits)
            .Int("delayed_commits", stats.wal.delayed_commits)
            .Num("acks_per_sec", acks / seconds)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- governed_ingest: throughput vs delta-backlog budget --------------------
  // The 100% budget admits the whole insert stream without a single refusal;
  // 75% and 50% force admission control to pace the writers against the
  // compactor's fold-and-release rate. The interesting number is how much
  // throughput survives when memory, not CPU, is the binding constraint.
  bench::PrintHeader("governed ingest: throughput vs delta-backlog budget");
  {
    constexpr int kGovWriters = 4;
    constexpr int64_t kGovRows = 65536;
    constexpr int64_t kGovBatch = 256;
    const std::vector<std::vector<Value>> gov_rows =
        MakeRows(kGovRows, kSeed + 4);
    const int64_t full_budget = kGovRows * 3 * 8;  // Every row in flight.
    for (int pct : {100, 75, 50}) {
      ResourceGovernor::Budgets budgets;
      budgets.delta_backlog_bytes = full_budget * pct / 100;
      ResourceGovernor governor(budgets);
      ingest::IngestOptions iopt = InsertOptions();
      iopt.background_compaction = true;  // The compactor is the release path.
      iopt.compact_poll_ms = 1;
      iopt.chunk_capacity = 4096;
      iopt.compact_min_chunks = 2;
      iopt.governor = &governor;
      ingest::IngestStore store(data, workload, iopt);
      std::atomic<int64_t> retries{0};
      const int64_t per_writer = kGovRows / kGovWriters;
      Timer timer;
      std::vector<std::thread> threads;
      for (int w = 0; w < kGovWriters; ++w) {
        threads.emplace_back([&, w] {
          std::vector<std::vector<Value>> batch;
          for (int64_t i = w * per_writer; i < (w + 1) * per_writer;
               i += kGovBatch) {
            batch.assign(gov_rows.begin() + i,
                         gov_rows.begin() + i + kGovBatch);
            int attempts = 0;
            while (store.TryInsertBatch(batch) !=
                   ingest::InsertAdmit::kOk) {
              retries.fetch_add(1, std::memory_order_relaxed);
              if (++attempts % 4 == 1) store.ForceRoll();
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = timer.ElapsedSeconds();
      store.StopBackground();
      const ResourceGovernor::Stats gstats = governor.stats();
      const auto& pool =
          gstats.pools[static_cast<size_t>(ResourcePool::kDeltaBacklog)];
      std::printf(
          "budget %3d%% (%8lld B): %8.0f rows/s, %6lld rejections, peak "
          "backlog %lld B\n",
          pct, static_cast<long long>(budgets.delta_backlog_bytes),
          kGovRows / seconds, static_cast<long long>(pool.rejections),
          static_cast<long long>(pool.peak));
      records.push_back(
          bench::EnvRecord("governed_ingest", tier, kGovWriters, kGovBatch)
              .Int("rows", kGovRows)
              .Int("budget_pct", pct)
              .Int("budget_bytes", budgets.delta_backlog_bytes)
              .Num("rows_per_sec", kGovRows / seconds)
              .Int("rejections", pool.rejections)
              .Int("retries", retries.load())
              .Int("peak_backlog_bytes", pool.peak)
              .Int("rng_seed", static_cast<int64_t>(kSeed))
              .Finish());
    }
  }

  // --- scrubber_overhead: serving p99 with the scrubber on vs off -------------
  // The scrubber runs niced at the lowest cadence that still sweeps the
  // store continuously; its cost on foreground serving must stay under 5%
  // at the p99 — proactive integrity is supposed to be free-ish.
  bench::PrintHeader("scrubber: serving p99 overhead (target < 5%)");
  {
    ingest::IngestOptions iopt = InsertOptions();
    ingest::IngestStore store(data, workload, iopt);
    Rng qrng(kSeed + 5);
    Workload queries;
    for (int i = 0; i < 2000; ++i) {
      Query q;
      Value lo = qrng.UniformValue(0, 900000);
      q.filters.push_back(Predicate{0, lo, lo + 50000});
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      queries.push_back(q);
    }
    // Each side runs for a fixed minimum wall time, not a fixed query
    // count: the store is small enough that one pass finishes in
    // milliseconds, before the niced scrubber would even wake up.
    const auto time_queries = [&] {
      std::vector<double> lat;
      Timer wall;
      do {
        for (const Query& q : queries) {
          Timer t;
          store.Execute(q);
          lat.push_back(static_cast<double>(t.ElapsedNanos()) / 1000.0);
        }
      } while (wall.ElapsedSeconds() < 0.5);
      return lat;
    };
    time_queries();  // Warm up (first-touch verification, caches).
    const std::vector<double> off = time_queries();

    ingest::ScrubberOptions sopts;
    sopts.poll_ms = 1;
    sopts.blocks_per_slice = 256;
    ingest::Scrubber scrubber(&store, sopts);
    scrubber.Start();
    const std::vector<double> on = time_queries();
    scrubber.Stop();
    const ingest::Scrubber::Stats sstats = scrubber.stats();

    const double p99_off = Percentile(off, 99);
    const double p99_on = Percentile(on, 99);
    const double overhead = p99_off > 0 ? (p99_on - p99_off) / p99_off : 0.0;
    std::printf(
        "scrubber off: p50 %7.1f us p99 %8.1f us | on: p50 %7.1f us p99 "
        "%8.1f us -> %+.1f%% p99 (%lld sweeps, %lld blocks during run)\n",
        Percentile(off, 50), p99_off, Percentile(on, 50), p99_on,
        100.0 * overhead, static_cast<long long>(sstats.sweeps),
        static_cast<long long>(sstats.blocks_scrubbed));
    records.push_back(
        bench::EnvRecord("scrubber_overhead", tier, /*threads=*/1,
                         /*batch_size=*/0)
            .Int("queries", static_cast<int64_t>(queries.size()))
            .Num("p50_off_us", Percentile(off, 50))
            .Num("p99_off_us", p99_off)
            .Num("p50_on_us", Percentile(on, 50))
            .Num("p99_on_us", p99_on)
            .Num("p99_overhead_ratio", overhead)
            .Int("sweeps_during_run", sstats.sweeps)
            .Int("blocks_scrubbed_during_run", sstats.blocks_scrubbed)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  // --- durable_recovery: reopen wall time vs WAL tail length ----------------
  bench::PrintHeader("recovery: wall time vs WAL tail length");
  for (int64_t tail_rows : {int64_t{8192}, int64_t{32768}, int64_t{131072}}) {
    const std::string dir = FreshDir("recover_t" + std::to_string(tail_rows));
    durability::DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.ingest = InsertOptions();
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    const std::vector<std::vector<Value>> tail =
        MakeRows(tail_rows, kSeed + 3);
    for (size_t i = 0; i < tail.size(); i += 256) {
      durable->InsertBatch(std::vector<std::vector<Value>>(
          tail.begin() + i, tail.begin() + i + 256));
    }
    durable.reset();

    durable =
        durability::DurableIngestStore::Open(data, workload, dopts, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "reopen failed: %s\n", error.c_str());
      return 1;
    }
    const durability::RecoveryInfo rec = durable->recovery();
    durable.reset();
    std::filesystem::remove_all(dir);

    std::printf(
        "tail %7lld rows: recovered in %8.4fs (%9.0f rows/s replay, "
        "checkpoint %lld rows, %lld segments)\n",
        static_cast<long long>(tail_rows), rec.seconds,
        static_cast<double>(rec.replayed_rows) / rec.seconds,
        static_cast<long long>(rec.checkpoint_rows),
        static_cast<long long>(rec.segments_read));
    records.push_back(
        bench::EnvRecord("durable_recovery", tier, /*threads=*/1,
                         /*batch_size=*/256)
            .Int("wal_tail_rows", tail_rows)
            .Num("recovery_seconds", rec.seconds)
            .Num("replay_rows_per_sec",
                 static_cast<double>(rec.replayed_rows) / rec.seconds)
            .Int("checkpoint_rows", rec.checkpoint_rows)
            .Int("segments_read", rec.segments_read)
            .Int("rng_seed", static_cast<int64_t>(kSeed))
            .Finish());
  }

  if (bench::WriteBenchJson("BENCH_durability.json", "durability", records)) {
    std::printf("\nwrote BENCH_durability.json (merge the durability rows "
                "into BENCH_query_service.json)\n");
  }
  return 0;
}
