// Reproduces Fig. 10: scaling with dimensionality, d in {4, 8, 12, 16, 20},
// on uncorrelated and correlated synthetic datasets. Paper shape: Tsunami
// stays fastest at all d; on correlated data the Augmented Grid effectively
// reduces dimensionality, delaying the curse of dimensionality.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(100000);
  bench::PrintHeader("Fig 10: Dimensionality scaling (avg query us)");
  for (bool correlated : {false, true}) {
    std::printf("\n%s datasets (%lld rows)\n",
                correlated ? "correlated" : "uncorrelated",
                static_cast<long long>(rows));
    std::printf("  %-12s", "index");
    for (int d : {4, 8, 12, 16, 20}) std::printf(" %8dd", d);
    std::printf("\n");
    // Collect per-index rows across dimensionalities.
    std::vector<std::string> names;
    std::vector<std::vector<double>> times;
    for (int d : {4, 8, 12, 16, 20}) {
      Benchmark b = MakeScalingBenchmark(d, rows, correlated, 8 + d);
      std::vector<bench::BuiltIndex> built =
          bench::BuildAllIndexes(b, /*include_full_scan=*/false);
      if (names.empty()) {
        names.resize(built.size());
        times.assign(built.size(), {});
      }
      for (size_t i = 0; i < built.size(); ++i) {
        names[i] = built[i].name;
        times[i].push_back(
            bench::MeasureAvgQueryNanos(*built[i].index, b.workload, 2));
      }
    }
    for (size_t i = 0; i < names.size(); ++i) {
      std::printf("  %-12s", names[i].c_str());
      for (double t : times[i]) std::printf(" %9.1f", t / 1000);
      std::printf("\n");
    }
  }
  std::printf(
      "\nshape check: Tsunami outperforms the other indexes at every d;\n"
      "on correlated data its times track the lower-dimensional\n"
      "uncorrelated datasets (Augmented Grid removes correlated dims).\n");
  return 0;
}
