// Reproduces Fig. 11: (a) query time vs dataset size on TPC-H subsets and
// (b) query time vs selectivity (0.001%..10%) on the 8-d correlated
// synthetic dataset. Paper shape: Tsunami keeps its advantage across sizes
// and selectivities; at 10% aggregation costs flatten the gap.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/workload_stats.h"

int main() {
  using namespace tsunami;
  // Workloads run through ExecuteBatch on a shared pool (the serving path).
  ThreadPool pool(ThreadPool::DefaultThreads() > 1
                      ? ThreadPool::DefaultThreads()
                      : 0);

  bench::PrintHeader("Fig 11a: Dataset size scaling on TPC-H (avg query us)");
  std::vector<int64_t> sizes;
  int64_t full = RowsFromEnv(200000);
  for (int64_t s = full / 8; s <= full; s *= 2) sizes.push_back(s);
  std::vector<std::string> names;
  std::vector<std::vector<double>> times;
  for (int64_t rows : sizes) {
    Benchmark b = MakeTpchBenchmark(rows);  // Same workload shape per size.
    std::vector<bench::BuiltIndex> built =
        bench::BuildAllIndexes(b, /*include_full_scan=*/false);
    if (names.empty()) {
      names.resize(built.size());
      times.assign(built.size(), {});
    }
    for (size_t i = 0; i < built.size(); ++i) {
      names[i] = built[i].name;
      ExecContext ctx(&pool);
      times[i].push_back(
          bench::MeasureAvgQueryNanosBatch(*built[i].index, b.workload, ctx,
                                           2));
    }
  }
  std::printf("%-12s", "index");
  for (int64_t s : sizes) {
    std::printf(" %9lldk", static_cast<long long>(s / 1000));
  }
  std::printf("\n");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-12s", names[i].c_str());
    for (double t : times[i]) std::printf(" %10.1f", t / 1000);
    std::printf("\n");
  }

  bench::PrintHeader(
      "Fig 11b: Selectivity scaling, 8-d correlated synthetic (avg query us)");
  Benchmark base = MakeScalingBenchmark(8, RowsFromEnv(200000), true, 31);
  const double kTargets[] = {0.00001, 0.0001, 0.001, 0.01, 0.1};
  std::printf("%-12s", "index");
  for (double t : kTargets) std::printf(" %9.3f%%", 100 * t);
  std::printf("\n");
  names.clear();
  times.clear();
  Rng rng(32);
  Dataset sample = SampleDataset(base.data, 20000, &rng);
  std::vector<double> achieved;
  for (double target : kTargets) {
    Benchmark b;
    b.name = base.name;
    b.data = base.data;
    b.workload = MakeSelectivityWorkload(base.data, target, 33);
    double sel = 0.0;
    for (const Query& q : b.workload) sel += QuerySelectivity(sample, q);
    achieved.push_back(sel / b.workload.size());
    std::vector<bench::BuiltIndex> built =
        bench::BuildAllIndexes(b, /*include_full_scan=*/false);
    if (names.empty()) {
      names.resize(built.size());
      times.assign(built.size(), {});
    }
    for (size_t i = 0; i < built.size(); ++i) {
      names[i] = built[i].name;
      ExecContext ctx(&pool);
      times[i].push_back(
          bench::MeasureAvgQueryNanosBatch(*built[i].index, b.workload, ctx,
                                           2));
    }
  }
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-12s", names[i].c_str());
    for (double t : times[i]) std::printf(" %10.1f", t / 1000);
    std::printf("\n");
  }
  std::printf("%-12s", "achieved sel");
  for (double a : achieved) std::printf(" %9.3f%%", 100 * a);
  std::printf(
      "\n\nshape check: Tsunami leads across sizes and selectivities; the\n"
      "gap narrows at 10%% selectivity where aggregation dominates.\n");
  return 0;
}
