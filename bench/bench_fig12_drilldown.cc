// Reproduces Fig. 12: (a) the component drill-down — Flood, Augmented Grid
// only, Grid Tree only, and full Tsunami — and (b) the optimization-method
// comparison (GD, Black Box, AGD-NI, AGD) with predicted vs actual query
// time, including the cost model's average error (paper: ~15%).
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "src/core/augmented_grid.h"
#include "src/core/cost_model.h"
#include "src/core/optimizer.h"

namespace tsunami {
namespace {

void DrilldownA(const std::vector<Benchmark>& benches) {
  bench::PrintHeader("Fig 12a: Component drill-down (avg query us)");
  std::printf("%-10s %10s %14s %14s %10s\n", "dataset", "Flood",
              "AugGrid-only", "GridTree-only", "Tsunami");
  for (const Benchmark& b : benches) {
    FloodOptions flood_options;
    flood_options.agd = bench::BenchAgd();
    FloodIndex flood(b.data, b.workload, flood_options);

    TsunamiOptions ag_only = bench::BenchTsunami(b.data.size());
    ag_only.use_grid_tree = false;
    ag_only.name = "AugGridOnly";
    TsunamiIndex ag(b.data, b.workload, ag_only);

    TsunamiOptions gt_only = bench::BenchTsunami(b.data.size());
    gt_only.use_augmentation = false;
    gt_only.name = "GridTreeOnly";
    TsunamiIndex gt(b.data, b.workload, gt_only);

    TsunamiIndex full(b.data, b.workload, bench::BenchTsunami(b.data.size()));

    std::printf("%-10s %10.1f %14.1f %14.1f %10.1f\n", b.name.c_str(),
                bench::MeasureAvgQueryNanos(flood, b.workload, 3) / 1000,
                bench::MeasureAvgQueryNanos(ag, b.workload, 3) / 1000,
                bench::MeasureAvgQueryNanos(gt, b.workload, 3) / 1000,
                bench::MeasureAvgQueryNanos(full, b.workload, 3) / 1000);
  }
  std::printf("shape check: both components beat Flood; Tsunami <= both.\n");
}

void DrilldownB(const std::vector<Benchmark>& benches) {
  bench::PrintHeader(
      "Fig 12b: Optimizer comparison, one grid over the full space");
  CostWeights weights = CalibrateCostWeights();
  std::printf("calibrated cost weights: w0=%.0f ns/range, w1=%.2f ns/value\n",
              weights.w0, weights.w1);
  std::printf("%-10s %-9s %14s %12s %9s\n", "dataset", "method",
              "predicted (us)", "actual (us)", "error");
  struct MethodRow {
    const char* name;
    OptimizeMethod method;
  };
  const MethodRow kMethods[] = {
      {"GD", OptimizeMethod::kGd},
      {"BlackBox", OptimizeMethod::kBlackBox},
      {"AGD-NI", OptimizeMethod::kAgdNaiveInit},
      {"AGD", OptimizeMethod::kAgd},
  };
  std::vector<double> errors;
  for (const Benchmark& b : benches) {
    AgdOptions options = bench::BenchAgd();
    options.weights = weights;
    options.max_iters = 4;
    std::vector<uint32_t> all_rows(b.data.size());
    std::iota(all_rows.begin(), all_rows.end(), 0u);
    GridCostEvaluator eval(b.data, all_rows, b.workload,
                           options.max_sample_points,
                           options.max_sample_queries, options.seed);
    for (const MethodRow& m : kMethods) {
      GridPlan plan = OptimizeGridWithEvaluator(eval, m.method, options);
      // Build the planned grid and measure the real workload.
      std::vector<uint32_t> rows = all_rows;
      AugmentedGrid grid;
      AugmentedGrid::BuildOptions build_options;
      build_options.max_cells = options.max_cells;
      // Use the evaluator's selectivity order so the built grid picks the
      // same sort dimension the prediction assumed.
      build_options.selectivity_order = eval.selectivity_order();
      build_options.sort_dim = plan.sort_dim;
      grid.Build(b.data, &rows, plan.skeleton, plan.partitions,
                 build_options);
      ColumnStore store(b.data, rows);
      grid.Attach(&store, 0);
      Timer timer;
      int64_t sink = 0;
      for (int rep = 0; rep < 3; ++rep) {
        for (const Query& q : b.workload) {
          QueryResult r;
          grid.Execute(q, &r);
          sink += r.agg;
        }
      }
      double actual =
          timer.ElapsedNanos() / (3.0 * b.workload.size());
      if (sink < 0) continue;
      // Predicted time over the full workload under the cost model.
      double predicted = 0.0;
      for (const Query& q : b.workload) {
        predicted += eval.PredictQueryNanos(plan.skeleton, plan.partitions,
                                            weights, q, plan.sort_dim);
      }
      predicted /= static_cast<double>(b.workload.size());
      double err = actual > 0 ? std::abs(predicted - actual) / actual : 0.0;
      errors.push_back(err);
      std::printf("%-10s %-9s %14.1f %12.1f %8.0f%%\n", b.name.c_str(),
                  m.name, predicted / 1000, actual / 1000, err * 100);
    }
  }
  double avg_err = 0.0;
  for (double e : errors) avg_err += e;
  if (!errors.empty()) avg_err /= errors.size();
  std::printf("average cost-model error: %.0f%% (paper: 15%%)\n",
              avg_err * 100);
  std::printf(
      "shape check: gradient-descent variants beat BlackBox; AGD finds\n"
      "low-cost grids even from the naive initialization (AGD-NI).\n");
}

}  // namespace
}  // namespace tsunami

int main() {
  using namespace tsunami;
  std::vector<Benchmark> benches = MakeAllBenchmarks(RowsFromEnv(200000));
  DrilldownA(benches);
  DrilldownB(benches);
  return 0;
}
