// Reproduces Fig. 7: average query time / throughput of Tsunami vs Flood vs
// the optimally-tuned non-learned indexes on all four datasets. The paper's
// shape: Tsunami fastest everywhere, up to ~6x over Flood and ~11x over the
// best non-learned index.
//
// Workloads are driven through the batch API (one ExecuteBatch per repeat,
// scans shared across the pool) so throughput reflects the serving path; a
// per-query Execute column keeps the legacy dispatch comparable.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);
  ThreadPool pool(ThreadPool::DefaultThreads() > 1
                      ? ThreadPool::DefaultThreads()
                      : 0);
  bench::PrintHeader("Fig 7: Query throughput (higher is better)");
  for (const Benchmark& b : MakeAllBenchmarks(rows)) {
    std::printf("\n%s (%lld rows, %zu queries)\n", b.name.c_str(),
                static_cast<long long>(b.data.size()), b.workload.size());
    std::printf("  %-12s %14s %14s %14s %10s %12s\n", "index",
                "batch query(us)", "queries/sec", "per-query(us)", "vs Flood",
                "scan/query");
    std::vector<bench::BuiltIndex> built = bench::BuildAllIndexes(b);
    const int kReps = 3;
    double flood_nanos = 0.0;
    for (const auto& bi : built) {
      if (bi.name == "Flood") {
        ExecContext warm(&pool);
        flood_nanos = bench::MeasureAvgQueryNanosBatch(*bi.index, b.workload,
                                                       warm, kReps);
      }
    }
    for (const auto& bi : built) {
      ExecContext ctx(&pool);
      double nanos = bench::MeasureAvgQueryNanosBatch(*bi.index, b.workload,
                                                      ctx, kReps);
      double serial_nanos = bench::MeasureAvgQueryNanos(*bi.index, b.workload);
      int64_t scanned = ctx.stats.scanned / kReps;  // Stats add per repeat.
      std::printf("  %-12s %14.1f %14.0f %14.1f %9.2fx %12lld\n",
                  bi.name.c_str(), nanos / 1000.0, bench::ThroughputQps(nanos),
                  serial_nanos / 1000.0,
                  flood_nanos > 0 ? flood_nanos / nanos : 0.0,
                  static_cast<long long>(scanned /
                                         static_cast<int64_t>(
                                             b.workload.size())));
    }
  }
  std::printf(
      "\nshape check: Tsunami fastest on every dataset; learned indexes\n"
      "(Flood, Tsunami) well ahead of the tuned non-learned baselines.\n");
  return 0;
}
