// Reproduces Fig. 8: index structure size (excluding the data itself) for
// every index on every dataset. Paper shape: Tsunami up to 8x smaller than
// Flood and 7-170x smaller than the fastest tuned non-learned index.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);
  bench::PrintHeader("Fig 8: Index size (KiB; data columns excluded)");
  std::vector<Benchmark> benches = MakeAllBenchmarks(rows);
  std::printf("%-12s", "index");
  for (const Benchmark& b : benches) std::printf(" %10s", b.name.c_str());
  std::printf("\n");
  std::vector<std::vector<bench::BuiltIndex>> all;
  for (const Benchmark& b : benches) {
    all.push_back(bench::BuildAllIndexes(b, /*include_full_scan=*/false));
  }
  for (size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-12s", all[0][i].name.c_str());
    for (size_t d = 0; d < benches.size(); ++d) {
      std::printf(" %10.1f", all[d][i].index->IndexSizeBytes() / 1024.0);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "data size");
  for (const Benchmark& b : benches) {
    std::printf(" %10.1f",
                static_cast<double>(b.data.size()) * b.data.dims() *
                    sizeof(Value) / 1024.0);
  }
  std::printf(
      "\n\nshape check: learned grids are far smaller than the page-based\n"
      "baselines; Tsunami's lookup tables stay comparable to or smaller\n"
      "than Flood's despite the extra Grid Tree.\n");
  return 0;
}
