// Reproduces Fig. 9 — adaptability — as a *live* system instead of an
// offline rebuild: (a) the midnight workload shift on TPC-H happens under
// concurrent load. A writer thread ingests rows throughout, dashboard
// queries keep flowing through the QueryService, and the re-organization
// for the shifted workload is requested while both run: the grid rebuild
// happens off to the side and swaps in via the epoch-snapshot mechanism
// (src/ingest/), so the serving path is never blocked — the cost of
// adapting shows up only as background CPU, not as a serving outage. The
// bench measures query p50/p99 in four phases (optimized, shifted-degraded,
// shifted *during* the reorg, recovered), the ingest rate sustained
// throughout, the reorg wall time, and the epoch retirement lag, and emits
// a provenance-stamped `concurrent_shift` record (hand-merged into
// BENCH_query_service.json, which `bench_micro --overload` owns).
// (b) keeps the paper's index-creation-time breakdown (sort vs optimize).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/ingest/ingest_store.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace {

struct PhaseLatencies {
  std::vector<double> seconds;  // Worker-stamped completion latencies.
  double p50_us() const { return Percentile(seconds, 50) * 1e6; }
  double p99_us() const { return Percentile(seconds, 99) * 1e6; }
};

/// Closed-loop: `num_queries` through the service, one at a time. Only
/// completed queries contribute latencies.
PhaseLatencies DriveQueries(QueryService& service, const Workload& workload,
                            int num_queries) {
  PhaseLatencies out;
  int64_t sink = 0;
  for (int i = 0; i < num_queries; ++i) {
    const Query& q = workload[static_cast<size_t>(i) % workload.size()];
    AwaitInfo info;
    sink += service.Await(service.Submit(q), &info).agg;
    if (info.outcome == QueryOutcome::kCompleted) {
      out.seconds.push_back(info.latency_seconds);
    }
  }
  if (sink == INT64_MIN) std::fprintf(stderr, "impossible\n");
  return out;
}

void RunConcurrentShift(int64_t rows) {
  bench::PrintHeader(
      "Fig 9a: workload shift on TPC-H at 'midnight' — under live load");
  Benchmark b = MakeTpchBenchmark(rows);
  Workload shifted = MakeTpchShiftedWorkload(b.data);

  ingest::IngestOptions iopt;
  iopt.index = bench::BenchTsunami(rows);
  // Folds run continuously under load here (not once, offline): scale the
  // optimizer's sampling so one fold is sub-second at laptop scale, and
  // fold every ~32k ingested rows instead of every chunk roll.
  iopt.index.sample_rows = 20000;
  iopt.index.agd.max_sample_points = 1024;
  iopt.index.agd.max_iters = 2;
  iopt.index.agd.max_cells = 1 << 16;
  iopt.chunk_capacity = 8 * kScanBlockRows;
  iopt.compact_min_chunks = 4;
  iopt.background_compaction = true;
  iopt.compact_poll_ms = 5;
  ingest::IngestStore store(b.data, b.workload, iopt);
  QueryService service(&store);
  store.AddPublishListener(
      [&service, &store](uint64_t) { service.plan_cache().InvalidateIndex(store); });

  // The writer: a steady trickle of in-domain rows (recycled base rows) for
  // the whole run, so every phase below is measured *under ingest*.
  std::atomic<bool> ingest_stop{false};
  std::atomic<int64_t> ingested{0};
  Timer ingest_timer;
  std::thread writer([&] {
    const int dims = b.data.dims();
    const int64_t n = b.data.size();
    // ~16k rows/s: brisk enough that every phase is genuinely under
    // ingest, slow enough that background folds keep up on small hosts.
    std::vector<std::vector<Value>> batch(64, std::vector<Value>(dims));
    int64_t cursor = 0;
    while (!ingest_stop.load(std::memory_order_acquire)) {
      for (auto& row : batch) {
        for (int d = 0; d < dims; ++d) row[static_cast<size_t>(d)] =
            b.data.at(cursor % n, d);
        ++cursor;
      }
      ingested.fetch_add(store.InsertBatch(batch),
                         std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  });

  const int kPhaseQueries = static_cast<int>(b.workload.size());

  // Phase 1 — optimized: the layout matches the workload.
  PhaseLatencies old_lat = DriveQueries(service, b.workload, kPhaseQueries);
  // Phase 2 — midnight: traffic shifts, layout is now wrong. This is also
  // the *quiesced* comparator for phase 3: same layout, no reorg running.
  PhaseLatencies shift_lat = DriveQueries(service, shifted, kPhaseQueries);

  // Phase 3 — adapt under load: request the reorganization and keep
  // serving the shifted traffic while the grid rebuilds off to the side.
  // The compactor runs niced (IngestOptions::background_nice), so on a
  // saturated host the fold mostly soaks idle cycles: the during-reorg
  // window is a fixed query count (guaranteed to overlap the rebuild),
  // and any remaining rebuild drains once the burst ends — reorg_seconds
  // includes both, making the stretched adaptation time visible.
  const int64_t reorgs_before = store.stats().reorgs;
  Timer reorg_timer;
  store.RequestReorganize(shifted);
  PhaseLatencies during_lat =
      DriveQueries(service, shifted, 4 * kPhaseQueries);
  while (store.stats().reorgs == reorgs_before &&
         reorg_timer.ElapsedSeconds() < 300.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double reorg_seconds = reorg_timer.ElapsedSeconds();

  // Phase 4 — recovered: the new layout serves the new workload.
  PhaseLatencies rec_lat = DriveQueries(service, shifted, kPhaseQueries);

  ingest_stop.store(true, std::memory_order_release);
  writer.join();
  // Join the compactor before `service` (declared after `store`, destroyed
  // first) dies: a fold landing during teardown would notify the publish
  // listener, which touches the service's plan cache.
  store.StopBackground();
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  const double ingest_rate =
      ingest_seconds > 0 ? static_cast<double>(ingested.load()) / ingest_seconds
                         : 0.0;
  const ingest::IngestStore::Stats st = store.stats();

  std::printf("%-28s %12s %12s %8s\n", "phase", "p50 (us)", "p99 (us)",
              "queries");
  auto print_phase = [](const char* name, const PhaseLatencies& lat) {
    std::printf("%-28s %12.1f %12.1f %8zu\n", name, lat.p50_us(),
                lat.p99_us(), lat.seconds.size());
  };
  print_phase("optimized (old workload)", old_lat);
  print_phase("shifted, pre-reorg", shift_lat);
  print_phase("shifted, DURING reorg", during_lat);
  print_phase("recovered (new layout)", rec_lat);
  const double p99_ratio =
      shift_lat.p99_us() > 0 ? during_lat.p99_us() / shift_lat.p99_us() : 0.0;
  std::printf(
      "reorg: %.2fs wall under load; during-reorg p99 is %.2fx the quiesced\n"
      "same-layout p99 (target: <2x — the rebuild must cost CPU, not locks).\n"
      "ingest: %lld rows at %.0f rows/s across all phases; store published\n"
      "v%llu with max epoch retirement lag %llu.\n",
      reorg_seconds, p99_ratio, static_cast<long long>(ingested.load()),
      ingest_rate, static_cast<unsigned long long>(st.version),
      static_cast<unsigned long long>(st.epochs.max_retire_lag));
  std::printf(
      "shape check: shifted traffic degrades on the old layout, keeps being\n"
      "answered (never blocked) while the grid rebuilds, and recovers once\n"
      "the new snapshot swaps in.\n");

  std::vector<std::string> records;
  records.push_back(
      bench::EnvRecord("concurrent_shift", SimdTierName(DetectSimdTier()),
                       ThreadPool::DefaultThreads(), /*batch_size=*/1)
          .Int("rows", rows)
          .Num("old_p50_us", old_lat.p50_us())
          .Num("old_p99_us", old_lat.p99_us())
          .Num("shifted_p50_us", shift_lat.p50_us())
          .Num("shifted_p99_us", shift_lat.p99_us())
          .Num("during_reorg_p50_us", during_lat.p50_us())
          .Num("during_reorg_p99_us", during_lat.p99_us())
          .Num("recovered_p50_us", rec_lat.p50_us())
          .Num("recovered_p99_us", rec_lat.p99_us())
          .Num("during_over_quiesced_p99", p99_ratio)
          .Int("during_reorg_queries", during_lat.seconds.size())
          .Num("reorg_seconds", reorg_seconds)
          .Int("ingest_rows", ingested.load())
          .Num("ingest_rows_per_sec", ingest_rate)
          .Int("store_version", st.version)
          .Int("epoch_max_retire_lag", st.epochs.max_retire_lag)
          .Int("rng_seed", 4)  // MakeTpchBenchmark's default generator seed.
          .Finish());
  if (bench::WriteBenchJson("BENCH_concurrent_shift.json", "query_service",
                            records)) {
    std::printf(
        "wrote BENCH_concurrent_shift.json (hand-merge into the committed\n"
        "BENCH_query_service.json, which bench_micro --overload owns)\n");
  }
}

}  // namespace
}  // namespace tsunami

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);

  // (a) Workload shift under concurrent ingest + serving.
  RunConcurrentShift(rows);

  // (b) Index creation time, sort vs optimization.
  bench::PrintHeader("Fig 9b: Index creation time (seconds)");
  std::printf("%-10s %-12s %10s %10s %10s\n", "dataset", "index", "sort",
              "optimize", "total");
  for (const Benchmark& bench_data : MakeAllBenchmarks(rows)) {
    std::vector<bench::BuiltIndex> built =
        bench::BuildAllIndexes(bench_data, /*include_full_scan=*/false);
    for (const auto& bi : built) {
      double sort_s = bi.build_seconds, opt_s = 0.0;
      if (auto* tsunami_index =
              dynamic_cast<const TsunamiIndex*>(bi.index.get())) {
        sort_s = tsunami_index->stats().sort_seconds;
        opt_s = tsunami_index->stats().optimize_seconds;
      } else if (auto* flood = dynamic_cast<const FloodIndex*>(bi.index.get())) {
        sort_s = flood->sort_seconds();
        opt_s = flood->optimize_seconds();
      }
      std::printf("%-10s %-12s %10.2f %10.2f %10.2f\n",
                  bench_data.name.c_str(), bi.name.c_str(), sort_s, opt_s,
                  sort_s + opt_s);
    }
  }
  std::printf(
      "shape check: learned indexes pay an optimization phase on top of\n"
      "sorting; total creation time stays modest.\n");
  return 0;
}
