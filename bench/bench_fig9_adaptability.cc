// Reproduces Fig. 9: (a) the midnight workload shift on TPC-H — query time
// before the shift, degraded performance on the new workload, and recovery
// after Tsunami re-optimizes and re-organizes; (b) index creation time
// broken into data-sorting and optimization phases.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);

  // (a) Workload shift.
  bench::PrintHeader("Fig 9a: Workload shift on TPC-H at 'midnight'");
  Benchmark b = MakeTpchBenchmark(rows);
  Workload shifted = MakeTpchShiftedWorkload(b.data);
  TsunamiIndex before(b.data, b.workload, bench::BenchTsunami(rows));
  FloodOptions flood_options;
  flood_options.agd = bench::BenchAgd();
  FloodIndex flood_before(b.data, b.workload, flood_options);

  double t_old = bench::MeasureAvgQueryNanos(before, b.workload, 3);
  double t_shift = bench::MeasureAvgQueryNanos(before, shifted, 3);
  double f_old = bench::MeasureAvgQueryNanos(flood_before, b.workload, 3);
  double f_shift = bench::MeasureAvgQueryNanos(flood_before, shifted, 3);

  Timer reopt;
  TsunamiIndex after(b.data, shifted, bench::BenchTsunami(rows));
  double reopt_seconds = reopt.ElapsedSeconds();
  Timer flood_reopt;
  FloodIndex flood_after(b.data, shifted, flood_options);
  double flood_reopt_seconds = flood_reopt.ElapsedSeconds();
  double t_after = bench::MeasureAvgQueryNanos(after, shifted, 3);
  double f_after = bench::MeasureAvgQueryNanos(flood_after, shifted, 3);

  std::printf("%-10s %16s %16s %16s %18s\n", "index", "old wkld (us)",
              "shifted (us)", "re-optimized (us)", "re-opt time (s)");
  std::printf("%-10s %16.1f %16.1f %16.1f %18.2f\n", "Tsunami",
              t_old / 1000, t_shift / 1000, t_after / 1000, reopt_seconds);
  std::printf("%-10s %16.1f %16.1f %16.1f %18.2f\n", "Flood",
              f_old / 1000, f_shift / 1000, f_after / 1000,
              flood_reopt_seconds);
  std::printf(
      "shape check: performance degrades on the shifted workload and is\n"
      "restored after re-optimization; re-organization takes seconds at\n"
      "this scale (paper: <4 min at 300M rows).\n");

  // (b) Index creation time, sort vs optimization.
  bench::PrintHeader("Fig 9b: Index creation time (seconds)");
  std::printf("%-10s %-12s %10s %10s %10s\n", "dataset", "index", "sort",
              "optimize", "total");
  for (const Benchmark& bench_data : MakeAllBenchmarks(rows)) {
    std::vector<bench::BuiltIndex> built =
        bench::BuildAllIndexes(bench_data, /*include_full_scan=*/false);
    for (const auto& bi : built) {
      double sort_s = bi.build_seconds, opt_s = 0.0;
      if (auto* tsunami_index =
              dynamic_cast<const TsunamiIndex*>(bi.index.get())) {
        sort_s = tsunami_index->stats().sort_seconds;
        opt_s = tsunami_index->stats().optimize_seconds;
      } else if (auto* flood = dynamic_cast<const FloodIndex*>(bi.index.get())) {
        sort_s = flood->sort_seconds();
        opt_s = flood->optimize_seconds();
      }
      std::printf("%-10s %-12s %10.2f %10.2f %10.2f\n",
                  bench_data.name.c_str(), bi.name.c_str(), sort_s, opt_s,
                  sort_s + opt_s);
    }
  }
  std::printf(
      "shape check: learned indexes pay an optimization phase on top of\n"
      "sorting; total creation time stays modest.\n");
  return 0;
}
