// Micro-benchmarks (google-benchmark) for the core primitives, including
// the two ablations DESIGN.md calls out: the exact-range scan skip and the
// sort-dimension binary-search refinement. main() additionally runs the
// scalar-vs-vectorized scan-kernel A/B sweep and writes
// BENCH_scan_kernel.json before the registered benchmarks.
#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/zorder.h"
#include "src/cdf/cdf_model.h"
#include "src/common/emd.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/core/augmented_grid.h"
#include "src/core/periodic.h"
#include "src/core/skew.h"
#include "src/datasets/synthetic.h"
#include "src/flood/flood.h"
#include "src/query/bool_expr.h"
#include "src/query/router.h"
#include "src/serve/query_service.h"
#include "src/storage/column_store.h"
#include "src/storage/scan_kernel.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace {

const Benchmark& SharedBench() {
  static const Benchmark* bench =
      new Benchmark(MakeScalingBenchmark(8, 100000, true, 201));
  return *bench;
}

void BM_ColumnScanChecked(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/false, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanChecked);

// Ablation: the exact-range scan optimization (§6.1) vs checked scanning.
void BM_ColumnScanExact(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/true, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanExact);

void BM_EquiDepthCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = EquiDepthCdf::Build(column, 512);
  Rng rng(202);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PartitionOf(rng.UniformValue(0, 1 << 30), 64));
  }
}
BENCHMARK(BM_EquiDepthCdfLookup);

void BM_RmiCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = RmiCdf::Build(column, 128);
  Rng rng(203);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Cdf(rng.UniformValue(0, 1 << 30)));
  }
}
BENCHMARK(BM_RmiCdfLookup);

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(204);
  std::vector<uint32_t> coords(8);
  for (auto& c : coords) c = static_cast<uint32_t>(rng.NextBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(coords, 8));
  }
}
BENCHMARK(BM_MortonEncode);

void BM_EmdSkew(benchmark::State& state) {
  Rng rng(205);
  std::vector<double> pdf(128);
  for (double& m : pdf) m = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkewOfMass(pdf));
  }
}
BENCHMARK(BM_EmdSkew);

// Grid query execution with and without sort-dimension refinement: the
// refined grid binary-searches runs, the unrefined one scans whole runs.
void GridQueryBench(benchmark::State& state, bool refine) {
  const Benchmark& b = SharedBench();
  std::vector<uint32_t> rows(b.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  std::vector<int> partitions(8, 8);
  const Workload& workload = b.workload;
  AugmentedGrid::BuildOptions options;
  if (refine) {
    // Sort by the workload's most selective dimension (the smallest filter
    // widths are on dim 0), so binary-search refinement narrows runs.
    options.sort_dim = 0;
  } else {
    // Sort by the least selective dimension: refinement buys nothing.
    options.sort_dim = 7;
  }
  grid.Build(b.data, &rows, Skeleton::AllIndependent(8), partitions, options);
  ColumnStore store(b.data, rows);
  grid.Attach(&store, 0);
  size_t i = 0;
  for (auto _ : state) {
    QueryResult r;
    grid.Execute(workload[i % workload.size()], &r);
    ++i;
    benchmark::DoNotOptimize(r.agg);
  }
}
void BM_GridQueryRefined(benchmark::State& state) {
  GridQueryBench(state, true);
}
void BM_GridQueryUnrefined(benchmark::State& state) {
  GridQueryBench(state, false);
}
BENCHMARK(BM_GridQueryRefined);
BENCHMARK(BM_GridQueryUnrefined);

void BM_FloodQuery(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  FloodOptions options;
  options.agd.max_sample_points = 1024;
  options.agd.max_sample_queries = 32;
  static const FloodIndex* index = new FloodIndex(b.data, b.workload, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Execute(b.workload[i % b.workload.size()]).agg);
    ++i;
  }
}
BENCHMARK(BM_FloodQuery);

// Disjunctive-filter machinery: normalization cost per OR arm count.
// IN-list shape (all arms over one dimension) — the common case; cost is
// quadratic in arms (each new box is subtracted against accepted ones).
void BM_DisjointBoxNormalize(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{0, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalize)->Arg(2)->Arg(8)->Arg(32);

// Cross-dimension ORs fragment combinatorially (each slab splits against
// every other-dimension slab); the NormalizeLimits cap bounds the damage.
// Kept small here — this is the adversarial shape, not the common one.
void BM_DisjointBoxNormalizeCrossDim(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{a % 4, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalizeCrossDim)->Arg(4)->Arg(8);

// Phase arithmetic + period scoring (Sec 8 periodic support).
void BM_ScorePeriods(benchmark::State& state) {
  Rng rng(6);
  Dataset data(2, {});
  for (int i = 0; i < 50000; ++i) {
    Value t = rng.UniformValue(0, 1440 * 90);
    data.AppendRow({t, (t % 1440) / 3 + rng.UniformValue(-20, 20)});
  }
  std::vector<Value> candidates = {60, 720, 1440, 10080};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScorePeriods(data, 0, 1, candidates).size());
  }
}
BENCHMARK(BM_ScorePeriods);

// Route() dispatch overhead (embed + nearest-type match).
void BM_RouterDispatch(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  static const FullScanIndex* full = new FullScanIndex(b.data);
  static const AccessPathRouter* router =
      new AccessPathRouter({full}, b.data, b.workload);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&router->Route(b.workload[i % b.workload.size()]));
    ++i;
  }
}
BENCHMARK(BM_RouterDispatch);

// --- Scan-kernel A/B/C: scalar vs vectorized vs SIMD over selectivities --
//
// Clustered data (sorted by dim 0, the layout every clustering index
// produces) so the zone maps see the locality they were built for. Two
// shapes: full-store scans at swept selectivities (the "large range" case
// where the kernel must win big) and short ranges at the sizes grid cells
// produce after refinement (where it must at least not lose). The C column
// is the SIMD tier at the best runtime-dispatched instruction set.

Dataset MakeClusteredData(int64_t rows, int dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < dims; ++d) row[d] = rng.UniformValue(0, 1 << 20);
    data.AppendRow(row);
  }
  std::vector<int64_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return data.at(a, 0) < data.at(b, 0);
  });
  Dataset sorted(dims, {});
  sorted.Reserve(rows);
  for (int64_t i : order) {
    for (int d = 0; d < dims; ++d) row[d] = data.at(i, d);
    sorted.AppendRow(row);
  }
  return sorted;
}

// Best-of-`reps` seconds for scanning `tasks` in `mode` at `tier`.
double TimeScan(const ColumnStore& store, std::span<const RangeTask> tasks,
                const Query& query, ScanMode mode, int reps,
                SimdTier tier = SimdTier::kAuto) {
  double best = 0.0;
  int64_t sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    QueryResult r = InitResult(query);
    store.ScanRanges(tasks, query, &r, ScanOptions{mode, tier});
    double seconds = timer.ElapsedSeconds();
    sink += r.agg;
    if (rep == 0 || seconds < best) best = seconds;
  }
  if (sink == INT64_MIN) std::printf("impossible\n");
  return best;
}

void RunScanKernelAB(SimdTier forced_tier,
                     std::vector<std::string>* records) {
  const char* tier =
      SimdTierName(forced_tier == SimdTier::kAuto ? DetectSimdTier()
                                                  : forced_tier);
  bench::PrintHeader("scan kernel A/B/C (scalar vs vectorized vs SIMD)");
  std::printf("SIMD tier: %s%s\n", tier,
              forced_tier == SimdTier::kAuto ? "" : " (forced via --simd)");
  const int64_t kRows = 1 << 20;
  const int kDims = 4;
  Dataset data = MakeClusteredData(kRows, kDims, 401);
  ColumnStore store(data);
  Rng rng(402);

  // Full-range scans over swept selectivities: a filter on the clustered
  // dimension sized to the target fraction plus a 50% filter on dim 1.
  std::printf("%-22s %13s %13s %13s %10s %10s\n", "shape", "scalar ns/row",
              "vector ns/row", "simd ns/row", "vec/scal", "simd/vec");
  for (double sel : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    Query q;
    Value width = static_cast<Value>(sel * (1 << 20));
    Value lo = rng.UniformValue(0, (1 << 20) - width);
    q.filters.push_back(Predicate{0, lo, lo + width});
    q.filters.push_back(Predicate{1, 0, 1 << 19});
    q.agg = AggKind::kSum;
    q.agg_dim = 2;
    RangeTask task{0, store.size(), false};
    double scalar = TimeScan(store, {&task, 1}, q, ScanMode::kScalar, 5);
    double vec = TimeScan(store, {&task, 1}, q, ScanMode::kVectorized, 5);
    double simd =
        TimeScan(store, {&task, 1}, q, ScanMode::kSimd, 5, forced_tier);
    double speedup = vec > 0 ? scalar / vec : 0.0;
    double simd_vs_vec = simd > 0 ? vec / simd : 0.0;
    std::printf("full sel=%-13g %13.3f %13.3f %13.3f %9.2fx %9.2fx\n", sel,
                scalar * 1e9 / kRows, vec * 1e9 / kRows, simd * 1e9 / kRows,
                speedup, simd_vs_vec);
    records->push_back(bench::EnvRecord("full_range", tier, /*threads=*/1,
                                        /*batch_size=*/1)
                           .Num("selectivity", sel)
                           .Int("rows_per_scan", kRows)
                           .Num("scalar_ns_per_row", scalar * 1e9 / kRows)
                           .Num("vector_ns_per_row", vec * 1e9 / kRows)
                           .Num("simd_ns_per_row", simd * 1e9 / kRows)
                           .Num("speedup", speedup)
                           .Num("simd_speedup_vs_vector", simd_vs_vec)
                           .Num("simd_speedup_vs_scalar",
                                simd > 0 ? scalar / simd : 0.0)
                           .Finish());
  }

  // Short per-cell ranges: the sizes indexes hand the kernel after grid
  // refinement. Random offsets, moderately selective residual filters —
  // the per-block predicate passes where compare+compress has to earn its
  // keep (no zone-map skipping to hide behind).
  for (int64_t range_len : {256, 1024, 4096}) {
    Query q;
    q.filters.push_back(Predicate{1, 0, 1 << 19});
    q.filters.push_back(Predicate{2, 0, 3 << 18});
    q.agg = AggKind::kCount;
    const int kTasks = 512;
    std::vector<RangeTask> tasks;
    for (int t = 0; t < kTasks; ++t) {
      int64_t begin = rng.UniformValue(0, kRows - range_len);
      tasks.push_back(RangeTask{begin, begin + range_len, false});
    }
    int64_t scanned = range_len * kTasks;
    double scalar = TimeScan(store, tasks, q, ScanMode::kScalar, 5);
    double vec = TimeScan(store, tasks, q, ScanMode::kVectorized, 5);
    double simd = TimeScan(store, tasks, q, ScanMode::kSimd, 5, forced_tier);
    double speedup = vec > 0 ? scalar / vec : 0.0;
    double simd_vs_vec = simd > 0 ? vec / simd : 0.0;
    std::printf("cell rows=%-12lld %13.3f %13.3f %13.3f %9.2fx %9.2fx\n",
                static_cast<long long>(range_len), scalar * 1e9 / scanned,
                vec * 1e9 / scanned, simd * 1e9 / scanned, speedup,
                simd_vs_vec);
    records->push_back(bench::EnvRecord("per_cell_range", tier, /*threads=*/1,
                                        /*batch_size=*/kTasks)
                           .Int("rows_per_scan", range_len)
                           .Int("num_ranges", kTasks)
                           .Num("scalar_ns_per_row", scalar * 1e9 / scanned)
                           .Num("vector_ns_per_row", vec * 1e9 / scanned)
                           .Num("simd_ns_per_row", simd * 1e9 / scanned)
                           .Num("speedup", speedup)
                           .Num("simd_speedup_vs_vector", simd_vs_vec)
                           .Num("simd_speedup_vs_scalar",
                                simd > 0 ? scalar / simd : 0.0)
                           .Finish());
  }
}

// --- Encoded column blocks: raw vs FOR-narrowed code scans -----------------
//
// A/B for the compressed-execution layer: the same data built into a
// raw-block store (encode=false) and an encoded store (8/16/32-bit codes,
// chosen per block), scanned with identical queries per tier x code width
// x selectivity. The filter and aggregate columns carry block-local ranges
// sized to the target width and spanning every block (so zone maps neither
// skip nor cover blocks — the measurement isolates the compare+compress
// passes, which is where narrow lanes pay). Single-threaded throughput on
// this 1-core container; hw_threads and first-pass bytes_scanned are
// stamped with each record.
void RunEncodingAB(std::vector<std::string>* records) {
  bench::PrintHeader("encoded blocks (raw vs 8/16/32-bit code scans)");
  const int64_t kRows = 1 << 21;
  const int kDims = 3;
  const int64_t hw_threads = ThreadPool::DefaultThreads();
  struct WidthCase {
    const char* name;
    int bits;
    Value range;  // Block-local value range -> code width.
  };
  const WidthCase kCases[] = {
      {"u8", 8, 250}, {"u16", 16, 60000}, {"u32", 32, 1 << 20}};
  std::vector<SimdTier> tiers;
  for (SimdTier tier :
       {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kNeon}) {
    if (SimdTierSupported(tier)) tiers.push_back(tier);
  }
  tiers.push_back(SimdTier::kNone);
  std::printf("%-6s %-8s %-6s %14s %14s %10s\n", "width", "tier", "sel",
              "raw ns/row", "coded ns/row", "speedup");
  for (const WidthCase& wc : kCases) {
    Rng rng(501);
    Dataset data(kDims, {});
    data.Reserve(kRows);
    std::vector<Value> row(kDims);
    for (int64_t i = 0; i < kRows; ++i) {
      // Every block spans [base, base + range] on every dimension: the
      // codec narrows to exactly wc.bits, and any interior filter is
      // checked per row in every block.
      for (int d = 0; d < kDims; ++d) {
        row[d] = 1000 + rng.UniformValue(0, wc.range);
      }
      data.AppendRow(row);
    }
    ColumnStore raw(data, /*encode=*/false);
    ColumnStore coded(data, /*encode=*/true);
    int64_t widths[4] = {0, 0, 0, 0};
    coded.encoded(0).WidthHistogram(widths);
    const int64_t narrow_blocks =
        widths[0] + widths[1] + widths[2];  // Sanity: all but maybe none.
    for (SimdTier tier : tiers) {
      const char* tier_name = SimdTierName(tier);
      for (double sel : {0.01, 0.1, 0.5}) {
        Query q;
        Value width = std::max<Value>(1, static_cast<Value>(sel * wc.range));
        q.filters.push_back(
            Predicate{0, 1000 + wc.range / 4, 1000 + wc.range / 4 + width});
        q.agg = AggKind::kSum;
        q.agg_dim = 1;
        RangeTask task{0, raw.size(), false};
        double t_raw =
            TimeScan(raw, {&task, 1}, q, ScanMode::kSimd, 5, tier);
        double t_coded =
            TimeScan(coded, {&task, 1}, q, ScanMode::kSimd, 5, tier);
        double speedup = t_coded > 0 ? t_raw / t_coded : 0.0;
        std::printf("%-6s %-8s %-6g %14.3f %14.3f %9.2fx\n", wc.name,
                    tier_name, sel, t_raw * 1e9 / kRows,
                    t_coded * 1e9 / kRows, speedup);
        records->push_back(
            bench::EnvRecord("encoded_scan", tier_name, /*threads=*/1,
                             /*batch_size=*/1)
                .Int("hw_threads", hw_threads)
                .Int("code_width_bits", wc.bits)
                .Num("selectivity", sel)
                .Int("rows_per_scan", kRows)
                // First-pass bytes for the filter column: what the
                // compare+compress pass actually streams.
                .Int("bytes_scanned_raw",
                     kRows * static_cast<int64_t>(sizeof(Value)))
                .Int("bytes_scanned_encoded", kRows * (wc.bits / 8))
                .Int("narrow_blocks", narrow_blocks)
                .Num("raw_ns_per_row", t_raw * 1e9 / kRows)
                .Num("encoded_ns_per_row", t_coded * 1e9 / kRows)
                .Num("speedup", speedup)
                .Finish());
      }
    }
  }
}

// --- Batch API throughput: prepared plans vs per-query dispatch ------------
//
// Fig7-style serving shape: Tsunami over the shared 8-d benchmark, the
// workload arriving as batches that recur (the steady state an accelerator
// front-end sees). Per-query dispatch re-plans inside Execute() on every
// recurrence; the batch API prepares each batch once and replays the plans.
// Both sides run inline at the auto-dispatched tier — no pool, no forced
// tier — so the recorded speedup isolates the amortization the API adds and
// stays comparable across machines (the pool's inter-query parallelism is a
// separate, additive win).
void RunBatchApiThroughput(std::vector<std::string>* records) {
  bench::PrintHeader("batch API (prepared ExecutePlans vs per-query Execute)");
  const Benchmark& b = SharedBench();
  // Default build options: the production-shaped index (fully sampled
  // optimization), whose per-query planning cost is what batching amortizes.
  TsunamiIndex index(b.data, b.workload, TsunamiOptions());
  const char* tier = SimdTierName(DetectSimdTier());
  const int kReps = 8;  // Times each batch recurs.
  std::printf("%-12s %14s %14s %10s  (threads=1, tier=%s, reps=%d)\n",
              "batch size", "per-query us", "batch us", "speedup", tier,
              kReps);
  for (size_t batch_size : {size_t{16}, size_t{64}, size_t{256}}) {
    // Stride-sample the workload so every batch size sees the same mix of
    // cheap and expensive queries.
    Workload batch;
    size_t take = std::min(batch_size, b.workload.size());
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(b.workload[i * b.workload.size() / take]);
    }
    // Best-of-5 for both paths, with one untimed warmup each, so a single
    // scheduler hiccup cannot decide the comparison.
    int64_t sink = 0;
    for (const Query& q : batch) sink += index.Execute(q).agg;
    double per_query_s = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      // Old API: one Execute per query, re-planned every recurrence.
      Timer timer;
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Query& q : batch) sink += index.Execute(q).agg;
      }
      double seconds = timer.ElapsedSeconds();
      if (trial == 0 || seconds < per_query_s) per_query_s = seconds;
    }
    // Batch API: prepare once, replay the plans each recurrence.
    ExecContext ctx;
    {
      std::vector<QueryResult> warm = index.ExecuteBatch(
          std::span<const Query>(batch.data(), batch.size()), ctx);
      sink += warm[0].agg;
    }
    double batch_s = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      Timer timer;
      std::vector<QueryPlan> plans;
      plans.reserve(batch.size());
      for (const Query& q : batch) plans.push_back(index.Prepare(q));
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<QueryResult> results = index.ExecutePlans(plans, ctx);
        sink += results[0].agg;
      }
      double seconds = timer.ElapsedSeconds();
      if (trial == 0 || seconds < batch_s) batch_s = seconds;
    }
    if (sink == INT64_MIN) std::printf("impossible\n");
    const double n = static_cast<double>(batch.size()) * kReps;
    double speedup = batch_s > 0 ? per_query_s / batch_s : 0.0;
    std::printf("%-12zu %14.2f %14.2f %9.2fx\n", batch.size(),
                per_query_s * 1e6 / n, batch_s * 1e6 / n, speedup);
    records->push_back(
        bench::EnvRecord("batch_api", tier, /*threads=*/1,
                         static_cast<int64_t>(batch.size()))
            .Int("reps", kReps)
            .Num("per_query_us", per_query_s * 1e6 / n)
            .Num("batch_us", batch_s * 1e6 / n)
            .Num("batch_qps", batch_s > 0 ? n / batch_s : 0.0)
            .Num("speedup", speedup)
            .Finish());
  }
}

// --- Serving path: plan-cache amortization + work-stealing skewed batch ---
//
// Two acceptance shapes for the QueryService redesign, both stamped into
// BENCH_scan_kernel.json:
//  * plan_cache: repeated ad-hoc traffic (a handful of recurring
//    rectangles) served cold (Prepare + ExecutePlan per arrival) vs via
//    the cache-hit path (CachedPlan + ExecutePlan) vs end-to-end
//    service.Run — the hit path must beat cold planning;
//  * skewed_batch: 1 giant region query + 63 needles at >= 4 threads,
//    PR-3 ExecuteBatch (across-query pool parallelism only) vs the
//    service's work-stealing chunks (across + within): per-batch p50/p99
//    wall time, plus per-needle completion latency — ExecuteBatch hands
//    every answer back only when the whole batch returns, the service
//    Awaits each needle as soon as its own (priority-boosted) chunks
//    finish instead of behind the region query.
void RunQueryServiceBench(std::vector<std::string>* records) {
  bench::PrintHeader("query service (plan cache + work-stealing)");
  const Benchmark& b = SharedBench();
  TsunamiIndex index(b.data, b.workload, TsunamiOptions());
  const char* tier = SimdTierName(DetectSimdTier());

  // --- Plan-cache amortization on repeated ad-hoc traffic. ---
  {
    // 24 recurring rectangles (stride-sampled), 16 recurrences each.
    Workload adhoc;
    const size_t kDistinct = 24;
    for (size_t i = 0; i < kDistinct; ++i) {
      adhoc.push_back(b.workload[i * b.workload.size() / kDistinct]);
    }
    const int kReps = 16;
    int64_t sink = 0;
    ExecContext inline_ctx;
    auto best_of = [&](auto&& body) {
      double best = 0.0;
      for (int trial = 0; trial < 5; ++trial) {
        Timer timer;
        body();
        double seconds = timer.ElapsedSeconds();
        if (trial == 0 || seconds < best) best = seconds;
      }
      return best;
    };
    // Warmup both paths once (touches columns, faults pages).
    for (const Query& q : adhoc) sink += index.Execute(q).agg;

    double cold_s = best_of([&] {
      // Cold serving: every arrival re-plans (the pre-cache front end).
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Query& q : adhoc) {
          QueryPlan plan = index.Prepare(q);
          sink += index.ExecutePlan(plan, inline_ctx).agg;
        }
      }
    });
    // Cache-hit serving: same traffic through the service's plan cache;
    // after the first round every arrival replays a cached plan.
    QueryService cache_service(&index, ServiceOptions{/*threads=*/0,
                                                      /*plan_cache_capacity=*/
                                                      1024,
                                                      /*chunk_rows=*/
                                                      16 * kScanBlockRows});
    double hit_s = best_of([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Query& q : adhoc) {
          std::shared_ptr<const QueryPlan> plan = cache_service.CachedPlan(q);
          sink += index.ExecutePlan(*plan, inline_ctx).agg;
        }
      }
    });
    // End-to-end async service at hardware threads, for the record.
    QueryService service(&index);
    double run_s = best_of([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Query& q : adhoc) sink += service.Run(q).agg;
      }
    });
    if (sink == INT64_MIN) std::printf("impossible\n");
    const double n = static_cast<double>(adhoc.size()) * kReps;
    double hit_rate = cache_service.plan_cache().stats().HitRate();
    std::printf(
        "plan cache:   cold %8.2f us/q   hit %8.2f us/q   (%.2fx, hit rate "
        "%.0f%%)   service.Run %8.2f us/q\n",
        cold_s * 1e6 / n, hit_s * 1e6 / n, hit_s > 0 ? cold_s / hit_s : 0.0,
        100.0 * hit_rate, run_s * 1e6 / n);
    records->push_back(
        bench::EnvRecord("service_plan_cache", tier, /*threads=*/1,
                         static_cast<int64_t>(adhoc.size()))
            .Int("reps", kReps)
            .Num("cold_prepare_us", cold_s * 1e6 / n)
            .Num("cache_hit_us", hit_s * 1e6 / n)
            // cold/hit are inline (the stamped threads=1); service.Run uses
            // the default service's own workers — attribute them.
            .Num("service_run_us", run_s * 1e6 / n)
            .Int("service_run_threads", service.scheduler().num_threads())
            .Num("speedup", hit_s > 0 ? cold_s / hit_s : 0.0)
            .Num("cache_hit_rate", hit_rate)
            .Int("rng_seed", 201)  // SharedBench workload generator.
            .Finish());
  }

  // --- Skewed batch: ExecuteBatch (PR-3) vs work-stealing service. ---
  //
  // The skew must be real: a 2M-row clustered table where the one region
  // query (inexact ~65% scan, 2 aggregates) dwarfs 63 needle queries on
  // the clustered dimension. Across-query parallelism alone serializes
  // behind the region query; the service's stolen chunks split it.
  const int64_t kRows = 1 << 21;
  Dataset big_data = MakeClusteredData(kRows, 4, 403);
  Rng rng(404);
  Workload opt_workload;
  for (int i = 0; i < 32; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, (1 << 20) - (1 << 14));
    q.filters.push_back(Predicate{0, lo, lo + (1 << 14)});
    opt_workload.push_back(q);
  }
  FloodOptions flood_options;
  flood_options.agd = bench::BenchAgd();
  FloodIndex big(big_data, opt_workload, flood_options);

  Workload batch;
  Query region;
  region.filters.push_back(Predicate{1, 0, 3 << 18});    // ~75%, unclustered
  region.filters.push_back(Predicate{2, 0, 900 << 10});  // ~88%, unclustered
  region.SetAggregates({{AggKind::kSum, 3}, {AggKind::kCount, 0}});
  batch.push_back(region);
  for (int i = 0; i < 63; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, (1 << 20) - (1 << 10));
    q.filters.push_back(Predicate{0, lo, lo + (1 << 10)});
    batch.push_back(q);
  }

  for (int threads : {4, ThreadPool::DefaultThreads()}) {
    if (threads < 4) continue;  // The claim is "at >= 4 threads".
    const int kBatches = 40;
    int64_t sink = 0;
    // PR-3 path: across-query pool parallelism, no intra-query stealing.
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    // Service path: every query decomposed into stealable chunks. Chunks
    // of 64 blocks: coarse enough that per-chunk bookkeeping is noise,
    // fine enough that a 2M-row query still splits ~32 ways.
    ServiceOptions service_options;
    service_options.threads = threads;
    service_options.chunk_rows = 64 * kScanBlockRows;
    QueryService service(&big, service_options);
    // Needles ride at priority 1: the serving API's head-of-line fix. Under
    // ExecuteBatch every needle's answer is available only when the whole
    // batch returns; the service completes each needle as soon as its own
    // chunks finish, jumping the region query's chunk backlog.
    SubmitOptions needle_options;
    needle_options.priority = 1;
    const std::span<const Query> needles(batch.data() + 1, batch.size() - 1);
    // One untimed warmup per path, then the paths measured in interleaved
    // reps (A, B, A, B, ...) so host drift hits both percentiles equally;
    // the idle path's threads sleep while the other runs.
    std::vector<double> batch_lat, service_lat;
    std::vector<double> batch_needle, service_needle;
    sink += big.ExecuteBatch(
                   std::span<const Query>(batch.data(), batch.size()), ctx)[0]
                .agg;
    {
      QueryService::Ticket region_ticket = service.Submit(batch[0]);
      for (QueryService::Ticket t :
           service.SubmitBatch(needles, needle_options)) {
        sink += service.Await(t).agg;
      }
      sink += service.Await(region_ticket).agg;
    }
    // Snapshot after the warmup so the stamped steal count covers exactly
    // the measured reps (the latency vectors exclude the warmup too).
    int64_t steals_before = service.scheduler().stats().steals;
    for (int rep = 0; rep < kBatches; ++rep) {
      {
        Timer timer;
        std::vector<QueryResult> results = big.ExecuteBatch(
            std::span<const Query>(batch.data(), batch.size()), ctx);
        double seconds = timer.ElapsedSeconds();
        batch_lat.push_back(seconds);
        // Results arrive together: each needle waits for the full batch.
        batch_needle.push_back(seconds);
        sink += results[0].agg;
      }
      {
        Timer timer;
        QueryService::Ticket region_ticket = service.Submit(batch[0]);
        std::vector<QueryService::Admission> tickets =
            service.SubmitBatch(needles, needle_options);
        for (QueryService::Ticket t : tickets) {
          // Worker-stamped completion latency: on a saturated host the
          // awaiting thread is descheduled behind the workers, so Await's
          // return time would overstate when the needle actually finished.
          AwaitInfo info;
          sink += service.Await(t, &info).agg;
          service_needle.push_back(info.latency_seconds);
        }
        sink += service.Await(region_ticket).agg;
        service_lat.push_back(timer.ElapsedSeconds());
      }
    }
    if (sink == INT64_MIN) std::printf("impossible\n");
    int64_t steals =
        service.scheduler().stats().steals - steals_before;
    double eb_p50 = Percentile(batch_lat, 50);
    double eb_p99 = Percentile(batch_lat, 99);
    double sv_p50 = Percentile(service_lat, 50);
    double sv_p99 = Percentile(service_lat, 99);
    double eb_needle_p50 = Percentile(batch_needle, 50);
    double sv_needle_p50 = Percentile(service_needle, 50);
    std::printf(
        "skewed batch: %d threads (%d hw cores)  ExecuteBatch p50 %8.2f us "
        "p99 %8.2f us  service p50 %8.2f us p99 %8.2f us  (p50 %.2fx, p99 "
        "%.2fx, %lld steals)\n"
        "  needle latency: ExecuteBatch p50 %8.2f us (head-of-line: waits "
        "for the region query)  service p50 %8.2f us  (%.1fx)\n",
        threads, ThreadPool::DefaultThreads(), eb_p50 * 1e6, eb_p99 * 1e6,
        sv_p50 * 1e6, sv_p99 * 1e6, sv_p50 > 0 ? eb_p50 / sv_p50 : 0.0,
        sv_p99 > 0 ? eb_p99 / sv_p99 : 0.0, static_cast<long long>(steals),
        eb_needle_p50 * 1e6, sv_needle_p50 * 1e6,
        sv_needle_p50 > 0 ? eb_needle_p50 / sv_needle_p50 : 0.0);
    if (ThreadPool::DefaultThreads() < threads) {
      std::printf(
        "  (host exposes %d core(s): no intra-batch parallelism to "
        "reclaim, so batch wall time is parity at best and its "
        "percentiles are scheduling noise; the claim this host can "
        "support is the needle-latency split above — the full batch "
        "p50 split needs >= %d real cores)\n",
        ThreadPool::DefaultThreads(), threads);
    }
    records->push_back(
        bench::EnvRecord("service_skewed_batch", tier, threads,
                         static_cast<int64_t>(batch.size()))
            .Int("batches", kBatches)
            .Int("rows", kRows)
            .Int("hw_threads", ThreadPool::DefaultThreads())
            .Num("execute_batch_p50_us", eb_p50 * 1e6)
            .Num("execute_batch_p99_us", eb_p99 * 1e6)
            .Num("service_p50_us", sv_p50 * 1e6)
            .Num("service_p99_us", sv_p99 * 1e6)
            .Num("p50_speedup", sv_p50 > 0 ? eb_p50 / sv_p50 : 0.0)
            .Num("p99_speedup", sv_p99 > 0 ? eb_p99 / sv_p99 : 0.0)
            .Num("execute_batch_needle_p50_us", eb_needle_p50 * 1e6)
            .Num("service_needle_p50_us", sv_needle_p50 * 1e6)
            .Num("needle_p50_speedup",
                 sv_needle_p50 > 0 ? eb_needle_p50 / sv_needle_p50 : 0.0)
            .Int("steal_count", steals)
            .Int("rng_seed", 404)  // Workload generator for this sweep.
            .Finish());
    if (threads == ThreadPool::DefaultThreads()) break;  // No duplicate row.
  }
}

// --- Overload sweep: bounded admission + shedding vs an unbounded queue. ---
//
// Offered load is a burst of 32 * mult queries (80% priority-0 best-effort,
// 20% priority-1 with a deadline) fired without awaiting — deliberately
// past capacity from mult >= 4 on this host. The bounded service must keep
// its in-use chunk budget under the cap at every instant, shed or reject
// low-priority traffic first, and keep the worker-stamped p99 of *admitted*
// queries bounded as the burst grows; the unbounded baseline instead lets
// its queue depth grow with the burst size (every offered query is
// admitted, so latency is open-loop queueing delay).
void RunOverloadBench(std::vector<std::string>* records) {
  bench::PrintHeader("overload shedding (bounded admission)");
  const Benchmark& b = SharedBench();
  TsunamiIndex index(b.data, b.workload, TsunamiOptions());
  const char* tier = SimdTierName(DetectSimdTier());
  const int hw = ThreadPool::DefaultThreads();
  const int64_t kQueryCap = 32;
  const int64_t kChunkCap = 256;

  Rng rng(505);
  for (int mult : {1, 2, 4, 8}) {
    const int offered = 32 * mult;
    // This burst's traffic: cycled workload needles, every 8th query a
    // full-table multi-aggregate region query so chunks pile up fast.
    // 20% of arrivals are priority-1 dashboards with a deadline; the rest
    // is best-effort backlog.
    std::vector<std::pair<Query, SubmitOptions>> traffic;
    for (int i = 0; i < offered; ++i) {
      Query q;
      if (i % 8 == 7) {
        q.filters.push_back(Predicate{0, 0, kValueMax});
        q.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
      } else {
        q = b.workload[rng.NextBelow(b.workload.size())];
      }
      SubmitOptions sub;
      if (i % 5 == 4) {
        sub.priority = 1;
        sub.deadline_seconds = 0.25;
      }
      traffic.emplace_back(q, sub);
    }

    struct BurstResult {
      int64_t admitted = 0;
      int64_t rejected = 0;
      int64_t completed = 0;
      int64_t not_completed = 0;  // Shed / timed out / cancelled awaits.
      int64_t max_chunks = 0;     // Max admitted-chunk gauge mid-burst.
      int64_t max_queue_depth = 0;
      std::vector<double> latencies;  // Worker-stamped, completed only.
    };
    auto run_burst = [&traffic](QueryService& service) {
      BurstResult out;
      std::vector<QueryService::Admission> tickets;
      tickets.reserve(traffic.size());
      for (const auto& [q, sub] : traffic) {
        tickets.push_back(service.Submit(q, sub));
        ServiceStats mid = service.stats();
        out.max_chunks = std::max(out.max_chunks, mid.admitted_chunks);
        out.max_queue_depth = std::max(out.max_queue_depth, mid.queue_depth);
        ++(tickets.back().admitted() ? out.admitted : out.rejected);
      }
      for (const QueryService::Admission& t : tickets) {
        if (!t.admitted()) continue;
        AwaitInfo info;
        service.Await(t, &info);
        if (info.outcome == QueryOutcome::kCompleted) {
          ++out.completed;
          out.latencies.push_back(info.latency_seconds);
        } else {
          ++out.not_completed;
        }
      }
      return out;
    };

    ServiceOptions bounded_options;
    bounded_options.threads = hw;
    bounded_options.chunk_rows = 4 * kScanBlockRows;
    bounded_options.max_queued_queries = kQueryCap;
    bounded_options.max_queued_chunks = kChunkCap;
    QueryService bounded(&index, bounded_options);
    ServiceOptions unbounded_options = bounded_options;
    unbounded_options.max_queued_queries = 0;
    unbounded_options.max_queued_chunks = 0;
    QueryService open(&index, unbounded_options);

    BurstResult bs = run_burst(bounded);
    BurstResult us = run_burst(open);
    ServiceStats bstats = bounded.stats();

    double b_p50 = Percentile(bs.latencies, 50) * 1e6;
    double b_p99 = Percentile(bs.latencies, 99) * 1e6;
    double u_p99 = Percentile(us.latencies, 99) * 1e6;
    std::printf(
        "overload x%d: offered %3d  bounded admitted %3lld rejected %3lld "
        "shed %3lld (max chunks %3lld/%lld)  admitted p99 %9.1f us  |  "
        "unbounded admitted %3d, max queue depth %4lld, p99 %9.1f us\n",
        mult, offered, static_cast<long long>(bs.admitted),
        static_cast<long long>(bs.rejected),
        static_cast<long long>(bstats.shed),
        static_cast<long long>(bs.max_chunks),
        static_cast<long long>(kChunkCap), b_p99, offered,
        static_cast<long long>(us.max_queue_depth), u_p99);
    records->push_back(
        bench::EnvRecord("overload_shedding", tier, hw, offered)
            .Int("hw_threads", hw)
            .Int("burst_multiplier", mult)
            .Int("query_cap", kQueryCap)
            .Int("chunk_cap", kChunkCap)
            .Int("offered", offered)
            .Int("admitted", bs.admitted)
            .Int("rejected", bs.rejected)
            .Int("shed", bstats.shed)
            .Int("completed", bs.completed)
            .Int("not_completed", bs.not_completed)
            .Int("max_admitted_chunks", bs.max_chunks)
            .Num("admitted_p50_us", b_p50)
            .Num("admitted_p99_us", b_p99)
            .Int("unbounded_admitted", us.admitted)
            .Int("unbounded_max_queue_depth", us.max_queue_depth)
            .Num("unbounded_p99_us", u_p99)
            .Int("rng_seed", 505)  // Burst traffic generator.
            .Finish());
  }
}

// --- Client fairness: per-client caps vs one greedy client. ---
//
// One greedy client keeps the service's bounded admission budget saturated
// with full-table queries (open loop, topped up every round) while four
// polite clients each run a needle closed-loop: submit, retry on rejection
// with a short pause (what a real client's bounded-backoff loop does), then
// await. Without a per-client cap the greedy client holds the entire
// low-priority query budget, so every polite query must out-wait the whole
// greedy backlog — end-to-end p99 and retry counts blow up. With
// max_inflight_per_client set, the greedy client is bounced with
// kClientBusy beyond its slots and the polite experience stays bounded.
void RunClientFairnessBench(std::vector<std::string>* records) {
  bench::PrintHeader("client fairness (per-client admission caps)");
  const Benchmark& b = SharedBench();
  TsunamiIndex index(b.data, b.workload, TsunamiOptions());
  const char* tier = SimdTierName(DetectSimdTier());
  const int hw = ThreadPool::DefaultThreads();

  Query heavy;
  heavy.filters.push_back(Predicate{0, 0, kValueMax});
  heavy.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});

  const int kRounds = 16;
  const int kPolite = 4;
  const int kGreedyPerRound = 16;
  const int kMaxAttempts = 2000;
  Rng rng(606);
  std::vector<Query> polite_queries;
  for (int i = 0; i < kRounds * kPolite; ++i) {
    polite_queries.push_back(b.workload[rng.NextBelow(b.workload.size())]);
  }

  for (int64_t cap : {int64_t{0}, int64_t{4}}) {
    ServiceOptions so;
    so.threads = hw;
    so.chunk_rows = 4 * kScanBlockRows;
    // Queries are the contended budget (the low-priority watermark admits
    // 16); chunks stay unbounded so the comparison isolates the cap.
    so.max_queued_queries = 32;
    so.max_inflight_per_client = cap;
    QueryService service(&index, so);

    int64_t greedy_admitted = 0, greedy_busy = 0, greedy_full = 0;
    int64_t polite_admitted = 0, polite_rejected = 0, polite_attempts = 0;
    int64_t max_queue_depth = 0, max_active = 0;
    std::vector<QueryService::Admission> greedy_tickets;
    std::vector<double> polite_latencies;  // End-to-end, retries included.
    SubmitOptions greedy_sub;
    greedy_sub.client_id = 1;
    // Tops the greedy backlog up to whatever admission will give it.
    auto greedy_refill = [&] {
      for (int g = 0; g < kGreedyPerRound; ++g) {
        QueryService::Admission a = service.Submit(heavy, greedy_sub);
        if (a.admitted()) {
          greedy_tickets.push_back(a);
          ++greedy_admitted;
        } else if (a.outcome == AdmissionOutcome::kClientBusy) {
          ++greedy_busy;
        } else {
          ++greedy_full;
        }
      }
    };
    size_t next_polite = 0;
    for (int round = 0; round < kRounds; ++round) {
      greedy_refill();
      ServiceStats mid = service.stats();
      max_queue_depth = std::max(max_queue_depth, mid.queue_depth);
      max_active = std::max(max_active, mid.active_queries);
      for (int p = 0; p < kPolite; ++p) {
        const Query& q = polite_queries[next_polite++];
        SubmitOptions polite_sub;
        polite_sub.client_id = 2 + p;
        Timer end_to_end;
        QueryService::Admission a;
        int attempts = 0;
        while (true) {
          ++attempts;
          a = service.Submit(q, polite_sub);
          if (a.admitted() || attempts >= kMaxAttempts) break;
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        polite_attempts += attempts;
        if (!a.admitted()) {
          ++polite_rejected;
          continue;
        }
        ++polite_admitted;
        AwaitInfo info;
        service.Await(a, &info);
        if (info.outcome == QueryOutcome::kCompleted) {
          polite_latencies.push_back(end_to_end.ElapsedSeconds());
        }
      }
    }
    for (const QueryService::Admission& t : greedy_tickets) {
      service.Await(t);
    }

    const double p50 = Percentile(polite_latencies, 50) * 1e6;
    const double p99 = Percentile(polite_latencies, 99) * 1e6;
    const double mean_attempts =
        static_cast<double>(polite_attempts) /
        static_cast<double>(kRounds * kPolite);
    std::printf(
        "per-client cap %3lld: greedy admitted %3lld busy %3lld full %3lld"
        "  |  polite admitted %3lld rejected %3lld  attempts/query %5.1f  "
        "p50 %9.1f us  p99 %9.1f us  (max active %3lld, queue depth "
        "%4lld)\n",
        static_cast<long long>(cap), static_cast<long long>(greedy_admitted),
        static_cast<long long>(greedy_busy),
        static_cast<long long>(greedy_full),
        static_cast<long long>(polite_admitted),
        static_cast<long long>(polite_rejected), mean_attempts, p50, p99,
        static_cast<long long>(max_active),
        static_cast<long long>(max_queue_depth));
    records->push_back(
        bench::EnvRecord("client_fairness", tier, hw,
                         kGreedyPerRound + kPolite)
            .Int("hw_threads", hw)
            .Int("per_client_cap", cap)
            .Int("rounds", kRounds)
            .Int("greedy_offered", kRounds * kGreedyPerRound)
            .Int("greedy_admitted", greedy_admitted)
            .Int("greedy_rejected_busy", greedy_busy)
            .Int("greedy_rejected_full", greedy_full)
            .Int("polite_offered", kRounds * kPolite)
            .Int("polite_admitted", polite_admitted)
            .Int("polite_rejected", polite_rejected)
            .Num("polite_attempts_per_query", mean_attempts)
            .Num("polite_p50_us", p50)
            .Num("polite_p99_us", p99)
            .Int("max_active_queries", max_active)
            .Int("max_queue_depth", max_queue_depth)
            .Int("rng_seed", 606)  // Polite traffic generator.
            .Finish());
  }
}

/// Removes every argv entry `handle` consumes (returns true for),
/// compacting the rest in place — the one flag-stripping loop shared by
/// the custom flags below (google-benchmark parses whatever remains).
template <typename Fn>
void StripArgs(int* argc, char** argv, Fn handle) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (!handle(std::string_view(argv[i]))) argv[out++] = argv[i];
  }
  *argc = out;
}

/// Parses and strips a `--simd=<auto|scalar|neon|avx2|avx512>` argument.
SimdTier ParseSimdFlag(int* argc, char** argv) {
  SimdTier tier = SimdTier::kAuto;
  StripArgs(argc, argv, [&tier](std::string_view arg) {
    if (arg.rfind("--simd=", 0) != 0) return false;
    std::string_view name = arg.substr(7);
    if (name == "auto") {
      tier = SimdTier::kAuto;
    } else if (name == "scalar" || name == "none") {
      tier = SimdTier::kNone;
    } else if (name == "neon") {
      tier = SimdTier::kNeon;
    } else if (name == "avx2") {
      tier = SimdTier::kAvx2;
    } else if (name == "avx512") {
      tier = SimdTier::kAvx512;
    } else {
      std::fprintf(stderr, "unknown --simd tier '%.*s'\n",
                   static_cast<int>(name.size()), name.data());
    }
    return true;
  });
  if (!SimdTierSupported(tier)) {
    // Downgrade to the tier that will actually run, so the JSON records
    // are stamped with the measured tier, not the requested one.
    std::fprintf(stderr,
                 "--simd=%s not supported on this machine; measuring the "
                 "scalar ops instead\n",
                 SimdTierName(tier));
    tier = SimdTier::kNone;
  }
  return tier;
}

/// Parses and strips a `--service` argument (run only the serving-path
/// section — plan cache + work-stealing skewed batch).
bool ParseServiceFlag(int* argc, char** argv) {
  bool service_only = false;
  StripArgs(argc, argv, [&service_only](std::string_view arg) {
    if (arg != "--service") return false;
    service_only = true;
    return true;
  });
  return service_only;
}

/// Parses and strips a `--encoding` argument (run only the encoded-block
/// raw-vs-coded sweep and write it to BENCH_scan_kernel.json).
bool ParseEncodingFlag(int* argc, char** argv) {
  bool encoding_only = false;
  StripArgs(argc, argv, [&encoding_only](std::string_view arg) {
    if (arg != "--encoding") return false;
    encoding_only = true;
    return true;
  });
  return encoding_only;
}

/// Parses and strips a `--overload` argument (run only the bounded-vs-
/// unbounded overload shedding sweep).
bool ParseOverloadFlag(int* argc, char** argv) {
  bool overload_only = false;
  StripArgs(argc, argv, [&overload_only](std::string_view arg) {
    if (arg != "--overload") return false;
    overload_only = true;
    return true;
  });
  return overload_only;
}

}  // namespace
}  // namespace tsunami

int main(int argc, char** argv) {
  bool service_only = tsunami::ParseServiceFlag(&argc, argv);
  bool encoding_only = tsunami::ParseEncodingFlag(&argc, argv);
  bool overload_only = tsunami::ParseOverloadFlag(&argc, argv);
  tsunami::SimdTier tier = tsunami::ParseSimdFlag(&argc, argv);
  std::vector<std::string> records;
  if (overload_only) {
    // Overload-only run: writes its own artifact (like --service) so it
    // never truncates a previous full run's scan-kernel sections.
    tsunami::RunOverloadBench(&records);
    tsunami::RunClientFairnessBench(&records);
    if (tsunami::bench::WriteBenchJson("BENCH_query_service.json",
                                       "scan_kernel", records)) {
      std::printf("wrote BENCH_query_service.json\n");
    }
    return 0;
  }
  if (encoding_only) {
    // Encoding-only run: the raw-vs-coded sweep is part of the scan-kernel
    // bench family, so its records land in BENCH_scan_kernel.json.
    tsunami::RunEncodingAB(&records);
    if (tsunami::bench::WriteBenchJson("BENCH_scan_kernel.json",
                                       "scan_kernel", records)) {
      std::printf("wrote BENCH_scan_kernel.json\n");
    }
    return 0;
  }
  if (!service_only) {
    tsunami::RunScanKernelAB(tier, &records);
    tsunami::RunEncodingAB(&records);
    tsunami::RunBatchApiThroughput(&records);
  }
  // The serving-path records land in the full run's JSON; a --service run
  // writes its own artifact so it never truncates the scan-kernel and
  // batch-API sections a previous full run recorded.
  tsunami::RunQueryServiceBench(&records);
  tsunami::RunOverloadBench(&records);
  tsunami::RunClientFairnessBench(&records);
  const char* json_path =
      service_only ? "BENCH_query_service.json" : "BENCH_scan_kernel.json";
  if (tsunami::bench::WriteBenchJson(json_path, "scan_kernel", records)) {
    std::printf("wrote %s\n", json_path);
  }
  if (service_only) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
