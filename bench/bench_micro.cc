// Micro-benchmarks (google-benchmark) for the core primitives, including
// the two ablations DESIGN.md calls out: the exact-range scan skip and the
// sort-dimension binary-search refinement.
#include <numeric>

#include <benchmark/benchmark.h>

#include "src/baselines/full_scan.h"
#include "src/baselines/zorder.h"
#include "src/cdf/cdf_model.h"
#include "src/common/emd.h"
#include "src/common/random.h"
#include "src/core/augmented_grid.h"
#include "src/core/periodic.h"
#include "src/core/skew.h"
#include "src/datasets/synthetic.h"
#include "src/flood/flood.h"
#include "src/query/bool_expr.h"
#include "src/query/router.h"
#include "src/storage/column_store.h"

namespace tsunami {
namespace {

const Benchmark& SharedBench() {
  static const Benchmark* bench =
      new Benchmark(MakeScalingBenchmark(8, 100000, true, 201));
  return *bench;
}

void BM_ColumnScanChecked(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/false, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanChecked);

// Ablation: the exact-range scan optimization (§6.1) vs checked scanning.
void BM_ColumnScanExact(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/true, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanExact);

void BM_EquiDepthCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = EquiDepthCdf::Build(column, 512);
  Rng rng(202);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PartitionOf(rng.UniformValue(0, 1 << 30), 64));
  }
}
BENCHMARK(BM_EquiDepthCdfLookup);

void BM_RmiCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = RmiCdf::Build(column, 128);
  Rng rng(203);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Cdf(rng.UniformValue(0, 1 << 30)));
  }
}
BENCHMARK(BM_RmiCdfLookup);

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(204);
  std::vector<uint32_t> coords(8);
  for (auto& c : coords) c = static_cast<uint32_t>(rng.NextBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(coords, 8));
  }
}
BENCHMARK(BM_MortonEncode);

void BM_EmdSkew(benchmark::State& state) {
  Rng rng(205);
  std::vector<double> pdf(128);
  for (double& m : pdf) m = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkewOfMass(pdf));
  }
}
BENCHMARK(BM_EmdSkew);

// Grid query execution with and without sort-dimension refinement: the
// refined grid binary-searches runs, the unrefined one scans whole runs.
void GridQueryBench(benchmark::State& state, bool refine) {
  const Benchmark& b = SharedBench();
  std::vector<uint32_t> rows(b.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  std::vector<int> partitions(8, 8);
  const Workload& workload = b.workload;
  AugmentedGrid::BuildOptions options;
  if (refine) {
    // Sort by the workload's most selective dimension (the smallest filter
    // widths are on dim 0), so binary-search refinement narrows runs.
    options.sort_dim = 0;
  } else {
    // Sort by the least selective dimension: refinement buys nothing.
    options.sort_dim = 7;
  }
  grid.Build(b.data, &rows, Skeleton::AllIndependent(8), partitions, options);
  ColumnStore store(b.data, rows);
  grid.Attach(&store, 0);
  size_t i = 0;
  for (auto _ : state) {
    QueryResult r;
    grid.Execute(workload[i % workload.size()], &r);
    ++i;
    benchmark::DoNotOptimize(r.agg);
  }
}
void BM_GridQueryRefined(benchmark::State& state) {
  GridQueryBench(state, true);
}
void BM_GridQueryUnrefined(benchmark::State& state) {
  GridQueryBench(state, false);
}
BENCHMARK(BM_GridQueryRefined);
BENCHMARK(BM_GridQueryUnrefined);

void BM_FloodQuery(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  FloodOptions options;
  options.agd.max_sample_points = 1024;
  options.agd.max_sample_queries = 32;
  static const FloodIndex* index = new FloodIndex(b.data, b.workload, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Execute(b.workload[i % b.workload.size()]).agg);
    ++i;
  }
}
BENCHMARK(BM_FloodQuery);

// Disjunctive-filter machinery: normalization cost per OR arm count.
// IN-list shape (all arms over one dimension) — the common case; cost is
// quadratic in arms (each new box is subtracted against accepted ones).
void BM_DisjointBoxNormalize(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{0, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalize)->Arg(2)->Arg(8)->Arg(32);

// Cross-dimension ORs fragment combinatorially (each slab splits against
// every other-dimension slab); the NormalizeLimits cap bounds the damage.
// Kept small here — this is the adversarial shape, not the common one.
void BM_DisjointBoxNormalizeCrossDim(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{a % 4, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalizeCrossDim)->Arg(4)->Arg(8);

// Phase arithmetic + period scoring (Sec 8 periodic support).
void BM_ScorePeriods(benchmark::State& state) {
  Rng rng(6);
  Dataset data(2, {});
  for (int i = 0; i < 50000; ++i) {
    Value t = rng.UniformValue(0, 1440 * 90);
    data.AppendRow({t, (t % 1440) / 3 + rng.UniformValue(-20, 20)});
  }
  std::vector<Value> candidates = {60, 720, 1440, 10080};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScorePeriods(data, 0, 1, candidates).size());
  }
}
BENCHMARK(BM_ScorePeriods);

// Route() dispatch overhead (embed + nearest-type match).
void BM_RouterDispatch(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  static const FullScanIndex* full = new FullScanIndex(b.data);
  static const AccessPathRouter* router =
      new AccessPathRouter({full}, b.data, b.workload);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&router->Route(b.workload[i % b.workload.size()]));
    ++i;
  }
}
BENCHMARK(BM_RouterDispatch);

}  // namespace
}  // namespace tsunami

BENCHMARK_MAIN();
