// Micro-benchmarks (google-benchmark) for the core primitives, including
// the two ablations DESIGN.md calls out: the exact-range scan skip and the
// sort-dimension binary-search refinement. main() additionally runs the
// scalar-vs-vectorized scan-kernel A/B sweep and writes
// BENCH_scan_kernel.json before the registered benchmarks.
#include <algorithm>
#include <numeric>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baselines/full_scan.h"
#include "src/baselines/zorder.h"
#include "src/cdf/cdf_model.h"
#include "src/common/emd.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/core/augmented_grid.h"
#include "src/core/periodic.h"
#include "src/core/skew.h"
#include "src/datasets/synthetic.h"
#include "src/flood/flood.h"
#include "src/query/bool_expr.h"
#include "src/query/router.h"
#include "src/storage/column_store.h"
#include "src/storage/scan_kernel.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace {

const Benchmark& SharedBench() {
  static const Benchmark* bench =
      new Benchmark(MakeScalingBenchmark(8, 100000, true, 201));
  return *bench;
}

void BM_ColumnScanChecked(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/false, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanChecked);

// Ablation: the exact-range scan optimization (§6.1) vs checked scanning.
void BM_ColumnScanExact(benchmark::State& state) {
  ColumnStore store(SharedBench().data);
  Query q = SharedBench().workload[0];
  for (auto _ : state) {
    QueryResult r;
    store.ScanRange(0, store.size(), q, /*exact=*/true, &r);
    benchmark::DoNotOptimize(r.agg);
  }
  state.SetItemsProcessed(state.iterations() * store.size());
}
BENCHMARK(BM_ColumnScanExact);

void BM_EquiDepthCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = EquiDepthCdf::Build(column, 512);
  Rng rng(202);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->PartitionOf(rng.UniformValue(0, 1 << 30), 64));
  }
}
BENCHMARK(BM_EquiDepthCdfLookup);

void BM_RmiCdfLookup(benchmark::State& state) {
  std::vector<Value> column(SharedBench().data.raw().begin(),
                            SharedBench().data.raw().begin() + 100000);
  auto model = RmiCdf::Build(column, 128);
  Rng rng(203);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Cdf(rng.UniformValue(0, 1 << 30)));
  }
}
BENCHMARK(BM_RmiCdfLookup);

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(204);
  std::vector<uint32_t> coords(8);
  for (auto& c : coords) c = static_cast<uint32_t>(rng.NextBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(coords, 8));
  }
}
BENCHMARK(BM_MortonEncode);

void BM_EmdSkew(benchmark::State& state) {
  Rng rng(205);
  std::vector<double> pdf(128);
  for (double& m : pdf) m = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkewOfMass(pdf));
  }
}
BENCHMARK(BM_EmdSkew);

// Grid query execution with and without sort-dimension refinement: the
// refined grid binary-searches runs, the unrefined one scans whole runs.
void GridQueryBench(benchmark::State& state, bool refine) {
  const Benchmark& b = SharedBench();
  std::vector<uint32_t> rows(b.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AugmentedGrid grid;
  std::vector<int> partitions(8, 8);
  const Workload& workload = b.workload;
  AugmentedGrid::BuildOptions options;
  if (refine) {
    // Sort by the workload's most selective dimension (the smallest filter
    // widths are on dim 0), so binary-search refinement narrows runs.
    options.sort_dim = 0;
  } else {
    // Sort by the least selective dimension: refinement buys nothing.
    options.sort_dim = 7;
  }
  grid.Build(b.data, &rows, Skeleton::AllIndependent(8), partitions, options);
  ColumnStore store(b.data, rows);
  grid.Attach(&store, 0);
  size_t i = 0;
  for (auto _ : state) {
    QueryResult r;
    grid.Execute(workload[i % workload.size()], &r);
    ++i;
    benchmark::DoNotOptimize(r.agg);
  }
}
void BM_GridQueryRefined(benchmark::State& state) {
  GridQueryBench(state, true);
}
void BM_GridQueryUnrefined(benchmark::State& state) {
  GridQueryBench(state, false);
}
BENCHMARK(BM_GridQueryRefined);
BENCHMARK(BM_GridQueryUnrefined);

void BM_FloodQuery(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  FloodOptions options;
  options.agd.max_sample_points = 1024;
  options.agd.max_sample_queries = 32;
  static const FloodIndex* index = new FloodIndex(b.data, b.workload, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Execute(b.workload[i % b.workload.size()]).agg);
    ++i;
  }
}
BENCHMARK(BM_FloodQuery);

// Disjunctive-filter machinery: normalization cost per OR arm count.
// IN-list shape (all arms over one dimension) — the common case; cost is
// quadratic in arms (each new box is subtracted against accepted ones).
void BM_DisjointBoxNormalize(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{0, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalize)->Arg(2)->Arg(8)->Arg(32);

// Cross-dimension ORs fragment combinatorially (each slab splits against
// every other-dimension slab); the NormalizeLimits cap bounds the damage.
// Kept small here — this is the adversarial shape, not the common one.
void BM_DisjointBoxNormalizeCrossDim(benchmark::State& state) {
  const int arms = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<BoolExpr> alts;
  for (int a = 0; a < arms; ++a) {
    Value lo = rng.UniformValue(0, 1 << 20);
    alts.push_back(BoolExpr::Leaf(Predicate{a % 4, lo, lo + 1000}));
  }
  BoolExpr expr = BoolExpr::Or(std::move(alts));
  for (auto _ : state) {
    NormalizeResult norm = ToDisjointBoxes(expr, 4);
    benchmark::DoNotOptimize(norm.boxes.size());
  }
}
BENCHMARK(BM_DisjointBoxNormalizeCrossDim)->Arg(4)->Arg(8);

// Phase arithmetic + period scoring (Sec 8 periodic support).
void BM_ScorePeriods(benchmark::State& state) {
  Rng rng(6);
  Dataset data(2, {});
  for (int i = 0; i < 50000; ++i) {
    Value t = rng.UniformValue(0, 1440 * 90);
    data.AppendRow({t, (t % 1440) / 3 + rng.UniformValue(-20, 20)});
  }
  std::vector<Value> candidates = {60, 720, 1440, 10080};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScorePeriods(data, 0, 1, candidates).size());
  }
}
BENCHMARK(BM_ScorePeriods);

// Route() dispatch overhead (embed + nearest-type match).
void BM_RouterDispatch(benchmark::State& state) {
  const Benchmark& b = SharedBench();
  static const FullScanIndex* full = new FullScanIndex(b.data);
  static const AccessPathRouter* router =
      new AccessPathRouter({full}, b.data, b.workload);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&router->Route(b.workload[i % b.workload.size()]));
    ++i;
  }
}
BENCHMARK(BM_RouterDispatch);

// --- Scan-kernel A/B/C: scalar vs vectorized vs SIMD over selectivities --
//
// Clustered data (sorted by dim 0, the layout every clustering index
// produces) so the zone maps see the locality they were built for. Two
// shapes: full-store scans at swept selectivities (the "large range" case
// where the kernel must win big) and short ranges at the sizes grid cells
// produce after refinement (where it must at least not lose). The C column
// is the SIMD tier at the best runtime-dispatched instruction set.

Dataset MakeClusteredData(int64_t rows, int dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dims, {});
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < dims; ++d) row[d] = rng.UniformValue(0, 1 << 20);
    data.AppendRow(row);
  }
  std::vector<int64_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return data.at(a, 0) < data.at(b, 0);
  });
  Dataset sorted(dims, {});
  sorted.Reserve(rows);
  for (int64_t i : order) {
    for (int d = 0; d < dims; ++d) row[d] = data.at(i, d);
    sorted.AppendRow(row);
  }
  return sorted;
}

// Best-of-`reps` seconds for scanning `tasks` in `mode` at `tier`.
double TimeScan(const ColumnStore& store, std::span<const RangeTask> tasks,
                const Query& query, ScanMode mode, int reps,
                SimdTier tier = SimdTier::kAuto) {
  double best = 0.0;
  int64_t sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    QueryResult r = InitResult(query);
    store.ScanRanges(tasks, query, &r, ScanOptions{mode, tier});
    double seconds = timer.ElapsedSeconds();
    sink += r.agg;
    if (rep == 0 || seconds < best) best = seconds;
  }
  if (sink == INT64_MIN) std::printf("impossible\n");
  return best;
}

void RunScanKernelAB(SimdTier forced_tier,
                     std::vector<std::string>* records) {
  const char* tier =
      SimdTierName(forced_tier == SimdTier::kAuto ? DetectSimdTier()
                                                  : forced_tier);
  bench::PrintHeader("scan kernel A/B/C (scalar vs vectorized vs SIMD)");
  std::printf("SIMD tier: %s%s\n", tier,
              forced_tier == SimdTier::kAuto ? "" : " (forced via --simd)");
  const int64_t kRows = 1 << 20;
  const int kDims = 4;
  Dataset data = MakeClusteredData(kRows, kDims, 401);
  ColumnStore store(data);
  Rng rng(402);

  // Full-range scans over swept selectivities: a filter on the clustered
  // dimension sized to the target fraction plus a 50% filter on dim 1.
  std::printf("%-22s %13s %13s %13s %10s %10s\n", "shape", "scalar ns/row",
              "vector ns/row", "simd ns/row", "vec/scal", "simd/vec");
  for (double sel : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    Query q;
    Value width = static_cast<Value>(sel * (1 << 20));
    Value lo = rng.UniformValue(0, (1 << 20) - width);
    q.filters.push_back(Predicate{0, lo, lo + width});
    q.filters.push_back(Predicate{1, 0, 1 << 19});
    q.agg = AggKind::kSum;
    q.agg_dim = 2;
    RangeTask task{0, store.size(), false};
    double scalar = TimeScan(store, {&task, 1}, q, ScanMode::kScalar, 5);
    double vec = TimeScan(store, {&task, 1}, q, ScanMode::kVectorized, 5);
    double simd =
        TimeScan(store, {&task, 1}, q, ScanMode::kSimd, 5, forced_tier);
    double speedup = vec > 0 ? scalar / vec : 0.0;
    double simd_vs_vec = simd > 0 ? vec / simd : 0.0;
    std::printf("full sel=%-13g %13.3f %13.3f %13.3f %9.2fx %9.2fx\n", sel,
                scalar * 1e9 / kRows, vec * 1e9 / kRows, simd * 1e9 / kRows,
                speedup, simd_vs_vec);
    records->push_back(bench::EnvRecord("full_range", tier, /*threads=*/1,
                                        /*batch_size=*/1)
                           .Num("selectivity", sel)
                           .Int("rows_per_scan", kRows)
                           .Num("scalar_ns_per_row", scalar * 1e9 / kRows)
                           .Num("vector_ns_per_row", vec * 1e9 / kRows)
                           .Num("simd_ns_per_row", simd * 1e9 / kRows)
                           .Num("speedup", speedup)
                           .Num("simd_speedup_vs_vector", simd_vs_vec)
                           .Num("simd_speedup_vs_scalar",
                                simd > 0 ? scalar / simd : 0.0)
                           .Finish());
  }

  // Short per-cell ranges: the sizes indexes hand the kernel after grid
  // refinement. Random offsets, moderately selective residual filters —
  // the per-block predicate passes where compare+compress has to earn its
  // keep (no zone-map skipping to hide behind).
  for (int64_t range_len : {256, 1024, 4096}) {
    Query q;
    q.filters.push_back(Predicate{1, 0, 1 << 19});
    q.filters.push_back(Predicate{2, 0, 3 << 18});
    q.agg = AggKind::kCount;
    const int kTasks = 512;
    std::vector<RangeTask> tasks;
    for (int t = 0; t < kTasks; ++t) {
      int64_t begin = rng.UniformValue(0, kRows - range_len);
      tasks.push_back(RangeTask{begin, begin + range_len, false});
    }
    int64_t scanned = range_len * kTasks;
    double scalar = TimeScan(store, tasks, q, ScanMode::kScalar, 5);
    double vec = TimeScan(store, tasks, q, ScanMode::kVectorized, 5);
    double simd = TimeScan(store, tasks, q, ScanMode::kSimd, 5, forced_tier);
    double speedup = vec > 0 ? scalar / vec : 0.0;
    double simd_vs_vec = simd > 0 ? vec / simd : 0.0;
    std::printf("cell rows=%-12lld %13.3f %13.3f %13.3f %9.2fx %9.2fx\n",
                static_cast<long long>(range_len), scalar * 1e9 / scanned,
                vec * 1e9 / scanned, simd * 1e9 / scanned, speedup,
                simd_vs_vec);
    records->push_back(bench::EnvRecord("per_cell_range", tier, /*threads=*/1,
                                        /*batch_size=*/kTasks)
                           .Int("rows_per_scan", range_len)
                           .Int("num_ranges", kTasks)
                           .Num("scalar_ns_per_row", scalar * 1e9 / scanned)
                           .Num("vector_ns_per_row", vec * 1e9 / scanned)
                           .Num("simd_ns_per_row", simd * 1e9 / scanned)
                           .Num("speedup", speedup)
                           .Num("simd_speedup_vs_vector", simd_vs_vec)
                           .Num("simd_speedup_vs_scalar",
                                simd > 0 ? scalar / simd : 0.0)
                           .Finish());
  }
}

// --- Batch API throughput: prepared plans vs per-query dispatch ------------
//
// Fig7-style serving shape: Tsunami over the shared 8-d benchmark, the
// workload arriving as batches that recur (the steady state an accelerator
// front-end sees). Per-query dispatch re-plans inside Execute() on every
// recurrence; the batch API prepares each batch once and replays the plans.
// Both sides run inline at the auto-dispatched tier — no pool, no forced
// tier — so the recorded speedup isolates the amortization the API adds and
// stays comparable across machines (the pool's inter-query parallelism is a
// separate, additive win).
void RunBatchApiThroughput(std::vector<std::string>* records) {
  bench::PrintHeader("batch API (prepared ExecutePlans vs per-query Execute)");
  const Benchmark& b = SharedBench();
  // Default build options: the production-shaped index (fully sampled
  // optimization), whose per-query planning cost is what batching amortizes.
  TsunamiIndex index(b.data, b.workload, TsunamiOptions());
  const char* tier = SimdTierName(DetectSimdTier());
  const int kReps = 8;  // Times each batch recurs.
  std::printf("%-12s %14s %14s %10s  (threads=1, tier=%s, reps=%d)\n",
              "batch size", "per-query us", "batch us", "speedup", tier,
              kReps);
  for (size_t batch_size : {size_t{16}, size_t{64}, size_t{256}}) {
    // Stride-sample the workload so every batch size sees the same mix of
    // cheap and expensive queries.
    Workload batch;
    size_t take = std::min(batch_size, b.workload.size());
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(b.workload[i * b.workload.size() / take]);
    }
    // Best-of-5 for both paths, with one untimed warmup each, so a single
    // scheduler hiccup cannot decide the comparison.
    int64_t sink = 0;
    for (const Query& q : batch) sink += index.Execute(q).agg;
    double per_query_s = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      // Old API: one Execute per query, re-planned every recurrence.
      Timer timer;
      for (int rep = 0; rep < kReps; ++rep) {
        for (const Query& q : batch) sink += index.Execute(q).agg;
      }
      double seconds = timer.ElapsedSeconds();
      if (trial == 0 || seconds < per_query_s) per_query_s = seconds;
    }
    // Batch API: prepare once, replay the plans each recurrence.
    ExecContext ctx;
    {
      std::vector<QueryResult> warm = index.ExecuteBatch(
          std::span<const Query>(batch.data(), batch.size()), ctx);
      sink += warm[0].agg;
    }
    double batch_s = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
      Timer timer;
      std::vector<QueryPlan> plans;
      plans.reserve(batch.size());
      for (const Query& q : batch) plans.push_back(index.Prepare(q));
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<QueryResult> results = index.ExecutePlans(plans, ctx);
        sink += results[0].agg;
      }
      double seconds = timer.ElapsedSeconds();
      if (trial == 0 || seconds < batch_s) batch_s = seconds;
    }
    if (sink == INT64_MIN) std::printf("impossible\n");
    const double n = static_cast<double>(batch.size()) * kReps;
    double speedup = batch_s > 0 ? per_query_s / batch_s : 0.0;
    std::printf("%-12zu %14.2f %14.2f %9.2fx\n", batch.size(),
                per_query_s * 1e6 / n, batch_s * 1e6 / n, speedup);
    records->push_back(
        bench::EnvRecord("batch_api", tier, /*threads=*/1,
                         static_cast<int64_t>(batch.size()))
            .Int("reps", kReps)
            .Num("per_query_us", per_query_s * 1e6 / n)
            .Num("batch_us", batch_s * 1e6 / n)
            .Num("batch_qps", batch_s > 0 ? n / batch_s : 0.0)
            .Num("speedup", speedup)
            .Finish());
  }
}

/// Parses and strips a `--simd=<auto|scalar|neon|avx2|avx512>` argument.
SimdTier ParseSimdFlag(int* argc, char** argv) {
  SimdTier tier = SimdTier::kAuto;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--simd=", 0) == 0) {
      std::string_view name = arg.substr(7);
      if (name == "auto") {
        tier = SimdTier::kAuto;
      } else if (name == "scalar" || name == "none") {
        tier = SimdTier::kNone;
      } else if (name == "neon") {
        tier = SimdTier::kNeon;
      } else if (name == "avx2") {
        tier = SimdTier::kAvx2;
      } else if (name == "avx512") {
        tier = SimdTier::kAvx512;
      } else {
        std::fprintf(stderr, "unknown --simd tier '%.*s'\n",
                     static_cast<int>(name.size()), name.data());
      }
      continue;  // Strip the flag from argv.
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (!SimdTierSupported(tier)) {
    // Downgrade to the tier that will actually run, so the JSON records
    // are stamped with the measured tier, not the requested one.
    std::fprintf(stderr,
                 "--simd=%s not supported on this machine; measuring the "
                 "scalar ops instead\n",
                 SimdTierName(tier));
    tier = SimdTier::kNone;
  }
  return tier;
}

}  // namespace
}  // namespace tsunami

int main(int argc, char** argv) {
  tsunami::SimdTier tier = tsunami::ParseSimdFlag(&argc, argv);
  std::vector<std::string> records;
  tsunami::RunScanKernelAB(tier, &records);
  tsunami::RunBatchApiThroughput(&records);
  if (tsunami::bench::WriteBenchJson("BENCH_scan_kernel.json", "scan_kernel",
                                     records)) {
    std::printf("wrote BENCH_scan_kernel.json\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
