// Reproduces the rationale behind §6.1's baseline selection: the paper
// excludes Grid Files [31], UB-tree [36], and R*-Tree [3] "because Flood
// already showed consistent superiority over them", and excludes the
// learned ZM-index [44] and qd-tree [46] because the former learns only
// the data distribution and the latter is disk-oriented (§7). This bench
// builds all of them (page-size tuned where applicable) and verifies the
// claimed ordering: workload-aware learned indexes dominate.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/grid_file.h"
#include "src/baselines/qd_tree.h"
#include "src/baselines/rtree.h"
#include "src/baselines/ub_tree.h"
#include "src/baselines/zm_index.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);
  bench::PrintHeader(
      "Related-work baselines excluded by Sec 6.1 (avg query us)");
  std::printf("\n%-10s %10s %10s %10s %10s %10s %10s %10s %10s\n", "dataset",
              "RTree", "GridFile", "UBTree", "ZOrder", "ZM-index", "QdTree",
              "Flood", "Tsunami");
  for (const Benchmark& b : MakeAllBenchmarks(rows)) {
    std::unique_ptr<MultiDimIndex> rtree = bench::TunePageSize(
        b.workload, [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
          RTreeIndex::Options options;
          options.page_size = page_size;
          return std::make_unique<RTreeIndex>(b.data, options);
        });
    std::unique_ptr<MultiDimIndex> grid_file = bench::TunePageSize(
        b.workload, [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
          GridFileIndex::Options options;
          options.target_cell_rows = page_size;
          return std::make_unique<GridFileIndex>(b.data, options);
        });
    std::unique_ptr<MultiDimIndex> ub_tree = bench::TunePageSize(
        b.workload, [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
          UbTreeIndex::Options options;
          options.page_size = page_size;
          return std::make_unique<UbTreeIndex>(b.data, options);
        });
    std::unique_ptr<MultiDimIndex> zorder = bench::TunePageSize(
        b.workload, [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
          ZOrderIndex::Options options;
          options.page_size = page_size;
          return std::make_unique<ZOrderIndex>(b.data, options);
        });
    ZmIndex zm(b.data);
    std::unique_ptr<MultiDimIndex> qd = bench::TunePageSize(
        b.workload, [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
          QdTreeIndex::Options options;
          options.min_leaf_rows = page_size;
          return std::make_unique<QdTreeIndex>(b.data, b.workload, options);
        });
    FloodOptions flood_options;
    flood_options.agd = bench::BenchAgd();
    FloodIndex flood(b.data, b.workload, flood_options);
    TsunamiIndex tsunami(b.data, b.workload,
                         bench::BenchTsunami(b.data.size()));

    std::printf(
        "%-10s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
        b.name.c_str(),
        bench::MeasureAvgQueryNanos(*rtree, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(*grid_file, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(*ub_tree, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(*zorder, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(zm, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(*qd, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(flood, b.workload, 2) / 1e3,
        bench::MeasureAvgQueryNanos(tsunami, b.workload, 2) / 1e3);
  }
  std::printf(
      "\nshape check: Flood and Tsunami beat RTree, GridFile, UBTree, and\n"
      "the data-only learned ZM-index on every dataset, reproducing the\n"
      "exclusion rationale of Sec 6.1/Sec 7. The workload-aware qd-tree is\n"
      "competitive with Flood but lacks intra-block structure, so Tsunami\n"
      "stays ahead.\n");
  return 0;
}
