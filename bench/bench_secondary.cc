// Reproduces the paper's motivation for clustered multi-dimensional
// indexes over secondary indexes (§1): a row-id secondary index pays a
// random access per candidate, so it wins only at very high selectivity;
// a clustered scan wins everywhere else. Also reproduces the Hermit [45] /
// Correlation Map [20] observation of §7: on correlated columns a learned
// mapping replaces the O(n) row-id list at a tiny fraction of the size
// while staying scan-based (no pointer chasing).
//
// Sweep: key-filter selectivity from 0.001% to 20% over a table clustered
// by ship_date with a correlated receipt_date (+1..30 days, 0.5% delayed
// shipments as outliers).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/secondary/secondary_index.h"

using namespace tsunami;

namespace {

Dataset MakeShippingData(int64_t rows) {
  Rng rng(321);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value ship = rng.UniformValue(0, 365 * 10);
    Value receipt = ship + rng.UniformValue(1, 30);
    if (rng.NextBool(0.005)) receipt = ship + rng.UniformValue(200, 2000);
    data.AppendRow({ship, receipt, rng.UniformValue(1, 50)});
  }
  return data;
}

Workload MakeQueries(double selectivity, int count) {
  // receipt_date spans ~[1, 5650]; a fraction `selectivity` of it.
  Value domain = 3650 + 30;
  Value span = std::max<Value>(1, static_cast<Value>(selectivity * domain));
  Rng rng(17);
  Workload queries;
  for (int i = 0; i < count; ++i) {
    Value lo = rng.UniformValue(1, domain - span);
    Query q;
    q.filters = {Predicate{1, lo, lo + span - 1}};
    queries.push_back(q);
  }
  return queries;
}

}  // namespace

int main() {
  int64_t rows = RowsFromEnv(400000);
  Dataset data = MakeShippingData(rows);

  // The table is clustered by ship_date for all three contenders; the
  // queries filter receipt_date, which that clustering cannot serve.
  SingleDimIndex clustered(data, MakeQueries(0.01, 8), /*forced_sort_dim=*/0);
  SortedSecondaryIndex btree(data, /*host_dim=*/0, /*key_dim=*/1);
  CorrelationSecondaryIndex hermit(data, /*host_dim=*/0, /*key_dim=*/1);

  bench::PrintHeader(
      "Secondary indexes vs clustered scan (Sec 1 motivation, Sec 7 Hermit)");
  std::printf("%lld rows clustered by ship_date; filters on correlated "
              "receipt_date\n\n",
              static_cast<long long>(rows));
  std::printf("%-12s %15s %15s %15s\n", "selectivity", "clustered(us)",
              "btree-sec(us)", "hermit-sec(us)");
  for (double sel : {0.00001, 0.0001, 0.001, 0.01, 0.05, 0.20, 0.50}) {
    Workload queries = MakeQueries(sel, 40);
    std::printf("%11.3f%% %15.1f %15.1f %15.1f\n", 100.0 * sel,
                bench::MeasureAvgQueryNanos(clustered, queries) / 1e3,
                bench::MeasureAvgQueryNanos(btree, queries) / 1e3,
                bench::MeasureAvgQueryNanos(hermit, queries) / 1e3);
  }
  std::printf("\nindex structure size:\n");
  std::printf("  %-16s %10.1f KiB (row-id list, O(n))\n", "btree-sec",
              btree.IndexSizeBytes() / 1024.0);
  std::printf("  %-16s %10.1f KiB (%d segments, %lld outliers)\n",
              "hermit-sec", hermit.IndexSizeBytes() / 1024.0,
              hermit.num_segments(),
              static_cast<long long>(hermit.num_outliers()));
  std::printf(
      "\nshape check: the row-id secondary index wins at high selectivity,\n"
      "degrades linearly in the candidate count (one random probe each),\n"
      "and crosses below the flat clustered scan at the widest filters;\n"
      "the learned correlation index stays scan-based at every\n"
      "selectivity at ~1/100th the size of the row-id list — reproducing\n"
      "Sec 1's motivation and Sec 7's Hermit discussion.\n");
  return 0;
}
