// Reproduces Table 3: dataset and query characteristics (records, query
// types, dimensions, size) plus the per-dataset selectivity ranges quoted
// in §6.2. Scale with TSUNAMI_SCALE_ROWS (default 200k rows per dataset).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/workload_stats.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);
  bench::PrintHeader("Table 3: Dataset and query characteristics");
  std::printf("%-10s %10s %12s %11s %10s %22s\n", "dataset", "records",
              "query types", "dimensions", "size (MB)",
              "selectivity min/avg/max %");
  for (const Benchmark& b : MakeAllBenchmarks(rows)) {
    double mb = static_cast<double>(b.data.size()) * b.data.dims() *
                sizeof(Value) / 1e6;
    double min_sel = 1.0, max_sel = 0.0, total = 0.0;
    Rng rng(5);
    Dataset sample = SampleDataset(b.data, 50000, &rng);
    for (const Query& q : b.workload) {
      double sel = QuerySelectivity(sample, q);
      min_sel = std::min(min_sel, sel);
      max_sel = std::max(max_sel, sel);
      total += sel;
    }
    std::printf("%-10s %10lld %12d %11d %10.1f %9.3f/%.3f/%.3f\n",
                b.name.c_str(), static_cast<long long>(b.data.size()),
                b.num_query_types, b.data.dims(), mb,
                100.0 * min_sel, 100.0 * total / b.workload.size(),
                100.0 * max_sel);
  }
  std::printf(
      "\npaper (300M/184M/236M/210M rows): TPC-H 5 types/8 dims, Taxi 6/9,\n"
      "Perfmon 5/7, Stocks 5/7; selectivities 0.1%%..5%% — shapes match.\n");
  return 0;
}
