// Reproduces Table 4: index statistics after optimization — Grid Tree
// nodes/depth, leaf regions, points per region, functional mappings and
// conditional CDFs per region, total grid cells — for Tsunami, plus Flood's
// grid cell count.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace tsunami;
  int64_t rows = RowsFromEnv(200000);
  bench::PrintHeader("Table 4: Index statistics after optimization");
  std::printf("%-28s", "statistic");
  std::vector<Benchmark> benches = MakeAllBenchmarks(rows);
  std::vector<TsunamiIndex::Stats> stats;
  std::vector<int64_t> flood_cells;
  for (const Benchmark& b : benches) {
    std::printf(" %10s", b.name.c_str());
    TsunamiIndex tsunami_index(b.data, b.workload, bench::BenchTsunami(b.data.size()));
    stats.push_back(tsunami_index.stats());
    FloodOptions options;
    options.agd = bench::BenchAgd();
    FloodIndex flood(b.data, b.workload, options);
    flood_cells.push_back(flood.num_cells());
  }
  std::printf("\n");
  auto row_i = [&](const char* label, auto get) {
    std::printf("%-28s", label);
    for (const auto& s : stats) {
      std::printf(" %10lld", static_cast<long long>(get(s)));
    }
    std::printf("\n");
  };
  auto row_f = [&](const char* label, auto get) {
    std::printf("%-28s", label);
    for (const auto& s : stats) std::printf(" %10.2f", get(s));
    std::printf("\n");
  };
  std::printf("Tsunami\n");
  row_i("  num query types", [](const auto& s) { return s.num_query_types; });
  row_i("  num Grid Tree nodes", [](const auto& s) { return s.tree_nodes; });
  row_i("  Grid Tree depth", [](const auto& s) { return s.tree_depth; });
  row_i("  num leaf regions", [](const auto& s) { return s.num_regions; });
  row_i("  min points per region",
        [](const auto& s) { return s.min_region_points; });
  row_i("  median points per region",
        [](const auto& s) { return s.median_region_points; });
  row_i("  max points per region",
        [](const auto& s) { return s.max_region_points; });
  row_f("  avg FMs per region",
        [](const auto& s) { return s.avg_fms_per_region; });
  row_f("  avg CCDFs per region",
        [](const auto& s) { return s.avg_ccdfs_per_region; });
  row_i("  total num grid cells",
        [](const auto& s) { return s.total_cells; });
  std::printf("Flood\n");
  std::printf("%-28s", "  num grid cells");
  for (int64_t cells : flood_cells) {
    std::printf(" %10lld", static_cast<long long>(cells));
  }
  std::printf(
      "\n\npaper shapes to check: shallow trees (depth <= ~4), tens of\n"
      "regions, points per region varying by ~10x, some FMs/CCDFs per\n"
      "region, and Tsunami often using fewer total cells than Flood.\n");
  return 0;
}
