// Shared helpers for the paper-reproduction bench binaries: index
// construction (with page-size tuning for the non-learned baselines, §6.3),
// workload timing, and table printing.
#ifndef TSUNAMI_BENCH_BENCH_UTIL_H_
#define TSUNAMI_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/baselines/kdtree.h"
#include "src/baselines/octree.h"
#include "src/baselines/single_dim.h"
#include "src/baselines/zorder.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/core/tsunami.h"
#include "src/datasets/datasets.h"
#include "src/exec/thread_pool.h"
#include "src/flood/flood.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace bench {

inline AgdOptions BenchAgd() {
  AgdOptions agd;
  agd.max_sample_points = 2048;
  agd.max_sample_queries = 64;
  agd.max_iters = 3;
  agd.max_cells = 1 << 18;
  // Calibrate the cost-model weights once per process so the optimizer
  // trades lookups vs scans at this machine's actual costs.
  static const CostWeights kCalibrated = CalibrateCostWeights();
  agd.weights = kCalibrated;
  return agd;
}

/// Tsunami options scaled to the dataset: at laptop scale the per-region
/// query overhead is proportionally larger than at the paper's 200M+ rows,
/// so the region budget grows with the row count.
inline TsunamiOptions BenchTsunami(int64_t rows = 200000) {
  TsunamiOptions options;
  options.agd = BenchAgd();
  options.sample_rows = 100000;
  options.tree.max_regions = static_cast<int>(
      std::clamp<int64_t>(rows / 25000, 4, 40));
  return options;
}

struct BuiltIndex {
  std::string name;
  std::unique_ptr<MultiDimIndex> index;
  double build_seconds = 0.0;
};

/// Average wall-clock nanoseconds per query over the workload.
inline double MeasureAvgQueryNanos(const MultiDimIndex& index,
                                   const Workload& workload,
                                   int repeats = 1) {
  if (workload.empty()) return 0.0;
  int64_t sink = 0;
  Timer timer;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const Query& q : workload) sink += index.Execute(q).agg;
  }
  double total = static_cast<double>(timer.ElapsedNanos());
  if (sink < 0) std::fprintf(stderr, "impossible\n");
  return total / (static_cast<double>(workload.size()) * repeats);
}

inline double ThroughputQps(double avg_nanos) {
  return avg_nanos > 0 ? 1e9 / avg_nanos : 0.0;
}

/// Average wall-clock nanoseconds per query driving the workload through
/// the batch API: one ExecuteBatch submission per repeat, sharing `ctx`'s
/// thread pool and scan options.
inline double MeasureAvgQueryNanosBatch(const MultiDimIndex& index,
                                        const Workload& workload,
                                        ExecContext& ctx, int repeats = 1) {
  if (workload.empty()) return 0.0;
  int64_t sink = 0;
  Timer timer;
  for (int rep = 0; rep < repeats; ++rep) {
    std::vector<QueryResult> results = index.ExecuteBatch(
        std::span<const Query>(workload.data(), workload.size()), ctx);
    for (const QueryResult& r : results) sink += r.agg;
  }
  double total = static_cast<double>(timer.ElapsedNanos());
  if (sink == INT64_MIN) std::fprintf(stderr, "impossible\n");
  return total / (static_cast<double>(workload.size()) * repeats);
}


/// Picks the fastest page size for a page-based baseline by building at a
/// few page sizes and timing a query subsample — the "optimally tuned"
/// treatment the paper gives the non-learned indexes (§6.3).
template <typename BuildFn>
std::unique_ptr<MultiDimIndex> TunePageSize(const Workload& workload,
                                            const BuildFn& build) {
  Workload probe(workload.begin(),
                 workload.begin() +
                     std::min<size_t>(workload.size(), 32));
  std::unique_ptr<MultiDimIndex> best;
  double best_nanos = 0.0;
  for (int64_t page_size : {1024, 4096, 16384}) {
    std::unique_ptr<MultiDimIndex> candidate = build(page_size);
    double nanos = MeasureAvgQueryNanos(*candidate, probe);
    if (best == nullptr || nanos < best_nanos) {
      best = std::move(candidate);
      best_nanos = nanos;
    }
  }
  return best;
}

/// Builds the full index roster of §6.1 for one benchmark.
inline std::vector<BuiltIndex> BuildAllIndexes(const Benchmark& bench,
                                               bool include_full_scan = true) {
  std::vector<BuiltIndex> built;
  auto add = [&](std::unique_ptr<MultiDimIndex> index, double seconds) {
    built.push_back(BuiltIndex{index->Name(), std::move(index), seconds});
  };
  Timer timer;
  if (include_full_scan) {
    timer.Reset();
    add(std::make_unique<FullScanIndex>(bench.data), timer.ElapsedSeconds());
  }
  timer.Reset();
  add(std::make_unique<SingleDimIndex>(bench.data, bench.workload),
      timer.ElapsedSeconds());
  timer.Reset();
  add(TunePageSize(bench.workload,
                   [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
                     ZOrderIndex::Options options;
                     options.page_size = page_size;
                     return std::make_unique<ZOrderIndex>(bench.data, options);
                   }),
      timer.ElapsedSeconds());
  timer.Reset();
  add(TunePageSize(bench.workload,
                   [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
                     HyperOctree::Options options;
                     options.page_size = page_size;
                     return std::make_unique<HyperOctree>(bench.data, options);
                   }),
      timer.ElapsedSeconds());
  timer.Reset();
  add(TunePageSize(bench.workload,
                   [&](int64_t page_size) -> std::unique_ptr<MultiDimIndex> {
                     KdTree::Options options;
                     options.page_size = page_size;
                     return std::make_unique<KdTree>(bench.data,
                                                     bench.workload, options);
                   }),
      timer.ElapsedSeconds());
  timer.Reset();
  {
    FloodOptions options;
    options.agd = BenchAgd();
    add(std::make_unique<FloodIndex>(bench.data, bench.workload, options),
        timer.ElapsedSeconds());
  }
  timer.Reset();
  add(std::make_unique<TsunamiIndex>(bench.data, bench.workload,
                                     BenchTsunami(bench.data.size())),
      timer.ElapsedSeconds());
  return built;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Minimal JSON record builder for BENCH_*.json artifacts: an ordered flat
/// object of numeric / string fields. No escaping beyond quoting — bench
/// keys and names are plain identifiers.
class JsonRecord {
 public:
  JsonRecord& Num(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return Raw(key, buffer);
  }
  JsonRecord& Int(const std::string& key, int64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonRecord& Str(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + value + "\"");
  }
  std::string Finish() const { return "{" + body_ + "}"; }

 private:
  JsonRecord& Raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + key + "\": " + value;
    return *this;
  }
  std::string body_;
};

/// The git revision the benchmark binary is running against, resolved once
/// per process ("unknown" outside a work tree / without git). A perf row
/// that cannot be tied back to a commit is unactionable in a regression
/// hunt.
inline const std::string& GitRevision() {
  static const std::string revision = [] {
    std::string out = "unknown";
    if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buffer[64];
      if (std::fgets(buffer, sizeof(buffer), p) != nullptr) {
        std::string line(buffer);
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (!line.empty()) out = line;
      }
      ::pclose(p);
    }
    return out;
  }();
  return revision;
}

/// Compile-time build configuration: numbers from a debug, sanitized, or
/// fault-injected binary must never be compared against release numbers.
inline const char* BuildConfig() {
  return
#if !defined(NDEBUG)
      "debug"
#else
      "release"
#endif
#if defined(TSUNAMI_FAULT_INJECTION)
      "+fi"
#endif
#if defined(__SANITIZE_ADDRESS__)
      "+asan"
#elif defined(__SANITIZE_THREAD__)
      "+tsan"
#endif
      ;
}

/// A BENCH_*.json record pre-stamped with the execution environment every
/// perf record needs to stay attributable across machines and configs: the
/// active SIMD tier, the thread count, the batch size the measurement used
/// (1 = per-query dispatch), and the provenance pair (git revision, build
/// config) that makes the row reproducible after the fact. Benches with a
/// synthetic workload also stamp their generator seed via `rng_seed`.
inline JsonRecord EnvRecord(const std::string& shape,
                            const std::string& simd_tier, int threads,
                            int64_t batch_size) {
  JsonRecord record;
  record.Str("shape", shape)
      .Str("simd_tier", simd_tier)
      .Int("threads", threads)
      .Int("batch_size", batch_size)
      .Str("git_revision", GitRevision())
      .Str("build_config", BuildConfig());
  return record;
}

/// Writes `{"bench": <name>, "results": [records...]}` to `path`.
inline bool WriteBenchJson(const std::string& path, const std::string& name,
                           const std::vector<std::string>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
               name.c_str());
  for (size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f, "    %s%s\n", records[i].c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace bench
}  // namespace tsunami

#endif  // TSUNAMI_BENCH_BENCH_UTIL_H_
