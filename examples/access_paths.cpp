// Access-path routing demo: one table, three access paths — a clustered
// Tsunami index, a conventional row-id secondary index, and a learned
// correlation secondary index — with a router that learns per query type
// which one to dispatch to (§1: Tsunami as a building block inside a
// larger system).
//
//   $ ./build/examples/access_paths
#include <cstdio>
#include <memory>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/query/router.h"
#include "src/secondary/secondary_index.h"

using namespace tsunami;

namespace {

// An orders table: (order_date, order_id, amount). Clustered by date;
// order_id grows with date (tight correlation — ids are assigned in
// arrival order).
Dataset MakeOrders(int64_t rows) {
  Rng rng(99);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value date = i / 100;
    Value order_id = i * 10 + rng.UniformValue(0, 9);
    data.AppendRow({date, order_id, rng.UniformValue(100, 99999)});
  }
  return data;
}

}  // namespace

int main() {
  Dataset data = MakeOrders(400000);
  std::printf("orders table: %lld rows (order_date, order_id, amount)\n\n",
              static_cast<long long>(data.size()));

  // The mixed workload an order-management dashboard produces: exact
  // order-id lookups (support tickets) and date-range revenue scans
  // (reports).
  Rng rng(5);
  Workload calibration;
  for (int i = 0; i < 80; ++i) {
    Query lookup;
    Value id = rng.UniformValue(0, data.size() - 1) * 10;
    lookup.filters = {Predicate{1, id, id + 9}};
    calibration.push_back(lookup);

    Query report;
    Value day = rng.UniformValue(0, 3800);
    report.filters = {Predicate{0, day, day + 150}};
    report.agg = AggKind::kSum;
    report.agg_dim = 2;
    calibration.push_back(report);
  }

  // Three access paths over the same table. The clustered index is laid
  // out for the reporting workload (that is what the table is sorted
  // for); the lookup traffic is what secondary indexes exist to absorb.
  Workload reports_only;
  for (const Query& q : calibration) {
    if (q.agg == AggKind::kSum) reports_only.push_back(q);
  }
  TsunamiOptions options;
  options.sample_rows = 50000;
  TsunamiIndex clustered(data, reports_only, options);
  SortedSecondaryIndex btree(data, /*host_dim=*/0, /*key_dim=*/1);
  CorrelationSecondaryIndex hermit(data, /*host_dim=*/0, /*key_dim=*/1);
  std::printf("access paths:\n");
  for (const MultiDimIndex* index :
       {static_cast<const MultiDimIndex*>(&clustered),
        static_cast<const MultiDimIndex*>(&btree),
        static_cast<const MultiDimIndex*>(&hermit)}) {
    std::printf("  %-16s %10.1f KiB index overhead\n",
                index->Name().c_str(), index->IndexSizeBytes() / 1024.0);
  }

  AccessPathRouter router({&clustered, &btree, &hermit}, data, calibration);
  std::printf("\n%s\n", router.Describe().c_str());

  // Verify routed execution end to end against a full scan.
  FullScanIndex full(data);
  int mismatches = 0;
  for (const Query& q : calibration) {
    if (router.Execute(q).agg != full.Execute(q).agg) ++mismatches;
  }
  std::printf("verification: %d mismatches across %zu routed queries\n",
              mismatches, calibration.size());
  return mismatches == 0 ? 0 : 1;
}
