// Demo of the batched, multi-aggregate query API:
//   1. build Tsunami over a synthetic workload;
//   2. Prepare + ExecuteBatch a shuffled batch through a thread pool and
//      check it against per-query Execute;
//   3. one multi-aggregate query (SUM+COUNT+MIN+MAX in a single pass);
//   4. the SQL front-end's Prepare / RunBatch with a multi-aggregate
//      SELECT list;
//   5. cooperative cancellation via the ExecContext flag.
#include <atomic>
#include <cstdio>

#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"
#include "src/query/engine.h"

using namespace tsunami;

int main() {
  // A small correlated 3-column table and a mixed range workload.
  Rng rng(7);
  const int64_t n = 200000;
  Dataset data(3, {});
  data.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 256; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    q.type = i % 2;
    workload.push_back(q);
  }

  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data, workload, options);
  std::printf("built %s over %lld rows\n", index.Name().c_str(),
              static_cast<long long>(data.size()));

  // --- Batched execution through a shared thread pool -----------------------
  ThreadPool pool(ThreadPool::DefaultThreads());
  ExecContext ctx(&pool);
  Timer timer;
  std::vector<QueryResult> batch = RunWorkload(index, workload, ctx);
  double batch_seconds = timer.ElapsedSeconds();
  timer.Reset();
  int64_t mismatches = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    QueryResult serial = index.Execute(workload[i]);
    mismatches += serial.agg != batch[i].agg ||
                  serial.matched != batch[i].matched;
  }
  double serial_seconds = timer.ElapsedSeconds();
  std::printf(
      "batch of %zu queries: %.2f ms on %d threads vs %.2f ms per-query "
      "(%.2fx), %lld mismatches\n",
      workload.size(), batch_seconds * 1e3, pool.num_threads(),
      serial_seconds * 1e3,
      batch_seconds > 0 ? serial_seconds / batch_seconds : 0.0,
      static_cast<long long>(mismatches));
  std::printf("batch stats: %lld queries, %lld scanned, %lld matched, "
              "%lld ranges\n",
              static_cast<long long>(ctx.stats.queries),
              static_cast<long long>(ctx.stats.scanned),
              static_cast<long long>(ctx.stats.matched),
              static_cast<long long>(ctx.stats.cell_ranges));

  // --- One pass, four aggregates --------------------------------------------
  Query multi;
  multi.filters.push_back(Predicate{0, 100000, 600000});
  multi.SetAggregates({{AggKind::kSum, 2},
                       {AggKind::kCount, 0},
                       {AggKind::kMin, 1},
                       {AggKind::kMax, 1}});
  QueryResult r = index.Execute(multi);
  std::printf(
      "single pass: SUM(c)=%lld COUNT(*)=%lld MIN(b)=%lld MAX(b)=%lld "
      "(%lld rows matched)\n",
      static_cast<long long>(r.agg_value(0)),
      static_cast<long long>(r.agg_value(1)),
      static_cast<long long>(r.agg_value(2)),
      static_cast<long long>(r.agg_value(3)),
      static_cast<long long>(r.matched));

  // --- SQL front-end: Prepare once, run as a batch --------------------------
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b", "c"};
  QueryEngine engine(&index, schema);
  std::vector<PreparedStatement> stmts = {
      engine.Prepare("SELECT SUM(c), COUNT(*), AVG(c) FROM t "
                     "WHERE a BETWEEN 100000 AND 600000"),
      engine.Prepare("SELECT COUNT(*) FROM t WHERE b < 0 OR b > 990000"),
  };
  ExecContext sql_ctx(&pool);
  std::vector<SqlResult> sql_results = engine.RunBatch(stmts, sql_ctx);
  for (const SqlResult& result : sql_results) {
    if (!result.ok) {
      std::printf("sql error: %s\n", result.error.c_str());
      continue;
    }
    std::printf("sql:");
    for (double v : result.values) std::printf(" %.2f", v);
    std::printf("\n");
  }

  // --- Cooperative cancellation ---------------------------------------------
  std::atomic<bool> cancel{true};
  ExecContext cancelled(&pool);
  cancelled.cancel = &cancel;
  std::vector<QueryResult> skipped = RunWorkload(index, workload, cancelled);
  std::printf("cancelled batch executed %lld of %zu queries\n",
              static_cast<long long>(cancelled.stats.queries),
              skipped.size());
  return mismatches == 0 ? 0 : 1;
}
