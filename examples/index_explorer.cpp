// Index explorer: inspect what Tsunami's optimizer decided for a correlated
// dataset — the chosen skeletons (functional mappings, conditional CDFs),
// partition counts, and the Grid Tree layout. Useful for understanding why
// the index is shaped the way it is.
//
//   $ ./build/examples/index_explorer
#include <cmath>
#include <cstdio>
#include <numeric>

#include "src/core/cost_model.h"
#include "src/core/optimizer.h"
#include "src/datasets/stocks.h"
#include "src/datasets/workload_builder.h"

using namespace tsunami;

int main() {
  Benchmark bench = MakeStocksBenchmark(RowsFromEnv(100000));
  std::printf("stocks: %lld rows; dimensions:",
              static_cast<long long>(bench.data.size()));
  for (int d = 0; d < bench.data.dims(); ++d) {
    std::printf(" %d=%s", d, bench.dim_names[d].c_str());
  }
  std::printf("\n\n");

  std::vector<uint32_t> rows(bench.data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  AgdOptions options;
  options.weights = CalibrateCostWeights();
  GridCostEvaluator eval(bench.data, rows, bench.workload,
                         options.max_sample_points,
                         options.max_sample_queries, options.seed);

  std::printf("pairwise correlations the optimizer can exploit:\n");
  for (int x = 0; x < bench.data.dims(); ++x) {
    for (int y = x + 1; y < bench.data.dims(); ++y) {
      double corr = eval.correlation(x, y);
      if (std::abs(corr) < 0.5) continue;
      std::printf("  %-10s ~ %-10s  corr=%+.3f  fm-band=%4.1f%%  "
                  "empty-cells=%2.0f%%\n",
                  bench.dim_names[x].c_str(), bench.dim_names[y].c_str(),
                  corr, 100 * eval.FmErrorBandRatio(x, y),
                  100 * eval.EmptyCellFraction(x, y));
    }
  }

  GridPlan plan = OptimizeGridWithEvaluator(eval, OptimizeMethod::kAgd,
                                            options);
  std::printf("\nAGD's plan for one grid over the whole space:\n");
  std::printf("  skeleton: %s\n", plan.skeleton.ToString().c_str());
  std::printf("  partitions:");
  for (int d = 0; d < bench.data.dims(); ++d) {
    std::printf(" %s=%d", bench.dim_names[d].c_str(), plan.partitions[d]);
  }
  std::printf("\n  sort dimension: %s\n",
              plan.sort_dim >= 0 ? bench.dim_names[plan.sort_dim].c_str()
                                 : "(auto)");
  std::printf("  predicted cost: %.1f us/query\n",
              plan.predicted_cost / 1000.0);
  std::printf(
      "\nreading the skeleton: 'a->b' removes dimension a from the grid and\n"
      "rewrites its filters onto b via a functional mapping; 'a|b'\n"
      "partitions a equi-depth within each partition of b (conditional\n"
      "CDF); bare names are partitioned independently, Flood-style.\n");
  return 0;
}
