// Periodic-pattern demo (§8 "Complex Correlations"): an operations
// monitoring table where CPU load follows the hour of day. The period
// detector discovers the daily cycle from the data, a derived phase column
// makes it indexable, and phase-of-day queries ("high load between 2am and
// 3am, any day") run orders of magnitude cheaper than post-filtering.
//
//   $ ./build/examples/periodic_metrics
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/random.h"
#include "src/core/periodic.h"
#include "src/core/tsunami.h"

using namespace tsunami;

namespace {

constexpr Value kMinutesPerDay = 1440;
constexpr int kDays = 90;

// (timestamp_minutes, cpu_load, machine_id): load follows a daily sinusoid
// (busy evenings, quiet nights) plus noise and a per-machine offset.
Dataset MakeMetrics(int64_t rows) {
  Rng rng(2024);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value t = rng.UniformValue(0, Value{kDays} * kMinutesPerDay - 1);
    Value machine = rng.UniformValue(0, 199);
    double hour_angle = 2.0 * M_PI *
                        static_cast<double>(PhaseOf(t, kMinutesPerDay)) /
                        kMinutesPerDay;
    Value load = static_cast<Value>(520.0 - 380.0 * std::cos(hour_angle) +
                                    machine / 4 + 35.0 * rng.NextGaussian());
    // A misbehaving job occasionally spikes a machine far above its
    // time-of-day baseline — the anomalies the night-hours queries hunt.
    if (rng.NextBool(0.002)) load += 600;
    data.AppendRow({t, load, machine});
  }
  return data;
}

}  // namespace

int main() {
  Dataset raw = MakeMetrics(300000);
  std::printf("perfmon-style table: %lld rows (timestamp, cpu_load, "
              "machine), %d days\n",
              static_cast<long long>(raw.size()), kDays);

  // 1. Detect the period. Candidates are the natural calendar units; the
  // detector scores how much of cpu_load's variance each one explains.
  std::vector<Value> candidates = {60, 720, kMinutesPerDay,
                                   7 * kMinutesPerDay};
  for (const PeriodFit& fit :
       ScorePeriods(raw, /*driver=*/0, /*dependent=*/1, candidates)) {
    std::printf("  candidate period %6lld min: explains %4.1f%% of load "
                "variance\n",
                static_cast<long long>(fit.period), 100.0 * fit.score);
  }
  std::vector<PhaseColumnSpec> specs =
      SuggestPhaseColumns(raw, candidates);
  if (specs.empty()) {
    std::printf("no periodic pattern found\n");
    return 1;
  }
  std::printf("detected: phase(dim %d) with period %lld minutes\n",
              specs[0].source_dim,
              static_cast<long long>(specs[0].period));

  // 2. Augment: append minute_of_day = timestamp mod 1440 as a column.
  Dataset augmented = AugmentWithPhases(raw, specs);
  const int kPhaseDim = 3;

  // 3. Phase-of-day workload: which machines run hot in a given hour of
  // night, across the whole retention window?
  Rng rng(7);
  Workload workload;
  for (int i = 0; i < 100; ++i) {
    Value minute = rng.UniformValue(0, 5 * 60);  // Night hours.
    Query q;
    q.filters = {Predicate{kPhaseDim, minute, minute + 59},
                 Predicate{1, 700, kValueMax}};  // High load.
    q.type = 0;
    workload.push_back(q);
  }

  TsunamiOptions options;
  options.sample_rows = 50000;
  TsunamiIndex index(augmented, workload, options);
  std::printf("\nbuilt Tsunami over the augmented table: %d regions, "
              "%lld cells, %.1f KiB\n",
              index.stats().num_regions,
              static_cast<long long>(index.stats().total_cells),
              index.IndexSizeBytes() / 1024.0);

  // 4. Compare against the alternative on the raw schema: fetch every
  // high-load row and post-filter by minute of day in the application.
  FullScanIndex full(augmented);
  int64_t index_scanned = 0, post_filter_rows = 0, answer_rows = 0;
  for (const Query& q : workload) {
    QueryResult got = index.Execute(q);
    QueryResult want = full.Execute(q);
    if (got.matched != want.matched) {
      std::printf("MISMATCH: %lld vs %lld\n",
                  static_cast<long long>(got.matched),
                  static_cast<long long>(want.matched));
      return 1;
    }
    answer_rows += got.matched;
    index_scanned += got.scanned;
    Query raw_q;  // What the raw schema can express: the load band only.
    raw_q.filters = {q.filters[1]};
    post_filter_rows += full.Execute(raw_q).matched;
  }
  std::printf("\n%zu phase-of-day queries, %lld matching rows total\n",
              workload.size(), static_cast<long long>(answer_rows));
  std::printf("  augmented index:      %10lld rows touched\n",
              static_cast<long long>(index_scanned));
  std::printf("  raw + post-filter:    %10lld rows fetched (%.0fx more)\n",
              static_cast<long long>(post_filter_rows),
              static_cast<double>(post_filter_rows) /
                  static_cast<double>(std::max<int64_t>(index_scanned, 1)));
  return 0;
}
