// Persistence demo (§8 "Persistence"): build a Tsunami index, snapshot it
// to disk, reopen it, and show that (a) reopening skips optimization and
// data sorting entirely, and (b) the reopened index answers queries
// identically while touching identical physical ranges.
//
//   $ ./build/examples/persistence_demo
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "src/common/stats.h"
#include "src/core/tsunami.h"
#include "src/datasets/tpch.h"
#include "src/datasets/workload_builder.h"
#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"

using namespace tsunami;

int main() {
  Benchmark bench = MakeTpchBenchmark(RowsFromEnv(200000));
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsunami_demo.snapshot")
          .string();

  // 1. Cold build: optimize + sort (regions in parallel, §6.1).
  TsunamiOptions options;
  options.build_threads = ThreadPool::DefaultThreads();
  Timer timer;
  TsunamiIndex index(bench.data, bench.workload, options);
  double build_seconds = timer.ElapsedSeconds();
  std::printf("cold build over %lld rows: %.2fs (%.2fs optimize, %.2fs sort)\n",
              static_cast<long long>(bench.data.size()), build_seconds,
              index.stats().optimize_seconds, index.stats().sort_seconds);

  // 2. Snapshot.
  timer.Reset();
  std::string error;
  if (!index.SaveToFile(path, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("snapshot written in %.2fs: %s (%lld bytes; raw data is %lld)\n",
              timer.ElapsedSeconds(), path.c_str(),
              static_cast<long long>(std::filesystem::file_size(path)),
              static_cast<long long>(index.store().DataSizeBytes()));

  // 3. Reopen: no optimizer, no sort — just decode and attach.
  timer.Reset();
  std::unique_ptr<TsunamiIndex> reopened =
      TsunamiIndex::LoadFromFile(path, &error);
  double load_seconds = timer.ElapsedSeconds();
  if (reopened == nullptr) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("reopened in %.2fs (%.1fx faster than the cold build)\n",
              load_seconds, build_seconds / load_seconds);

  // 4. Equivalence + performance of the reopened index.
  WorkloadRunStats original = MeasureWorkload(index, bench.workload);
  WorkloadRunStats restored = MeasureWorkload(*reopened, bench.workload);
  std::printf("original: %.1f us/query, scanned %lld rows total\n",
              original.avg_query_micros,
              static_cast<long long>(original.total_scanned));
  std::printf("reopened: %.1f us/query, scanned %lld rows total\n",
              restored.avg_query_micros,
              static_cast<long long>(restored.total_scanned));
  bool identical = restored.total_scanned == original.total_scanned &&
                   restored.total_matched == original.total_matched &&
                   restored.total_cell_ranges == original.total_cell_ranges;
  std::printf("identical execution profile: %s\n", identical ? "yes" : "NO");

  std::remove(path.c_str());
  return identical ? 0 : 1;
}
