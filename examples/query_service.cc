// Multi-client soak demo of the QueryService serving path:
//   1. build Tsunami over a synthetic correlated table;
//   2. several "dashboard" client threads fire repeated ad-hoc SQL through
//      a service-attached QueryEngine — after the first arrival of each
//      statement shape, every re-Prepare binds to the plan cache;
//   3. concurrently, "analyst" client threads submit skewed batches (one
//      giant region query + many needles) via SubmitBatch/Await, whose
//      chunks interleave in the work-stealing deques;
//   4. everything self-checks against per-query Execute, and the service
//      stats (cache hit rate, steals, queue depth) are printed at the end.
//
// With --soak (and a -DTSUNAMI_FAULT_INJECTION=ON build) the batch clients
// run under injected faults — thrown chunks and flipped block checksums —
// and the self-check relaxes to fail-closed semantics: a query may come
// back failed (identity result, truthful outcome) or flagged degraded, but
// a result claiming to be complete and healthy must still be exact.
//
// With --net the same fail-closed soak runs over the real wire: a
// TsunamiServer on an ephemeral loopback port, >=1000 concurrent client
// connections, wire-level faults (under --soak), a stalled-reader eviction
// check, and a graceful drain to finish.
//
// With --ingest the static index is replaced by an ingest::IngestStore and
// the soak becomes writers-vs-readers-vs-reorganization: writer threads
// append rows while reader threads run count-all queries whose answers must
// stay inside the monotone visibility window, a chaos thread forces chunk
// rolls, compactions, and workload reorganizations, and (under --soak on an
// FI build) the ingest fault sites abort compactions and stall publishes
// mid-swap. The run ends with a quiesced replay that must be bit-identical
// to a full-scan reference over base + every inserted row.
//
// With --durable the soak becomes kill -9 crash recovery: a forked child
// ingests deterministic batches through a DurableIngestStore (WAL + fsync'd
// group commit + fold checkpoints), appending each batch index to an ack
// file only AFTER the durable ack. The parent SIGKILLs the child mid-ingest,
// recovers the directory in-process, and verifies the durability contract:
// every acked batch is present, the recovered rows are an exact batch-
// aligned prefix of the deterministic insert sequence (no unacked row
// double-applied), and 32 range queries are bit-identical to a full-scan
// reference. Repeats for several kill/recover cycles; under --soak (FI
// builds) the WAL fault sites — including injected fs.enospc disk-full
// latches — are armed inside the child too.
//
// With --pressure the soak runs the system against its resource budgets:
// phase 1 paces concurrent writers through a ResourceGovernor delta-backlog
// budget (with gov.mem_pressure and scrub.corrupt_block armed under --soak)
// while a Scrubber repairs rotted blocks in place; phase 2 runs a durable
// store against a tiny WAL-disk budget, small segment rotation, and a
// persistent fs.enospc storm — inserts latch, retry, drain, and re-arm —
// and both phases end with a quiesced replay that must be bit-identical to
// a full-scan reference over base + every admitted row.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/full_scan.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/common/resource_governor.h"
#include "src/common/stats.h"
#include "src/core/tsunami.h"
#include "src/durability/durable_store.h"
#include "src/ingest/ingest_store.h"
#include "src/ingest/scrubber.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/query/engine.h"
#include "src/serve/query_service.h"

using namespace tsunami;

// --- --net: soak the real wire front end over loopback -----------------------
// Storms a TsunamiServer with 1024 simultaneously-open client connections,
// then runs pipelined queries with bounded retry on every one. Under --soak
// (FI builds) the wire fault sites are armed too, and the self-check is the
// same fail-closed predicate as the in-process soak: a query may fail, shed,
// or time out *truthfully*, but a completed, healthy answer must be
// bit-identical to Execute(). Ends with a stalled-reader eviction check and
// a graceful drain that must answer in-flight work while refusing new.
static bool RunNetSoak(TsunamiIndex& index, bool soak) {
  using namespace tsunami::net;
  std::printf("\n--- net soak: tsunami_serverd front end over loopback ---\n");

  ServiceOptions sv;
  sv.max_queued_queries = 256;
  sv.max_inflight_per_client = 32;
  QueryService service(&index, sv);

  ServerOptions so;
  so.listen_backlog = 1024;
  so.max_connections = 2048;
  so.max_inflight_per_conn = 8;
  // Small socket buffers + low watermarks: the stalled-reader check below
  // backs the write path up within a handful of frames.
  so.sndbuf_bytes = 4096;
  so.pause_read_watermark = 16u << 10;
  so.resume_read_watermark = 4u << 10;
  so.write_stall_timeout_seconds = 0.5;
  so.idle_timeout_seconds = 30.0;
  so.drain_timeout_seconds = 10.0;
  TsunamiServer server(&service, so);
  std::string err;
  if (!server.Start(&err)) {
    std::printf("net soak: server start failed: %s\n", err.c_str());
    return false;
  }
  std::thread loop([&] { server.Run(); });

  bool faults_armed = false;
  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    auto arm = [](const char* site, double p, uint64_t seed) {
      fault::FaultSpec spec;
      spec.probability = p;
      spec.seed = seed;
      fault::Arm(site, spec);
    };
    arm("net.accept_fail", 0.01, 91);
    arm("net.short_write", 0.05, 92);
    arm("net.reset", 0.004, 93);
    arm("net.partial_frame", 0.01, 94);
    arm("sched.task_throw", 0.02, 95);
    arm("storage.checksum", 0.01, 96);
    for (int d = 0; d < index.store().dims(); ++d) {
      index.store().encoded(d).MarkAllUnverified();
    }
    faults_armed = true;
    std::printf("net soak: wire + service faults armed\n");
#else
    std::printf("net soak: no TSUNAMI_FAULT_INJECTION — running fault-free\n");
#endif
  }

  constexpr int kThreads = 8;
  constexpr int kConnsPerThread = 128;  // 1024 concurrent connections.
  constexpr int kQueriesPerConn = 4;
  std::atomic<int64_t> offered{0}, completed{0}, mismatches{0};
  std::atomic<int64_t> failed_closed{0}, degraded{0}, transport_failed{0};
  // Indexed by QueryOutcome; printed with ToString below.
  std::array<std::atomic<int64_t>, 7> outcome_tally{};
  std::barrier sync(kThreads + 1);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng thread_rng(500 + t);
      ClientOptions copts;
      copts.port = server.port();
      copts.rng_seed = 700 + static_cast<uint64_t>(t);
      std::vector<std::unique_ptr<TsunamiClient>> conns;
      conns.reserve(kConnsPerThread);
      for (int i = 0; i < kConnsPerThread; ++i) {
        conns.push_back(std::make_unique<TsunamiClient>(copts));
        conns.back()->Connect();
      }
      sync.arrive_and_wait();  // All 1024 connections are open right now.
      sync.arrive_and_wait();  // Main thread has checked the gauge.
      for (std::unique_ptr<TsunamiClient>& conn : conns) {
        for (int q = 0; q < kQueriesPerConn; ++q) {
          Query needle;
          Value lo = thread_rng.UniformValue(0, 990000);
          needle.filters.push_back(Predicate{0, lo, lo + 4000});
          offered.fetch_add(1, std::memory_order_relaxed);
          ClientResult r = conn->Run(needle, /*priority=*/0,
                                     /*deadline_seconds=*/5.0);
          if (!r.transport_ok) {
            transport_failed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (r.error != WireError::kNone) {
            // Typed refusal (queue full / busy / draining): fail-closed.
            failed_closed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const size_t idx = static_cast<size_t>(r.outcome);
          if (idx < outcome_tally.size()) {
            outcome_tally[idx].fetch_add(1, std::memory_order_relaxed);
          }
          if (r.outcome != QueryOutcome::kCompleted) {
            failed_closed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          QueryResult want = index.Execute(needle);
          if (r.result.degraded || want.degraded) {
            degraded.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
          if (r.result.agg != want.agg ||
              r.result.matched != want.matched ||
              r.result.scanned != want.scanned) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  sync.arrive_and_wait();
  // Every client socket is open; give the accept loop time to chew through
  // the SYN backlog, then verify the server really holds >=1000 at once.
  bool concurrency_ok = false;
  {
    Timer hold;
    while (hold.ElapsedSeconds() < 15.0) {
      if (server.stats().active_connections >= 1000) {
        concurrency_ok = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  std::printf("net soak: concurrent connections peak %lld (want >= 1000)\n",
              static_cast<long long>(server.stats().active_connections));
  sync.arrive_and_wait();
  for (std::thread& th : threads) th.join();

#if defined(TSUNAMI_FAULT_INJECTION)
  if (faults_armed) {
    std::printf(
        "net soak faults: accept_fail=%lld short_write=%lld reset=%lld "
        "partial_frame=%lld chunk_throws=%lld checksum_flips=%lld\n",
        static_cast<long long>(fault::FireCount("net.accept_fail")),
        static_cast<long long>(fault::FireCount("net.short_write")),
        static_cast<long long>(fault::FireCount("net.reset")),
        static_cast<long long>(fault::FireCount("net.partial_frame")),
        static_cast<long long>(fault::FireCount("sched.task_throw")),
        static_cast<long long>(fault::FireCount("storage.checksum")));
    // The stall and drain checks below are deterministic contracts; run
    // them fault-free.
    fault::DisarmAll();
  }
#endif

  // A reader that never reads: ~3KB responses against 4KB socket buffers
  // must trip the write-stall timer, not buffer without bound. The
  // empty-range filter keeps execution free; the response still carries
  // all 3000 accumulators.
  {
    ClientOptions copts;
    copts.port = server.port();
    copts.rcvbuf_bytes = 4096;
    TsunamiClient stalled(copts);
    Query wide;
    wide.filters.push_back(Predicate{0, 1, 0});
    std::vector<AggregateSpec> specs;
    for (int i = 0; i < 3000; ++i) {
      specs.push_back(AggregateSpec{AggKind::kCount, 0});
    }
    wide.SetAggregates(std::move(specs));
    for (int i = 0; i < 8; ++i) stalled.Submit(wide);
    Timer timer;
    while (timer.ElapsedSeconds() < 20.0 &&
           server.stats().evicted_stalled < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  const bool stall_evicted = server.stats().evicted_stalled >= 1;
  std::printf("net soak: stalled reader %s\n",
              stall_evicted ? "evicted by the stall timer" : "NOT evicted");

  // Graceful drain: park a pipelined burst in flight, issue the
  // SIGTERM-equivalent drain, and verify every in-flight query is answered
  // while new work is refused (typed kDraining or EOF — never a hang).
  int drain_answered = 0;
  bool drain_rejects_new = false;
  {
    ClientOptions copts;
    copts.port = server.port();
    TsunamiClient client(copts);
    Query region;
    region.filters.push_back(Predicate{0, 10000, 990000});
    region.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      const uint64_t id = client.Submit(region);
      if (id != 0) ids.push_back(id);
    }
    server.RequestDrain();
    for (uint64_t id : ids) {
      ClientResult r;
      if (client.Await(id, &r) && r.error == WireError::kNone &&
          r.outcome == QueryOutcome::kCompleted) {
        ++drain_answered;
      } else if (r.error != WireError::kNone) {
        std::printf("net soak: drain answered %llu with %s\n",
                    static_cast<unsigned long long>(id), ToString(r.error));
      }
    }
    const uint64_t late = client.Submit(region);
    ClientResult r;
    if (late == 0 || !client.Await(late, &r) ||
        r.error == WireError::kDraining) {
      drain_rejects_new = true;
    }
  }  // Client closes here; its EOF lets the drain finish.
  loop.join();

  const ServerStats ss = server.stats();
  std::printf(
      "net soak: %lld offered -> %lld completed-exact, %lld failed closed, "
      "%lld degraded-flagged, %lld transport-failed, %lld MISMATCHES\n",
      static_cast<long long>(offered.load()),
      static_cast<long long>(completed.load()),
      static_cast<long long>(failed_closed.load()),
      static_cast<long long>(degraded.load()),
      static_cast<long long>(transport_failed.load()),
      static_cast<long long>(mismatches.load()));
  for (size_t i = 0; i < outcome_tally.size(); ++i) {
    const int64_t n = outcome_tally[i].load();
    if (n > 0) {
      std::printf("  outcome %-16s %lld\n",
                  ToString(static_cast<QueryOutcome>(i)),
                  static_cast<long long>(n));
    }
  }
  std::printf(
      "net server: accepted=%lld peak=%lld frames_in=%lld results=%lld "
      "errors=%lld evicted_stalled=%lld orphaned=%lld inflight=%lld\n",
      static_cast<long long>(ss.accepted),
      static_cast<long long>(ss.peak_connections),
      static_cast<long long>(ss.frames_in),
      static_cast<long long>(ss.results_sent),
      static_cast<long long>(ss.errors_sent),
      static_cast<long long>(ss.evicted_stalled),
      static_cast<long long>(ss.orphaned_awaited),
      static_cast<long long>(ss.inflight));
  std::printf("net soak: drain answered %d/6 in-flight, %s new work\n",
              drain_answered, drain_rejects_new ? "refused" : "ACCEPTED");

  // Fail-closed floor: without faults every query must complete exactly;
  // under the fault storm a bounded fraction may fail closed, but nothing
  // may lie, leak a ticket, or hang.
  const int64_t floor =
      faults_armed ? offered.load() * 3 / 5 : offered.load();
  const bool ok = mismatches.load() == 0 && completed.load() >= floor &&
                  concurrency_ok && stall_evicted && drain_answered == 6 &&
                  drain_rejects_new && ss.inflight == 0;
  std::printf("net soak: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// --- --ingest: writers, readers, and reorganization racing ------------------
// The concurrent-ingest soak: a QueryService over an ingest::IngestStore
// whose background compactor runs throughout. Writers append pre-generated
// rows, readers run count-all queries through the service and check the
// *monotone visibility window* — a completed count must land between the
// rows visible before the query was submitted and the rows visible after it
// returned (a torn read or a lost publish lands outside it) — and a chaos
// thread forces rolls, synchronous compactions, and workload
// reorganizations under everything. Under --soak (FI builds) compactions
// abort (`ingest.compact_throw` must fail closed), the publish critical
// section stalls (`ingest.swap_delay`), and scheduler chunks throw
// (`sched.task_throw` — a reader may fail closed, never lie). The epilogue
// quiesces (roll + compact until the delta drains) and replays range
// queries against a FullScanIndex over base + every writer's rows: the
// answers must be bit-identical.
static bool RunIngestSoak(bool soak) {
  using namespace tsunami::ingest;
  std::printf("\n--- ingest soak: writers vs readers vs reorganization ---\n");

  Rng rng(31);
  const int64_t kBaseRows = 60000;
  Dataset data(3, {});
  data.Reserve(kBaseRows);
  for (int64_t i = 0; i < kBaseRows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 64; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    workload.push_back(q);
  }
  // The reorganization target: the same shape shifted onto dimension 1, so
  // every RequestReorganize below really rebuilds the grid.
  Workload shifted;
  for (int i = 0; i < 64; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{1, lo, lo + 50000});
    shifted.push_back(q);
  }

  IngestOptions iopt;
  iopt.index.cluster_queries = false;
  // Keep rebuilds cheap: this soak folds dozens of times (and runs under
  // TSan in CI), so cap the optimizer's sampling work per build.
  iopt.index.sample_rows = 20000;
  iopt.index.agd.max_sample_points = 512;
  iopt.index.agd.max_sample_queries = 32;
  iopt.index.agd.max_iters = 2;
  iopt.index.agd.max_cells = 1 << 12;
  iopt.chunk_capacity = 2 * kScanBlockRows;
  iopt.compact_min_chunks = 2;
  iopt.background_compaction = true;
  iopt.compact_poll_ms = 2;
  IngestStore store(data, workload, iopt);
  QueryService service(&store);
  store.AddPublishListener(
      [&service, &store](uint64_t) { service.plan_cache().InvalidateIndex(store); });
  std::printf("ingest soak: store v%llu over %lld base rows, %d workers\n",
              static_cast<unsigned long long>(store.version()),
              static_cast<long long>(kBaseRows),
              service.scheduler().num_threads());

  bool faults_armed = false;
  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    auto arm = [](const char* site, double p, uint64_t seed, int64_t param) {
      fault::FaultSpec spec;
      spec.probability = p;
      spec.seed = seed;
      spec.param = param;
      fault::Arm(site, spec);
    };
    arm("ingest.compact_throw", 0.30, 41, -1);
    arm("ingest.swap_delay", 0.50, 42, 200);  // 200us inside publish_mu_.
    arm("sched.task_throw", 0.01, 43, -1);
    faults_armed = true;
    std::printf("ingest soak: faults armed (compact_throw, swap_delay, "
                "task_throw)\n");
#else
    std::printf(
        "ingest soak: no TSUNAMI_FAULT_INJECTION — running fault-free\n");
#endif
  }

  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kRowsPerWriter = 8000;
  constexpr int kBatchRows = 64;
  // Rows are pre-generated so the epilogue can rebuild base + inserts as
  // the full-scan reference.
  std::vector<std::vector<std::vector<Value>>> writer_rows(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    Rng wrng(900 + static_cast<uint64_t>(w));
    writer_rows[w].reserve(kRowsPerWriter);
    for (int i = 0; i < kRowsPerWriter; ++i) {
      Value x = wrng.UniformValue(0, 1000000);
      writer_rows[w].push_back({x, x + wrng.UniformValue(-5000, 5000),
                                wrng.UniformValue(0, 10000)});
    }
  }

  std::atomic<bool> writers_done{false};
  std::atomic<int64_t> reads_offered{0}, reads_completed{0};
  std::atomic<int64_t> reads_failed_closed{0}, reads_degraded{0};
  std::atomic<int64_t> monotone_violations{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::vector<std::vector<Value>> batch;
      batch.reserve(kBatchRows);
      for (int i = 0; i < kRowsPerWriter; i += kBatchRows) {
        batch.assign(writer_rows[w].begin() + i,
                     writer_rows[w].begin() + i + kBatchRows);
        store.InsertBatch(batch);
        std::this_thread::yield();
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng reader_rng(300 + static_cast<uint64_t>(r));
      // Keep reading a beat past the last insert so the tail rows are
      // queried too.
      while (true) {
        const bool final_pass = writers_done.load(std::memory_order_acquire);
        // Monotone visibility: a count-all submitted now must see at least
        // the rows committed before Submit and at most the rows committed
        // by the time it returned.
        const int64_t before = kBaseRows + store.stats().rows_ingested;
        Query all;
        all.SetAggregates({{AggKind::kCount, 0}});
        reads_offered.fetch_add(1, std::memory_order_relaxed);
        AwaitInfo info;
        QueryResult got = service.Await(service.Submit(all), &info);
        const int64_t after = kBaseRows + store.stats().rows_ingested;
        if (info.outcome != QueryOutcome::kCompleted) {
          reads_failed_closed.fetch_add(1, std::memory_order_relaxed);
        } else if (got.degraded) {
          reads_degraded.fetch_add(1, std::memory_order_relaxed);
        } else {
          reads_completed.fetch_add(1, std::memory_order_relaxed);
          if (got.matched < before || got.matched > after) {
            monotone_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // A needle range too, exercising plan-cache churn across publishes
        // (fail-closed only: no stable reference exists mid-churn).
        Query needle;
        Value lo = reader_rng.UniformValue(0, 990000);
        needle.filters.push_back(Predicate{0, lo, lo + 4000});
        reads_offered.fetch_add(1, std::memory_order_relaxed);
        QueryResult nr = service.Await(service.Submit(needle), &info);
        if (info.outcome != QueryOutcome::kCompleted) {
          reads_failed_closed.fetch_add(1, std::memory_order_relaxed);
        } else if (nr.degraded) {
          reads_degraded.fetch_add(1, std::memory_order_relaxed);
        } else {
          reads_completed.fetch_add(1, std::memory_order_relaxed);
        }
        if (final_pass) break;
      }
    });
  }
  // The chaos thread: force rolls, synchronous folds, and reorganizations
  // under the readers and writers (the background compactor runs too).
  threads.emplace_back([&] {
    for (int k = 0; !writers_done.load(std::memory_order_acquire); ++k) {
      store.ForceRoll();
      if (k % 3 == 0) store.RequestReorganize(k % 6 == 0 ? shifted : workload);
      if (k % 5 == 4) store.CompactNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Join writers (the first kWriters threads), then release the readers
  // and the chaos thread for their final pass.
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  IngestStore::Stats mid = store.stats();
  std::printf(
      "ingest soak: %lld rows ingested, %lld rolls, %lld sealed, "
      "%lld compactions (%lld failed closed), %lld reorgs\n",
      static_cast<long long>(mid.rows_ingested),
      static_cast<long long>(mid.chunk_rolls),
      static_cast<long long>(mid.chunks_sealed),
      static_cast<long long>(mid.compactions),
      static_cast<long long>(mid.failed_compactions),
      static_cast<long long>(mid.reorgs));
  std::printf(
      "ingest soak: %lld reads -> %lld completed, %lld failed closed, "
      "%lld degraded, %lld MONOTONE VIOLATIONS\n",
      static_cast<long long>(reads_offered.load()),
      static_cast<long long>(reads_completed.load()),
      static_cast<long long>(reads_failed_closed.load()),
      static_cast<long long>(reads_degraded.load()),
      static_cast<long long>(monotone_violations.load()));
#if defined(TSUNAMI_FAULT_INJECTION)
  if (faults_armed) {
    std::printf(
        "ingest soak faults: compact_throw=%lld swap_delay=%lld "
        "task_throw=%lld\n",
        static_cast<long long>(fault::FireCount("ingest.compact_throw")),
        static_cast<long long>(fault::FireCount("ingest.swap_delay")),
        static_cast<long long>(fault::FireCount("sched.task_throw")));
    // The quiesced replay below is a deterministic contract; run it
    // fault-free.
    fault::DisarmAll();
  }
#endif

  // Quiesce: retire the open tail, drain any pending reorganization, and
  // fold everything. After this no publish can happen again, so the
  // service (destroyed before the store) cannot be called back.
  store.StopBackground();  // Join the compactor: all publishes synchronous
                           // from here, so none can outlive the service.
  store.ForceRoll();
  store.BackgroundTick();
  store.CompactNow();
  store.BackgroundTick();
  IngestStore::Stats quiesced = store.stats();

  // The reference: base rows + every writer's rows, answered by full scan.
  Dataset full(3, {});
  full.Reserve(kBaseRows + int64_t{kWriters} * kRowsPerWriter);
  for (int64_t i = 0; i < data.size(); ++i) {
    full.AppendRow({data.at(i, 0), data.at(i, 1), data.at(i, 2)});
  }
  for (int w = 0; w < kWriters; ++w) {
    for (const std::vector<Value>& row : writer_rows[w]) full.AppendRow(row);
  }
  FullScanIndex reference(full);
  int64_t replay_mismatches = 0;
  Rng replay_rng(555);
  for (int i = 0; i < 32; ++i) {
    Query q;
    if (i > 0) {
      const int dim = i % 3;
      Value lo = replay_rng.UniformValue(0, dim == 2 ? 9000 : 990000);
      q.filters.push_back(Predicate{dim, lo, lo + (dim == 2 ? 500 : 30000)});
    }  // i == 0: the unfiltered count-all.
    q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
    QueryResult got = service.Run(q);
    QueryResult want = reference.Execute(q);
    if (got.agg != want.agg || got.matched != want.matched ||
        got.extra != want.extra || got.degraded) {
      ++replay_mismatches;
    }
  }
  std::printf(
      "ingest soak: quiesced store v%llu (%lld sorted rows, %lld delta), "
      "epoch lag max %llu, %lld/32 replay mismatches\n",
      static_cast<unsigned long long>(quiesced.version),
      static_cast<long long>(quiesced.store_rows),
      static_cast<long long>(quiesced.delta_rows),
      static_cast<unsigned long long>(quiesced.epochs.max_retire_lag),
      static_cast<long long>(replay_mismatches));

  // Fail-closed floor: fault-free every read completes; under the fault
  // storm a bounded fraction may fail closed, but nothing may lie.
  const int64_t floor =
      faults_armed ? reads_offered.load() * 3 / 5 : reads_offered.load();
  const bool ok =
      monotone_violations.load() == 0 && replay_mismatches == 0 &&
      reads_completed.load() >= floor &&
      mid.rows_ingested == int64_t{kWriters} * kRowsPerWriter &&
      quiesced.delta_rows == 0 && quiesced.compactions >= 1;
  std::printf("ingest soak: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// --- --durable: kill -9 crash recovery ---------------------------------------
// The durability contract under the bluntest possible crash. Batch k of the
// insert sequence is a pure function of k, so any process — the child that
// inserted it or the parent that recovers the directory — can regenerate it.
namespace durable_soak {

constexpr int64_t kBaseRows = 20000;
constexpr int kBatchRows = 32;

static Dataset BaseData() {
  Rng rng(31);
  Dataset data(3, {});
  data.Reserve(kBaseRows);
  for (int64_t i = 0; i < kBaseRows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return data;
}

static Workload BaseWorkload() {
  Rng rng(32);
  Workload workload;
  for (int i = 0; i < 64; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    workload.push_back(q);
  }
  return workload;
}

/// Batch `index` of the deterministic insert sequence.
static std::vector<std::vector<Value>> BatchRows(int64_t index) {
  Rng rng(7000 + static_cast<uint64_t>(index));
  std::vector<std::vector<Value>> rows;
  rows.reserve(kBatchRows);
  for (int i = 0; i < kBatchRows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    rows.push_back(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  return rows;
}

static durability::DurabilityOptions StoreOptions(const std::string& dir) {
  durability::DurabilityOptions o;
  o.dir = dir;
  o.ingest.index.cluster_queries = false;
  o.ingest.index.sample_rows = 20000;
  o.ingest.index.agd.max_sample_points = 512;
  o.ingest.index.agd.max_sample_queries = 32;
  o.ingest.index.agd.max_iters = 2;
  o.ingest.index.agd.max_cells = 1 << 12;
  o.ingest.chunk_capacity = 2 * kScanBlockRows;
  o.ingest.compact_min_chunks = 2;
  // Folds (and therefore checkpoints + WAL truncations) race the inserts
  // and the SIGKILL throughout.
  o.ingest.background_compaction = true;
  o.ingest.compact_poll_ms = 2;
  return o;
}

/// Child body: open (recover), then insert deterministic batches forever,
/// appending each batch index to the ack file only after its durable ack.
/// Runs until SIGKILLed; never returns.
[[noreturn]] static void RunChild(const std::string& dir, bool soak) {
  std::string error;
  std::unique_ptr<durability::DurableIngestStore> store =
      durability::DurableIngestStore::Open(BaseData(), BaseWorkload(),
                                           StoreOptions(dir), &error);
  if (store == nullptr) {
    std::fprintf(stderr, "durable soak child: open failed: %s\n",
                 error.c_str());
    _exit(3);
  }
  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    // Armed only after Open so the bootstrap/recovery itself is clean. A
    // fired WAL fault fails the log closed: the child stops acking (the
    // parent's contract only covers acked batches); a checkpoint throw is
    // swallowed and retried at the next fold.
    auto arm = [](const char* site, double p, uint64_t seed) {
      fault::FaultSpec spec;
      spec.probability = p;
      spec.seed = seed;
      fault::Arm(site, spec);
    };
    arm("durability.checkpoint_throw", 0.30, 61);
    arm("wal.torn_write", 0.0005, 62);
    arm("wal.fsync_fail", 0.0005, 63);
    // Injected disk-full hits latch the store recoverably: acks fail
    // closed (the parent's contract only covers *acked* batches) and the
    // retry loop below drives the checkpoint-drain re-arm — so the kill
    // can also land mid-latch or mid-re-arm.
    arm("fs.enospc", 0.0005, 64);
#endif
  }
  const int ack_fd = ::open((dir + "/acks.log").c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(4);
  // Recovered rows are always batch-aligned (verified by the parent), so
  // the resume point is exact.
  int64_t batch = store->next_ordinal() / kBatchRows;
  while (true) {
    const durability::InsertResult r = store->TryInsertBatch(BatchRows(batch));
    if (r == durability::InsertResult::kResourceExhausted) {
      // Disk-full latch (injected fs.enospc): nothing was applied or
      // logged, so the retry is safe — and each retry is what drives the
      // drain-and-re-arm checkpoint.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    if (r != durability::InsertResult::kOk) break;  // Log failed closed.
    // The ack record goes to the OS *after* the WAL fsync: a SIGKILL can
    // lose an insert that was never acked, never the reverse.
    char line[32];
    const int n = std::snprintf(line, sizeof(line), "%lld\n",
                                static_cast<long long>(batch));
    if (::write(ack_fd, line, static_cast<size_t>(n)) != n) _exit(5);
    ++batch;
  }
  // WAL failed closed (injected fault): stop acking and await the kill.
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}

}  // namespace durable_soak

static bool RunDurableSoak(bool soak) {
  using namespace durable_soak;
  std::printf("\n--- durable soak: kill -9, recover, verify acked inserts ---\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("tsunami_durable_soak_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const Dataset base = BaseData();
  const Workload workload = BaseWorkload();
  constexpr int kCycles = 3;
  bool ok = true;
  int64_t prev_acked = 0;

  for (int cycle = 0; cycle < kCycles && ok; ++cycle) {
    const pid_t child = ::fork();
    if (child < 0) {
      std::printf("durable soak: fork failed\n");
      return false;
    }
    if (child == 0) RunChild(dir, soak);  // Never returns.

    // Wait for the child to make progress past recovery, then kill it at an
    // arbitrary point mid-ingest — mid-group-commit, mid-checkpoint,
    // wherever it happens to be.
    const std::string ack_path = dir + "/acks.log";
    auto count_acks = [&ack_path] {
      std::ifstream in(ack_path);
      int64_t n = 0;
      std::string line;
      while (std::getline(in, line)) ++n;
      return n;
    };
    Timer wait;
    while (wait.ElapsedSeconds() < 120.0 && count_acks() < prev_acked + 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20 + 35 * cycle));
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      // The child died on its own (open failure, ack-file failure) — that
      // is a soak failure, not a crash we injected.
      std::printf("durable soak: child exited abnormally (status %d)\n",
                  status);
      ok = false;
      break;
    }

    // Parse the ack file: every index the child acked, in order.
    int64_t acked = 0, max_acked = -1;
    {
      std::ifstream in(ack_path);
      std::string line;
      while (std::getline(in, line)) {
        max_acked = std::atoll(line.c_str());
        ++acked;
      }
    }
    prev_acked = acked;

    // Recover in-process and verify the contract.
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> store =
        durability::DurableIngestStore::Open(base, workload,
                                             StoreOptions(dir), &error);
    if (store == nullptr) {
      std::printf("durable soak: recovery failed: %s\n", error.c_str());
      ok = false;
      break;
    }
    const durability::RecoveryInfo& rec = store->recovery();
    const int64_t rows = store->next_ordinal();
    // WAL records are whole batches, so recovery lands on a batch boundary.
    const int64_t batches = rows / kBatchRows;
    if (rows % kBatchRows != 0) {
      std::printf("durable soak: recovered %lld rows — not batch-aligned\n",
                  static_cast<long long>(rows));
      ok = false;
    }
    // Zero acked inserts lost: every acked batch index is below the
    // recovered prefix length.
    if (max_acked >= batches) {
      std::printf(
          "durable soak: ACKED BATCH LOST — acked up to %lld, recovered "
          "only %lld batches\n",
          static_cast<long long>(max_acked),
          static_cast<long long>(batches));
      ok = false;
    }

    // No unacked row double-applied and nothing corrupted: the recovered
    // store must answer exactly like a full scan over base + the recovered
    // prefix of the deterministic batch sequence. Quiesce first so the
    // comparison is stable.
    store->store().StopBackground();
    store->store().ForceRoll();
    store->store().BackgroundTick();
    store->store().CompactNow();
    store->store().BackgroundTick();

    Dataset full(3, {});
    full.Reserve(kBaseRows + rows);
    for (int64_t i = 0; i < base.size(); ++i) {
      full.AppendRow({base.at(i, 0), base.at(i, 1), base.at(i, 2)});
    }
    for (int64_t b = 0; b < batches; ++b) {
      for (const std::vector<Value>& row : BatchRows(b)) full.AppendRow(row);
    }
    FullScanIndex reference(full);
    int64_t mismatches = 0;
    Rng replay_rng(555);
    for (int i = 0; i < 32; ++i) {
      Query q;
      if (i > 0) {
        const int dim = i % 3;
        Value lo = replay_rng.UniformValue(0, dim == 2 ? 9000 : 990000);
        q.filters.push_back(Predicate{dim, lo, lo + (dim == 2 ? 500 : 30000)});
      }  // i == 0: the unfiltered count-all (exact-prefix check).
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      QueryResult got = store->store().Execute(q);
      QueryResult want = reference.Execute(q);
      if (got.agg != want.agg || got.matched != want.matched ||
          got.extra != want.extra || got.degraded) {
        ++mismatches;
      }
    }
    if (mismatches > 0) ok = false;

    std::printf(
        "durable soak cycle %d: killed mid-ingest after %lld acks; "
        "recovered %lld batches (%lld rows, checkpoint v%llu + %lld "
        "replayed%s) in %.3fs, %lld/32 replay mismatches\n",
        cycle, static_cast<long long>(acked),
        static_cast<long long>(batches), static_cast<long long>(rows),
        static_cast<unsigned long long>(rec.checkpoint_version),
        static_cast<long long>(rec.replayed_rows),
        rec.wal_tail_status != FileError::kNone ? ", torn tail tolerated"
                                                : "",
        rec.seconds, static_cast<long long>(mismatches));
    // Close cleanly; the next cycle's child resumes from this state.
  }

  if (ok) std::filesystem::remove_all(dir);  // Keep the wreckage on failure.
  std::printf("durable soak: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// --- --pressure: serve correctly while every resource budget pushes back -----
// Two phases, both ending in a quiesced replay that must be bit-identical to
// a full-scan reference over base + every admitted row.
//
// Phase 1 (memory): writer threads push through TryInsertBatch against a
// delta-backlog budget far smaller than their appetite, so admission control
// — not luck — paces them; a Scrubber sweeps checksums under the churn
// (with scrub.corrupt_block rotting blocks on FI builds, repaired in place);
// readers verify the monotone-visibility contract throughout.
//
// Phase 2 (disk): a DurableIngestStore with a tiny WAL-disk budget, small
// segment rotation, and (on FI builds) a persistent fs.enospc storm across
// all four filesystem sites. Writers retry kResourceExhausted refusals —
// each retry drives the drain-and-re-arm checkpoint — and tolerate
// fail-closed kNotDurable acks; a final sentinel insert must land kOk,
// proving the store re-armed itself after the storm.
static bool RunPressureSoak(bool soak) {
  using namespace tsunami::ingest;
  std::printf(
      "\n--- pressure soak: budgets, disk-full latches, scrub repair ---\n");
  bool ok = true;

  // ---- Phase 1: memory backpressure + scrubber under ingest churn ----------
  {
    Rng rng(91);
    const int64_t kBaseRows = 30000;
    Dataset data(3, {});
    data.Reserve(kBaseRows);
    for (int64_t i = 0; i < kBaseRows; ++i) {
      Value x = rng.UniformValue(0, 1000000);
      data.AppendRow(
          {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
    }
    Workload workload;
    for (int i = 0; i < 64; ++i) {
      Query q;
      Value lo = rng.UniformValue(0, 900000);
      q.filters.push_back(Predicate{0, lo, lo + 50000});
      workload.push_back(q);
    }

    // The budget is ~2 chunks of delta: writers can outrun the compactor
    // for only milliseconds before admission control paces them.
    ResourceGovernor::Budgets budgets;
    budgets.delta_backlog_bytes = 48 << 10;
    budgets.sealed_chunk_bytes = 1 << 20;
    ResourceGovernor governor(budgets);

    IngestOptions iopt;
    iopt.index.cluster_queries = false;
    iopt.index.sample_rows = 20000;
    iopt.index.agd.max_sample_points = 512;
    iopt.index.agd.max_sample_queries = 32;
    iopt.index.agd.max_iters = 2;
    iopt.index.agd.max_cells = 1 << 12;
    iopt.chunk_capacity = kScanBlockRows;  // Seals fit inside the budget.
    iopt.compact_min_chunks = 1;
    iopt.background_compaction = true;
    iopt.compact_poll_ms = 2;
    iopt.governor = &governor;
    IngestStore store(data, workload, iopt);

    ScrubberOptions sopts;
    sopts.poll_ms = 1;
    sopts.blocks_per_slice = 256;
    sopts.repair = true;
    Scrubber scrubber(&store, sopts);
    scrubber.Start();

    bool faults_armed = false;
    if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
      auto arm = [](const char* site, double p, uint64_t seed, int64_t match) {
        fault::FaultSpec spec;
        spec.probability = p;
        spec.seed = seed;
        spec.match_arg = match;
        fault::Arm(site, spec);
      };
      arm("gov.mem_pressure", 0.05, 72,
          static_cast<int64_t>(ResourcePool::kDeltaBacklog));
      arm("scrub.corrupt_block", 0.005, 73, -1);
      faults_armed = true;
      std::printf(
          "pressure soak: faults armed (gov.mem_pressure, "
          "scrub.corrupt_block)\n");
#else
      std::printf(
          "pressure soak: no TSUNAMI_FAULT_INJECTION — budgets only\n");
#endif
    }

    constexpr int kWriters = 3;
    constexpr int kBatches = 78;
    constexpr int kBatchRows = 64;
    std::vector<std::vector<std::vector<Value>>> writer_rows(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      Rng wrng(910 + static_cast<uint64_t>(w));
      writer_rows[w].reserve(int64_t{kBatches} * kBatchRows);
      for (int i = 0; i < kBatches * kBatchRows; ++i) {
        Value x = wrng.UniformValue(0, 1000000);
        writer_rows[w].push_back({x, x + wrng.UniformValue(-5000, 5000),
                                  wrng.UniformValue(0, 10000)});
      }
    }

    std::atomic<bool> writers_done{false};
    std::atomic<bool> writer_stuck{false};
    std::atomic<int64_t> retries{0};
    std::atomic<int64_t> monotone_violations{0};
    std::atomic<int64_t> reads{0}, reads_degraded{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        std::vector<std::vector<Value>> batch;
        for (int b = 0; b < kBatches; ++b) {
          batch.assign(writer_rows[w].begin() + int64_t{b} * kBatchRows,
                       writer_rows[w].begin() + int64_t{b + 1} * kBatchRows);
          int attempts = 0;
          while (store.TryInsertBatch(batch) != InsertAdmit::kOk) {
            retries.fetch_add(1, std::memory_order_relaxed);
            // The refusal means the backlog is over budget: seal the open
            // chunk so the compactor can fold (and so release) it, then
            // wait out the fold instead of spinning.
            if (++attempts % 4 == 1) store.ForceRoll();
            if (attempts > 20000) {
              writer_stuck.store(true, std::memory_order_release);
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
    threads.emplace_back([&] {
      // Reader: the monotone-visibility contract must hold no matter how
      // hard admission control and the scrubber are working.
      while (!writers_done.load(std::memory_order_acquire)) {
        const int64_t before = kBaseRows + store.stats().rows_ingested;
        Query all;
        all.SetAggregates({{AggKind::kCount, 0}});
        QueryResult got = store.Execute(all);
        const int64_t after = kBaseRows + store.stats().rows_ingested;
        reads.fetch_add(1, std::memory_order_relaxed);
        if (got.degraded) {
          // A scrub-quarantined block: truthfully flagged, value excused.
          reads_degraded.fetch_add(1, std::memory_order_relaxed);
        } else if (got.matched < before || got.matched > after) {
          monotone_violations.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
    writers_done.store(true, std::memory_order_release);
    threads.back().join();

#if defined(TSUNAMI_FAULT_INJECTION)
    const int64_t mem_fires = fault::FireCount("gov.mem_pressure");
    const int64_t rot_fires = fault::FireCount("scrub.corrupt_block");
    if (faults_armed) fault::DisarmAll();
#else
    const int64_t mem_fires = 0, rot_fires = 0;
    (void)faults_armed;
#endif

    // Sentinel fold: guarantees the quiesce below publishes a fresh store,
    // so any block still quarantined from the rot storm is rebuilt clean.
    Rng srng(919);
    std::vector<std::vector<Value>> sentinel;
    for (int i = 0; i < kBatchRows; ++i) {
      Value x = srng.UniformValue(0, 1000000);
      sentinel.push_back({x, x + srng.UniformValue(-5000, 5000),
                          srng.UniformValue(0, 10000)});
    }
    store.InsertBatch(sentinel);

    scrubber.Stop();
    store.StopBackground();
    store.ForceRoll();
    store.BackgroundTick();
    store.CompactNow();
    store.BackgroundTick();

    const ResourceGovernor::Stats gstats = governor.stats();
    const auto& delta_pool =
        gstats.pools[static_cast<size_t>(ResourcePool::kDeltaBacklog)];
    const Scrubber::Stats sstats = scrubber.stats();
    std::printf(
        "pressure soak (mem): %lld retries (%lld pool rejections, peak "
        "%lld/%lld bytes), %lld reads (%lld degraded), %lld MONOTONE "
        "VIOLATIONS\n",
        static_cast<long long>(retries.load()),
        static_cast<long long>(delta_pool.rejections),
        static_cast<long long>(delta_pool.peak),
        static_cast<long long>(delta_pool.budget),
        static_cast<long long>(reads.load()),
        static_cast<long long>(reads_degraded.load()),
        static_cast<long long>(monotone_violations.load()));
    std::printf(
        "pressure soak (mem): scrubber %lld sweeps / %lld blocks, %lld "
        "corruptions found, %lld repaired (faults: mem=%lld rot=%lld)\n",
        static_cast<long long>(sstats.sweeps),
        static_cast<long long>(sstats.blocks_scrubbed),
        static_cast<long long>(sstats.corruptions_found),
        static_cast<long long>(sstats.blocks_repaired),
        static_cast<long long>(mem_fires), static_cast<long long>(rot_fires));

    // Replay: base + every writer row + the sentinel, bit-identical.
    Dataset full(3, {});
    full.Reserve(kBaseRows + int64_t{kWriters} * kBatches * kBatchRows +
                 kBatchRows);
    for (int64_t i = 0; i < data.size(); ++i) {
      full.AppendRow({data.at(i, 0), data.at(i, 1), data.at(i, 2)});
    }
    for (int w = 0; w < kWriters; ++w) {
      for (const std::vector<Value>& row : writer_rows[w]) full.AppendRow(row);
    }
    for (const std::vector<Value>& row : sentinel) full.AppendRow(row);
    FullScanIndex reference(full);
    int64_t mismatches = 0;
    Rng replay_rng(555);
    for (int i = 0; i < 32; ++i) {
      Query q;
      if (i > 0) {
        const int dim = i % 3;
        Value lo = replay_rng.UniformValue(0, dim == 2 ? 9000 : 990000);
        q.filters.push_back(Predicate{dim, lo, lo + (dim == 2 ? 500 : 30000)});
      }
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      QueryResult got = store.Execute(q);
      QueryResult want = reference.Execute(q);
      if (got.agg != want.agg || got.matched != want.matched ||
          got.extra != want.extra || got.degraded) {
        ++mismatches;
      }
    }
    const int64_t quarantined = store.store().QuarantinedBlocks();
    std::printf(
        "pressure soak (mem): quiesced delta=%lld used=%lld quarantined=%lld, "
        "%lld/32 replay mismatches\n",
        static_cast<long long>(store.stats().delta_rows),
        static_cast<long long>(governor.used(ResourcePool::kDeltaBacklog)),
        static_cast<long long>(quarantined),
        static_cast<long long>(mismatches));
    const bool phase_ok = !writer_stuck.load() && mismatches == 0 &&
                          monotone_violations.load() == 0 &&
                          delta_pool.rejections > 0 && quarantined == 0 &&
                          governor.used(ResourcePool::kDeltaBacklog) == 0;
    std::printf("pressure soak (mem): %s\n", phase_ok ? "OK" : "FAILED");
    ok = ok && phase_ok;
  }

  // ---- Phase 2: WAL-disk budget + fs.enospc storm on the durable store -----
  {
    using namespace durable_soak;
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("tsunami_pressure_soak_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    ResourceGovernor::Budgets budgets;
    budgets.wal_disk_bytes = 16 << 10;  // A fraction of one fold's backlog.
    ResourceGovernor governor(budgets);

    durability::DurabilityOptions dopt = StoreOptions(dir);
    dopt.max_segment_bytes = 4096;       // Checkpoints reclaim in small steps.
    dopt.wal_commit_delay_micros = 500;  // Coalesce acks under the storm.
    dopt.rearm_backoff_millis = 1;
    dopt.ingest.governor = &governor;
    std::string error;
    std::unique_ptr<durability::DurableIngestStore> store =
        durability::DurableIngestStore::Open(BaseData(), BaseWorkload(), dopt,
                                             &error);
    if (store == nullptr) {
      std::printf("pressure soak (disk): open failed: %s\n", error.c_str());
      return false;
    }

    bool faults_armed = false;
    if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
      // One armed site, all four filesystem surfaces (match_arg = -1): WAL
      // writes and fsyncs latch recoverably, checkpoint renames spend the
      // reserve, manifest writes fail that checkpoint closed.
      fault::FaultSpec spec;
      spec.probability = 0.04;
      spec.seed = 81;
      fault::Arm("fs.enospc", spec);
      faults_armed = true;
      std::printf("pressure soak: fs.enospc armed on all four sites\n");
#endif
    }

    constexpr int kWriters = 2;
    constexpr int kBatchesPerWriter = 120;
    std::atomic<bool> writer_failed{false};
    std::atomic<int64_t> acked{0}, not_durable{0}, retries{0};
    std::atomic<int64_t> monotone_violations{0};
    std::atomic<bool> writers_done{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int b = 0; b < kBatchesPerWriter && !writer_failed.load(); ++b) {
          const int64_t index = int64_t{w} * kBatchesPerWriter + b;
          const std::vector<std::vector<Value>> rows = BatchRows(index);
          int attempts = 0;
          for (;;) {
            const durability::InsertResult r = store->TryInsertBatch(rows);
            if (r == durability::InsertResult::kOk) {
              acked.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (r == durability::InsertResult::kNotDurable) {
              // Applied but the ack failed closed mid-storm: NOT retryable
              // (a retry would double-apply); the replay still expects it.
              not_durable.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (r == durability::InsertResult::kRejected) {
              writer_failed.store(true, std::memory_order_release);
              return;  // Permanent write-death must never happen here.
            }
            // kResourceExhausted: retryable by contract. Periodically force
            // a checkpoint so the WAL-budget path (which has no automatic
            // re-arm — only latches do) gets its segments reclaimed.
            retries.fetch_add(1, std::memory_order_relaxed);
            if (++attempts % 8 == 1) {
              store->store().ForceRoll();
              store->CheckpointNow();
            }
            if (attempts > 20000) {
              writer_failed.store(true, std::memory_order_release);
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
    }
    threads.emplace_back([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        const int64_t before = kBaseRows + store->store().stats().rows_ingested;
        Query all;
        all.SetAggregates({{AggKind::kCount, 0}});
        QueryResult got = store->store().Execute(all);
        const int64_t after = kBaseRows + store->store().stats().rows_ingested;
        if (!got.degraded && (got.matched < before || got.matched > after)) {
          monotone_violations.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
    writers_done.store(true, std::memory_order_release);
    threads.back().join();

#if defined(TSUNAMI_FAULT_INJECTION)
    const int64_t enospc_fires = fault::FireCount("fs.enospc");
    if (faults_armed) fault::DisarmAll();
#else
    const int64_t enospc_fires = 0;
    (void)faults_armed;
#endif

    // The storm is over: one sentinel batch must land a durable kOk,
    // proving the store re-armed itself (no restart, no operator).
    const int64_t sentinel_index = int64_t{kWriters} * kBatchesPerWriter;
    bool rearmed = false;
    {
      Timer deadline;
      while (deadline.ElapsedSeconds() < 60.0) {
        const durability::InsertResult r =
            store->TryInsertBatch(BatchRows(sentinel_index));
        if (r == durability::InsertResult::kOk) {
          rearmed = true;
          break;
        }
        if (r != durability::InsertResult::kResourceExhausted) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    store->store().StopBackground();
    store->store().ForceRoll();
    store->store().BackgroundTick();
    store->store().CompactNow();
    store->store().BackgroundTick();

    const durability::DurableIngestStore::Stats dstats = store->stats();
    std::printf(
        "pressure soak (disk): %lld acked + %lld fail-closed of %lld "
        "batches, %lld retries (%lld pool rejections), %lld enospc fires\n",
        static_cast<long long>(acked.load()),
        static_cast<long long>(not_durable.load()),
        static_cast<long long>(int64_t{kWriters} * kBatchesPerWriter),
        static_cast<long long>(retries.load()),
        static_cast<long long>(dstats.resource_rejections),
        static_cast<long long>(enospc_fires));
    std::printf(
        "pressure soak (disk): %lld latches / %lld rearms, %lld reserve "
        "drops, %lld size rotations, %lld checkpoint failures, %lld delayed "
        "commits, sentinel %s\n",
        static_cast<long long>(dstats.enospc_latches),
        static_cast<long long>(dstats.rearms),
        static_cast<long long>(dstats.reserve_drops),
        static_cast<long long>(dstats.size_rotations),
        static_cast<long long>(dstats.checkpoint_failures),
        static_cast<long long>(dstats.wal.delayed_commits),
        rearmed ? "re-armed" : "STUCK");

    // Replay: base + every batch (acked *and* fail-closed — all applied)
    // + the sentinel, bit-identical to the full scan.
    Dataset full(3, {});
    const int64_t total_batches = int64_t{kWriters} * kBatchesPerWriter + 1;
    full.Reserve(kBaseRows + total_batches * durable_soak::kBatchRows);
    const Dataset base = BaseData();
    for (int64_t i = 0; i < base.size(); ++i) {
      full.AppendRow({base.at(i, 0), base.at(i, 1), base.at(i, 2)});
    }
    for (int64_t b = 0; b <= sentinel_index; ++b) {
      for (const std::vector<Value>& row : BatchRows(b)) full.AppendRow(row);
    }
    FullScanIndex reference(full);
    int64_t mismatches = 0;
    Rng replay_rng(555);
    for (int i = 0; i < 32; ++i) {
      Query q;
      if (i > 0) {
        const int dim = i % 3;
        Value lo = replay_rng.UniformValue(0, dim == 2 ? 9000 : 990000);
        q.filters.push_back(Predicate{dim, lo, lo + (dim == 2 ? 500 : 30000)});
      }
      q.SetAggregates({{AggKind::kCount, 0}, {AggKind::kSum, 1}});
      QueryResult got = store->store().Execute(q);
      QueryResult want = reference.Execute(q);
      if (got.agg != want.agg || got.matched != want.matched ||
          got.extra != want.extra || got.degraded) {
        ++mismatches;
      }
    }
    std::printf("pressure soak (disk): %lld/32 replay mismatches\n",
                static_cast<long long>(mismatches));
    const bool all_applied =
        acked.load() + not_durable.load() ==
        int64_t{kWriters} * kBatchesPerWriter;
    const bool phase_ok = !writer_failed.load() && all_applied && rearmed &&
                          mismatches == 0 && monotone_violations.load() == 0 &&
                          dstats.resource_rejections > 0;
    std::printf("pressure soak (disk): %s\n", phase_ok ? "OK" : "FAILED");
    ok = ok && phase_ok;
    store.reset();
    if (ok) std::filesystem::remove_all(dir);
  }

  std::printf("pressure soak: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

int main(int argc, char** argv) {
  bool soak = false;
  bool net = false;
  bool ingest = false;
  bool durable = false;
  bool pressure = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) soak = true;
    if (std::strcmp(argv[i], "--net") == 0) net = true;
    if (std::strcmp(argv[i], "--ingest") == 0) ingest = true;
    if (std::strcmp(argv[i], "--durable") == 0) durable = true;
    if (std::strcmp(argv[i], "--pressure") == 0) pressure = true;
  }
  if (pressure) {
    const bool ok = RunPressureSoak(soak);
    std::printf("%s\n", ok ? "OK: pressure soak held its invariants"
                           : "FAILED: pressure soak violated an invariant");
    return ok ? 0 : 1;
  }
  if (durable) {
    // The kill/recover soak owns its own store and directory lifecycle.
    const bool ok = RunDurableSoak(soak);
    std::printf("%s\n", ok ? "OK: durable soak held its invariants"
                           : "FAILED: durable soak violated an invariant");
    return ok ? 0 : 1;
  }
  if (ingest) {
    // The concurrent-ingest soak replaces the static-index soak entirely:
    // it builds (and continuously rebuilds) its own store.
    const bool ok = RunIngestSoak(soak);
    std::printf("%s\n", ok ? "OK: ingest soak held its invariants"
                           : "FAILED: ingest soak violated an invariant");
    return ok ? 0 : 1;
  }
  Rng rng(11);
  const int64_t n = 200000;
  Dataset data(3, {});
  data.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 256; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    q.type = i % 2;
    workload.push_back(q);
  }
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data, workload, options);
  std::printf("built %s over %lld rows\n", index.Name().c_str(),
              static_cast<long long>(data.size()));

  QueryService service(&index);  // Hardware threads, 1024-plan cache.
  std::printf("service up: %d workers\n", service.scheduler().num_threads());

  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    // Storm the serving path: ~5% of chunks throw, and lazily re-verified
    // blocks occasionally fail their checksum check and go quarantined.
    fault::FaultSpec throw_spec;
    throw_spec.probability = 0.05;
    throw_spec.seed = 2024;
    fault::Arm("sched.task_throw", throw_spec);
    fault::FaultSpec checksum_spec;
    checksum_spec.probability = 0.02;
    checksum_spec.seed = 2025;
    fault::Arm("storage.checksum", checksum_spec);
    for (int d = 0; d < index.store().dims(); ++d) {
      index.store().encoded(d).MarkAllUnverified();
    }
    std::printf("soak: faults armed (sched.task_throw, storage.checksum)\n");
#else
    std::printf(
        "soak: built without TSUNAMI_FAULT_INJECTION — no faults to arm, "
        "running the relaxed-predicate soak fault-free\n");
#endif
  }

  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b", "c"};

  // --- Soak: dashboard SQL clients + skewed-batch analyst clients ----------
  // Under --soak only the batch clients run: the SQL path has no outcome
  // channel, so a fault-failed statement would be indistinguishable from a
  // wrong answer; the batch path reports per-query outcomes to relax on.
  const int kSqlClients = soak ? 0 : 3;
  const int kBatchClients = soak ? 4 : 2;
  const int kRounds = 24;
  std::atomic<int64_t> sql_checked{0}, sql_mismatches{0};
  std::atomic<int64_t> batch_checked{0}, batch_mismatches{0};
  std::atomic<int64_t> batch_failed{0}, batch_degraded{0};
  Timer timer;

  std::vector<std::thread> clients;
  for (int t = 0; t < kSqlClients; ++t) {
    clients.emplace_back([&, t] {
      // Each dashboard refreshes the same handful of templated statements
      // with recurring constants — the plan cache's bread and butter.
      QueryEngine engine(&index, schema);
      engine.AttachService(&service);
      std::vector<std::string> sqls = {
          "SELECT COUNT(*) FROM t WHERE a < " + std::to_string(300000 + t),
          "SELECT SUM(b), COUNT(*) FROM t WHERE a BETWEEN 100000 AND 600000",
          "SELECT MAX(c) FROM t WHERE c >= 2500",
      };
      QueryEngine check(&index, schema);  // Unattached reference.
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& sql : sqls) {
          PreparedStatement stmt = engine.Prepare(sql);
          ExecContext ctx;
          SqlResult got = engine.RunPrepared(stmt, ctx);
          SqlResult want = check.Run(sql);
          sql_checked.fetch_add(1, std::memory_order_relaxed);
          if (!got.ok || got.value != want.value ||
              got.stats.matched != want.stats.matched) {
            sql_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int t = 0; t < kBatchClients; ++t) {
    clients.emplace_back([&, t] {
      Rng client_rng(77 + t);
      for (int round = 0; round < kRounds; ++round) {
        // One giant region query buried among needles.
        Workload batch;
        for (int i = 0; i < 15; ++i) {
          Query q;
          Value lo = client_rng.UniformValue(0, 990000);
          q.filters.push_back(Predicate{0, lo, lo + 4000});
          batch.push_back(q);
        }
        Query region;
        region.filters.push_back(Predicate{0, 10000, 990000});
        region.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
        batch.insert(batch.begin() + 7, region);
        std::vector<QueryService::Admission> tickets =
            service.SubmitBatch(std::span<const Query>(batch));
        for (size_t i = 0; i < batch.size(); ++i) {
          AwaitInfo info;
          QueryResult got = service.Await(tickets[i], &info);
          batch_checked.fetch_add(1, std::memory_order_relaxed);
          if (info.outcome != QueryOutcome::kCompleted) {
            // Fail-closed is acceptable under the soak's injected faults;
            // without faults every query must complete.
            if (soak) {
              batch_failed.fetch_add(1, std::memory_order_relaxed);
            } else {
              batch_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          QueryResult want = index.Execute(batch[i]);
          if (soak && (got.degraded || want.degraded)) {
            // A quarantined block makes both sides flagged-incomplete (and
            // the quarantine set can evolve between the two executions);
            // the contract checked here is the *flag*, not the value.
            batch_degraded.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (got.agg != want.agg || got.matched != want.matched ||
              got.scanned != want.scanned) {
            batch_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double soak_seconds = timer.ElapsedSeconds();

  std::printf(
      "soak: %lld SQL runs (%lld mismatches), %lld batch queries "
      "(%lld mismatches) in %.2fs\n",
      static_cast<long long>(sql_checked.load()),
      static_cast<long long>(sql_mismatches.load()),
      static_cast<long long>(batch_checked.load()),
      static_cast<long long>(batch_mismatches.load()), soak_seconds);
  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    std::printf(
        "soak faults: %lld chunks thrown, %lld checksum flips -> %lld "
        "queries failed closed, %lld degraded-flagged, %lld blocks "
        "quarantined\n",
        static_cast<long long>(fault::FireCount("sched.task_throw")),
        static_cast<long long>(fault::FireCount("storage.checksum")),
        static_cast<long long>(batch_failed.load()),
        static_cast<long long>(batch_degraded.load()),
        static_cast<long long>(index.store().QuarantinedBlocks()));
    fault::DisarmAll();
#else
    std::printf("soak: %lld failed closed, %lld degraded-flagged\n",
                static_cast<long long>(batch_failed.load()),
                static_cast<long long>(batch_degraded.load()));
#endif
  }

  // --- Deadlines: a giant scan cancelled mid-flight -------------------------
  Query region;
  region.filters.push_back(Predicate{0, 0, 1000000});
  SubmitOptions strict;
  strict.deadline_seconds = 1e-7;
  bool cancelled = false;
  QueryResult cut = service.Run(region, strict, &cancelled);
  std::printf("1e-7s deadline on a full-region query: %s (agg=%lld)\n",
              cancelled ? "cancelled, identity result" : "finished",
              static_cast<long long>(cut.agg));

  ServiceStats stats = service.stats();
  std::printf(
      "service stats: submitted=%lld completed=%lld cancelled=%lld "
      "timed_out=%lld failed=%lld\n"
      "  plan cache: %lld hits / %lld misses (%.0f%% hit rate, %lld "
      "entries)\n"
      "  scheduler: %lld chunks, %lld steals, queue depth %lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.timed_out),
      static_cast<long long>(stats.failed),
      static_cast<long long>(stats.cache.hits),
      static_cast<long long>(stats.cache.misses),
      100.0 * stats.cache.HitRate(),
      static_cast<long long>(stats.cache.size),
      static_cast<long long>(stats.scheduler.chunks),
      static_cast<long long>(stats.scheduler.steals),
      static_cast<long long>(stats.queue_depth));

  // --- --net: the same soak over the real wire front end --------------------
  bool net_ok = true;
  if (net) net_ok = RunNetSoak(index, soak);

  const bool ok =
      sql_mismatches.load() == 0 && batch_mismatches.load() == 0 && net_ok;
  std::printf("%s\n", ok ? "OK: service results bit-identical to Execute"
                         : "FAILED: mismatches detected");
  return ok ? 0 : 1;
}
