// Multi-client soak demo of the QueryService serving path:
//   1. build Tsunami over a synthetic correlated table;
//   2. several "dashboard" client threads fire repeated ad-hoc SQL through
//      a service-attached QueryEngine — after the first arrival of each
//      statement shape, every re-Prepare binds to the plan cache;
//   3. concurrently, "analyst" client threads submit skewed batches (one
//      giant region query + many needles) via SubmitBatch/Await, whose
//      chunks interleave in the work-stealing deques;
//   4. everything self-checks against per-query Execute, and the service
//      stats (cache hit rate, steals, queue depth) are printed at the end.
//
// With --soak (and a -DTSUNAMI_FAULT_INJECTION=ON build) the batch clients
// run under injected faults — thrown chunks and flipped block checksums —
// and the self-check relaxes to fail-closed semantics: a query may come
// back failed (identity result, truthful outcome) or flagged degraded, but
// a result claiming to be complete and healthy must still be exact.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/core/tsunami.h"
#include "src/query/engine.h"
#include "src/serve/query_service.h"

using namespace tsunami;

int main(int argc, char** argv) {
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) soak = true;
  }
  Rng rng(11);
  const int64_t n = 200000;
  Dataset data(3, {});
  data.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 256; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    q.type = i % 2;
    workload.push_back(q);
  }
  TsunamiOptions options;
  options.cluster_queries = false;
  TsunamiIndex index(data, workload, options);
  std::printf("built %s over %lld rows\n", index.Name().c_str(),
              static_cast<long long>(data.size()));

  QueryService service(&index);  // Hardware threads, 1024-plan cache.
  std::printf("service up: %d workers\n", service.scheduler().num_threads());

  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    // Storm the serving path: ~5% of chunks throw, and lazily re-verified
    // blocks occasionally fail their checksum check and go quarantined.
    fault::FaultSpec throw_spec;
    throw_spec.probability = 0.05;
    throw_spec.seed = 2024;
    fault::Arm("sched.task_throw", throw_spec);
    fault::FaultSpec checksum_spec;
    checksum_spec.probability = 0.02;
    checksum_spec.seed = 2025;
    fault::Arm("storage.checksum", checksum_spec);
    for (int d = 0; d < index.store().dims(); ++d) {
      index.store().encoded(d).MarkAllUnverified();
    }
    std::printf("soak: faults armed (sched.task_throw, storage.checksum)\n");
#else
    std::printf(
        "soak: built without TSUNAMI_FAULT_INJECTION — no faults to arm, "
        "running the relaxed-predicate soak fault-free\n");
#endif
  }

  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {"a", "b", "c"};

  // --- Soak: dashboard SQL clients + skewed-batch analyst clients ----------
  // Under --soak only the batch clients run: the SQL path has no outcome
  // channel, so a fault-failed statement would be indistinguishable from a
  // wrong answer; the batch path reports per-query outcomes to relax on.
  const int kSqlClients = soak ? 0 : 3;
  const int kBatchClients = soak ? 4 : 2;
  const int kRounds = 24;
  std::atomic<int64_t> sql_checked{0}, sql_mismatches{0};
  std::atomic<int64_t> batch_checked{0}, batch_mismatches{0};
  std::atomic<int64_t> batch_failed{0}, batch_degraded{0};
  Timer timer;

  std::vector<std::thread> clients;
  for (int t = 0; t < kSqlClients; ++t) {
    clients.emplace_back([&, t] {
      // Each dashboard refreshes the same handful of templated statements
      // with recurring constants — the plan cache's bread and butter.
      QueryEngine engine(&index, schema);
      engine.AttachService(&service);
      std::vector<std::string> sqls = {
          "SELECT COUNT(*) FROM t WHERE a < " + std::to_string(300000 + t),
          "SELECT SUM(b), COUNT(*) FROM t WHERE a BETWEEN 100000 AND 600000",
          "SELECT MAX(c) FROM t WHERE c >= 2500",
      };
      QueryEngine check(&index, schema);  // Unattached reference.
      for (int round = 0; round < kRounds; ++round) {
        for (const std::string& sql : sqls) {
          PreparedStatement stmt = engine.Prepare(sql);
          ExecContext ctx;
          SqlResult got = engine.RunPrepared(stmt, ctx);
          SqlResult want = check.Run(sql);
          sql_checked.fetch_add(1, std::memory_order_relaxed);
          if (!got.ok || got.value != want.value ||
              got.stats.matched != want.stats.matched) {
            sql_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int t = 0; t < kBatchClients; ++t) {
    clients.emplace_back([&, t] {
      Rng client_rng(77 + t);
      for (int round = 0; round < kRounds; ++round) {
        // One giant region query buried among needles.
        Workload batch;
        for (int i = 0; i < 15; ++i) {
          Query q;
          Value lo = client_rng.UniformValue(0, 990000);
          q.filters.push_back(Predicate{0, lo, lo + 4000});
          batch.push_back(q);
        }
        Query region;
        region.filters.push_back(Predicate{0, 10000, 990000});
        region.SetAggregates({{AggKind::kSum, 1}, {AggKind::kCount, 0}});
        batch.insert(batch.begin() + 7, region);
        std::vector<QueryService::Admission> tickets =
            service.SubmitBatch(std::span<const Query>(batch));
        for (size_t i = 0; i < batch.size(); ++i) {
          AwaitInfo info;
          QueryResult got = service.Await(tickets[i], &info);
          batch_checked.fetch_add(1, std::memory_order_relaxed);
          if (info.outcome != QueryOutcome::kCompleted) {
            // Fail-closed is acceptable under the soak's injected faults;
            // without faults every query must complete.
            if (soak) {
              batch_failed.fetch_add(1, std::memory_order_relaxed);
            } else {
              batch_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          QueryResult want = index.Execute(batch[i]);
          if (soak && (got.degraded || want.degraded)) {
            // A quarantined block makes both sides flagged-incomplete (and
            // the quarantine set can evolve between the two executions);
            // the contract checked here is the *flag*, not the value.
            batch_degraded.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (got.agg != want.agg || got.matched != want.matched ||
              got.scanned != want.scanned) {
            batch_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double soak_seconds = timer.ElapsedSeconds();

  std::printf(
      "soak: %lld SQL runs (%lld mismatches), %lld batch queries "
      "(%lld mismatches) in %.2fs\n",
      static_cast<long long>(sql_checked.load()),
      static_cast<long long>(sql_mismatches.load()),
      static_cast<long long>(batch_checked.load()),
      static_cast<long long>(batch_mismatches.load()), soak_seconds);
  if (soak) {
#if defined(TSUNAMI_FAULT_INJECTION)
    std::printf(
        "soak faults: %lld chunks thrown, %lld checksum flips -> %lld "
        "queries failed closed, %lld degraded-flagged, %lld blocks "
        "quarantined\n",
        static_cast<long long>(fault::FireCount("sched.task_throw")),
        static_cast<long long>(fault::FireCount("storage.checksum")),
        static_cast<long long>(batch_failed.load()),
        static_cast<long long>(batch_degraded.load()),
        static_cast<long long>(index.store().QuarantinedBlocks()));
    fault::DisarmAll();
#else
    std::printf("soak: %lld failed closed, %lld degraded-flagged\n",
                static_cast<long long>(batch_failed.load()),
                static_cast<long long>(batch_degraded.load()));
#endif
  }

  // --- Deadlines: a giant scan cancelled mid-flight -------------------------
  Query region;
  region.filters.push_back(Predicate{0, 0, 1000000});
  SubmitOptions strict;
  strict.deadline_seconds = 1e-7;
  bool cancelled = false;
  QueryResult cut = service.Run(region, strict, &cancelled);
  std::printf("1e-7s deadline on a full-region query: %s (agg=%lld)\n",
              cancelled ? "cancelled, identity result" : "finished",
              static_cast<long long>(cut.agg));

  ServiceStats stats = service.stats();
  std::printf(
      "service stats: submitted=%lld completed=%lld cancelled=%lld "
      "timed_out=%lld failed=%lld\n"
      "  plan cache: %lld hits / %lld misses (%.0f%% hit rate, %lld "
      "entries)\n"
      "  scheduler: %lld chunks, %lld steals, queue depth %lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.timed_out),
      static_cast<long long>(stats.failed),
      static_cast<long long>(stats.cache.hits),
      static_cast<long long>(stats.cache.misses),
      100.0 * stats.cache.HitRate(),
      static_cast<long long>(stats.cache.size),
      static_cast<long long>(stats.scheduler.chunks),
      static_cast<long long>(stats.scheduler.steals),
      static_cast<long long>(stats.queue_depth));

  const bool ok = sql_mismatches.load() == 0 && batch_mismatches.load() == 0;
  std::printf("%s\n", ok ? "OK: service results bit-identical to Execute"
                         : "FAILED: mismatches detected");
  return ok ? 0 : 1;
}
