// Quickstart: build a Tsunami index over a small synthetic table and run
// range-aggregation queries against it.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "src/core/tsunami.h"
#include "src/datasets/synthetic.h"

using tsunami::AggKind;
using tsunami::Benchmark;
using tsunami::Predicate;
using tsunami::Query;
using tsunami::QueryResult;
using tsunami::TsunamiIndex;

int main() {
  // 1. Get a dataset. Real applications fill a tsunami::Dataset with their
  // own rows (one int64 value per dimension; encode strings/floats first).
  // Here we generate a 4-dimensional synthetic table plus a workload.
  Benchmark bench = tsunami::MakeUniformBenchmark(/*dims=*/4, /*rows=*/100000);
  std::printf("dataset: %lld rows x %d dims\n",
              static_cast<long long>(bench.data.size()), bench.data.dims());

  // 2. Build the index. Tsunami self-optimizes for the sample workload:
  // it clusters query types, carves the space into low-skew regions with a
  // Grid Tree, and fits an Augmented Grid per region.
  TsunamiIndex index(bench.data, bench.workload);
  const TsunamiIndex::Stats& stats = index.stats();
  std::printf(
      "built Tsunami: %d query types, %d regions (tree depth %d), "
      "%lld grid cells, %.1f KiB index, %.2fs optimize + %.2fs sort\n",
      stats.num_query_types, stats.num_regions, stats.tree_depth,
      static_cast<long long>(stats.total_cells),
      index.IndexSizeBytes() / 1024.0, stats.optimize_seconds,
      stats.sort_seconds);

  // 3. Run queries: conjunctions of inclusive range filters + COUNT or SUM.
  Query count_query;
  count_query.filters = {Predicate{0, 100000000, 200000000},
                         Predicate{2, 0, 500000000}};
  QueryResult count = index.Execute(count_query);
  std::printf("COUNT(*) WHERE d0 in [1e8, 2e8] AND d2 <= 5e8  ->  %lld "
              "(scanned %lld points over %lld ranges)\n",
              static_cast<long long>(count.agg),
              static_cast<long long>(count.scanned),
              static_cast<long long>(count.cell_ranges));

  Query sum_query = count_query;
  sum_query.agg = AggKind::kSum;
  sum_query.agg_dim = 3;
  QueryResult sum = index.Execute(sum_query);
  std::printf("SUM(d3) over the same filter  ->  %lld\n",
              static_cast<long long>(sum.agg));
  return 0;
}
