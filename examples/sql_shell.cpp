// SQL shell: run SQL-subset statements against a Tsunami-indexed table.
// The table is the synthetic NYC-taxi emulation; the engine parses, binds
// against the schema, delegates the filter to the index, and finalizes the
// aggregate. WHERE clauses may combine predicates with AND / OR / NOT /
// IN (...) — disjunctive clauses are served as unions of disjoint
// rectangles (one index query each). Reads statements from stdin when
// piped; otherwise runs a demo script.
//
//   $ ./build/examples/sql_shell
//   $ echo "SELECT AVG(fare) FROM taxi WHERE trip_distance <= 2" |
//         ./build/examples/sql_shell
#include <cstdio>
#include <iostream>
#include <string>
#include <unistd.h>

#include "src/core/tsunami.h"
#include "src/datasets/taxi.h"
#include "src/datasets/workload_builder.h"
#include "src/query/engine.h"

using namespace tsunami;

namespace {

void RunStatement(const QueryEngine& engine, const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  SqlResult result = engine.Run(sql);
  if (!result.ok) {
    std::printf("  error: %s\n", result.error.c_str());
    return;
  }
  std::printf("  =");
  for (double v : result.values) std::printf(" %.4f", v);
  std::printf("   (matched %lld rows, scanned %lld, %lld ranges)\n",
              static_cast<long long>(result.stats.matched),
              static_cast<long long>(result.stats.scanned),
              static_cast<long long>(result.stats.cell_ranges));
}

}  // namespace

int main() {
  Benchmark bench = MakeTaxiBenchmark(RowsFromEnv(200000));
  std::printf("building Tsunami over %lld taxi rows...\n",
              static_cast<long long>(bench.data.size()));
  TsunamiIndex index(bench.data, bench.workload);

  TableSchema schema;
  schema.table_name = "taxi";
  schema.columns = bench.dim_names;
  QueryEngine engine(&index, schema);

  std::printf("table 'taxi' columns:");
  for (const std::string& column : schema.columns) {
    std::printf(" %s", column.c_str());
  }
  std::printf("\n\n");

  int piped_statements = 0;
  if (!isatty(fileno(stdin))) {
    // Piped input: one statement per line.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunStatement(engine, line);
      ++piped_statements;
    }
    if (piped_statements > 0) return 0;
  }

  // No input: run a demo script exercising every aggregate and predicate
  // form (column names are the taxi emulation's, Tab. 3 / §6.2).
  const char* script[] = {
      "SELECT COUNT(*) FROM taxi",
      "SELECT COUNT(*) FROM taxi WHERE passengers = 1",
      "SELECT AVG(fare) FROM taxi WHERE distance <= 2",
      "SELECT MAX(fare) FROM taxi WHERE passengers >= 4",
      "SELECT MIN(distance) FROM taxi WHERE fare BETWEEN 2000 AND 3000",
      "SELECT SUM(passengers) FROM taxi WHERE pickup_time >= 700000 AND "
      "distance < 5",
      "SELECT COUNT(*) FROM taxi WHERE 3 <= passengers AND "
      "passengers <= 5 AND distance > 10",
      // Disjunctive clauses (served as unions of disjoint rectangles):
      "SELECT COUNT(*) FROM taxi WHERE passengers = 1 OR passengers >= 5",
      "SELECT AVG(fare) FROM taxi WHERE passengers IN (1, 2) AND "
      "(distance <= 1 OR distance >= 20)",
      "SELECT COUNT(*) FROM taxi WHERE NOT (fare BETWEEN 500 AND 5000)",
      "SELECT COUNT(*) FROM taxi WHERE passengers != 1",
      // Error handling:
      "SELECT MEDIAN(fare) FROM taxi",
      "SELECT COUNT(*) FROM taxi WHERE congestion_fee > 1",
  };
  for (const char* sql : script) RunStatement(engine, sql);
  std::printf(
      "\n(pipe statements into this binary to run your own, e.g.\n"
      " echo \"SELECT COUNT(*) FROM taxi WHERE fare > 5000\" | sql_shell)\n");
  return 0;
}
