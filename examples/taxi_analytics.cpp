// Taxi analytics: the paper's motivating scenario (§6.2) — a dashboard
// issuing typed analytical queries over trip records with skew towards
// recent data and correlated fare columns. Compares Tsunami against a tuned
// k-d tree and Flood on the same questions.
//
//   $ ./build/examples/taxi_analytics
#include <cstdio>

#include "src/baselines/kdtree.h"
#include "src/common/stats.h"
#include "src/core/tsunami.h"
#include "src/datasets/taxi.h"
#include "src/datasets/workload_builder.h"
#include "src/flood/flood.h"

using namespace tsunami;

namespace {

double TimeWorkload(const MultiDimIndex& index, const Workload& workload) {
  Timer timer;
  int64_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (const Query& q : workload) sink += index.Execute(q).agg;
  }
  if (sink < 0) return 0.0;
  return timer.ElapsedNanos() / (3.0 * workload.size()) / 1000.0;  // us.
}

}  // namespace

int main() {
  Benchmark bench = MakeTaxiBenchmark(RowsFromEnv(200000));
  std::printf("taxi trips: %lld rows, %d dims, %d query types\n",
              static_cast<long long>(bench.data.size()), bench.data.dims(),
              bench.num_query_types);

  TsunamiIndex tsunami_index(bench.data, bench.workload);
  FloodIndex flood(bench.data, bench.workload);
  KdTree kdtree(bench.data, bench.workload);

  // A few of the dashboard questions, answered through the index.
  ColumnQuantiles quant(bench.data);
  Query recent_singles;  // "Single-passenger trips in the last month?"
  recent_singles.filters = {Predicate{2, 1, 1},
                            quant.Range(0, 1.0 - 1.0 / 24, 1.0)};
  Query short_trips;  // "Short trips (bottom quartile) this past year?"
  short_trips.filters = {quant.Range(3, 0.0, 0.25),
                         quant.Range(0, 0.5, 1.0)};
  Query big_tippers;  // "How many trips tipped in the top decile?"
  big_tippers.filters = {quant.Range(5, 0.9, 1.0)};

  const struct {
    const char* question;
    const Query* query;
  } kQuestions[] = {
      {"single-passenger trips, last month", &recent_singles},
      {"short trips, past year", &short_trips},
      {"top-decile tips, all time", &big_tippers},
  };
  for (const auto& item : kQuestions) {
    QueryResult r = tsunami_index.Execute(*item.query);
    std::printf("  %-40s -> %lld trips (scanned %lld)\n", item.question,
                static_cast<long long>(r.agg),
                static_cast<long long>(r.scanned));
  }

  std::printf("\nworkload timing (avg us/query):\n");
  std::printf("  %-8s %8.1f\n", "KdTree", TimeWorkload(kdtree, bench.workload));
  std::printf("  %-8s %8.1f\n", "Flood", TimeWorkload(flood, bench.workload));
  std::printf("  %-8s %8.1f\n", "Tsunami",
              TimeWorkload(tsunami_index, bench.workload));
  std::printf("\nindex sizes: KdTree %.0f KiB, Flood %.0f KiB, Tsunami %.0f "
              "KiB\n",
              kdtree.IndexSizeBytes() / 1024.0,
              flood.IndexSizeBytes() / 1024.0,
              tsunami_index.IndexSizeBytes() / 1024.0);
  return 0;
}
