// tsunami_cli: a small command-line tool exercising the whole public API —
// dataset generation, index construction (optionally parallel), EXPLAIN
// output, SQL execution, and snapshot save/load.
//
//   $ tsunami_cli explain taxi
//   $ tsunami_cli sql stocks "SELECT COUNT(*) FROM stocks WHERE volume > 900"
//   $ tsunami_cli save tpch /tmp/tpch.snapshot
//   $ tsunami_cli load /tmp/tpch.snapshot "SELECT COUNT(*) FROM t"
//   $ tsunami_cli bench perfmon
//
// Row count defaults to 200000; override with TSUNAMI_SCALE_ROWS.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/core/tsunami.h"
#include "src/datasets/datasets.h"
#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"
#include "src/query/engine.h"

using namespace tsunami;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tsunami_cli stats   <tpch|taxi|perfmon|stocks>\n"
      "  tsunami_cli explain <dataset>\n"
      "  tsunami_cli sql     <dataset> \"<statement>\"\n"
      "  tsunami_cli save    <dataset> <path>\n"
      "  tsunami_cli load    <path> [\"<statement>\"]\n"
      "  tsunami_cli bench   <dataset>\n");
  return 2;
}

bool MakeBenchmarkByName(const std::string& name, int64_t rows,
                         Benchmark* out) {
  if (name == "tpch") {
    *out = MakeTpchBenchmark(rows);
  } else if (name == "taxi") {
    *out = MakeTaxiBenchmark(rows);
  } else if (name == "perfmon") {
    *out = MakePerfmonBenchmark(rows);
  } else if (name == "stocks") {
    *out = MakeStocksBenchmark(rows);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    return false;
  }
  return true;
}

TsunamiIndex BuildIndex(const Benchmark& bench) {
  TsunamiOptions options;
  options.build_threads = ThreadPool::DefaultThreads();
  return TsunamiIndex(bench.data, bench.workload, options);
}

int RunSql(const QueryEngine& engine, const std::string& sql) {
  SqlResult result = engine.Run(sql);
  if (!result.ok) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%.4f\n", result.value);
  std::printf("(matched %lld, scanned %lld, %lld ranges)\n",
              static_cast<long long>(result.stats.matched),
              static_cast<long long>(result.stats.scanned),
              static_cast<long long>(result.stats.cell_ranges));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const int64_t rows = RowsFromEnv(200000);

  if (command == "load") {
    std::string error;
    std::unique_ptr<TsunamiIndex> index =
        TsunamiIndex::LoadFromFile(argv[2], &error);
    if (index == nullptr) {
      std::fprintf(stderr, "load failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("loaded %s: %lld rows, %lld B index\n", argv[2],
                static_cast<long long>(index->store().size()),
                static_cast<long long>(index->IndexSizeBytes()));
    if (argc >= 4) {
      // Snapshots do not carry schemas; bind generic column names c0..cN
      // and table name "t".
      TableSchema schema;
      schema.table_name = "t";
      for (int d = 0; d < index->store().dims(); ++d) {
        schema.columns.push_back("c" + std::to_string(d));
      }
      return RunSql(QueryEngine(index.get(), schema), argv[3]);
    }
    return 0;
  }

  Benchmark bench;
  if (!MakeBenchmarkByName(argv[2], rows, &bench)) return Usage();

  if (command == "stats") {
    TsunamiIndex index = BuildIndex(bench);
    const TsunamiIndex::Stats& stats = index.stats();
    std::printf("dataset           %s\n", bench.name.c_str());
    std::printf("rows              %lld\n",
                static_cast<long long>(bench.data.size()));
    std::printf("dimensions        %d\n", bench.data.dims());
    std::printf("query types       %d\n", stats.num_query_types);
    std::printf("tree nodes        %d\n", stats.tree_nodes);
    std::printf("tree depth        %d\n", stats.tree_depth);
    std::printf("regions           %d (%d indexed)\n", stats.num_regions,
                stats.num_indexed_regions);
    std::printf("cells             %lld\n",
                static_cast<long long>(stats.total_cells));
    std::printf("avg FMs/region    %.2f\n", stats.avg_fms_per_region);
    std::printf("avg CCDFs/region  %.2f\n", stats.avg_ccdfs_per_region);
    std::printf("index size        %lld B\n",
                static_cast<long long>(index.IndexSizeBytes()));
    std::printf("build             %.2fs optimize + %.2fs sort\n",
                stats.optimize_seconds, stats.sort_seconds);
    return 0;
  }
  if (command == "explain") {
    TsunamiIndex index = BuildIndex(bench);
    std::fputs(index.Describe(bench.dim_names).c_str(), stdout);
    return 0;
  }
  if (command == "sql") {
    if (argc < 4) return Usage();
    TsunamiIndex index = BuildIndex(bench);
    TableSchema schema;
    schema.table_name = argv[2];
    schema.columns = bench.dim_names;
    return RunSql(QueryEngine(&index, schema), argv[3]);
  }
  if (command == "save") {
    if (argc < 4) return Usage();
    TsunamiIndex index = BuildIndex(bench);
    std::string error;
    if (!index.SaveToFile(argv[3], &error)) {
      std::fprintf(stderr, "save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("saved %s snapshot to %s\n", bench.name.c_str(), argv[3]);
    return 0;
  }
  if (command == "bench") {
    Timer timer;
    TsunamiIndex index = BuildIndex(bench);
    double build = timer.ElapsedSeconds();
    WorkloadRunStats serial = MeasureWorkload(index, bench.workload);
    ThreadPool pool(ThreadPool::DefaultThreads());
    WorkloadRunStats parallel = MeasureWorkload(index, bench.workload, &pool);
    std::printf("build: %.2fs (%d threads)\n", build,
                ThreadPool::DefaultThreads());
    std::printf("serial:   %8.1f us/query  (%.0f q/s)\n",
                serial.avg_query_micros, 1e6 / serial.avg_query_micros);
    std::printf("parallel: %8.1f us/query  (%.0f q/s on %d threads)\n",
                parallel.avg_query_micros, 1e6 / parallel.avg_query_micros,
                pool.num_threads());
    return 0;
  }
  return Usage();
}
