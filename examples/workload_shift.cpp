// Workload shift (§6.4 / Fig. 9a): a warehouse whose query workload changes
// at midnight. The old index degrades on the new workload; rebuilding
// (re-optimization + data re-organization) restores performance within
// seconds at this scale.
//
//   $ ./build/examples/workload_shift
#include <cstdio>

#include "src/common/stats.h"
#include "src/core/query_clustering.h"
#include "src/core/tsunami.h"
#include "src/core/workload_monitor.h"
#include "src/datasets/tpch.h"
#include "src/datasets/workload_builder.h"

using namespace tsunami;

namespace {

double AvgMicros(const MultiDimIndex& index, const Workload& workload) {
  Timer timer;
  int64_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    for (const Query& q : workload) sink += index.Execute(q).agg;
  }
  if (sink < 0) return 0.0;
  return timer.ElapsedNanos() / (3.0 * workload.size()) / 1000.0;
}

}  // namespace

int main() {
  Benchmark bench = MakeTpchBenchmark(RowsFromEnv(200000));
  Workload night_workload = MakeTpchShiftedWorkload(bench.data);

  std::printf("daytime: building Tsunami for the daytime workload...\n");
  TsunamiIndex day_index(bench.data, bench.workload);
  std::printf("  daytime queries:   %7.1f us/query\n",
              AvgMicros(day_index, bench.workload));

  // A workload monitor (§8) watches the query stream for shift.
  int num_types = 0;
  Workload typed = LabelQueryTypes(bench.data, bench.workload, {}, &num_types);
  WorkloadMonitorOptions monitor_options;
  monitor_options.window = 200;
  WorkloadMonitor monitor(bench.data, typed, monitor_options);
  for (const Query& q : bench.workload) monitor.Observe(q);
  std::printf("  monitor after daytime traffic: reoptimize=%s\n",
              monitor.ShouldReoptimize() ? "yes" : "no");
  monitor.Reset();

  std::printf("midnight: workload shifts to five new query types.\n");
  double degraded = AvgMicros(day_index, night_workload);
  std::printf("  nighttime queries: %7.1f us/query on the old layout\n",
              degraded);
  for (const Query& q : night_workload) monitor.Observe(q);
  std::printf("  monitor flags: reoptimize=%s (%s)\n",
              monitor.ShouldReoptimize() ? "yes" : "no",
              monitor.Reason().c_str());

  std::printf("re-optimizing for the new workload...\n");
  Timer rebuild;
  TsunamiIndex night_index(bench.data, night_workload);
  double rebuild_seconds = rebuild.ElapsedSeconds();
  double restored = AvgMicros(night_index, night_workload);
  std::printf(
      "  rebuilt in %.2fs (%.2fs optimize + %.2fs re-organize)\n",
      rebuild_seconds, night_index.stats().optimize_seconds,
      night_index.stats().sort_seconds);
  std::printf("  nighttime queries: %7.1f us/query after re-optimization "
              "(%.1fx faster)\n",
              restored, degraded / restored);
  return 0;
}
