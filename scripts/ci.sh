#!/usr/bin/env bash
# CI entry point: configure, build, and run the tier-1 test suite, with
# -Werror applied to the files this PR introduced (TSUNAMI_WERROR).
#
# Five passes:
#  1. the default build (SIMD tiers compiled in, runtime-dispatched; column
#     blocks FOR + bit-width encoded);
#  2. a -DTSUNAMI_DISABLE_SIMD=ON build that pins the portable scalar
#     kernel, so the fallback path can never silently rot;
#  3. a -DTSUNAMI_DISABLE_ENCODING=ON build that pins every column block to
#     raw 64-bit storage, so the unencoded scan path stays exercised;
#  4. the examples (including the batch-API and query-service demos, which
#     self-check against per-query execution) plus a ctest run under
#     TSUNAMI_FORCE_SCALAR, exercising the runtime-degraded dispatch path
#     in the full-SIMD binary;
#  5. a ThreadSanitizer build gating the concurrency suites (work-stealing
#     scheduler, query service, thread pool/runner) — the serving path is
#     lock-and-deque code and must stay race-clean, not just correct.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DTSUNAMI_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake -B build-nosimd -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_SIMD=ON
cmake --build build-nosimd -j"$(nproc)"
ctest --test-dir build-nosimd --output-on-failure -j"$(nproc)"

# Third pass: raw-block (no narrowing) build — scans, serialization, and
# size reporting must hold without the codec layer.
cmake -B build-noenc -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_ENCODING=ON
cmake --build build-noenc -j"$(nproc)"
ctest --test-dir build-noenc --output-on-failure -j"$(nproc)"

# Fourth pass: examples build + degraded-dispatch run.
cmake --build build -j"$(nproc)" --target \
  batch_api query_service quickstart sql_shell access_paths index_explorer
./build/batch_api
./build/query_service
TSUNAMI_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -j"$(nproc)"

# Fifth pass: ThreadSanitizer on the scheduler/service suites.
cmake -B build-tsan -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j"$(nproc)" --target \
  task_scheduler_test query_service_test exec_test
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'task_scheduler_test|query_service_test|exec_test'
