#!/usr/bin/env bash
# CI entry point: configure, build, and run the tier-1 test suite, with
# -Werror applied to the files this PR introduced (TSUNAMI_WERROR).
#
# Three passes:
#  1. the default build (SIMD tiers compiled in, runtime-dispatched);
#  2. a -DTSUNAMI_DISABLE_SIMD=ON build that pins the portable scalar
#     kernel, so the fallback path can never silently rot;
#  3. the examples (including the batch-API demo, which self-checks batch
#     results against per-query execution) plus a ctest run under
#     TSUNAMI_FORCE_SCALAR, exercising the runtime-degraded dispatch path
#     in the full-SIMD binary.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DTSUNAMI_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake -B build-nosimd -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_SIMD=ON
cmake --build build-nosimd -j"$(nproc)"
ctest --test-dir build-nosimd --output-on-failure -j"$(nproc)"

# Third pass: examples build + degraded-dispatch run.
cmake --build build -j"$(nproc)" --target \
  batch_api quickstart sql_shell access_paths index_explorer
./build/batch_api
TSUNAMI_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -j"$(nproc)"
