#!/usr/bin/env bash
# CI entry point: configure, build, and run the tier-1 test suite, with
# -Werror applied to the files this PR introduced (TSUNAMI_WERROR).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DTSUNAMI_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
