#!/usr/bin/env bash
# CI entry point: configure, build, and run the tier-1 test suite, with
# -Werror applied to the files this PR introduced (TSUNAMI_WERROR).
#
# Ten passes:
#  1. the default build (SIMD tiers compiled in, runtime-dispatched; column
#     blocks FOR + bit-width encoded);
#  2. a -DTSUNAMI_DISABLE_SIMD=ON build that pins the portable scalar
#     kernel, so the fallback path can never silently rot;
#  3. a -DTSUNAMI_DISABLE_ENCODING=ON build that pins every column block to
#     raw 64-bit storage, so the unencoded scan path stays exercised;
#  4. the examples (including the batch-API and query-service demos, which
#     self-check against per-query execution) plus a ctest run under
#     TSUNAMI_FORCE_SCALAR, exercising the runtime-degraded dispatch path
#     in the full-SIMD binary;
#  5. a ThreadSanitizer build gating the concurrency suites (work-stealing
#     scheduler, query service, thread pool/runner) — the serving path is
#     lock-and-deque code and must stay race-clean, not just correct. Built
#     with -DTSUNAMI_FAULT_INJECTION=ON so the fault-injection soaks
#     (thrown chunks, flipped checksums, injected stalls) run *under* TSan:
#     the error paths must be as race-clean as the happy path;
#  6. an AddressSanitizer+UBSanitizer build, also with fault injection on,
#     over the robustness-relevant suites — corrupt-block quarantine,
#     short-read/truncation handling, and exception unwinding through the
#     scheduler must not scribble, leak-on-throw, or hit UB;
#  7. the network front end under the same ASan+UBSan+FI build:
#     tsunami_serverd + net_test (which gates the wire-level NetFaultTest
#     fault soaks on TSUNAMI_FAULT_INJECTION), a loopback daemon smoke via
#     tsunami_serverd itself (SIGTERM drain must exit 0), and the
#     1000-connection fault-injected `query_service --soak --net` soak;
#  8. the concurrent-ingest path under the TSan+FI build: ingest_test rides
#     in pass 5/6, and `query_service --soak --ingest` races writers,
#     readers, and grid reorganization with the ingest fault sites
#     (ingest.compact_throw, ingest.swap_delay) armed — epoch-based
#     snapshot publication must stay race-clean under injected aborts and
#     widened swap windows, and the quiesced replay must be bit-identical;
#  9. the durability path under the ASan+UBSan+FI build: wal_test (whose
#     WalFaultTest suite arms wal.torn_write / wal.fsync_fail /
#     durability.checkpoint_throw and requires the log to fail closed) and
#     the `query_service --soak --durable` crash-recovery soak, which
#     SIGKILLs a durable-ingest child mid-stream three times and verifies
#     every acked batch survives recovery, nothing is double-applied, and a
#     quiesced query replay is bit-identical to a full-scan reference;
# 10. resource pressure under the same ASan+UBSan+FI build: resource_test
#     (governor accounting, backpressure determinism, the fs.enospc sweep
#     over all four filesystem sites, and the scrubber's find-before-touch
#     repair) plus the `query_service --soak --pressure` soak, which runs
#     memory budgets, WAL-disk budgets, disk-full latch/re-arm, and
#     background scrubbing against racing writers.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DTSUNAMI_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake -B build-nosimd -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_SIMD=ON
cmake --build build-nosimd -j"$(nproc)"
ctest --test-dir build-nosimd --output-on-failure -j"$(nproc)"

# Third pass: raw-block (no narrowing) build — scans, serialization, and
# size reporting must hold without the codec layer.
cmake -B build-noenc -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_ENCODING=ON
cmake --build build-noenc -j"$(nproc)"
ctest --test-dir build-noenc --output-on-failure -j"$(nproc)"

# Fourth pass: examples build + degraded-dispatch run.
cmake --build build -j"$(nproc)" --target \
  batch_api query_service quickstart sql_shell access_paths index_explorer
./build/batch_api
./build/query_service
TSUNAMI_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -j"$(nproc)"

# Fifth pass: ThreadSanitizer on the scheduler/service suites, fault
# injection compiled in so the injected-fault soaks run under TSan.
cmake -B build-tsan -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_SANITIZE=thread \
  -DTSUNAMI_FAULT_INJECTION=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j"$(nproc)" --target \
  task_scheduler_test query_service_test exec_test ingest_test
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'task_scheduler_test|query_service_test|exec_test|ingest_test'

# Sixth pass: ASan+UBSan on the robustness suites (storage integrity, file
# error paths, scheduler exception-safety, service overload/degrade), fault
# injection compiled in. Scoped to the relevant suites: this is a 1-core CI
# host and a full ASan ctest would double the wall time for no new signal.
cmake -B build-asan -S . -DTSUNAMI_WERROR=ON \
  -DTSUNAMI_SANITIZE=address,undefined -DTSUNAMI_FAULT_INJECTION=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j"$(nproc)" --target \
  io_test encoded_column_test storage_test scan_kernel_test \
  task_scheduler_test query_service_test tsunami_test ingest_test
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" -R \
  'io_test|encoded_column_test|storage_test|scan_kernel_test|task_scheduler_test|query_service_test|tsunami_test|ingest_test'

# Seventh pass: the network front end, reusing the ASan+UBSan+FI build.
# net_test's NetFaultTest suite (injected accept failures, short writes,
# RSTs, torn frames) and io_test's short-read sweep only compile with fault
# injection on, so this is where the wire-level error paths run sanitized.
cmake --build build-asan -j"$(nproc)" --target \
  net_test tsunami_serverd query_service
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" -R net_test

# Daemon smoke: boot tsunami_serverd on an ephemeral port, then SIGTERM —
# the graceful drain must run to completion and exit 0.
./build-asan/tsunami_serverd --rows=50000 --port=0 >serverd-smoke.log 2>&1 &
serverd_pid=$!
for _ in $(seq 1 120); do
  grep -q "listening" serverd-smoke.log && break
  sleep 0.5
done
grep -q "listening" serverd-smoke.log
kill -TERM "$serverd_pid"
wait "$serverd_pid"
cat serverd-smoke.log
rm -f serverd-smoke.log

# The >=1000-connection loopback soak with the wire + service fault sites
# armed: zero hangs, zero leaks (ASan), zero wrong results (fail-closed
# predicate inside the binary).
./build-asan/query_service --soak --net

# Eighth pass: the concurrent-ingest soak under TSan with the ingest fault
# sites armed — writers, readers, and grid reorganization race while
# compactions abort (ingest.compact_throw must fail closed) and the
# snapshot-publish critical section stalls (ingest.swap_delay widens the
# race window TSan watches). The binary's own invariants (monotone
# visibility, fail-closed floor, quiesced bit-identical replay) plus TSan's
# race detection are the pass/fail signal.
cmake --build build-tsan -j"$(nproc)" --target query_service
./build-tsan/query_service --soak --ingest

# Ninth pass: durability under ASan+UBSan+FI. wal_test carries the
# fail-closed fault suite (torn group writes, fsync failures, checkpoint
# aborts); the --durable soak is the kill -9 test — a forked child ingests
# with durable acks and armed WAL faults, the parent SIGKILLs it mid-stream,
# recovers the directory in-process, and fails unless every acked insert is
# present exactly once and a quiesced replay matches a never-crashed
# full-scan reference bit for bit.
cmake --build build-asan -j"$(nproc)" --target wal_test query_service
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" -R wal_test
./build-asan/query_service --soak --durable

# Tenth pass: resource pressure under ASan+UBSan+FI. resource_test sweeps
# injected fs.enospc over all four filesystem sites (WAL write, WAL fsync,
# checkpoint rename, manifest write) and requires the latch/drain/re-arm
# protocol to hold bit-exactly; the --pressure soak then races concurrent
# writers against a delta-backlog budget (gov.mem_pressure armed), a
# Scrubber against scrub.corrupt_block rot, and a durable store against a
# WAL-disk budget plus a persistent fs.enospc storm — admission control,
# not luck, must pace the writers, and the quiesced replays must match a
# full-scan reference bit for bit with zero leaks and zero UB.
cmake --build build-asan -j"$(nproc)" --target resource_test query_service
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" -R resource_test
./build-asan/query_service --soak --pressure
