#!/usr/bin/env bash
# CI entry point: configure, build, and run the tier-1 test suite, with
# -Werror applied to the files this PR introduced (TSUNAMI_WERROR).
#
# Two passes: the default build (SIMD tiers compiled in, runtime-dispatched)
# and a -DTSUNAMI_DISABLE_SIMD=ON build that pins the portable scalar
# kernel, so the fallback path can never silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DTSUNAMI_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake -B build-nosimd -S . -DTSUNAMI_WERROR=ON -DTSUNAMI_DISABLE_SIMD=ON
cmake --build build-nosimd -j"$(nproc)"
ctest --test-dir build-nosimd --output-on-failure -j"$(nproc)"
