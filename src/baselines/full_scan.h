// Trivial baseline: scan every row for every query.
#ifndef TSUNAMI_BASELINES_FULL_SCAN_H_
#define TSUNAMI_BASELINES_FULL_SCAN_H_

#include <string>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// Full scan over the column store in original row order. The reference
/// implementation every other index is validated against.
class FullScanIndex : public MultiDimIndex {
 public:
  explicit FullScanIndex(const Dataset& data) : store_(data) {}

  std::string Name() const override { return "FullScan"; }
  QueryResult Execute(const Query& query) const override {
    return ExecuteFullScan(store_, query);
  }
  int64_t IndexSizeBytes() const override { return 0; }
  const ColumnStore& store() const override { return store_; }

 private:
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_FULL_SCAN_H_
