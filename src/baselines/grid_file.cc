#include "src/baselines/grid_file.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsunami {

GridFileIndex::GridFileIndex(const Dataset& data, const Options& options)
    : dims_(data.dims()) {
  const int64_t n = data.size();
  // Symmetric partition counts: p per dimension with p^d cells of roughly
  // target_cell_rows rows (the Grid File treats all dimensions equally).
  int64_t target_cells =
      std::max<int64_t>(n / std::max<int64_t>(options.target_cell_rows, 1), 1);
  target_cells = std::min(target_cells, options.max_cells);
  int p = dims_ > 0
              ? static_cast<int>(std::floor(std::pow(
                    static_cast<double>(target_cells), 1.0 / dims_)))
              : 1;
  p = std::max(p, 1);
  partitions_.assign(dims_, p);

  // Linear scales: equi-depth split values from each column.
  scales_.resize(dims_);
  std::vector<Value> sorted(n);
  for (int d = 0; d < dims_; ++d) {
    for (int64_t r = 0; r < n; ++r) sorted[r] = data.at(r, d);
    std::sort(sorted.begin(), sorted.end());
    scales_[d].resize(p - 1);
    for (int b = 1; b < p; ++b) {
      scales_[d][b - 1] = sorted[std::min<int64_t>(
          static_cast<int64_t>(static_cast<double>(b) / p * n), n - 1)];
    }
  }

  strides_.assign(std::max(dims_, 1), 1);
  for (int d = dims_ - 2; d >= 0; --d) {
    strides_[d] = strides_[d + 1] * partitions_[d + 1];
  }
  num_cells_ = dims_ > 0 ? strides_[0] * partitions_[0] : 1;

  // Cluster rows by cell id (counting sort) and build the directory.
  std::vector<int64_t> cell_of(n);
  std::vector<int64_t> counts(num_cells_ + 1, 0);
  for (int64_t r = 0; r < n; ++r) {
    int64_t cell = 0;
    for (int d = 0; d < dims_; ++d) {
      cell += static_cast<int64_t>(BucketOf(d, data.at(r, d))) * strides_[d];
    }
    cell_of[r] = cell;
    ++counts[cell + 1];
  }
  for (int64_t c = 0; c < num_cells_; ++c) counts[c + 1] += counts[c];
  cell_start_ = counts;
  std::vector<uint32_t> perm(n);
  std::vector<int64_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (int64_t r = 0; r < n; ++r) {
    perm[cursor[cell_of[r]]++] = static_cast<uint32_t>(r);
  }
  store_ = ColumnStore(data, perm);
}

int GridFileIndex::BucketOf(int dim, Value v) const {
  const std::vector<Value>& scale = scales_[dim];
  // Bucket b covers [scale[b-1], scale[b]); upper_bound gives the first
  // split greater than v, i.e. the bucket index.
  return static_cast<int>(std::upper_bound(scale.begin(), scale.end(), v) -
                          scale.begin());
}

QueryResult GridFileIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (store_.size() == 0) return result;
  // Per-dimension bucket ranges, plus whether the query covers each bucket
  // entirely (for the exact-scan optimization).
  std::vector<int> lo(dims_, 0), hi(dims_, 0);
  for (int d = 0; d < dims_; ++d) hi[d] = partitions_[d] - 1;
  for (const Predicate& p : query.filters) {
    lo[p.dim] = BucketOf(p.dim, p.lo);
    hi[p.dim] = BucketOf(p.dim, p.hi);
  }

  // Odometer over the cell box; runs along the innermost dimension are
  // contiguous in the directory, so scan them as single ranges. Runs are
  // collected and submitted to the scan kernel as one batch.
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  std::vector<int> cur(lo);
  for (;;) {
    int64_t base = 0;
    for (int d = 0; d + 1 < dims_; ++d) {
      base += static_cast<int64_t>(cur[d]) * strides_[d];
    }
    int64_t first_cell = base + (dims_ > 0 ? lo[dims_ - 1] : 0);
    int64_t last_cell = base + (dims_ > 0 ? hi[dims_ - 1] : 0);
    int64_t begin = cell_start_[first_cell];
    int64_t end = cell_start_[last_cell + 1];
    if (begin < end) {
      // Exact iff every filtered dimension's bucket run is fully covered.
      bool exact = true;
      for (const Predicate& p : query.filters) {
        const std::vector<Value>& scale = scales_[p.dim];
        int b_lo = p.dim == dims_ - 1 ? lo[p.dim] : cur[p.dim];
        int b_hi = p.dim == dims_ - 1 ? hi[p.dim] : cur[p.dim];
        Value cell_lo = b_lo == 0 ? kValueMin : scale[b_lo - 1];
        Value cell_hi = b_hi == static_cast<int>(scale.size())
                            ? kValueMax
                            : scale[b_hi] - 1;
        if (p.lo > cell_lo || p.hi < cell_hi) {
          exact = false;
          break;
        }
      }
      ++result.cell_ranges;
      tasks.push_back(RangeTask{begin, end, exact});
    }
    // Advance the odometer over dims [0, dims_-1).
    int d = dims_ - 2;
    while (d >= 0 && cur[d] == hi[d]) {
      cur[d] = lo[d];
      --d;
    }
    if (d < 0) break;
    ++cur[d];
  }
  store_.ScanRanges(tasks, query, &result);
  return result;
}

int64_t GridFileIndex::IndexSizeBytes() const {
  int64_t bytes =
      static_cast<int64_t>(cell_start_.size()) * sizeof(int64_t);  // Directory.
  for (const std::vector<Value>& scale : scales_) {
    bytes += static_cast<int64_t>(scale.size()) * sizeof(Value);
  }
  return bytes;
}

}  // namespace tsunami
