// Grid File baseline (Nievergelt et al. [31], cited in §6.1/§7). Classic
// symmetric multikey structure: one *linear scale* (array of split values)
// per dimension, chosen from the data distribution only, and a directory
// mapping each grid cell to its bucket. Unlike Flood, partition counts are
// not workload-tuned — every dimension is treated equally — which is
// exactly the weakness the learned indexes exploit.
#ifndef TSUNAMI_BASELINES_GRID_FILE_H_
#define TSUNAMI_BASELINES_GRID_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// Static clustered Grid File: equi-depth linear scales per dimension, rows
/// clustered by cell in row-major cell order, and a directory of cell start
/// offsets.
class GridFileIndex : public MultiDimIndex {
 public:
  struct Options {
    /// Target rows per cell; partition counts per dimension are the largest
    /// symmetric counts that keep the expected cell at or above this.
    int64_t target_cell_rows = 4096;
    /// Hard cap on directory entries.
    int64_t max_cells = int64_t{1} << 22;
  };

  explicit GridFileIndex(const Dataset& data)
      : GridFileIndex(data, Options()) {}
  GridFileIndex(const Dataset& data, const Options& options);

  std::string Name() const override { return "GridFile"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_cells() const { return num_cells_; }
  const std::vector<int>& partitions() const { return partitions_; }

 private:
  int BucketOf(int dim, Value v) const;

  int dims_ = 0;
  std::vector<int> partitions_;
  std::vector<int64_t> strides_;
  int64_t num_cells_ = 1;
  /// scales_[d] holds partitions_[d] - 1 split values: bucket b covers
  /// values in [scales_[d][b-1], scales_[d][b]) with open ends.
  std::vector<std::vector<Value>> scales_;
  std::vector<int64_t> cell_start_;  // Directory; size num_cells_ + 1.
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_GRID_FILE_H_
