#include "src/baselines/kdtree.h"

#include <algorithm>
#include <numeric>

#include "src/common/random.h"

namespace tsunami {

KdTree::KdTree(const Dataset& data, const Workload& workload,
               const Options& options)
    : dims_(data.dims()), bounds_(ComputeBounds(data)) {
  Rng rng(11);
  Dataset sample = SampleDataset(data, 20000, &rng);
  dim_order_ = DimsBySelectivity(sample, workload, dims_);
  std::vector<uint32_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0u);
  if (data.size() > 0) {
    BuildNode(data, &perm, 0, data.size(), 0, options);
  }
  store_ = ColumnStore(data, perm);
}

int32_t KdTree::BuildNode(const Dataset& data, std::vector<uint32_t>* perm,
                          int64_t begin, int64_t end, int dim_cursor,
                          const Options& options) {
  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, -1, 0, -1, -1});
  if (end - begin <= options.page_size) return idx;

  // Pick the next dimension in round-robin order that can actually split
  // this segment (not all values equal).
  int dim = -1;
  for (int attempt = 0; attempt < dims_; ++attempt) {
    int candidate = dim_order_[(dim_cursor + attempt) % dims_];
    Value first = data.at((*perm)[begin], candidate);
    for (int64_t r = begin + 1; r < end; ++r) {
      if (data.at((*perm)[r], candidate) != first) {
        dim = candidate;
        dim_cursor = dim_cursor + attempt;
        break;
      }
    }
    if (dim >= 0) break;
  }
  if (dim < 0) return idx;  // All rows identical across dimensions.

  int64_t mid = begin + (end - begin) / 2;
  std::nth_element(perm->begin() + begin, perm->begin() + mid,
                   perm->begin() + end, [&](uint32_t a, uint32_t b) {
                     return data.at(a, dim) < data.at(b, dim);
                   });
  Value split = data.at((*perm)[mid], dim);
  // Ensure strict progress: move `mid` past duplicates of the split value so
  // the left side holds values <= split and the right side values > split.
  auto is_le = [&](uint32_t row) { return data.at(row, dim) <= split; };
  mid = std::partition(perm->begin() + begin + (mid - begin),
                       perm->begin() + end, is_le) -
        perm->begin();
  if (mid == end) {
    // All values <= split; split at values < split instead.
    mid = std::partition(perm->begin() + begin, perm->begin() + end,
                         [&](uint32_t row) { return data.at(row, dim) < split; }) -
          perm->begin();
    split = split - 1;  // Left now holds values <= split-1 < split.
  }

  Node node = nodes_[idx];
  node.split_dim = dim;
  node.split_value = split;
  nodes_[idx] = node;
  int32_t left =
      BuildNode(data, perm, begin, mid, (dim_cursor + 1) % dims_, options);
  int32_t right =
      BuildNode(data, perm, mid, end, (dim_cursor + 1) % dims_, options);
  nodes_[idx].split_dim = dim;
  nodes_[idx].split_value = split;
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  return idx;
}

QueryResult KdTree::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (nodes_.empty()) return result;
  std::vector<Value> lo = bounds_.lo;
  std::vector<Value> hi = bounds_.hi;
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  PlanNode(0, query, &lo, &hi, &tasks, &result);
  store_.ScanRanges(tasks, query, &result);
  return result;
}

void KdTree::PlanNode(int32_t node_idx, const Query& query,
                      std::vector<Value>* lo, std::vector<Value>* hi,
                      std::vector<RangeTask>* tasks, QueryResult* out) const {
  const Node& node = nodes_[node_idx];
  if (node.split_dim < 0) {
    bool exact = true;
    for (const Predicate& p : query.filters) {
      if (p.lo > (*lo)[p.dim] || p.hi < (*hi)[p.dim]) {
        exact = false;
        break;
      }
    }
    ++out->cell_ranges;
    if (node.begin < node.end) {
      tasks->push_back(RangeTask{node.begin, node.end, exact});
    }
    return;
  }
  int dim = node.split_dim;
  const Predicate* p = query.FilterOn(dim);
  // Left child: values <= split; right child: values > split.
  if (p == nullptr || p->lo <= node.split_value) {
    Value saved = (*hi)[dim];
    (*hi)[dim] = std::min(saved, node.split_value);
    PlanNode(node.left, query, lo, hi, tasks, out);
    (*hi)[dim] = saved;
  }
  if (p == nullptr || p->hi > node.split_value) {
    Value saved = (*lo)[dim];
    (*lo)[dim] = std::max(saved, node.split_value + 1);
    PlanNode(node.right, query, lo, hi, tasks, out);
    (*lo)[dim] = saved;
  }
}

int64_t KdTree::num_leaves() const {
  int64_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.split_dim < 0) ++leaves;
  }
  return leaves;
}

}  // namespace tsunami
