// K-d tree (§6.1 baseline 4): recursively partitions space at the median of
// one dimension per level, cycling dimensions round-robin in order of
// workload selectivity, until leaves hold at most `page_size` points.
#ifndef TSUNAMI_BASELINES_KDTREE_H_
#define TSUNAMI_BASELINES_KDTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/common/workload_stats.h"
#include "src/storage/column_store.h"

namespace tsunami {

class KdTree : public MultiDimIndex {
 public:
  struct Options {
    int64_t page_size = 4096;
  };

  KdTree(const Dataset& data, const Workload& workload)
      : KdTree(data, workload, Options()) {}
  KdTree(const Dataset& data, const Workload& workload,
         const Options& options);

  std::string Name() const override { return "KdTree"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override {
    return static_cast<int64_t>(nodes_.size()) * sizeof(Node);
  }
  const ColumnStore& store() const override { return store_; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_leaves() const;

 private:
  struct Node {
    int64_t begin = 0;
    int64_t end = 0;
    int split_dim = -1;  // -1 for leaves.
    Value split_value = 0;
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t BuildNode(const Dataset& data, std::vector<uint32_t>* perm,
                    int64_t begin, int64_t end, int dim_cursor,
                    const Options& options);

  // Collects the leaf ranges the query must scan into `tasks`; the caller
  // submits them to the scan kernel as one batch.
  void PlanNode(int32_t node_idx, const Query& query, std::vector<Value>* lo,
                std::vector<Value>* hi, std::vector<RangeTask>* tasks,
                QueryResult* out) const;

  int dims_ = 0;
  std::vector<int> dim_order_;  // Round-robin order (by selectivity).
  std::vector<Node> nodes_;
  DimBounds bounds_;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_KDTREE_H_
