#include "src/baselines/octree.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace tsunami {

HyperOctree::HyperOctree(const Dataset& data, const Options& options)
    : dims_(data.dims()), bounds_(ComputeBounds(data)) {
  std::vector<uint32_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<Value> lo = bounds_.lo;
  std::vector<Value> hi = bounds_.hi;
  if (data.size() > 0) {
    BuildNode(data, &perm, 0, data.size(), &lo, &hi, 0, options);
  }
  store_ = ColumnStore(data, perm);
}

int32_t HyperOctree::BuildNode(const Dataset& data,
                               std::vector<uint32_t>* perm, int64_t begin,
                               int64_t end, std::vector<Value>* lo,
                               std::vector<Value>* hi, int depth,
                               const Options& options) {
  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, true, {}});
  bool splittable = false;
  for (int d = 0; d < dims_; ++d) {
    if ((*lo)[d] < (*hi)[d]) splittable = true;
  }
  if (end - begin <= options.page_size || depth >= options.max_depth ||
      !splittable) {
    return idx;
  }

  // Partition rows into hyperoctants around the box midpoint.
  std::vector<Value> mid(dims_);
  for (int d = 0; d < dims_; ++d) {
    mid[d] = (*lo)[d] + ((*hi)[d] - (*lo)[d]) / 2;
  }
  std::map<uint32_t, std::vector<uint32_t>> octants;  // Ordered for DFS.
  for (int64_t r = begin; r < end; ++r) {
    uint32_t row = (*perm)[r];
    uint32_t code = 0;
    for (int d = 0; d < dims_; ++d) {
      if (data.at(row, d) > mid[d]) code |= 1u << d;
    }
    octants[code].push_back(row);
  }
  if (octants.size() <= 1) {
    // All points in one octant (heavy duplication): subdividing cannot make
    // progress beyond shrinking the box; recurse with the shrunk box.
    uint32_t code = octants.begin()->first;
    std::vector<Value> clo = *lo, chi = *hi;
    for (int d = 0; d < dims_; ++d) {
      if (code & (1u << d)) {
        clo[d] = std::min(mid[d] + 1, (*hi)[d]);
      } else {
        chi[d] = mid[d];
      }
    }
    nodes_[idx].is_leaf = false;
    int32_t child =
        BuildNode(data, perm, begin, end, &clo, &chi, depth + 1, options);
    nodes_[idx].children.emplace_back(code, child);
    return idx;
  }

  nodes_[idx].is_leaf = false;
  int64_t offset = begin;
  for (auto& [code, rows] : octants) {
    int64_t child_begin = offset;
    for (uint32_t row : rows) (*perm)[offset++] = row;
    std::vector<Value> clo = *lo, chi = *hi;
    for (int d = 0; d < dims_; ++d) {
      if (code & (1u << d)) {
        clo[d] = std::min(mid[d] + 1, (*hi)[d]);
      } else {
        chi[d] = mid[d];
      }
    }
    int32_t child = BuildNode(data, perm, child_begin, offset, &clo, &chi,
                              depth + 1, options);
    nodes_[idx].children.emplace_back(code, child);
  }
  return idx;
}

QueryResult HyperOctree::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (nodes_.empty()) return result;
  std::vector<Value> lo = bounds_.lo;
  std::vector<Value> hi = bounds_.hi;
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  PlanNode(0, query, &lo, &hi, &tasks, &result);
  store_.ScanRanges(tasks, query, &result);
  return result;
}

void HyperOctree::PlanNode(int32_t node_idx, const Query& query,
                           std::vector<Value>* lo, std::vector<Value>* hi,
                           std::vector<RangeTask>* tasks,
                           QueryResult* out) const {
  const Node& node = nodes_[node_idx];
  if (node.is_leaf) {
    bool exact = true;
    for (const Predicate& p : query.filters) {
      if (p.lo > (*lo)[p.dim] || p.hi < (*hi)[p.dim]) {
        exact = false;
        break;
      }
    }
    ++out->cell_ranges;
    if (node.begin < node.end) {
      tasks->push_back(RangeTask{node.begin, node.end, exact});
    }
    return;
  }
  std::vector<Value> mid(dims_);
  for (int d = 0; d < dims_; ++d) {
    mid[d] = (*lo)[d] + ((*hi)[d] - (*lo)[d]) / 2;
  }
  for (const auto& [code, child] : node.children) {
    std::vector<Value> clo = *lo, chi = *hi;
    for (int d = 0; d < dims_; ++d) {
      if (code & (1u << d)) {
        clo[d] = std::min(mid[d] + 1, (*hi)[d]);
      } else {
        chi[d] = mid[d];
      }
    }
    bool intersects = true;
    for (const Predicate& p : query.filters) {
      if (p.hi < clo[p.dim] || p.lo > chi[p.dim]) {
        intersects = false;
        break;
      }
    }
    if (intersects) PlanNode(child, query, &clo, &chi, tasks, out);
  }
}

int64_t HyperOctree::IndexSizeBytes() const {
  int64_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += sizeof(Node) +
             static_cast<int64_t>(node.children.size()) *
                 sizeof(std::pair<uint32_t, int32_t>);
  }
  return bytes;
}

}  // namespace tsunami
