// Hyperoctree (§6.1 baseline 3): recursively subdivides space equally into
// hyperoctants (2^d children per node, stored sparsely) until each leaf
// holds at most `page_size` points.
#ifndef TSUNAMI_BASELINES_OCTREE_H_
#define TSUNAMI_BASELINES_OCTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/common/workload_stats.h"
#include "src/storage/column_store.h"

namespace tsunami {

class HyperOctree : public MultiDimIndex {
 public:
  struct Options {
    int64_t page_size = 4096;
    int max_depth = 24;  // Safety bound against degenerate duplicates.
  };

  explicit HyperOctree(const Dataset& data) : HyperOctree(data, Options()) {}
  HyperOctree(const Dataset& data, const Options& options);

  std::string Name() const override { return "Hyperoctree"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int64_t begin = 0;
    int64_t end = 0;
    bool is_leaf = true;
    // Sparse children: (octant code, node index). An octant code has bit i
    // set iff the child covers the upper half of dimension i.
    std::vector<std::pair<uint32_t, int32_t>> children;
  };

  // Recursive build over rows [begin, end) of `perm`; boxes are tracked in
  // (lo, hi) per dimension. Returns the node index.
  int32_t BuildNode(const Dataset& data, std::vector<uint32_t>* perm,
                    int64_t begin, int64_t end, std::vector<Value>* lo,
                    std::vector<Value>* hi, int depth,
                    const Options& options);

  // Collects the leaf ranges the query must scan into `tasks`; the caller
  // submits them to the scan kernel as one batch.
  void PlanNode(int32_t node_idx, const Query& query, std::vector<Value>* lo,
                std::vector<Value>* hi, std::vector<RangeTask>* tasks,
                QueryResult* out) const;

  int dims_ = 0;
  std::vector<Node> nodes_;
  DimBounds bounds_;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_OCTREE_H_
