#include "src/baselines/qd_tree.h"

#include <algorithm>
#include <numeric>

namespace tsunami {

namespace {

// Does `q` intersect the box spanned by [min, max]?
bool Intersects(const Query& q, const std::vector<Value>& min,
                const std::vector<Value>& max) {
  for (const Predicate& p : q.filters) {
    if (max[p.dim] < p.lo || min[p.dim] > p.hi) return false;
  }
  return true;
}

// Is the box fully inside every filter of `q`?
bool Covered(const Query& q, const std::vector<Value>& min,
             const std::vector<Value>& max) {
  for (const Predicate& p : q.filters) {
    if (p.lo > min[p.dim] || p.hi < max[p.dim]) return false;
  }
  return true;
}

}  // namespace

QdTreeIndex::QdTreeIndex(const Dataset& data, const Workload& workload,
                         const Options& options)
    : dims_(data.dims()) {
  int64_t n = data.size();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);

  // Evenly subsample the workload for cut selection.
  std::vector<const Query*> queries;
  int64_t total = static_cast<int64_t>(workload.size());
  int64_t take = std::min<int64_t>(total, options.max_sample_queries);
  for (int64_t i = 0; i < take; ++i) {
    queries.push_back(&workload[i * total / take]);
  }

  if (n > 0) {
    BuildNode(data, &perm, 0, n, queries, options, 0);
  }
  store_ = ColumnStore(data, perm);
}

int32_t QdTreeIndex::BuildNode(const Dataset& data,
                               std::vector<uint32_t>* perm, int64_t begin,
                               int64_t end,
                               const std::vector<const Query*>& queries,
                               const Options& options, int depth) {
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  depth_ = std::max(depth_, depth);
  {
    Node& node = nodes_[id];
    node.begin = begin;
    node.end = end;
    node.min.assign(dims_, kValueMax);
    node.max.assign(dims_, kValueMin);
    for (int64_t i = begin; i < end; ++i) {
      for (int d = 0; d < dims_; ++d) {
        Value v = data.at((*perm)[i], d);
        node.min[d] = std::min(node.min[d], v);
        node.max[d] = std::max(node.max[d], v);
      }
    }
  }

  int64_t rows = end - begin;
  if (rows <= options.min_leaf_rows || depth >= options.max_depth ||
      queries.empty()) {
    ++num_leaves_;
    return id;
  }

  // Candidate cuts: predicate boundaries that fall strictly inside the
  // node's bounds in their dimension. A cut (d, v) sends `x < v` left.
  std::vector<std::pair<int, Value>> cuts;
  for (const Query* q : queries) {
    for (const Predicate& p : q->filters) {
      if (p.lo > nodes_[id].min[p.dim] && p.lo <= nodes_[id].max[p.dim]) {
        cuts.emplace_back(p.dim, p.lo);
      }
      if (p.hi >= nodes_[id].min[p.dim] && p.hi < nodes_[id].max[p.dim] &&
          p.hi < kValueMax) {
        cuts.emplace_back(p.dim, p.hi + 1);
      }
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.empty()) {
    ++num_leaves_;
    return id;
  }
  if (static_cast<int>(cuts.size()) > options.max_candidate_cuts) {
    std::vector<std::pair<int, Value>> sampled;
    for (int i = 0; i < options.max_candidate_cuts; ++i) {
      sampled.push_back(cuts[i * cuts.size() / options.max_candidate_cuts]);
    }
    cuts = std::move(sampled);
  }

  // Queries that reach this node.
  std::vector<const Query*> node_queries;
  for (const Query* q : queries) {
    if (Intersects(*q, nodes_[id].min, nodes_[id].max)) {
      node_queries.push_back(q);
    }
  }
  if (node_queries.empty()) {
    ++num_leaves_;
    return id;
  }

  // Expected scanned rows if this node stays a leaf.
  double leaf_cost =
      static_cast<double>(node_queries.size()) * static_cast<double>(rows);

  // Greedy: evaluate each candidate's expected scanned rows.
  double best_cost = leaf_cost;
  int best_dim = -1;
  Value best_cut = 0;
  for (const auto& [dim, cut] : cuts) {
    int64_t n_left = 0;
    for (int64_t i = begin; i < end; ++i) {
      n_left += data.at((*perm)[i], dim) < cut;
    }
    if (n_left == 0 || n_left == rows) continue;
    int64_t n_right = rows - n_left;
    double cost = 0.0;
    for (const Query* q : node_queries) {
      const Predicate* p = q->FilterOn(dim);
      // The child boxes differ from the parent only in `dim`.
      bool hits_left = p == nullptr || p->lo < cut;
      bool hits_right = p == nullptr || p->hi >= cut;
      if (hits_left) cost += static_cast<double>(n_left);
      if (hits_right) cost += static_cast<double>(n_right);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_dim = dim;
      best_cut = cut;
    }
  }
  if (best_dim < 0 || best_cost > leaf_cost * (1.0 - options.min_gain)) {
    ++num_leaves_;
    return id;
  }

  auto mid_it = std::stable_partition(
      perm->begin() + begin, perm->begin() + end,
      [&](uint32_t r) { return data.at(r, best_dim) < best_cut; });
  int64_t mid = mid_it - perm->begin();

  // Split the query set: children only see queries that can reach them.
  std::vector<const Query*> left_queries, right_queries;
  for (const Query* q : node_queries) {
    const Predicate* p = q->FilterOn(best_dim);
    if (p == nullptr || p->lo < best_cut) left_queries.push_back(q);
    if (p == nullptr || p->hi >= best_cut) right_queries.push_back(q);
  }

  int32_t left = BuildNode(data, perm, begin, mid, left_queries, options,
                           depth + 1);
  int32_t right =
      BuildNode(data, perm, mid, end, right_queries, options, depth + 1);
  // `nodes_` may have reallocated during recursion; re-index.
  nodes_[id].dim = best_dim;
  nodes_[id].cut = best_cut;
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void QdTreeIndex::PlanNode(int32_t node_id, const Query& query,
                           std::vector<RangeTask>* tasks,
                           QueryResult* out) const {
  const Node& node = nodes_[node_id];
  if (!Intersects(query, node.min, node.max)) return;
  if (node.dim < 0) {
    ++out->cell_ranges;
    if (node.begin < node.end) {
      tasks->push_back(RangeTask{node.begin, node.end,
                                 Covered(query, node.min, node.max)});
    }
    return;
  }
  PlanNode(node.left, query, tasks, out);
  PlanNode(node.right, query, tasks, out);
}

QueryResult QdTreeIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (nodes_.empty()) return result;
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  PlanNode(0, query, &tasks, &result);
  store_.ScanRanges(tasks, query, &result);
  return result;
}

int64_t QdTreeIndex::IndexSizeBytes() const {
  // Per node: split metadata plus the two per-dimension bound vectors.
  return static_cast<int64_t>(nodes_.size()) *
         (sizeof(int) + sizeof(Value) + 2 * sizeof(int32_t) +
          2 * sizeof(int64_t) + 2 * dims_ * sizeof(Value));
}

}  // namespace tsunami
