// Qd-tree (Yang et al. 2020, cited [46] in the paper): a workload-aware
// binary partitioning of the data into blocks, chosen to minimize the
// number of rows in blocks a query must read. The original paper targets
// disk blocks and trains cuts with reinforcement learning; this is the
// greedy variant it also describes, evaluated in-memory over the same
// column store as every other index here.
//
// Candidate cuts come from the workload's predicate boundaries (the
// qd-tree "cut set"); each node greedily takes the cut with the lowest
// expected scanned-rows cost over the queries that reach it. Like the Grid
// Tree, the qd-tree adapts to query skew; unlike Tsunami, its leaves are
// opaque blocks with no intra-block structure, so every intersecting block
// is scanned in full.
#ifndef TSUNAMI_BASELINES_QD_TREE_H_
#define TSUNAMI_BASELINES_QD_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

class QdTreeIndex : public MultiDimIndex {
 public:
  struct Options {
    /// Stop splitting below this many rows (the paper's block-size floor).
    int64_t min_leaf_rows = 4096;
    /// Queries sampled from the workload for cut selection.
    int max_sample_queries = 256;
    /// Candidate cuts evaluated per node (evenly subsampled when the
    /// workload offers more).
    int max_candidate_cuts = 64;
    /// A cut must reduce expected scanned rows by at least this fraction.
    double min_gain = 0.01;
    int max_depth = 32;
  };

  QdTreeIndex(const Dataset& data, const Workload& workload)
      : QdTreeIndex(data, workload, Options()) {}
  QdTreeIndex(const Dataset& data, const Workload& workload,
              const Options& options);

  std::string Name() const override { return "Qd-tree"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_leaves() const { return num_leaves_; }
  int depth() const { return depth_; }

 private:
  struct Node {
    int dim = -1;       // Split dimension; -1 for leaves.
    Value cut = 0;      // Left: value < cut; right: value >= cut.
    int32_t left = -1;  // Child node ids; -1 for leaves.
    int32_t right = -1;
    int64_t begin = 0;  // Row range [begin, end) in the clustered store.
    int64_t end = 0;
    std::vector<Value> min;  // Per-dimension bounds of rows in the subtree
    std::vector<Value> max;  // (for exactness checks and skipping).
  };

  // Recursive build over perm[begin, end); returns the node id.
  int32_t BuildNode(const Dataset& data, std::vector<uint32_t>* perm,
                    int64_t begin, int64_t end,
                    const std::vector<const Query*>& queries,
                    const Options& options, int depth);

  // Collects the leaf ranges the query must scan into `tasks`; the caller
  // submits them to the scan kernel as one batch.
  void PlanNode(int32_t node_id, const Query& query,
                std::vector<RangeTask>* tasks, QueryResult* out) const;

  int dims_ = 0;
  std::vector<Node> nodes_;
  int64_t num_leaves_ = 0;
  int depth_ = 0;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_QD_TREE_H_
