#include "src/baselines/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tsunami {

namespace {

/// Recursively tiles `rows` (indices into `data`) into runs of `page_size`
/// using STR: sort by the current dimension, cut into vertical slabs sized
/// so that the final dimension produces full pages, recurse per slab.
void StrTile(const Dataset& data, std::vector<uint32_t>::iterator begin,
             std::vector<uint32_t>::iterator end, int dim, int dims,
             int64_t page_size) {
  int64_t n = end - begin;
  if (n <= page_size) return;
  std::sort(begin, end, [&](uint32_t a, uint32_t b) {
    return data.at(a, dim) < data.at(b, dim);
  });
  if (dim == dims - 1) return;  // Final dimension: pages are cut in order.
  int64_t num_pages = (n + page_size - 1) / page_size;
  // S = ceil(P^(1/k)) slabs, where k dimensions remain to tile.
  int remaining = dims - dim;
  int64_t slabs = static_cast<int64_t>(std::ceil(
      std::pow(static_cast<double>(num_pages), 1.0 / remaining)));
  slabs = std::clamp<int64_t>(slabs, 1, num_pages);
  int64_t slab_rows = (n + slabs - 1) / slabs;
  for (int64_t lo = 0; lo < n; lo += slab_rows) {
    int64_t hi = std::min(lo + slab_rows, n);
    StrTile(data, begin + lo, begin + hi, dim + 1, dims, page_size);
  }
}

}  // namespace

RTreeIndex::RTreeIndex(const Dataset& data, const Options& options)
    : dims_(data.dims()) {
  const int64_t n = data.size();
  const int64_t page_size = std::max<int64_t>(options.page_size, 1);
  const int fanout = std::max(options.fanout, 2);

  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (n > 0 && dims_ > 0) {
    StrTile(data, perm.begin(), perm.end(), 0, dims_, page_size);
  }
  store_ = ColumnStore(data, perm);

  // Leaf level: fully packed pages over the clustered layout.
  std::vector<int32_t> level;
  for (int64_t begin = 0; begin < n; begin += page_size) {
    int64_t end = std::min(begin + page_size, n);
    Node leaf;
    leaf.begin = begin;
    leaf.end = end;
    leaf.lo.assign(dims_, kValueMax);
    leaf.hi.assign(dims_, kValueMin);
    for (int64_t r = begin; r < end; ++r) {
      for (int d = 0; d < dims_; ++d) {
        Value v = store_.Get(r, d);
        leaf.lo[d] = std::min(leaf.lo[d], v);
        leaf.hi[d] = std::max(leaf.hi[d], v);
      }
    }
    level.push_back(static_cast<int32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }
  num_leaves_ = static_cast<int64_t>(level.size());
  height_ = level.empty() ? 0 : 1;

  // Pack each level into parents of `fanout` consecutive children. STR
  // ordering makes consecutive children spatially close.
  while (level.size() > 1) {
    std::vector<int32_t> parents;
    for (size_t i = 0; i < level.size(); i += fanout) {
      size_t j = std::min(i + fanout, level.size());
      Node parent;
      parent.lo.assign(dims_, kValueMax);
      parent.hi.assign(dims_, kValueMin);
      parent.first_child = level[i];
      parent.num_children = static_cast<int32_t>(j - i);
      for (size_t c = i; c < j; ++c) {
        const Node& child = nodes_[level[c]];
        for (int d = 0; d < dims_; ++d) {
          parent.lo[d] = std::min(parent.lo[d], child.lo[d]);
          parent.hi[d] = std::max(parent.hi[d], child.hi[d]);
        }
      }
      parents.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.empty() ? -1 : level[0];
}

bool RTreeIndex::Intersects(const Node& node, const Query& query) const {
  for (const Predicate& p : query.filters) {
    if (p.hi < node.lo[p.dim] || p.lo > node.hi[p.dim]) return false;
  }
  return true;
}

bool RTreeIndex::Covered(const Node& node, const Query& query) const {
  for (const Predicate& p : query.filters) {
    if (p.lo > node.lo[p.dim] || p.hi < node.hi[p.dim]) return false;
  }
  return true;
}

QueryResult RTreeIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (root_ < 0) return result;
  // Iterative DFS; children of one parent are consecutive node indices.
  static thread_local std::vector<int32_t> stack;
  static thread_local std::vector<RangeTask> tasks;
  stack.clear();
  tasks.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!Intersects(node, query)) continue;
    if (node.first_child < 0) {
      ++result.cell_ranges;
      tasks.push_back(RangeTask{node.begin, node.end, Covered(node, query)});
      continue;
    }
    for (int32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(node.first_child + c);
    }
  }
  store_.ScanRanges(tasks, query, &result);
  return result;
}

int64_t RTreeIndex::IndexSizeBytes() const {
  // Each node stores a 2*dims MBR plus child/range bookkeeping.
  return static_cast<int64_t>(nodes_.size()) *
         (2 * dims_ * static_cast<int64_t>(sizeof(Value)) + 24);
}

}  // namespace tsunami
