// R-tree baseline (§7 cites R*-trees [3] among the classic spatial indexes;
// §6.1 excludes them because Flood already dominates them — this
// implementation lets that claim be reproduced). The tree is bulk-loaded
// with Sort-Tile-Recursive (STR) packing, the standard method for static
// data: it produces fully packed, square-ish leaves, which is the
// best-case configuration for a read-only R-tree.
#ifndef TSUNAMI_BASELINES_RTREE_H_
#define TSUNAMI_BASELINES_RTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// STR-packed R-tree over the shared column store. Leaves hold contiguous
/// physical row ranges (the index is clustered, like every index in this
/// library); internal nodes hold minimum bounding rectangles (MBRs).
class RTreeIndex : public MultiDimIndex {
 public:
  struct Options {
    int64_t page_size = 4096;  // Rows per leaf (tunable, §6.3).
    int fanout = 16;           // Children per internal node.
  };

  explicit RTreeIndex(const Dataset& data) : RTreeIndex(data, Options()) {}
  RTreeIndex(const Dataset& data, const Options& options);

  std::string Name() const override { return "RTree"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_leaves() const { return num_leaves_; }
  int height() const { return height_; }

 private:
  struct Node {
    std::vector<Value> lo;  // MBR, inclusive.
    std::vector<Value> hi;
    int32_t first_child = -1;  // Index into nodes_; -1 for leaves.
    int32_t num_children = 0;
    int64_t begin = 0;  // Leaf row range [begin, end).
    int64_t end = 0;
  };

  bool Intersects(const Node& node, const Query& query) const;
  bool Covered(const Node& node, const Query& query) const;

  int dims_ = 0;
  std::vector<Node> nodes_;  // nodes_[root_] is the root.
  int32_t root_ = -1;
  int64_t num_leaves_ = 0;
  int height_ = 0;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_RTREE_H_
