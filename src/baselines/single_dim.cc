#include "src/baselines/single_dim.h"

#include <algorithm>
#include <numeric>

#include "src/common/random.h"
#include "src/common/workload_stats.h"

namespace tsunami {
namespace {

ColumnStore BuildSorted(const Dataset& data, int sort_dim) {
  std::vector<uint32_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return data.at(a, sort_dim) < data.at(b, sort_dim);
  });
  return ColumnStore(data, perm);
}

int PickSortDim(const Dataset& data, const Workload& workload) {
  Rng rng(7);
  Dataset sample = SampleDataset(data, 20000, &rng);
  std::vector<int> order = DimsBySelectivity(sample, workload, data.dims());
  return order.empty() ? 0 : order.front();
}

}  // namespace

SingleDimIndex::SingleDimIndex(const Dataset& data, const Workload& workload,
                               int forced_sort_dim)
    : sort_dim_(forced_sort_dim >= 0 ? forced_sort_dim
                                     : PickSortDim(data, workload)),
      store_(BuildSorted(data, sort_dim_)) {}

QueryResult SingleDimIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  const Predicate* p = query.FilterOn(sort_dim_);
  if (p == nullptr) {
    // No filter on the sort dimension: full scan.
    RangeTask task{0, store_.size(), /*exact=*/false};
    store_.ScanRanges({&task, 1}, query, &result);
    result.cell_ranges = 1;
    return result;
  }
  int64_t begin = store_.LowerBound(sort_dim_, 0, store_.size(), p->lo);
  int64_t end = store_.UpperBound(sort_dim_, 0, store_.size(), p->hi);
  // The range is exact when the sort dimension is the only filter: every
  // row in [begin, end) matches by construction.
  RangeTask task{begin, end, /*exact=*/query.filters.size() == 1};
  store_.ScanRanges({&task, 1}, query, &result);
  result.cell_ranges = 1;
  return result;
}

}  // namespace tsunami
