// Clustered single-dimensional index (§6.1 baseline 1): rows sorted by the
// workload's most selective dimension; queries filtering that dimension
// binary-search their endpoints, all others fall back to a full scan.
#ifndef TSUNAMI_BASELINES_SINGLE_DIM_H_
#define TSUNAMI_BASELINES_SINGLE_DIM_H_

#include <string>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

class SingleDimIndex : public MultiDimIndex {
 public:
  /// Sorts by the most selective dimension of `workload` (estimated on a
  /// sample), or by `forced_sort_dim` if >= 0.
  SingleDimIndex(const Dataset& data, const Workload& workload,
                 int forced_sort_dim = -1);

  std::string Name() const override { return "SingleDim"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override { return sizeof(int); }
  const ColumnStore& store() const override { return store_; }

  int sort_dim() const { return sort_dim_; }

 private:
  int sort_dim_ = 0;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_SINGLE_DIM_H_
