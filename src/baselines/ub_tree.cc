#include "src/baselines/ub_tree.h"

#include <algorithm>
#include <numeric>

#include "src/baselines/zorder.h"  // MortonEncode.

namespace tsunami {

namespace {

/// Sets bit `p` of `v` and clears all lower bits of the same dimension:
/// the pattern "1000..." of Tropf-Herzog, applied dimension-locally.
uint64_t Load1000(uint64_t v, int p, int dims) {
  v |= uint64_t{1} << p;
  for (int q = p - dims; q >= 0; q -= dims) v &= ~(uint64_t{1} << q);
  return v;
}

/// Clears bit `p` of `v` and sets all lower bits of the same dimension:
/// the pattern "0111...".
uint64_t Load0111(uint64_t v, int p, int dims) {
  v &= ~(uint64_t{1} << p);
  for (int q = p - dims; q >= 0; q -= dims) v |= uint64_t{1} << q;
  return v;
}

}  // namespace

bool ZBigMin(uint64_t z, uint64_t minz, uint64_t maxz, int dims,
             int bits_per_dim, uint64_t* out) {
  uint64_t bigmin = 0;
  bool found = false;
  for (int p = dims * bits_per_dim - 1; p >= 0; --p) {
    int bits = static_cast<int>((z >> p) & 1) << 2 |
               static_cast<int>((minz >> p) & 1) << 1 |
               static_cast<int>((maxz >> p) & 1);
    switch (bits) {
      case 0b000:
      case 0b111:
        break;  // All agree; continue to the next bit.
      case 0b001:
        // Successor candidate in the upper half; keep searching the lower
        // half for a smaller (lower-bit divergence) successor.
        bigmin = Load1000(minz, p, dims);
        found = true;
        maxz = Load0111(maxz, p, dims);
        break;
      case 0b011:
        // The whole remaining region is above z; its minimum is the answer.
        *out = minz;
        return true;
      case 0b100:
        // The whole remaining region is below z; fall back to the best
        // divergence successor found so far.
        *out = bigmin;
        return found;
      case 0b101:
        minz = Load1000(minz, p, dims);  // Restrict to the upper half.
        break;
      default:
        // 0b010 / 0b110 would mean minz > maxz: malformed box.
        return false;
    }
  }
  // z itself lies in the box; the lowest-bit divergence successor (if any)
  // is the next box address after z.
  *out = bigmin;
  return found;
}

UbTreeIndex::UbTreeIndex(const Dataset& data, const Options& options)
    : dims_(data.dims()) {
  const int64_t n = data.size();
  bits_per_dim_ = options.bits_per_dim > 0
                      ? options.bits_per_dim
                      : std::min(16, dims_ > 0 ? 63 / dims_ : 16);
  bucket_models_.resize(dims_);
  std::vector<Value> column(n);
  for (int d = 0; d < dims_; ++d) {
    for (int64_t r = 0; r < n; ++r) column[r] = data.at(r, d);
    bucket_models_[d] = EquiDepthCdf::Build(column, 1 << 10);
  }

  std::vector<uint64_t> z_of(n);
  std::vector<uint32_t> coords(dims_);
  for (int64_t r = 0; r < n; ++r) {
    for (int d = 0; d < dims_; ++d) coords[d] = BucketOf(d, data.at(r, d));
    z_of[r] = MortonEncode(coords, bits_per_dim_);
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [&](uint32_t a, uint32_t b) { return z_of[a] < z_of[b]; });
  store_ = ColumnStore(data, perm);

  const int64_t page_size = std::max<int64_t>(options.page_size, 1);
  for (int64_t begin = 0; begin < n; begin += page_size) {
    int64_t end = std::min(begin + page_size, n);
    Page page;
    page.begin = begin;
    page.end = end;
    page.z_min = z_of[perm[begin]];
    page.z_max = z_of[perm[end - 1]];
    pages_.push_back(page);
  }
}

uint32_t UbTreeIndex::BucketOf(int dim, Value v) const {
  return static_cast<uint32_t>(
      bucket_models_[dim]->PartitionOf(v, 1 << bits_per_dim_));
}

QueryResult UbTreeIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (pages_.empty()) return result;
  // Corner Z-addresses of the query box in bucket space.
  std::vector<uint32_t> lo_coords(dims_, 0), hi_coords(dims_, 0);
  for (int d = 0; d < dims_; ++d) {
    hi_coords[d] = (uint32_t{1} << bits_per_dim_) - 1;
  }
  for (const Predicate& p : query.filters) {
    lo_coords[p.dim] = BucketOf(p.dim, p.lo);
    hi_coords[p.dim] = BucketOf(p.dim, p.hi);
  }
  const uint64_t zmin = MortonEncode(lo_coords, bits_per_dim_);
  const uint64_t zmax = MortonEncode(hi_coords, bits_per_dim_);

  // Walk pages in Z order, jumping with BIGMIN past pages whose Z-interval
  // contains no address inside the box. Page ranges are batched and
  // submitted to the scan kernel in one call.
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  uint64_t cur = zmin;  // Next box address we still have to cover.
  size_t i = static_cast<size_t>(
      std::lower_bound(pages_.begin(), pages_.end(), cur,
                       [](const Page& page, uint64_t z) {
                         return page.z_max < z;
                       }) -
      pages_.begin());
  while (i < pages_.size() && pages_[i].z_min <= zmax) {
    const Page& page = pages_[i];
    if (page.z_max < cur) {
      ++i;
      continue;
    }
    if (page.z_min > cur) {
      // Find the next box address at or after page.z_min.
      if (!ZBigMin(page.z_min - 1, zmin, zmax, dims_, bits_per_dim_, &cur)) {
        break;
      }
      if (cur > zmax) break;
      if (cur > page.z_max) {
        ++i;
        continue;  // This Z-region provably holds no box address.
      }
    }
    ++result.cell_ranges;
    tasks.push_back(RangeTask{page.begin, page.end, /*exact=*/false});
    if (page.z_max >= zmax) break;
    if (!ZBigMin(page.z_max, zmin, zmax, dims_, bits_per_dim_, &cur)) break;
    ++i;
  }
  store_.ScanRanges(tasks, query, &result);
  return result;
}

int64_t UbTreeIndex::IndexSizeBytes() const {
  int64_t bytes = static_cast<int64_t>(pages_.size()) * sizeof(Page);
  for (const auto& model : bucket_models_) {
    if (model != nullptr) bytes += model->SizeBytes();
  }
  return bytes;
}

}  // namespace tsunami
