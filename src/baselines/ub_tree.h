// UB-tree baseline (Ramsak et al. [36], cited in §6.1/§7): rows sorted by
// Z-order and grouped into pages ("Z-regions"), with range queries driven
// by the Tropf-Herzog BIGMIN algorithm, which jumps directly to the next
// Z-address inside the query box and skips pages that provably contain
// none. This differs from the ZOrderIndex baseline, which skips pages via
// per-dimension min/max metadata instead of Z-address arithmetic.
#ifndef TSUNAMI_BASELINES_UB_TREE_H_
#define TSUNAMI_BASELINES_UB_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cdf/cdf_model.h"
#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// The smallest Z-address strictly greater than `z` whose per-dimension
/// coordinates all lie inside the box spanned by the corner addresses
/// `minz` and `maxz` (BIGMIN / "GetNextZ"). Bit p of a code belongs to
/// dimension p % dims (MortonEncode's layout). Returns false if no such
/// address exists.
bool ZBigMin(uint64_t z, uint64_t minz, uint64_t maxz, int dims,
             int bits_per_dim, uint64_t* out);

class UbTreeIndex : public MultiDimIndex {
 public:
  struct Options {
    int64_t page_size = 4096;  // Rows per Z-region (tunable, §6.3).
    int bits_per_dim = 0;      // 0 = auto: min(16, 63 / dims).
  };

  explicit UbTreeIndex(const Dataset& data) : UbTreeIndex(data, Options()) {}
  UbTreeIndex(const Dataset& data, const Options& options);

  std::string Name() const override { return "UBTree"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

 private:
  struct Page {
    int64_t begin = 0;
    int64_t end = 0;
    uint64_t z_min = 0;  // Z-region address interval (inclusive).
    uint64_t z_max = 0;
  };

  uint32_t BucketOf(int dim, Value v) const;

  int dims_ = 0;
  int bits_per_dim_ = 8;
  std::vector<std::unique_ptr<EquiDepthCdf>> bucket_models_;
  std::vector<Page> pages_;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_UB_TREE_H_
