#include "src/baselines/zm_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/baselines/zorder.h"

namespace tsunami {

ZmIndex::ZmIndex(const Dataset& data, const Options& options)
    : dims_(data.dims()), num_rows_(data.size()) {
  bits_per_dim_ = options.bits_per_dim > 0
                      ? options.bits_per_dim
                      : std::min(16, dims_ > 0 ? 63 / dims_ : 16);
  bucket_models_.resize(dims_);
  std::vector<Value> column(data.size());
  for (int d = 0; d < dims_; ++d) {
    for (int64_t r = 0; r < data.size(); ++r) column[r] = data.at(r, d);
    bucket_models_[d] = EquiDepthCdf::Build(column, options.cdf_knots);
  }

  // Sort rows by Morton code of their bucket coordinates.
  int64_t n = data.size();
  std::vector<uint64_t> codes(n);
  std::vector<uint32_t> coords(dims_);
  for (int64_t r = 0; r < n; ++r) {
    for (int d = 0; d < dims_; ++d) {
      coords[d] = static_cast<uint32_t>(
          bucket_models_[d]->PartitionOf(data.at(r, d), 1 << bits_per_dim_));
    }
    codes[r] = MortonEncode(coords, bits_per_dim_);
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](uint32_t a, uint32_t b) { return codes[a] < codes[b]; });
  store_ = ColumnStore(data, perm);

  // Learn position from Z-address (codes fit in 63 bits, so the signed
  // Value domain holds them) and record the worst-case prediction error.
  if (n > 0) {
    std::vector<Value> sorted_codes(n);
    for (int64_t i = 0; i < n; ++i) {
      sorted_codes[i] = static_cast<Value>(codes[perm[i]]);
    }
    rmi_ = RmiCdf::Build(sorted_codes, options.rmi_leaves);
    for (int64_t i = 0; i < n; ++i) {
      int64_t predicted = static_cast<int64_t>(
          rmi_->Cdf(sorted_codes[i]) * static_cast<double>(n));
      max_error_ = std::max(max_error_, std::abs(predicted - i));
    }
  }
}

uint32_t ZmIndex::BucketOf(int dim, Value v) const {
  return static_cast<uint32_t>(
      bucket_models_[dim]->PartitionOf(v, 1 << bits_per_dim_));
}

uint64_t ZmIndex::CodeOfRow(int64_t row) const {
  std::vector<uint32_t> coords(dims_);
  for (int d = 0; d < dims_; ++d) {
    coords[d] = BucketOf(d, store_.Get(row, d));
  }
  return MortonEncode(coords, bits_per_dim_);
}

int64_t ZmIndex::LowerBound(int64_t lo, int64_t hi, uint64_t z) const {
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (CodeOfRow(mid) < z) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

QueryResult ZmIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  if (num_rows_ == 0) return result;

  // Z-address range of the query box: codes of its low and high bucket
  // corners (Morton is monotone per coordinate).
  std::vector<uint32_t> lo_corner(dims_, 0);
  std::vector<uint32_t> hi_corner(dims_, (1u << bits_per_dim_) - 1);
  for (const Predicate& p : query.filters) {
    lo_corner[p.dim] = BucketOf(p.dim, p.lo);
    hi_corner[p.dim] = BucketOf(p.dim, p.hi);
  }
  uint64_t z_lo = MortonEncode(lo_corner, bits_per_dim_);
  uint64_t z_hi = MortonEncode(hi_corner, bits_per_dim_);

  // Predict the position range, widen by the model's worst-case error,
  // then last-mile binary search to the exact boundaries.
  auto predict = [&](uint64_t z) {
    return static_cast<int64_t>(rmi_->Cdf(static_cast<Value>(z)) *
                                static_cast<double>(num_rows_));
  };
  int64_t begin_lo =
      std::clamp<int64_t>(predict(z_lo) - max_error_ - 1, 0, num_rows_);
  int64_t begin_hi =
      std::clamp<int64_t>(predict(z_lo) + max_error_ + 1, 0, num_rows_);
  int64_t begin = LowerBound(begin_lo, begin_hi, z_lo);

  // `z_hi + 1` can leave the signed Value domain when every code bit is
  // set; the suffix is then the whole tail of the table.
  int64_t end = num_rows_;
  uint64_t max_code = MortonEncode(
      std::vector<uint32_t>(dims_, (1u << bits_per_dim_) - 1), bits_per_dim_);
  if (z_hi < max_code) {
    int64_t end_lo =
        std::clamp<int64_t>(predict(z_hi + 1) - max_error_ - 1, 0, num_rows_);
    int64_t end_hi =
        std::clamp<int64_t>(predict(z_hi + 1) + max_error_ + 1, 0, num_rows_);
    end = LowerBound(end_lo, end_hi, z_hi + 1);
  }

  if (begin >= end) return result;
  ++result.cell_ranges;
  RangeTask task{begin, end, /*exact=*/false};
  store_.ScanRanges({&task, 1}, query, &result);
  return result;
}

int64_t ZmIndex::IndexSizeBytes() const {
  int64_t bytes = rmi_ ? rmi_->SizeBytes() : 0;
  for (const auto& model : bucket_models_) bytes += model->SizeBytes();
  return bytes + sizeof(max_error_);
}

}  // namespace tsunami
