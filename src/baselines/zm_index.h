// ZM-index (Wang et al. 2019, cited [44] in the paper): the standard
// Z-order space-filling curve combined with an RMI learned over the
// Z-addresses. Rows are sorted by Morton code; a two-layer RMI predicts a
// row's position from its code, replacing the page directory of a
// conventional Z-order index.
//
// The ZM-index learns only from the *data* distribution, never from the
// query workload — the property §7 contrasts with Tsunami. It appears here
// (with the greedy qd-tree, qd_tree.h) so that contrast is reproducible:
// see bench_related_baselines.
#ifndef TSUNAMI_BASELINES_ZM_INDEX_H_
#define TSUNAMI_BASELINES_ZM_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cdf/cdf_model.h"
#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

class ZmIndex : public MultiDimIndex {
 public:
  struct Options {
    int bits_per_dim = 0;  // 0 = auto: min(16, 63 / dims).
    int rmi_leaves = 256;
    /// Knots per bucket CDF model. Bucketing only requires that build and
    /// query use the same monotone model, so a compact model stays correct;
    /// coarser models just widen the scanned Z-range.
    int cdf_knots = 1024;
  };

  explicit ZmIndex(const Dataset& data) : ZmIndex(data, Options()) {}
  ZmIndex(const Dataset& data, const Options& options);

  std::string Name() const override { return "ZM-index"; }
  QueryResult Execute(const Query& query) const override;

  /// Bucket models + RMI + error bound. The Z-addresses themselves are not
  /// materialized: they are recomputed from the clustered store on demand,
  /// so the index overhead stays model-sized.
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  /// Worst-case RMI position error observed at build time (rows).
  int64_t max_error() const { return max_error_; }

 private:
  uint32_t BucketOf(int dim, Value v) const;
  uint64_t CodeOfRow(int64_t row) const;

  /// First row index in [lo, hi) whose Z-address is >= z.
  int64_t LowerBound(int64_t lo, int64_t hi, uint64_t z) const;

  int dims_ = 0;
  int bits_per_dim_ = 8;
  int64_t num_rows_ = 0;
  std::vector<std::unique_ptr<EquiDepthCdf>> bucket_models_;
  std::unique_ptr<RmiCdf> rmi_;
  int64_t max_error_ = 0;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_ZM_INDEX_H_
