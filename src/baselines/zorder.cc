#include "src/baselines/zorder.h"

#include <algorithm>
#include <numeric>

namespace tsunami {

uint64_t MortonEncode(const std::vector<uint32_t>& coords, int bits_per_dim) {
  uint64_t code = 0;
  int dims = static_cast<int>(coords.size());
  for (int j = 0; j < bits_per_dim; ++j) {
    for (int i = 0; i < dims; ++i) {
      uint64_t bit = (coords[i] >> j) & 1u;
      code |= bit << (j * dims + i);
    }
  }
  return code;
}

std::vector<uint32_t> MortonDecode(uint64_t code, int dims, int bits_per_dim) {
  std::vector<uint32_t> coords(dims, 0);
  for (int j = 0; j < bits_per_dim; ++j) {
    for (int i = 0; i < dims; ++i) {
      uint32_t bit = static_cast<uint32_t>((code >> (j * dims + i)) & 1u);
      coords[i] |= bit << j;
    }
  }
  return coords;
}

ZOrderIndex::ZOrderIndex(const Dataset& data, const Options& options)
    : dims_(data.dims()) {
  bits_per_dim_ = options.bits_per_dim > 0
                      ? options.bits_per_dim
                      : std::min(16, dims_ > 0 ? 63 / dims_ : 16);
  bucket_models_.resize(dims_);
  std::vector<Value> column(data.size());
  for (int d = 0; d < dims_; ++d) {
    for (int64_t r = 0; r < data.size(); ++r) column[r] = data.at(r, d);
    bucket_models_[d] = EquiDepthCdf::Build(column, 1 << bits_per_dim_);
  }

  // Sort rows by Morton code of their bucket coordinates.
  int64_t n = data.size();
  std::vector<uint64_t> codes(n);
  std::vector<uint32_t> coords(dims_);
  for (int64_t r = 0; r < n; ++r) {
    for (int d = 0; d < dims_; ++d) {
      coords[d] = BucketOf(d, data.at(r, d));
    }
    codes[r] = MortonEncode(coords, bits_per_dim_);
  }
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](uint32_t a, uint32_t b) { return codes[a] < codes[b]; });
  store_ = ColumnStore(data, perm);

  // Build pages with z-range and per-dimension min/max metadata.
  int64_t page_size = std::max<int64_t>(options.page_size, 1);
  for (int64_t begin = 0; begin < n; begin += page_size) {
    Page page;
    page.begin = begin;
    page.end = std::min(begin + page_size, n);
    page.z_min = codes[perm[begin]];
    page.z_max = codes[perm[page.end - 1]];
    page.min.resize(dims_);
    page.max.resize(dims_);
    for (int d = 0; d < dims_; ++d) {
      Value lo = store_.Get(begin, d), hi = lo;
      for (int64_t r = begin + 1; r < page.end; ++r) {
        Value v = store_.Get(r, d);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      page.min[d] = lo;
      page.max[d] = hi;
    }
    pages_.push_back(std::move(page));
  }
}

uint32_t ZOrderIndex::BucketOf(int dim, Value v) const {
  return static_cast<uint32_t>(
      bucket_models_[dim]->PartitionOf(v, 1 << bits_per_dim_));
}

QueryResult ZOrderIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  // Smallest and largest Morton codes inside the query box: codes of the
  // low and high bucket corners (Morton is monotone per coordinate).
  std::vector<uint32_t> lo_corner(dims_, 0);
  std::vector<uint32_t> hi_corner(dims_, (1u << bits_per_dim_) - 1);
  for (const Predicate& p : query.filters) {
    lo_corner[p.dim] = BucketOf(p.dim, p.lo);
    hi_corner[p.dim] = BucketOf(p.dim, p.hi);
  }
  uint64_t z_lo = MortonEncode(lo_corner, bits_per_dim_);
  uint64_t z_hi = MortonEncode(hi_corner, bits_per_dim_);

  // Pages are sorted by z_min; iterate those whose z-range intersects
  // [z_lo, z_hi], skipping pages whose min/max metadata rules them out.
  auto first = std::partition_point(
      pages_.begin(), pages_.end(),
      [&](const Page& page) { return page.z_max < z_lo; });
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  for (auto it = first; it != pages_.end() && it->z_min <= z_hi; ++it) {
    bool intersects = true;
    bool exact = true;
    for (const Predicate& p : query.filters) {
      if (it->max[p.dim] < p.lo || it->min[p.dim] > p.hi) {
        intersects = false;
        break;
      }
      if (p.lo > it->min[p.dim] || p.hi < it->max[p.dim]) exact = false;
    }
    if (!intersects) continue;
    ++result.cell_ranges;
    tasks.push_back(RangeTask{it->begin, it->end, exact});
  }
  store_.ScanRanges(tasks, query, &result);
  return result;
}

int64_t ZOrderIndex::IndexSizeBytes() const {
  int64_t bytes = 0;
  for (const auto& model : bucket_models_) bytes += model->SizeBytes();
  bytes += static_cast<int64_t>(pages_.size()) *
           (sizeof(Page) + 2 * dims_ * sizeof(Value));
  return bytes;
}

}  // namespace tsunami
