// Z-order index (§6.1 baseline 2): rows sorted by the Morton code of their
// per-dimension equi-depth bucket numbers, grouped into pages; pages keep
// min/max metadata per dimension for skipping.
#ifndef TSUNAMI_BASELINES_ZORDER_H_
#define TSUNAMI_BASELINES_ZORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cdf/cdf_model.h"
#include "src/common/index.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// Interleaves the low `bits_per_dim` bits of each coordinate into a single
/// Morton code; coordinate i contributes bit j to code bit j*dims + i.
/// Monotone in each coordinate, so the min/max codes of a query box are at
/// its corners.
uint64_t MortonEncode(const std::vector<uint32_t>& coords, int bits_per_dim);

/// Inverse of MortonEncode (used by tests).
std::vector<uint32_t> MortonDecode(uint64_t code, int dims, int bits_per_dim);

class ZOrderIndex : public MultiDimIndex {
 public:
  struct Options {
    int64_t page_size = 4096;  // Rows per page (tunable, §6.3).
    int bits_per_dim = 0;      // 0 = auto: min(16, 63 / dims).
  };

  explicit ZOrderIndex(const Dataset& data) : ZOrderIndex(data, Options()) {}
  ZOrderIndex(const Dataset& data, const Options& options);

  std::string Name() const override { return "ZOrder"; }
  QueryResult Execute(const Query& query) const override;
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

 private:
  struct Page {
    int64_t begin = 0;
    int64_t end = 0;
    uint64_t z_min = 0;
    uint64_t z_max = 0;
    std::vector<Value> min;  // Per-dimension minima of rows in the page.
    std::vector<Value> max;
  };

  uint32_t BucketOf(int dim, Value v) const;

  int dims_ = 0;
  int bits_per_dim_ = 8;
  std::vector<std::unique_ptr<EquiDepthCdf>> bucket_models_;
  std::vector<Page> pages_;
  ColumnStore store_;
};

}  // namespace tsunami

#endif  // TSUNAMI_BASELINES_ZORDER_H_
