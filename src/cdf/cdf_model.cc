#include "src/cdf/cdf_model.h"

#include <algorithm>
#include <cmath>

namespace tsunami {

int CdfModel::PartitionOf(Value v, int p) const {
  int idx = static_cast<int>(Cdf(v) * p);
  return std::clamp(idx, 0, p - 1);
}

std::pair<int, int> CdfModel::PartitionRange(Value lo, Value hi, int p) const {
  return {PartitionOf(lo, p), PartitionOf(hi, p)};
}

std::unique_ptr<EquiDepthCdf> EquiDepthCdf::Build(
    const std::vector<Value>& column, int knots) {
  std::vector<Value> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  return BuildFromSorted(sorted, knots);
}

std::unique_ptr<EquiDepthCdf> EquiDepthCdf::BuildFromSorted(
    const std::vector<Value>& sorted, int knots) {
  auto model = std::unique_ptr<EquiDepthCdf>(new EquiDepthCdf());
  if (sorted.empty()) {
    model->knots_ = {0, 0};
    return model;
  }
  knots = std::max(knots, 2);
  int64_t n = static_cast<int64_t>(sorted.size());
  model->knots_.resize(knots);
  for (int j = 0; j < knots; ++j) {
    int64_t idx = static_cast<int64_t>(
        static_cast<double>(j) / (knots - 1) * (n - 1) + 0.5);
    model->knots_[j] = sorted[idx];
  }
  return model;
}

double EquiDepthCdf::Cdf(Value v) const {
  const std::vector<Value>& k = knots_;
  int m = static_cast<int>(k.size());
  if (v <= k.front()) return 0.0;
  if (v > k.back()) return 1.0;
  // Find the knot interval containing v; interpolate within it. Because
  // knots are equi-depth, knot j sits at CDF j/(m-1).
  int j = static_cast<int>(std::lower_bound(k.begin(), k.end(), v) -
                           k.begin());
  // Now k[j-1] < v <= k[j].
  double cdf_lo = static_cast<double>(j - 1) / (m - 1);
  double cdf_hi = static_cast<double>(j) / (m - 1);
  Value v_lo = k[j - 1], v_hi = k[j];
  if (v_hi == v_lo) return cdf_lo;
  double frac = static_cast<double>(v - v_lo) /
                static_cast<double>(v_hi - v_lo);
  return cdf_lo + frac * (cdf_hi - cdf_lo);
}

std::unique_ptr<RmiCdf> RmiCdf::Build(const std::vector<Value>& column,
                                      int leaves) {
  auto model = std::unique_ptr<RmiCdf>(new RmiCdf());
  std::vector<Value> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  leaves = std::max(leaves, 1);
  model->leaves_.resize(leaves);
  if (sorted.empty()) return model;
  int64_t n = static_cast<int64_t>(sorted.size());

  // Root: linear map from value to leaf index, fit on (value, rank) pairs.
  double vmin = static_cast<double>(sorted.front());
  double vmax = static_cast<double>(sorted.back());
  if (vmax > vmin) {
    model->root_slope_ = leaves / (vmax - vmin);
    model->root_intercept_ = -vmin * model->root_slope_;
  } else {
    model->root_slope_ = 0.0;
    model->root_intercept_ = 0.0;
  }

  // Assign points to leaves via the root model, then fit each leaf with OLS
  // of cdf ~ value, clamped to the leaf's observed CDF range.
  int64_t i = 0;
  double prev_hi = 0.0;
  for (int leaf = 0; leaf < leaves; ++leaf) {
    int64_t begin = i;
    while (i < n) {
      double pos = model->root_slope_ * static_cast<double>(sorted[i]) +
                   model->root_intercept_;
      int assigned = std::clamp(static_cast<int>(pos), 0, leaves - 1);
      if (assigned > leaf) break;
      ++i;
    }
    int64_t end = i;
    Leaf& l = model->leaves_[leaf];
    if (begin >= end) {
      l.slope = 0.0;
      l.intercept = prev_hi;
      l.cdf_lo = l.cdf_hi = prev_hi;
      continue;
    }
    double mx = 0.0, my = 0.0;
    for (int64_t r = begin; r < end; ++r) {
      mx += static_cast<double>(sorted[r]);
      my += static_cast<double>(r) / n;
    }
    int64_t cnt = end - begin;
    mx /= cnt;
    my /= cnt;
    double sxx = 0.0, sxy = 0.0;
    for (int64_t r = begin; r < end; ++r) {
      double dx = static_cast<double>(sorted[r]) - mx;
      sxx += dx * dx;
      sxy += dx * (static_cast<double>(r) / n - my);
    }
    l.slope = sxx > 0.0 ? std::max(sxy / sxx, 0.0) : 0.0;
    l.intercept = my - l.slope * mx;
    l.cdf_lo = static_cast<double>(begin) / n;
    l.cdf_hi = static_cast<double>(end) / n;
    prev_hi = l.cdf_hi;
  }
  return model;
}

double RmiCdf::Cdf(Value v) const {
  if (leaves_.empty()) return 0.0;
  double pos = root_slope_ * static_cast<double>(v) + root_intercept_;
  int leaf = std::clamp(static_cast<int>(pos), 0,
                        static_cast<int>(leaves_.size()) - 1);
  const Leaf& l = leaves_[leaf];
  double cdf = l.slope * static_cast<double>(v) + l.intercept;
  return std::clamp(cdf, l.cdf_lo, l.cdf_hi);
}

void EquiDepthCdf::Serialize(BinaryWriter* writer) const {
  writer->PutValueVec(knots_);
}

std::unique_ptr<EquiDepthCdf> EquiDepthCdf::Deserialize(
    BinaryReader* reader) {
  auto model = std::make_unique<EquiDepthCdf>();
  if (!reader->GetValueVec(&model->knots_)) return nullptr;
  // Knots must be non-decreasing or Cdf() would not be monotone.
  for (size_t i = 1; i < model->knots_.size(); ++i) {
    if (model->knots_[i] < model->knots_[i - 1]) {
      reader->MarkCorrupt();
      return nullptr;
    }
  }
  return model;
}

}  // namespace tsunami
