// Compact per-dimension CDF models (§2.2): grids place a point with value x
// in dimension i into partition floor(CDF_i(x) * p_i). Any monotone model
// yields a correct grid; model accuracy controls how equally sized the
// partitions are.
#ifndef TSUNAMI_CDF_CDF_MODEL_H_
#define TSUNAMI_CDF_CDF_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {

/// Monotone model of one dimension's cumulative distribution.
class CdfModel {
 public:
  virtual ~CdfModel() = default;

  /// Estimated fraction of points with value strictly less than v, in [0,1].
  /// Must be non-decreasing in v.
  virtual double Cdf(Value v) const = 0;

  /// Memory footprint of the model.
  virtual int64_t SizeBytes() const = 0;

  /// Partition index of value v when the dimension is divided into p
  /// equi-CDF partitions: clamp(floor(Cdf(v) * p), 0, p - 1).
  int PartitionOf(Value v, int p) const;

  /// Inclusive partition-index range intersecting the value range [lo, hi].
  std::pair<int, int> PartitionRange(Value lo, Value hi, int p) const;
};

/// Equi-depth CDF: `knots` quantile knots with linear interpolation between
/// them. Exact at the knots, monotone everywhere.
class EquiDepthCdf : public CdfModel {
 public:
  /// Builds from an unsorted column of values. `knots` >= 2.
  static std::unique_ptr<EquiDepthCdf> Build(const std::vector<Value>& column,
                                             int knots = 1024);

  /// Builds from an already-sorted column.
  static std::unique_ptr<EquiDepthCdf> BuildFromSorted(
      const std::vector<Value>& sorted, int knots = 1024);

  double Cdf(Value v) const override;
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(knots_.size()) * sizeof(Value);
  }

  Value min_value() const { return knots_.empty() ? 0 : knots_.front(); }
  Value max_value() const { return knots_.empty() ? 0 : knots_.back(); }

  /// Persistence (§8): the knots round-trip exactly.
  void Serialize(BinaryWriter* writer) const;
  static std::unique_ptr<EquiDepthCdf> Deserialize(BinaryReader* reader);

 private:
  std::vector<Value> knots_;  // Values at quantiles j/(k-1), j in [0, k).
};

/// Two-layer recursive model index (RMI, Kraska et al. 2018): a root linear
/// model routes to one of `leaves` linear leaf models that predict the CDF.
/// Leaf outputs are clamped to the leaf's observed CDF range and leaf slopes
/// are non-negative, so the model is monotone by construction.
class RmiCdf : public CdfModel {
 public:
  static std::unique_ptr<RmiCdf> Build(const std::vector<Value>& column,
                                       int leaves = 64);

  double Cdf(Value v) const override;
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(leaves_.size()) * sizeof(Leaf) +
           2 * sizeof(double);
  }

 private:
  struct Leaf {
    double slope = 0.0;
    double intercept = 0.0;
    double cdf_lo = 0.0;  // Clamp range, non-decreasing across leaves.
    double cdf_hi = 1.0;
  };

  double root_slope_ = 0.0;
  double root_intercept_ = 0.0;
  std::vector<Leaf> leaves_;
};

}  // namespace tsunami

#endif  // TSUNAMI_CDF_CDF_MODEL_H_
