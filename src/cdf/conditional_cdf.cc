#include "src/cdf/conditional_cdf.h"

#include <algorithm>

namespace tsunami {

ConditionalCdf ConditionalCdf::Build(
    int64_t num_rows, int base_partitions, int dep_partitions,
    const std::function<int(int64_t)>& base_partition_of,
    const std::function<Value(int64_t)>& y_of) {
  ConditionalCdf c;
  c.dep_partitions_ = std::max(dep_partitions, 1);
  std::vector<std::vector<Value>> values(std::max(base_partitions, 1));
  for (int64_t r = 0; r < num_rows; ++r) {
    int xp = base_partition_of(r);
    if (xp >= 0 && xp < base_partitions) values[xp].push_back(y_of(r));
  }
  c.bounds_.resize(values.size());
  for (size_t xp = 0; xp < values.size(); ++xp) {
    std::vector<Value>& v = values[xp];
    if (v.empty()) continue;  // Empty base partition: bounds stay empty.
    std::sort(v.begin(), v.end());
    std::vector<Value>& b = c.bounds_[xp];
    b.resize(c.dep_partitions_ + 1);
    int64_t n = static_cast<int64_t>(v.size());
    for (int j = 0; j <= c.dep_partitions_; ++j) {
      int64_t idx = std::min<int64_t>(
          n - 1, static_cast<int64_t>(static_cast<double>(j) /
                                      c.dep_partitions_ * n));
      b[j] = v[idx];
    }
    b[0] = v.front();
    b[c.dep_partitions_] = v.back();
    // Boundaries must be non-decreasing even with heavy duplicates.
    for (int j = 1; j <= c.dep_partitions_; ++j) b[j] = std::max(b[j], b[j - 1]);
  }
  return c;
}

int ConditionalCdf::PartitionOf(int xp, Value y) const {
  const std::vector<Value>& b = bounds_[xp];
  if (b.empty()) return 0;
  int j = static_cast<int>(std::upper_bound(b.begin(), b.end(), y) -
                           b.begin()) -
          1;
  return std::clamp(j, 0, dep_partitions_ - 1);
}

std::pair<int, int> ConditionalCdf::PartitionRange(int xp, Value y_lo,
                                                   Value y_hi) const {
  const std::vector<Value>& b = bounds_[xp];
  if (b.empty() || y_hi < b.front() || y_lo > b.back()) {
    return {1, 0};  // Empty: no points of this base partition can match.
  }
  return {PartitionOf(xp, y_lo), PartitionOf(xp, y_hi)};
}

bool ConditionalCdf::CoversPartition(int xp, int yp, Value y_lo,
                                     Value y_hi) const {
  const std::vector<Value>& b = bounds_[xp];
  if (b.empty()) return true;  // Vacuously: partition holds no points.
  Value part_lo = b[yp];
  Value part_hi = yp + 1 < static_cast<int>(b.size()) - 1 ? b[yp + 1] - 1
                                                          : b.back();
  return y_lo <= part_lo && part_hi <= y_hi;
}

int64_t ConditionalCdf::SizeBytes() const {
  int64_t bytes = 0;
  for (const std::vector<Value>& b : bounds_) {
    bytes += static_cast<int64_t>(b.size()) * sizeof(Value);
  }
  return bytes;
}


void ConditionalCdf::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(dep_partitions_);
  writer->PutVarU64(bounds_.size());
  for (const std::vector<Value>& b : bounds_) writer->PutValueVec(b);
}

bool ConditionalCdf::Deserialize(BinaryReader* reader) {
  dep_partitions_ = static_cast<int>(reader->GetVarI64());
  uint64_t n = reader->GetVarU64();
  if (!reader->ok() || dep_partitions_ < 0 || n > reader->remaining()) {
    reader->MarkCorrupt();
    return false;
  }
  bounds_.assign(n, {});
  for (uint64_t i = 0; i < n; ++i) {
    if (!reader->GetValueVec(&bounds_[i])) return false;
    // Each table needs dep_partitions_+1 non-decreasing boundaries (or may
    // be empty for a base partition that held no rows).
    if (!bounds_[i].empty() &&
        bounds_[i].size() != static_cast<size_t>(dep_partitions_) + 1) {
      reader->MarkCorrupt();
      return false;
    }
    for (size_t j = 1; j < bounds_[i].size(); ++j) {
      if (bounds_[i][j] < bounds_[i][j - 1]) {
        reader->MarkCorrupt();
        return false;
      }
    }
  }
  return reader->ok();
}

}  // namespace tsunami
