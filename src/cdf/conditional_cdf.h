// Conditional CDF CDF(Y|X) (§5.2.2): the dependent dimension Y is
// partitioned equi-depth *within each partition of the base dimension X*,
// producing staggered partition boundaries and equally-sized cells for
// generically correlated dimension pairs.
#ifndef TSUNAMI_CDF_CONDITIONAL_CDF_H_
#define TSUNAMI_CDF_CONDITIONAL_CDF_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {

/// Per-base-partition equi-depth partitioning of the dependent dimension.
///
/// Storage is p_X * (p_Y + 1) boundary values — negligible next to the
/// grid's lookup table (§5.2.2).
class ConditionalCdf {
 public:
  ConditionalCdf() = default;

  /// Builds from the rows of a region. `base_partition_of(row)` gives the
  /// base dimension's partition index in [0, base_partitions); `y_of(row)`
  /// the dependent dimension's value.
  static ConditionalCdf Build(
      int64_t num_rows, int base_partitions, int dep_partitions,
      const std::function<int(int64_t)>& base_partition_of,
      const std::function<Value(int64_t)>& y_of);

  int base_partitions() const { return static_cast<int>(bounds_.size()); }
  int dep_partitions() const { return dep_partitions_; }

  /// Partition of y within base partition xp, in [0, dep_partitions).
  int PartitionOf(int xp, Value y) const;

  /// Inclusive partition range within base partition xp intersecting
  /// [y_lo, y_hi]; returns {1, 0} (empty) when the query's Y range does not
  /// overlap any points in that base partition — the "guaranteed no points"
  /// skip of Fig. 6.
  std::pair<int, int> PartitionRange(int xp, Value y_lo, Value y_hi) const;

  /// True if [y_lo, y_hi] covers partition `yp` of base partition `xp`
  /// entirely (every point of the partition matches the Y filter).
  bool CoversPartition(int xp, int yp, Value y_lo, Value y_hi) const;

  int64_t SizeBytes() const;

  /// Persistence (§8): boundary tables round-trip exactly.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

 private:
  int dep_partitions_ = 0;
  // bounds_[xp] has dep_partitions_+1 entries: partition j of base partition
  // xp covers values in [bounds_[xp][j], bounds_[xp][j+1]), with the last
  // partition inclusive of the max value bounds_[xp].back().
  std::vector<std::vector<Value>> bounds_;
};

}  // namespace tsunami

#endif  // TSUNAMI_CDF_CONDITIONAL_CDF_H_
