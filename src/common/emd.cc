#include "src/common/emd.h"

#include <cmath>
#include <cstddef>

namespace tsunami {

double Emd(const std::vector<double>& p, const std::vector<double>& q) {
  size_t n = p.size();
  if (n == 0 || q.size() != n) return 0.0;
  double total_p = 0.0, total_q = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_p += p[i];
    total_q += q[i];
  }
  if (total_p <= 0.0 || total_q <= 0.0) return 0.0;
  double scale = total_p / total_q;
  double carried = 0.0;  // Signed mass carried across the bin boundary.
  double work = 0.0;
  for (size_t i = 0; i < n; ++i) {
    carried += p[i] - q[i] * scale;
    work += std::abs(carried);
  }
  return work / n;
}

double SkewOfMass(const std::vector<double>& pdf) {
  return SkewOfMassRange(pdf, 0, static_cast<int>(pdf.size()));
}

double SkewOfMassRange(const std::vector<double>& pdf, int lo, int hi) {
  if (lo < 0) lo = 0;
  if (hi > static_cast<int>(pdf.size())) hi = static_cast<int>(pdf.size());
  int n = hi - lo;
  // A single bin cannot be distinguished from uniform (§4.3.2).
  if (n <= 1) return 0.0;
  double total = 0.0;
  for (int i = lo; i < hi; ++i) total += pdf[i];
  if (total <= 0.0) return 0.0;
  double uniform = total / n;
  double carried = 0.0;
  double work = 0.0;
  for (int i = lo; i < hi; ++i) {
    carried += pdf[i] - uniform;
    work += std::abs(carried);
  }
  return work / n;
}

}  // namespace tsunami
