// One-dimensional Earth Mover's Distance between discrete distributions,
// used to measure query skew (§4.2.1).
#ifndef TSUNAMI_COMMON_EMD_H_
#define TSUNAMI_COMMON_EMD_H_

#include <vector>

namespace tsunami {

/// Earth Mover's Distance between two non-negative mass vectors of equal
/// length defined over the same equally-spaced bins.
///
/// Ground distance between adjacent bins is 1/n (the bin range is normalized
/// to [0, 1]), so EMD(p, q) <= total mass. If the total masses differ, `q` is
/// rescaled to match `p`'s mass (EMD requires balanced transport).
///
/// For 1-D distributions EMD has the closed form
///   sum_i |prefix(p)_i - prefix(q)_i| * (1/n).
double Emd(const std::vector<double>& p, const std::vector<double>& q);

/// Skew of a mass vector: EMD between it and the uniform distribution with
/// the same total mass over the same bins (§4.2.1). Zero for uniform or
/// empty vectors; at most total_mass/2 in general.
double SkewOfMass(const std::vector<double>& pdf);

/// Skew over the sub-range of bins [lo, hi) of `pdf` (Skew_i(Q, x, y) in the
/// paper): EMD between pdf[lo..hi) and the uniform vector carrying the same
/// mass over those bins, with ground distance normalized to the sub-range.
double SkewOfMassRange(const std::vector<double>& pdf, int lo, int hi);

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_EMD_H_
