#include "src/common/fault_injection.h"

#if defined(TSUNAMI_FAULT_INJECTION)

#include <map>
#include <mutex>
#include <string>

namespace tsunami {
namespace fault {
namespace {

// One armed site plus its counters. `hits` counts matching hits (after the
// match_arg filter), so skip_hits and the seeded coin flip are indexed by a
// stable per-site sequence number.
struct SiteState {
  FaultSpec spec;
  int64_t hits = 0;
  int64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives all threads.
  return *registry;
}

// SplitMix64: the (seed, hit index) → coin-flip hash. Any good 64-bit mixer
// works; what matters is determinism across platforms and runs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void Arm(std::string_view site, const FaultSpec& spec) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& state = r.sites[std::string(site)];
  state.spec = spec;
  state.hits = 0;
  state.fires = 0;
}

void Disarm(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) r.sites.erase(it);
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
}

bool Fires(std::string_view site, int64_t arg) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  SiteState& state = it->second;
  const FaultSpec& spec = state.spec;
  if (spec.match_arg >= 0 && arg != spec.match_arg) return false;
  const int64_t hit = state.hits++;
  if (hit < spec.skip_hits) return false;
  if (spec.max_fires >= 0 && state.fires >= spec.max_fires) return false;
  if (spec.probability < 1.0) {
    // Deterministic coin flip for this hit index: top 53 bits as a uniform
    // double in [0, 1).
    const uint64_t h = Mix64(spec.seed ^ Mix64(static_cast<uint64_t>(hit)));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= spec.probability) return false;
  }
  ++state.fires;
  return true;
}

int64_t FireCount(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

int64_t Param(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? -1 : it->second.spec.param;
}

}  // namespace fault
}  // namespace tsunami

#endif  // TSUNAMI_FAULT_INJECTION
