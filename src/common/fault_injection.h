// Deterministic fault-injection registry (the robustness test harness).
//
// Production code marks *fault sites* with TSUNAMI_FAULT_FIRES("name", arg):
// the scheduler's task dispatch ("sched.task_throw", "sched.stall"), the
// encoded-column checksum verifier ("storage.checksum"), the framed-file
// reader ("io.short_read"), the network front end's socket paths
// ("net.accept_fail", "net.short_write", "net.reset", "net.partial_frame"),
// the ingest store's compaction/publish paths ("ingest.compact_throw",
// "ingest.swap_delay"), the durability layer ("wal.torn_write" — the
// group commit writes only a prefix, param = bytes kept; "wal.fsync_fail" —
// fsync reports failure and the log fails closed; and
// "durability.checkpoint_throw" — the fold checkpoint aborts, the WAL
// retains everything), and the resource-pressure layer ("fs.enospc" — a
// filesystem write path reports ENOSPC, with match_arg selecting the call
// site: 0 = wal.write, 1 = wal.fsync, 2 = checkpoint.rename, 3 =
// manifest.write; "gov.mem_pressure" — ResourceGovernor::TryCharge rejects
// as if over budget, arg = pool index; and "scrub.corrupt_block" — the
// integrity scrubber sees a checksum mismatch on the matching block, arg =
// block index).
// Tests and the examples' soak mode arm a site
// with a FaultSpec — a seeded fire probability plus match/skip/limit
// filters — and the site then fires deterministically: the decision for the
// k-th matching hit depends only on (seed, k), never on wall clock, thread
// interleaving, or address-space layout, so a failing run replays exactly.
//
// The registry is compiled in only under -DTSUNAMI_FAULT_INJECTION=ON
// (scripts/ci.sh arms it for the TSan and ASan/UBSan passes). In normal
// builds TSUNAMI_FAULT_FIRES expands to a constant `false` and every site
// folds away to nothing — zero cost, zero symbols.
#ifndef TSUNAMI_COMMON_FAULT_INJECTION_H_
#define TSUNAMI_COMMON_FAULT_INJECTION_H_

#if defined(TSUNAMI_FAULT_INJECTION)

#include <cstdint>
#include <string_view>

namespace tsunami {
namespace fault {

/// Configuration for one armed fault site. All filters compose: a hit must
/// match `match_arg`, survive `skip_hits`, stay under `max_fires`, and win
/// the seeded coin flip to fire.
struct FaultSpec {
  /// Chance that a matching hit fires, decided by a hash of (seed, hit
  /// index) — deterministic for a fixed seed regardless of threading.
  double probability = 1.0;
  uint64_t seed = 0;
  /// Fire only when the site's argument equals this; -1 matches any.
  int64_t match_arg = -1;
  /// Ignore the first N matching hits (lets a test corrupt "the 3rd block
  /// touched" without knowing which block that is).
  int64_t skip_hits = 0;
  /// Stop firing after N fires; -1 = unlimited.
  int64_t max_fires = -1;
  /// Site-interpreted payload carried with the armed spec, readable at the
  /// site via Param(). E.g. "io.short_read" treats it as the exact byte
  /// offset to truncate at (so a test can cut a file at every section
  /// boundary); -1 = unset, the site uses its default behaviour.
  int64_t param = -1;
};

/// Arms `site` with `spec` (replacing any previous spec and resetting its
/// hit/fire counters). Thread-safe; typically called from test setup.
void Arm(std::string_view site, const FaultSpec& spec);

/// Disarms one site / every site. DisarmAll() belongs in test teardown so
/// suites cannot leak faults into each other.
void Disarm(std::string_view site);
void DisarmAll();

/// The site hook: true when `site` is armed and this hit fires. `arg` is
/// the site-specific discriminator (block index, chunk index, byte count).
bool Fires(std::string_view site, int64_t arg);

/// Times `site` has fired since it was last armed (0 when not armed).
int64_t FireCount(std::string_view site);

/// The armed spec's `param` for `site` (-1 when not armed or unset). Sites
/// read it *after* Fires() returns true to shape the injected fault.
int64_t Param(std::string_view site);

}  // namespace fault
}  // namespace tsunami

#define TSUNAMI_FAULT_FIRES(site, arg) \
  ::tsunami::fault::Fires((site), static_cast<int64_t>(arg))

#else  // !TSUNAMI_FAULT_INJECTION

#include <cstdint>
#include <string_view>

namespace tsunami {
namespace fault {

/// Compiled-out stub so `if (TSUNAMI_FAULT_FIRES(...)) { ... Param(...) }`
/// bodies still parse; the enclosing constant-false branch folds away.
inline int64_t Param(std::string_view) { return -1; }

}  // namespace fault
}  // namespace tsunami

// Fault injection compiled out: sites are a constant false (the argument
// expressions are not evaluated), so the branches fold away entirely.
#define TSUNAMI_FAULT_FIRES(site, arg) false

#endif  // TSUNAMI_FAULT_INJECTION

#endif  // TSUNAMI_COMMON_FAULT_INJECTION_H_
