#include "src/common/histogram.h"

#include <algorithm>

namespace tsunami {

MassHistogram::MassHistogram(Value lo, Value hi, int bins)
    : lo_(lo), hi_(hi), mass_(std::max(bins, 1), 0.0) {
  if (hi_ < lo_) hi_ = lo_;
}

MassHistogram::MassHistogram(const std::vector<Value>& unique_sorted)
    : per_unique_value_(true),
      edges_(unique_sorted),
      mass_(std::max<size_t>(unique_sorted.size(), 1), 0.0) {
  if (!edges_.empty()) {
    lo_ = edges_.front();
    hi_ = edges_.back();
  }
}

int MassHistogram::BinOf(Value v) const {
  if (per_unique_value_) {
    auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
    int idx = static_cast<int>(it - edges_.begin()) - 1;
    return std::clamp(idx, 0, bins() - 1);
  }
  if (v <= lo_) return 0;
  if (v >= hi_) return bins() - 1;
  // 128-bit arithmetic: the domain span can be near the full int64 range.
  __int128 span = static_cast<__int128>(hi_) - lo_ + 1;
  __int128 off = static_cast<__int128>(v) - lo_;
  return static_cast<int>(off * bins() / span);
}

Value MassHistogram::BinLo(int b) const {
  if (per_unique_value_) return edges_[b];
  __int128 span = static_cast<__int128>(hi_) - lo_ + 1;
  return static_cast<Value>(lo_ + span * b / bins());
}

Value MassHistogram::BinHi(int b) const {
  if (per_unique_value_) {
    return b + 1 < bins() ? edges_[b + 1] : hi_ + 1;
  }
  __int128 span = static_cast<__int128>(hi_) - lo_ + 1;
  return static_cast<Value>(lo_ + span * (b + 1) / bins());
}

void MassHistogram::AddRangeMass(Value lo, Value hi) {
  if (hi < lo_ || lo > hi_) return;  // No overlap with the domain.
  Value clo = std::max(lo, lo_);
  Value chi = std::min(hi, hi_);
  int b0 = BinOf(clo);
  int b1 = BinOf(chi);
  double m = 1.0 / (b1 - b0 + 1);
  for (int b = b0; b <= b1; ++b) mass_[b] += m;
  total_mass_ += 1.0;
}

double MassHistogram::MassInBins(int bin_lo, int bin_hi) const {
  double sum = 0.0;
  bin_lo = std::max(bin_lo, 0);
  bin_hi = std::min(bin_hi, bins());
  for (int b = bin_lo; b < bin_hi; ++b) sum += mass_[b];
  return sum;
}

}  // namespace tsunami
