// Equi-width mass histograms used to approximate query PDFs (§4.2.1,
// Hist_i(Q, a, b, n)): a query whose filter intersects m contiguous bins
// contributes 1/m mass to each of them.
#ifndef TSUNAMI_COMMON_HISTOGRAM_H_
#define TSUNAMI_COMMON_HISTOGRAM_H_

#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// Fixed-bin mass histogram over the value range [lo, hi] in one dimension.
///
/// Bin boundaries are either equi-width over [lo, hi], or — when the
/// dimension has fewer unique values than the requested bin count (§4.3.2) —
/// one bin per unique value.
class MassHistogram {
 public:
  /// Equi-width histogram with `bins` bins over [lo, hi] (inclusive).
  MassHistogram(Value lo, Value hi, int bins);

  /// One bin per unique value. `unique_sorted` must be sorted and distinct.
  explicit MassHistogram(const std::vector<Value>& unique_sorted);

  int bins() const { return static_cast<int>(mass_.size()); }
  bool per_unique_value() const { return per_unique_value_; }

  /// Maps a value to its bin index, clamped to [0, bins).
  int BinOf(Value v) const;

  /// Inclusive-exclusive value range [lo, hi) covered by bin b (the last
  /// bin's hi is the histogram's upper bound + 1).
  Value BinLo(int b) const;
  Value BinHi(int b) const;

  /// Adds one unit of query mass spread uniformly over the bins intersecting
  /// the inclusive value range [lo, hi]. Ranges are clipped to the domain;
  /// fully-outside ranges contribute nothing.
  void AddRangeMass(Value lo, Value hi);

  /// Raw per-bin mass.
  const std::vector<double>& mass() const { return mass_; }
  double total_mass() const { return total_mass_; }

  /// Sum of mass over the bin index range [bin_lo, bin_hi).
  double MassInBins(int bin_lo, int bin_hi) const;

 private:
  bool per_unique_value_ = false;
  Value lo_ = 0;
  Value hi_ = 0;
  std::vector<Value> edges_;  // Only for per-unique-value histograms.
  std::vector<double> mass_;
  double total_mass_ = 0.0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_HISTOGRAM_H_
