#include "src/common/index.h"

#include "src/exec/runner.h"
#include "src/exec/thread_pool.h"

namespace tsunami {

QueryPlan MultiDimIndex::Prepare(const Query& query) const {
  QueryPlan plan;
  plan.query = query;
  plan.counters = InitResult(query);
  return plan;
}

QueryResult MultiDimIndex::ExecutePlan(const QueryPlan& plan,
                                       ExecContext& ctx) const {
  if (!plan.use_tasks) return Execute(plan.query);
  QueryResult result = plan.counters;
  QueryResult scans =
      ExecuteRangeTasks(store(), plan.tasks, plan.query, ctx);
  MergeQueryResults(plan.query, scans, &result);
  FinishPlan(plan, &result);
  return result;
}

namespace {

/// Shared batch loop: runs `one(i)` for every position, spread across the
/// context's pool when it is multi-threaded (each item's scans inline on
/// its worker — a per-worker context without the pool avoids nested
/// ParallelFor deadlocks and oversubscription), serially otherwise.
/// Cancellation is checked before each item; skipped items get their
/// identity result. Fills ctx.stats from the results.
template <typename ExecuteOne, typename IdentityOf>
std::vector<QueryResult> BatchLoop(int64_t count, ExecContext& ctx,
                                   const ExecuteOne& one,
                                   const IdentityOf& identity) {
  ctx.StartBatch();
  Timer timer;
  std::vector<QueryResult> results(count);
  std::atomic<int64_t> executed{0};
  auto run = [&](int64_t i, ExecContext& item_ctx) {
    if (ctx.ShouldStop()) {
      results[i] = identity(i);
      return;
    }
    QueryResult result = one(i, item_ctx);
    if (ctx.ShouldStop()) {
      // Cancellation fired while this item ran: its scans may have stopped
      // between range tasks, leaving a partial accumulation. Never pass a
      // partial off as an answer — the item reverts to its identity result
      // and is not counted as executed. (Conservative: an item finishing
      // exactly as the flag/deadline fires is discarded too.)
      results[i] = identity(i);
      return;
    }
    results[i] = std::move(result);
    executed.fetch_add(1, std::memory_order_relaxed);
  };
  if (ctx.pool != nullptr && ctx.pool->num_threads() > 1 && count > 1) {
    ctx.pool->ParallelFor(0, count, 1, [&](int64_t i) {
      // Fork per item so the batch deadline keeps applying between range
      // tasks inside the item's scans; drop the pool (no nested
      // ParallelFor).
      ExecContext inline_ctx = ctx.Fork();
      inline_ctx.pool = nullptr;
      run(i, inline_ctx);
    });
  } else {
    for (int64_t i = 0; i < count; ++i) run(i, ctx);
  }
  ctx.stats.queries += executed.load(std::memory_order_relaxed);
  for (const QueryResult& r : results) ctx.stats.AddResult(r);
  ctx.stats.seconds += timer.ElapsedSeconds();
  return results;
}

}  // namespace

std::vector<QueryResult> MultiDimIndex::ExecuteBatch(
    std::span<const Query> queries, ExecContext& ctx) const {
  return BatchLoop(
      static_cast<int64_t>(queries.size()), ctx,
      [&](int64_t i, ExecContext& item_ctx) {
        return ExecutePlan(Prepare(queries[i]), item_ctx);
      },
      [&](int64_t i) { return InitResult(queries[i]); });
}

std::vector<QueryResult> MultiDimIndex::ExecutePlans(
    std::span<const QueryPlan> plans, ExecContext& ctx) const {
  return BatchLoop(
      static_cast<int64_t>(plans.size()), ctx,
      [&](int64_t i, ExecContext& item_ctx) {
        return ExecutePlan(plans[i], item_ctx);
      },
      [&](int64_t i) { return InitResult(plans[i].query); });
}

}  // namespace tsunami
