// The common interface implemented by every clustered multi-dimensional
// index in this library (baselines, Flood, Tsunami).
#ifndef TSUNAMI_COMMON_INDEX_H_
#define TSUNAMI_COMMON_INDEX_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// A clustered in-memory multi-dimensional index over a column store.
///
/// Indexes are built from a Dataset (choosing their own clustered row order)
/// and answer conjunctive range-filter aggregation queries.
class MultiDimIndex {
 public:
  virtual ~MultiDimIndex() = default;

  /// Human-readable index name for benchmark output.
  virtual std::string Name() const = 0;

  /// Executes one query and returns its aggregate plus execution counters.
  virtual QueryResult Execute(const Query& query) const = 0;

  /// Index structure overhead in bytes (lookup tables, models, tree nodes,
  /// page metadata) — excludes the column data itself.
  virtual int64_t IndexSizeBytes() const = 0;

  /// The clustered column store this index scans.
  virtual const ColumnStore& store() const = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_INDEX_H_
