// The common interface implemented by every clustered multi-dimensional
// index in this library (baselines, Flood, Tsunami, secondary indexes, the
// access-path router).
//
// Two execution surfaces:
//  * the legacy per-query path — Execute(query) — one synchronous query;
//  * the batch path — Prepare(query) -> QueryPlan, then
//    ExecutePlan(plan, ctx) or ExecuteBatch(queries, ctx) — which amortizes
//    planning, runs scans through the shared thread pool and forced SIMD
//    tier carried by the ExecContext, and computes every aggregate of a
//    multi-aggregate query in one pass.
// Both surfaces are bit-identical: ExecuteBatch over any permutation of a
// workload returns exactly what per-query Execute returns.
#ifndef TSUNAMI_COMMON_INDEX_H_
#define TSUNAMI_COMMON_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/storage/column_store.h"

namespace tsunami {

class TaskScheduler;
class ThreadPool;

/// A prepared query: the bound query plus, when the index supports
/// plan-then-scan execution, the physical row ranges to scan. Plans borrow
/// nothing but are only executable by the index that produced them (the
/// tasks address that index's clustered store).
struct QueryPlan {
  Query query;
  /// Physical ranges to scan, in submission order. Meaningful only when
  /// `use_tasks` is true.
  std::vector<RangeTask> tasks;
  /// Plan-time counters: initialized accumulators plus the cell_ranges
  /// visited during planning. Execution merges scan counters into a copy.
  QueryResult counters;
  /// False: the index has no plan-then-scan path; execution falls back to
  /// Execute(query). True: execution scans `tasks` against store().
  bool use_tasks = false;
  /// Position of the owning access path within a routing layer; set by
  /// AccessPathRouter::Prepare so replays skip re-routing. -1 = not routed.
  int routed_index = -1;
  /// Snapshot pin for versioned stores (src/ingest): an opaque owning
  /// reference that keeps the store version the tasks address alive (and
  /// its read epoch pinned) for the plan's lifetime; PlanTarget resolves
  /// through it. Null for static indexes, which borrow nothing.
  std::shared_ptr<const void> pin;
  /// The producing index's StoreVersion() at Prepare time. The plan cache
  /// treats a mismatch with the current version as a miss, so cached plans
  /// never scan a superseded snapshot.
  uint64_t store_version = 0;
};

/// Aggregate counters for one ExecuteBatch call (accumulated across calls
/// when the same context is reused).
struct BatchStats {
  int64_t queries = 0;       // Queries actually executed (not skipped).
  int64_t scanned = 0;
  int64_t matched = 0;
  int64_t cell_ranges = 0;
  double seconds = 0.0;      // Wall time inside ExecuteBatch.

  /// Folds one executed query's counters in.
  void AddResult(const QueryResult& r) {
    scanned += r.scanned;
    matched += r.matched;
    cell_ranges += r.cell_ranges;
  }

  /// Folds a forwarded sub-batch's stats in. `seconds` is excluded on
  /// purpose: each layer accounts its own wall clock, and sub-batch time
  /// is already inside it.
  void MergeCounters(const BatchStats& other) {
    queries += other.queries;
    scanned += other.scanned;
    matched += other.matched;
    cell_ranges += other.cell_ranges;
  }
};

/// Execution context for the batch path. Carries the resources a batch
/// shares — the thread pool, scan options (kernel mode + forced SIMD tier)
/// — plus cooperative cancellation (an external flag and/or a deadline,
/// both checked between range tasks and between queries) and per-batch
/// stats. Copyable: forwarding layers fork a context per sub-batch and
/// merge stats back.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(ThreadPool* pool) : pool(pool) {}
  ExecContext(ThreadPool* pool, const ScanOptions& scan)
      : pool(pool), scan(scan) {}

  ThreadPool* pool = nullptr;   // Borrowed; null = run inline.
  /// Borrowed work-stealing scheduler (src/exec/task_scheduler.h); when set
  /// (and `pool` is not), ExecuteRangeTasks feeds its chunks into the
  /// shared per-worker deques instead of a private ParallelFor, so chunks
  /// of concurrent queries interleave and idle workers steal. Only set
  /// this on contexts executed from OUTSIDE the scheduler's own workers:
  /// the executor blocks in TaskScheduler::Wait without helping, so a
  /// worker submitting its own chunks would deadlock the deques. (This is
  /// why QueryService's chunk closures keep their contexts scheduler-free
  /// and the service decomposes plans itself.)
  TaskScheduler* scheduler = nullptr;
  ScanOptions scan;             // Kernel mode and SIMD tier for every scan.
  /// External cancellation flag (borrowed, may be null). Once set, the
  /// remaining work is skipped and unexecuted queries return their
  /// initialized (identity) results.
  const std::atomic<bool>* cancel = nullptr;
  /// Soft deadline in seconds from the last StartBatch(); 0 disables.
  double deadline_seconds = 0.0;
  /// Serving-path priority (higher = sooner). Not consulted by the batch
  /// executors themselves; QueryService hands it to the scheduler, which
  /// queues a high-priority query's chunks ahead of backlog.
  int priority = 0;

  BatchStats stats;             // Filled by ExecuteBatch.

  /// Restarts the deadline clock; ExecuteBatch calls this on entry.
  void StartBatch() { timer_.Reset(); }

  /// True when the batch should stop issuing further work (flag set or
  /// deadline passed). Safe to call concurrently.
  bool ShouldStop() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_seconds > 0.0 &&
           timer_.ElapsedSeconds() >= deadline_seconds;
  }

  /// True when this context can stop work early at all — i.e. whether scan
  /// paths must bother wiring the stop probe.
  bool Cancellable() const {
    return cancel != nullptr || deadline_seconds > 0.0;
  }

  /// This context's scan options with the cooperative stop probe bound to
  /// ShouldStop(), so ColumnStore::ScanRanges checks the deadline/flag
  /// between block-aligned slices and a single giant scan cancels
  /// mid-flight. The probe borrows `this`: the context must outlive the
  /// scan (every executor here owns its context for the call's duration).
  ScanOptions CancellableScan() const {
    ScanOptions options = scan;
    if (Cancellable()) {
      options.stop_probe = [](const void* self) {
        return static_cast<const ExecContext*>(self)->ShouldStop();
      };
      options.stop_arg = this;
    }
    return options;
  }

  /// A child context for running a slice of this batch elsewhere (a routed
  /// sub-batch, one worker's query, one statement): same pool, scan
  /// options, and cancel flag; fresh stats; deadline clipped to this
  /// batch's *remaining* time, so the child's StartBatch cannot extend the
  /// parent's deadline. Forwarding layers must fork rather than copy.
  ExecContext Fork() const {
    ExecContext child(pool, scan);
    child.scheduler = scheduler;
    child.cancel = cancel;
    child.priority = priority;
    if (deadline_seconds > 0.0) {
      double remaining = deadline_seconds - timer_.ElapsedSeconds();
      // An expired parent leaves a child that stops immediately (0 would
      // mean "no deadline").
      child.deadline_seconds = remaining > 1e-9 ? remaining : 1e-9;
    }
    return child;
  }

 private:
  Timer timer_;
};

/// A clustered in-memory multi-dimensional index over a column store.
///
/// Indexes are built from a Dataset (choosing their own clustered row order)
/// and answer conjunctive range-filter aggregation queries.
class MultiDimIndex {
 public:
  virtual ~MultiDimIndex() = default;

  /// Human-readable index name for benchmark output.
  virtual std::string Name() const = 0;

  /// Executes one query and returns its aggregate(s) plus execution
  /// counters. Multi-aggregate queries get every aggregate in one pass.
  virtual QueryResult Execute(const Query& query) const = 0;

  /// Plans `query` without scanning row data. The default returns a
  /// passthrough plan (use_tasks = false) that ExecutePlan serves via
  /// Execute(); indexes with a plan-then-scan path override this to emit
  /// their RangeTasks up front so batches amortize planning.
  virtual QueryPlan Prepare(const Query& query) const;

  /// Executes a prepared plan. Task-backed plans scan through the context's
  /// thread pool and scan options (one batched submission, row-balanced
  /// across threads) and then run FinishPlan(); passthrough plans delegate
  /// to Execute(). Bit-identical to Execute(plan.query) for any pool size
  /// and supported tier.
  virtual QueryResult ExecutePlan(const QueryPlan& plan,
                                  ExecContext& ctx) const;

  /// The non-range epilogue of a task-backed plan: whatever Execute() does
  /// besides scanning the planned ranges (Tsunami's delta buffer, the
  /// Hermit index's uncovered-outlier probes). The decomposition contract
  /// every external executor (ExecutePlan here, QueryService's chunked
  /// scheduler jobs) relies on is:
  ///
  ///   Execute(plan.query) == plan.counters
  ///                          (+) scan of plan.tasks against PlanTarget's
  ///                              store, split anywhere on task/block
  ///                              boundaries, partials merged in any order
  ///                          (+) FinishPlan(plan, &result)
  ///
  /// Default: nothing to finish. Must be thread-safe and must not depend on
  /// how the task scans were chunked.
  virtual void FinishPlan(const QueryPlan& plan, QueryResult* result) const {
    (void)plan;
    (void)result;
  }

  /// The index whose clustered store a plan's tasks actually address: this
  /// index for everything except routing layers (AccessPathRouter returns
  /// the routed access path). External executors must scan
  /// PlanTarget(plan).store() and call PlanTarget(plan).FinishPlan().
  virtual const MultiDimIndex& PlanTarget(const QueryPlan& plan) const {
    (void)plan;
    return *this;
  }

  /// Executes a batch: plans every query first, then runs the scans. With a
  /// multi-threaded pool the batch is spread across its threads (each
  /// query's scans run inline on one worker — no nested parallelism);
  /// results are positionally stable and bit-identical to per-query
  /// Execute() either way. Cancellation is checked between queries; skipped
  /// queries — and the query in flight when cancellation fires, whose scans
  /// may have stopped early — return their initialized (identity) results,
  /// so a partial aggregate is never passed off as an answer. Fills
  /// ctx.stats (counting only fully executed queries).
  virtual std::vector<QueryResult> ExecuteBatch(std::span<const Query> queries,
                                                ExecContext& ctx) const;

  /// Executes a batch of already-prepared plans: the amortization lever for
  /// served workloads — Prepare once, ExecutePlans every time the batch
  /// recurs, paying only the scans. Same pool/cancellation/stats semantics
  /// as ExecuteBatch, and the same results as executing each plan's query.
  std::vector<QueryResult> ExecutePlans(std::span<const QueryPlan> plans,
                                        ExecContext& ctx) const;

  /// Version of the clustered store plans bind to. Static indexes are
  /// always version 0; versioned stores (src/ingest) bump it on every
  /// published snapshot so plan caches can detect staleness. Must be safe
  /// to call concurrently with publishes.
  virtual uint64_t StoreVersion() const { return 0; }

  /// Index structure overhead in bytes (lookup tables, models, tree nodes,
  /// page metadata) — excludes the column data itself.
  virtual int64_t IndexSizeBytes() const = 0;

  /// The clustered column store this index scans.
  virtual const ColumnStore& store() const = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_INDEX_H_
