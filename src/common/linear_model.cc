#include "src/common/linear_model.h"

#include <algorithm>
#include <cmath>

namespace tsunami {
namespace {

Value ClampToValue(long double x) {
  if (x <= static_cast<long double>(kValueMin)) return kValueMin;
  if (x >= static_cast<long double>(kValueMax)) return kValueMax;
  return static_cast<Value>(x);
}

}  // namespace

BoundedLinearModel BoundedLinearModel::Fit(const std::vector<Value>& ys,
                                           const std::vector<Value>& xs) {
  BoundedLinearModel m;
  size_t n = std::min(ys.size(), xs.size());
  if (n == 0) return m;
  // Residuals are evaluated in long double: int64 values above 2^53 are not
  // exactly representable in double, and a bound computed with rounded
  // arithmetic can exclude actual points (breaking the functional-mapping
  // guarantee). Long double's 64-bit mantissa represents every Value.
  long double my = 0.0L, mx = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    my += static_cast<long double>(ys[i]);
    mx += static_cast<long double>(xs[i]);
  }
  my /= n;
  mx /= n;
  long double syy = 0.0L, syx = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    long double dy = ys[i] - my;
    syy += dy * dy;
    syx += dy * (xs[i] - mx);
  }
  if (syy > 0.0L) {
    m.slope_ = static_cast<double>(syx / syy);
    m.intercept_ = static_cast<double>(mx - (syx / syy) * my);
  } else {
    m.slope_ = 0.0;
    m.intercept_ = static_cast<double>(mx);  // Constant Y: predict mean X.
  }
  // Residual bounds over the training set, with the same long double
  // prediction MapRange uses plus an ULP-scaled safety slack.
  long double lo = 0.0L, hi = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    long double resid = static_cast<long double>(xs[i]) - m.PredictL(ys[i]);
    lo = std::min(lo, resid);
    hi = std::max(hi, resid);
  }
  m.error_lo_ = static_cast<double>(-lo);
  m.error_hi_ = static_cast<double>(hi);
  return m;
}

BoundedLinearModel BoundedLinearModel::FitRobust(const std::vector<Value>& ys,
                                                 const std::vector<Value>& xs,
                                                 int max_pairs) {
  BoundedLinearModel m;
  size_t n = std::min(ys.size(), xs.size());
  if (n < 2) return Fit(ys, xs);
  // Deterministic pair sampling (splitmix-style walk over indices).
  std::vector<double> slopes;
  slopes.reserve(max_pairs);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next_index = [&]() {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>((z ^ (z >> 31)) % n);
  };
  for (int k = 0; k < max_pairs; ++k) {
    size_t a = next_index(), b = next_index();
    if (ys[a] == ys[b]) continue;
    long double dy = static_cast<long double>(ys[a]) - ys[b];
    long double dx = static_cast<long double>(xs[a]) - xs[b];
    slopes.push_back(static_cast<double>(dx / dy));
  }
  if (slopes.empty()) return Fit(ys, xs);
  std::nth_element(slopes.begin(), slopes.begin() + slopes.size() / 2,
                   slopes.end());
  m.slope_ = slopes[slopes.size() / 2];
  std::vector<long double> intercepts(n);
  for (size_t i = 0; i < n; ++i) {
    intercepts[i] = static_cast<long double>(xs[i]) -
                    static_cast<long double>(m.slope_) * ys[i];
  }
  std::nth_element(intercepts.begin(), intercepts.begin() + n / 2,
                   intercepts.end());
  m.intercept_ = static_cast<double>(intercepts[n / 2]);
  long double lo = 0.0L, hi = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    long double resid = static_cast<long double>(xs[i]) - m.PredictL(ys[i]);
    lo = std::min(lo, resid);
    hi = std::max(hi, resid);
  }
  m.error_lo_ = static_cast<double>(-lo);
  m.error_hi_ = static_cast<double>(hi);
  return m;
}

long double BoundedLinearModel::PredictL(Value y) const {
  return static_cast<long double>(slope_) * y + intercept_;
}

std::pair<Value, Value> BoundedLinearModel::MapRange(Value y0, Value y1) const {
  long double p0 = PredictL(y0);
  long double p1 = PredictL(y1);
  long double lo = std::min(p0, p1) - static_cast<long double>(error_lo_);
  long double hi = std::max(p0, p1) + static_cast<long double>(error_hi_);
  // Slack for rounding of slope_/intercept_/error bounds to double: a few
  // ULPs of the magnitudes involved.
  long double slack =
      std::max<long double>(1.0L, std::max(std::abs(lo), std::abs(hi)) *
                                      1e-14L);
  lo -= slack;
  hi += slack;
  return {ClampToValue(std::floor(lo)), ClampToValue(std::ceil(hi))};
}


void BoundedLinearModel::Serialize(BinaryWriter* writer) const {
  writer->PutDouble(slope_);
  writer->PutDouble(intercept_);
  writer->PutDouble(error_lo_);
  writer->PutDouble(error_hi_);
}

bool BoundedLinearModel::Deserialize(BinaryReader* reader) {
  slope_ = reader->GetDouble();
  intercept_ = reader->GetDouble();
  error_lo_ = reader->GetDouble();
  error_hi_ = reader->GetDouble();
  return reader->ok();
}

}  // namespace tsunami
