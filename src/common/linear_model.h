// Bounded simple linear regression: the functional-mapping primitive (§5.2.1).
#ifndef TSUNAMI_COMMON_LINEAR_MODEL_H_
#define TSUNAMI_COMMON_LINEAR_MODEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {

/// Ordinary-least-squares fit of X ~ slope * Y + intercept with lower/upper
/// error bounds `el`, `eu` such that for every training point
///   Predict(y) - el <= x <= Predict(y) + eu.
///
/// A functional mapping is encoded in four floats (slope, intercept, el, eu)
/// and transforms a filter [y0, y1] over the mapped dimension Y into the
/// guaranteed-superset filter [min - el, max + eu] over the target X.
class BoundedLinearModel {
 public:
  BoundedLinearModel() = default;

  /// Fits on paired samples; requires xs.size() == ys.size() >= 2.
  /// Degenerate inputs (constant Y) fit a constant model.
  static BoundedLinearModel Fit(const std::vector<Value>& ys,
                                const std::vector<Value>& xs);

  /// Outlier-robust fit (Theil-Sen over sampled pairs + median intercept).
  /// Unlike OLS, high-leverage outliers cannot drag the slope, so the
  /// residuals of true outliers stay extreme — used by the functional-
  /// mapping outlier buffer (§8) to decide *which* rows to buffer.
  static BoundedLinearModel FitRobust(const std::vector<Value>& ys,
                                      const std::vector<Value>& xs,
                                      int max_pairs = 512);

  double Predict(Value y) const { return slope_ * y + intercept_; }

  /// Long double prediction; exact over the full int64 value range (used
  /// internally so error bounds are consistent with MapRange).
  long double PredictL(Value y) const;

  /// Maps the inclusive Y-range [y0, y1] to the inclusive X-range that is
  /// guaranteed to contain all training points whose Y lies in [y0, y1].
  std::pair<Value, Value> MapRange(Value y0, Value y1) const;

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }
  double error_lo() const { return error_lo_; }
  double error_hi() const { return error_hi_; }

  /// Total error-band width, used by the AGD initialization heuristic
  /// ("use a functional mapping if the error bound is below 10% of the
  /// target's domain", §5.3.2).
  double ErrorBandWidth() const { return error_lo_ + error_hi_; }

  static constexpr int64_t kSizeBytes = 4 * sizeof(double);

  /// Persistence (§8): the four coefficients round-trip bit-exactly.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

 private:
  double slope_ = 0.0;
  double intercept_ = 0.0;
  double error_lo_ = 0.0;
  double error_hi_ = 0.0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_LINEAR_MODEL_H_
