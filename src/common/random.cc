#include "src/common/random.h"

#include <cmath>

namespace tsunami {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

Value Rng::UniformValue(Value lo, Value hi) {
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<Value>(Next());  // Full 64-bit range.
  return lo + static_cast<Value>(NextBelow(span));
}

double Rng::NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double rate) {
  double u = 0.0;
  while (u == 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

int64_t Rng::NextZipf(int64_t n, double s) {
  if (s <= 0.0) return static_cast<int64_t>(NextBelow(n));
  // Inverse-CDF on a truncated power law; approximate but fast and smooth,
  // adequate for workload skew generation.
  double u = NextDouble();
  double exp = 1.0 - s;
  double v;
  if (std::abs(exp) < 1e-9) {
    v = std::pow(static_cast<double>(n), u);
  } else {
    v = std::pow(u * (std::pow(static_cast<double>(n), exp) - 1.0) + 1.0,
                 1.0 / exp);
  }
  int64_t r = static_cast<int64_t>(v) - 1;
  if (r < 0) r = 0;
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace tsunami
