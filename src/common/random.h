// Deterministic pseudo-random number generation (xoshiro256**), so that
// datasets, workloads, and property tests are reproducible across runs.
#ifndef TSUNAMI_COMMON_RANDOM_H_
#define TSUNAMI_COMMON_RANDOM_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Small, fast, deterministic RNG (xoshiro256** seeded via splitmix64).
/// Not cryptographic; used for data generation and sampling only.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in the inclusive range [lo, hi].
  Value UniformValue(Value lo, Value hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given rate (mean = 1/rate).
  double NextExponential(double rate);

  /// Zipf-like skewed integer in [0, n) with exponent `s` (s=0 is uniform).
  int64_t NextZipf(int64_t n, double s);

  /// Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_RANDOM_H_
