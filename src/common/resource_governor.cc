#include "src/common/resource_governor.h"

#include "src/common/fault_injection.h"

namespace tsunami {

const char* ToString(ResourcePool pool) {
  switch (pool) {
    case ResourcePool::kDeltaBacklog:
      return "delta_backlog";
    case ResourcePool::kSealedChunks:
      return "sealed_chunks";
    case ResourcePool::kWalDisk:
      return "wal_disk";
    case ResourcePool::kNetBuffers:
      return "net_buffers";
    case ResourcePool::kPlanCache:
      return "plan_cache";
  }
  return "unknown";
}

ResourceGovernor::ResourceGovernor(const Budgets& budgets) {
  SetBudget(ResourcePool::kDeltaBacklog, budgets.delta_backlog_bytes);
  SetBudget(ResourcePool::kSealedChunks, budgets.sealed_chunk_bytes);
  SetBudget(ResourcePool::kWalDisk, budgets.wal_disk_bytes);
  SetBudget(ResourcePool::kNetBuffers, budgets.net_buffer_bytes);
  SetBudget(ResourcePool::kPlanCache, budgets.plan_cache_bytes);
}

void ResourceGovernor::SetBudget(ResourcePool p, int64_t bytes) {
  pool(p).budget.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
}

int64_t ResourceGovernor::budget(ResourcePool p) const {
  return pool(p).budget.load(std::memory_order_relaxed);
}

int64_t ResourceGovernor::used(ResourcePool p) const {
  return pool(p).used.load(std::memory_order_relaxed);
}

void ResourceGovernor::NotePeak(Pool& pool, int64_t used_now) {
  int64_t peak = pool.peak.load(std::memory_order_relaxed);
  while (used_now > peak &&
         !pool.peak.compare_exchange_weak(peak, used_now,
                                          std::memory_order_relaxed)) {
  }
}

bool ResourceGovernor::TryCharge(ResourcePool p, int64_t bytes) {
  if (bytes <= 0) return true;
  Pool& pl = pool(p);
  // Injected memory pressure: reject as if over budget, so backpressure
  // paths are exercised without actually exhausting anything.
  if (TSUNAMI_FAULT_FIRES("gov.mem_pressure", static_cast<int64_t>(p))) {
    pl.rejections.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const int64_t budget = pl.budget.load(std::memory_order_relaxed);
  const int64_t now = pl.used.fetch_add(bytes, std::memory_order_relaxed) +
                      bytes;
  if (budget > 0 && now > budget) {
    pl.used.fetch_sub(bytes, std::memory_order_relaxed);
    pl.rejections.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  pl.charges.fetch_add(1, std::memory_order_relaxed);
  NotePeak(pl, now);
  return true;
}

void ResourceGovernor::Charge(ResourcePool p, int64_t bytes) {
  if (bytes <= 0) return;
  Pool& pl = pool(p);
  const int64_t now = pl.used.fetch_add(bytes, std::memory_order_relaxed) +
                      bytes;
  pl.charges.fetch_add(1, std::memory_order_relaxed);
  NotePeak(pl, now);
}

void ResourceGovernor::Release(ResourcePool p, int64_t bytes) {
  if (bytes <= 0) return;
  Pool& pl = pool(p);
  const int64_t now = pl.used.fetch_sub(bytes, std::memory_order_relaxed) -
                      bytes;
  // Release more than was charged is an accounting bug upstream; clamp so a
  // transiently negative gauge cannot wedge TryCharge forever.
  if (now < 0) {
    int64_t cur = now;
    while (cur < 0 && !pl.used.compare_exchange_weak(
                          cur, 0, std::memory_order_relaxed)) {
    }
  }
}

void ResourceGovernor::SetUsed(ResourcePool p, int64_t bytes) {
  Pool& pl = pool(p);
  pl.used.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
  NotePeak(pl, bytes);
}

bool ResourceGovernor::WouldExceed(ResourcePool p, int64_t bytes) const {
  const Pool& pl = pool(p);
  const int64_t budget = pl.budget.load(std::memory_order_relaxed);
  if (budget <= 0) return false;
  return pl.used.load(std::memory_order_relaxed) + bytes > budget;
}

ResourceGovernor::Stats ResourceGovernor::stats() const {
  Stats s;
  for (int i = 0; i < kResourcePoolCount; ++i) {
    const Pool& pl = pools_[i];
    s.pools[i].used = pl.used.load(std::memory_order_relaxed);
    s.pools[i].peak = pl.peak.load(std::memory_order_relaxed);
    s.pools[i].budget = pl.budget.load(std::memory_order_relaxed);
    s.pools[i].charges = pl.charges.load(std::memory_order_relaxed);
    s.pools[i].rejections = pl.rejections.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace tsunami
