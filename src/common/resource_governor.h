// ResourceGovernor: live byte accounting and budgets for the process's
// major memory/disk pools, so resource pressure degrades service instead of
// killing it.
//
// Every pool a serving process leans on — the delta-chunk backlog a slow
// compactor lets grow, sealed-but-unfolded chunk payloads, the WAL's
// on-disk segments plus its pending group-commit queue, the network front
// end's read/write buffers, the plan cache — is tracked here as one atomic
// gauge with an optional budget. Enforcement lives at the call sites:
//
//   * ingest::IngestStore checks the delta-backlog pool in TryInsert /
//     TryInsertBatch and returns a typed kResourceExhausted instead of
//     appending past budget (backpressure, retryable — nothing was applied).
//   * durability::DurableIngestStore charges WAL bytes per appended frame
//     and releases them when checkpoints delete covered segments; an
//     over-budget WAL rejects new inserts the same typed way.
//   * net::TsunamiServer publishes its aggregate buffered bytes into the
//     net-buffers pool once per event-loop tick (a gauge — the wire layer
//     already enforces its own watermarks per connection).
//   * PlanCache charges each cached plan's estimated footprint and evicts
//     by bytes, not just entry count.
//
// Charge/release are single fetch_add/fetch_sub pairs — cheap enough for
// per-batch ingest paths. TryCharge is optimistic: add, then back out on
// overshoot, so concurrent chargers never serialize on a lock. A budget of
// 0 means unlimited (tracking only).
//
// Fault site (src/common/fault_injection.h): `gov.mem_pressure` — an armed
// TryCharge rejects as if the pool were over budget (arg = pool index), so
// backpressure paths are soak-testable without actually exhausting memory.
#ifndef TSUNAMI_COMMON_RESOURCE_GOVERNOR_H_
#define TSUNAMI_COMMON_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstdint>

namespace tsunami {

enum class ResourcePool : int {
  kDeltaBacklog = 0,  // Committed delta-chunk bytes not yet folded.
  kSealedChunks = 1,  // Sealed-but-unfolded chunk payload bytes.
  kWalDisk = 2,       // WAL segment bytes on disk + pending group frames.
  kNetBuffers = 3,    // Network read/write buffer bytes (gauge).
  kPlanCache = 4,     // Cached QueryPlan footprint bytes.
};
inline constexpr int kResourcePoolCount = 5;

const char* ToString(ResourcePool pool);

class ResourceGovernor {
 public:
  /// Per-pool byte budgets; 0 = unlimited (the pool is tracked but never
  /// rejects).
  struct Budgets {
    int64_t delta_backlog_bytes = 0;
    int64_t sealed_chunk_bytes = 0;
    int64_t wal_disk_bytes = 0;
    int64_t net_buffer_bytes = 0;
    int64_t plan_cache_bytes = 0;
  };

  ResourceGovernor() = default;
  explicit ResourceGovernor(const Budgets& budgets);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Budget may be adjusted at runtime (ops lever); lowering it below the
  /// current usage does not evict anything — it just makes the next
  /// TryCharge reject until usage drains below the new budget.
  void SetBudget(ResourcePool pool, int64_t bytes);
  int64_t budget(ResourcePool pool) const;
  int64_t used(ResourcePool pool) const;

  /// Optimistic conditional charge: adds `bytes`, and if that pushed the
  /// pool over its budget (or the `gov.mem_pressure` fault fired), backs
  /// the charge out and returns false. `bytes` <= 0 always succeeds.
  bool TryCharge(ResourcePool pool, int64_t bytes);

  /// Unconditional accounting (work already admitted elsewhere, or pools
  /// that enforce at a different point than they charge).
  void Charge(ResourcePool pool, int64_t bytes);
  void Release(ResourcePool pool, int64_t bytes);

  /// Gauge-style pools (net buffers): overwrite the usage outright.
  void SetUsed(ResourcePool pool, int64_t bytes);

  /// True when charging `bytes` more would exceed the pool's budget — a
  /// peek for call sites that reject before doing any work. Never consults
  /// the fault site (TryCharge does).
  bool WouldExceed(ResourcePool pool, int64_t bytes) const;

  struct PoolStats {
    int64_t used = 0;
    int64_t peak = 0;
    int64_t budget = 0;
    int64_t charges = 0;     // Successful TryCharge/Charge calls.
    int64_t rejections = 0;  // TryCharge refusals (incl. injected).
  };
  struct Stats {
    PoolStats pools[kResourcePoolCount];
  };
  Stats stats() const;

 private:
  struct Pool {
    std::atomic<int64_t> used{0};
    std::atomic<int64_t> peak{0};
    std::atomic<int64_t> budget{0};
    std::atomic<int64_t> charges{0};
    std::atomic<int64_t> rejections{0};
  };
  Pool& pool(ResourcePool p) { return pools_[static_cast<int>(p)]; }
  const Pool& pool(ResourcePool p) const {
    return pools_[static_cast<int>(p)];
  }
  void NotePeak(Pool& pool, int64_t used_now);

  Pool pools_[kResourcePoolCount];
};

/// RAII handle for one charge: releases on destruction. Move-only; the
/// default-constructed handle owns nothing. Used where the charge's
/// lifetime matches a scope (e.g. a pending WAL group frame).
class ResourceCharge {
 public:
  ResourceCharge() = default;
  ResourceCharge(ResourceGovernor* governor, ResourcePool pool, int64_t bytes)
      : governor_(governor), pool_(pool), bytes_(bytes) {
    if (governor_ != nullptr && bytes_ > 0) governor_->Charge(pool_, bytes_);
  }
  ~ResourceCharge() { Reset(); }

  ResourceCharge(ResourceCharge&& o) noexcept
      : governor_(o.governor_), pool_(o.pool_), bytes_(o.bytes_) {
    o.governor_ = nullptr;
    o.bytes_ = 0;
  }
  ResourceCharge& operator=(ResourceCharge&& o) noexcept {
    if (this != &o) {
      Reset();
      governor_ = o.governor_;
      pool_ = o.pool_;
      bytes_ = o.bytes_;
      o.governor_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  ResourceCharge(const ResourceCharge&) = delete;
  ResourceCharge& operator=(const ResourceCharge&) = delete;

  /// Releases the held charge now (idempotent).
  void Reset() {
    if (governor_ != nullptr && bytes_ > 0) governor_->Release(pool_, bytes_);
    governor_ = nullptr;
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }

 private:
  ResourceGovernor* governor_ = nullptr;
  ResourcePool pool_ = ResourcePool::kDeltaBacklog;
  int64_t bytes_ = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_RESOURCE_GOVERNOR_H_
