#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace tsunami {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / xs.size();
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / xs.size());
}

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (q <= 0) return xs.front();
  if (q >= 100) return xs.back();
  double pos = q / 100.0 * (xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - lo;
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tsunami
