// Small numeric helpers: order statistics, summary stats, and a wall timer.
#ifndef TSUNAMI_COMMON_STATS_H_
#define TSUNAMI_COMMON_STATS_H_

#include <chrono>
#include <cstdint>
#include <vector>

namespace tsunami {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double Stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double q);

/// Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_STATS_H_
