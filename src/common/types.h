// Core value, predicate, and query types shared by every index in the library.
#ifndef TSUNAMI_COMMON_TYPES_H_
#define TSUNAMI_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tsunami {

/// All attributes are 64-bit integers (strings are dictionary encoded and
/// floating point values are scaled to integers prior to indexing, §6.1).
using Value = int64_t;

inline constexpr Value kValueMin = std::numeric_limits<Value>::min();
inline constexpr Value kValueMax = std::numeric_limits<Value>::max();

/// An inclusive range filter `lo <= R.dim <= hi` over one dimension.
/// An equality filter is expressed as `lo == hi`.
struct Predicate {
  int dim = 0;
  Value lo = kValueMin;
  Value hi = kValueMax;

  bool Matches(Value v) const { return lo <= v && v <= hi; }
  bool IsEquality() const { return lo == hi; }
};

/// Supported aggregations. All indexes pay the same aggregation cost, so the
/// paper evaluates COUNT; SUM/MIN/MAX/AVG over a column are provided for the
/// API ("SUM(R.X) can be replaced by any aggregation", §2).
enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

/// Identity element for an aggregate's accumulator: the value such that
/// accumulating any row into it gives that row's contribution.
constexpr int64_t AggIdentity(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return kValueMax;
    case AggKind::kMax:
      return kValueMin;
    default:
      return 0;  // COUNT / SUM / AVG accumulate from zero.
  }
}

/// Folds one matching row's value `v` into the accumulator `agg`. AVG
/// accumulates the sum; the mean is `agg / matched` at finalization.
inline void AccumulateAgg(AggKind kind, Value v, int64_t* agg) {
  switch (kind) {
    case AggKind::kCount:
      ++*agg;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      *agg += v;
      break;
    case AggKind::kMin:
      if (v < *agg) *agg = v;
      break;
    case AggKind::kMax:
      if (v > *agg) *agg = v;
      break;
  }
}

/// A conjunctive range query: `SELECT AGG(col) FROM t WHERE p1 AND p2 ...`.
///
/// `type` labels the query type (§4.3.1) when known from the workload
/// generator; -1 means unlabeled (Tsunami will cluster types itself).
struct Query {
  std::vector<Predicate> filters;
  AggKind agg = AggKind::kCount;
  int agg_dim = 0;  // Aggregated column for kSum; ignored for kCount.
  int type = -1;

  /// Returns the filter over `dim`, or nullptr if the query does not
  /// filter that dimension.
  const Predicate* FilterOn(int dim) const {
    for (const Predicate& p : filters) {
      if (p.dim == dim) return &p;
    }
    return nullptr;
  }
};

/// Result of executing one query, plus the execution counters used by the
/// paper's cost model and our benchmark reporting.
struct QueryResult {
  int64_t agg = 0;           // Aggregate accumulator (sum for AVG).
  int64_t scanned = 0;       // Points touched by the scan.
  int64_t matched = 0;       // Points matching all filters.
  int64_t cell_ranges = 0;   // Physical storage ranges visited.
};

/// Merges a partial result into `out`: counters add; the accumulator
/// combines per the aggregate kind (COUNT/SUM/AVG add, MIN/MAX take the
/// extremum). Partials must cover disjoint row sets for counts to be
/// exact. Used by parallel region execution and disjoint-box unions.
inline void MergeQueryResults(AggKind kind, const QueryResult& in,
                              QueryResult* out) {
  out->scanned += in.scanned;
  out->matched += in.matched;
  out->cell_ranges += in.cell_ranges;
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kAvg:
      out->agg += in.agg;
      break;
    case AggKind::kMin:
      if (in.agg < out->agg) out->agg = in.agg;
      break;
    case AggKind::kMax:
      if (in.agg > out->agg) out->agg = in.agg;
      break;
  }
}

/// A QueryResult whose accumulator is initialized for the query's aggregate
/// (0 for COUNT/SUM/AVG, +inf for MIN, -inf for MAX). Every index's Execute
/// starts from this.
inline QueryResult InitResult(const Query& query) {
  QueryResult result;
  result.agg = AggIdentity(query.agg);
  return result;
}

/// Final scalar value of a finished result: the accumulator itself for
/// COUNT/SUM/MIN/MAX, the mean for AVG. MIN/MAX/AVG over zero matching rows
/// have no defined value; this returns 0 in that case (SQL would return
/// NULL).
inline double FinalAggValue(const Query& query, const QueryResult& result) {
  if (result.matched == 0 && query.agg != AggKind::kCount &&
      query.agg != AggKind::kSum) {
    return 0.0;
  }
  if (query.agg == AggKind::kAvg) {
    return static_cast<double>(result.agg) /
           static_cast<double>(result.matched);
  }
  return static_cast<double>(result.agg);
}

/// A workload is a list of queries; types, when present, are stored on the
/// queries themselves.
using Workload = std::vector<Query>;

/// Row-major multidimensional dataset used at build time. Indexes reorder it
/// into their clustered layout (via ColumnStore).
class Dataset {
 public:
  Dataset() = default;
  Dataset(int dims, std::vector<Value> row_major)
      : dims_(dims), data_(std::move(row_major)) {}

  int dims() const { return dims_; }
  int64_t size() const {
    return dims_ == 0 ? 0 : static_cast<int64_t>(data_.size()) / dims_;
  }
  Value at(int64_t row, int dim) const { return data_[row * dims_ + dim]; }
  Value& at(int64_t row, int dim) { return data_[row * dims_ + dim]; }

  const std::vector<Value>& raw() const { return data_; }
  std::vector<Value>& raw() { return data_; }

  void Reserve(int64_t rows) { data_.reserve(rows * dims_); }
  void AppendRow(const std::vector<Value>& row) {
    data_.insert(data_.end(), row.begin(), row.end());
  }

 private:
  int dims_ = 0;
  std::vector<Value> data_;
};

/// A dataset together with its generated workload and metadata; produced by
/// the generators in src/datasets.
struct Benchmark {
  std::string name;
  Dataset data;
  Workload workload;
  std::vector<std::string> dim_names;
  int num_query_types = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_TYPES_H_
