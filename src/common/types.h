// Core value, predicate, and query types shared by every index in the library.
#ifndef TSUNAMI_COMMON_TYPES_H_
#define TSUNAMI_COMMON_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

/// Deprecation marker for the pre-batch-API surface. Legacy integrations
/// that cannot migrate yet define TSUNAMI_ALLOW_DEPRECATED (the single
/// opt-out) to keep building under -Werror without warnings.
#if defined(TSUNAMI_ALLOW_DEPRECATED)
#define TSUNAMI_DEPRECATED(msg)
#else
#define TSUNAMI_DEPRECATED(msg) [[deprecated(msg)]]
#endif

namespace tsunami {

/// All attributes are 64-bit integers (strings are dictionary encoded and
/// floating point values are scaled to integers prior to indexing, §6.1).
using Value = int64_t;

inline constexpr Value kValueMin = std::numeric_limits<Value>::min();
inline constexpr Value kValueMax = std::numeric_limits<Value>::max();

/// An inclusive range filter `lo <= R.dim <= hi` over one dimension.
/// An equality filter is expressed as `lo == hi`.
struct Predicate {
  int dim = 0;
  Value lo = kValueMin;
  Value hi = kValueMax;

  bool Matches(Value v) const { return lo <= v && v <= hi; }
  bool IsEquality() const { return lo == hi; }
};

/// Supported aggregations. All indexes pay the same aggregation cost, so the
/// paper evaluates COUNT; SUM/MIN/MAX/AVG over a column are provided for the
/// API ("SUM(R.X) can be replaced by any aggregation", §2).
enum class AggKind { kCount, kSum, kMin, kMax, kAvg };

/// Identity element for an aggregate's accumulator: the value such that
/// accumulating any row into it gives that row's contribution.
constexpr int64_t AggIdentity(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return kValueMax;
    case AggKind::kMax:
      return kValueMin;
    default:
      return 0;  // COUNT / SUM / AVG accumulate from zero.
  }
}

/// Folds one matching row's value `v` into the accumulator `agg`. AVG
/// accumulates the sum; the mean is `agg / matched` at finalization.
inline void AccumulateAgg(AggKind kind, Value v, int64_t* agg) {
  switch (kind) {
    case AggKind::kCount:
      ++*agg;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      *agg += v;
      break;
    case AggKind::kMin:
      if (v < *agg) *agg = v;
      break;
    case AggKind::kMax:
      if (v > *agg) *agg = v;
      break;
  }
}

/// One aggregate of a (possibly multi-aggregate) query: the operation and
/// the aggregated column (`column` is ignored for kCount).
struct AggregateSpec {
  AggKind op = AggKind::kCount;
  int column = 0;

  bool operator==(const AggregateSpec&) const = default;
};

/// SELECT-list length the SQL parser accepts. Enforced only at the parser:
/// programmatic queries may carry longer lists (every kernel loops over the
/// full list; accumulators live in QueryResult::extra, not a fixed array) —
/// the cap just keeps statement cost proportional to what a user would
/// reasonably write.
inline constexpr int kMaxQueryAggs = 8;

/// A conjunctive range query:
/// `SELECT AGG1(col), AGG2(col), ... FROM t WHERE p1 AND p2 ...`.
///
/// Aggregates: the common single-aggregate form lives in `agg` / `agg_dim`
/// (back-compat: every pre-batch-API call site reads these). Multi-
/// aggregate queries additionally fill `aggs`, whose first entry mirrors
/// `agg` / `agg_dim` — use SetAggregates() to keep that invariant. All
/// aggregates of one query are computed in a single scan pass.
///
/// `type` labels the query type (§4.3.1) when known from the workload
/// generator; -1 means unlabeled (Tsunami will cluster types itself).
struct Query {
  std::vector<Predicate> filters;
  AggKind agg = AggKind::kCount;
  int agg_dim = 0;  // Aggregated column for kSum; ignored for kCount.
  int type = -1;
  /// Multi-aggregate list; empty means the single aggregate in `agg` /
  /// `agg_dim`. When non-empty, aggs[0] == {agg, agg_dim}.
  std::vector<AggregateSpec> aggs;

  Query() = default;
  TSUNAMI_DEPRECATED(
      "single-aggregate shim; use Query(filters, {AggregateSpec{...}, ...})")
  Query(std::vector<Predicate> fs, AggKind a, int a_dim = 0)
      : filters(std::move(fs)), agg(a), agg_dim(a_dim) {}
  Query(std::vector<Predicate> fs, std::vector<AggregateSpec> specs)
      : filters(std::move(fs)) {
    SetAggregates(std::move(specs));
  }

  /// Number of aggregates this query computes (at least 1).
  int num_aggs() const {
    return aggs.empty() ? 1 : static_cast<int>(aggs.size());
  }

  /// The i-th aggregate; i == 0 is the primary `agg` / `agg_dim` pair.
  AggregateSpec agg_spec(int i) const {
    return aggs.empty() ? AggregateSpec{agg, agg_dim} : aggs[i];
  }

  /// Installs `specs` as this query's aggregates, keeping the legacy
  /// `agg` / `agg_dim` fields mirrored on specs[0]. An empty list resets
  /// to the default COUNT. A single spec stores no `aggs` vector at all,
  /// so single-aggregate queries stay bit-identical to the legacy form.
  void SetAggregates(std::vector<AggregateSpec> specs) {
    if (specs.empty()) specs.push_back(AggregateSpec{});
    agg = specs[0].op;
    agg_dim = specs[0].column;
    if (specs.size() == 1) {
      aggs.clear();
    } else {
      aggs = std::move(specs);
    }
  }

  /// Returns the filter over `dim`, or nullptr if the query does not
  /// filter that dimension.
  const Predicate* FilterOn(int dim) const {
    for (const Predicate& p : filters) {
      if (p.dim == dim) return &p;
    }
    return nullptr;
  }
};

/// Result of executing one query, plus the execution counters used by the
/// paper's cost model and our benchmark reporting.
///
/// Multi-aggregate queries keep their first accumulator in `agg` (so every
/// single-aggregate code path keeps working unchanged) and the accumulators
/// for aggs[1..] in `extra`, parallel to the query's aggregate list.
struct QueryResult {
  int64_t agg = 0;           // First aggregate's accumulator (sum for AVG).
  int64_t scanned = 0;       // Points touched by the scan.
  int64_t matched = 0;       // Points matching all filters.
  int64_t cell_ranges = 0;   // Physical storage ranges visited.
  std::vector<int64_t> extra;  // Accumulators for aggregates 1..N-1.

  /// True when the scan had to skip quarantined (checksum-failed) storage
  /// blocks: the answer is complete over every healthy block but may be
  /// missing rows. `quarantined_blocks` counts the skipped block touches
  /// (the same block reached through two range tasks counts twice).
  bool degraded = false;
  int64_t quarantined_blocks = 0;

  /// Accumulator for the query's i-th aggregate.
  int64_t agg_value(int i) const { return i == 0 ? agg : extra[i - 1]; }
  int64_t* agg_accumulator(int i) { return i == 0 ? &agg : &extra[i - 1]; }
};

/// Merges a partial result into `out`: counters add; the accumulator
/// combines per the aggregate kind (COUNT/SUM/AVG add, MIN/MAX take the
/// extremum). Partials must cover disjoint row sets for counts to be
/// exact. Used by parallel region execution and disjoint-box unions.
/// This overload merges the primary accumulator only; use the Query
/// overload when multi-aggregate extras may be present.
inline void MergeQueryResults(AggKind kind, const QueryResult& in,
                              QueryResult* out) {
  out->scanned += in.scanned;
  out->matched += in.matched;
  out->cell_ranges += in.cell_ranges;
  out->degraded = out->degraded || in.degraded;
  out->quarantined_blocks += in.quarantined_blocks;
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kAvg:
      out->agg += in.agg;
      break;
    case AggKind::kMin:
      if (in.agg < out->agg) out->agg = in.agg;
      break;
    case AggKind::kMax:
      if (in.agg > out->agg) out->agg = in.agg;
      break;
  }
}

/// Folds one accumulator value into another per the aggregate kind
/// (COUNT/SUM/AVG add, MIN/MAX take the extremum).
inline void MergeAggValue(AggKind kind, int64_t in, int64_t* out) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kAvg:
      *out += in;
      break;
    case AggKind::kMin:
      if (in < *out) *out = in;
      break;
    case AggKind::kMax:
      if (in > *out) *out = in;
      break;
  }
}

/// Multi-aggregate merge: counters add once; every accumulator (primary +
/// extras) combines per its aggregate's kind from `query`. Kinds are read
/// through agg_spec() — the same source the scan kernels use — so a Query
/// whose `aggs` was filled directly (without SetAggregates keeping the
/// `agg` mirror in sync) still merges every accumulator correctly.
inline void MergeQueryResults(const Query& query, const QueryResult& in,
                              QueryResult* out) {
  out->scanned += in.scanned;
  out->matched += in.matched;
  out->cell_ranges += in.cell_ranges;
  out->degraded = out->degraded || in.degraded;
  out->quarantined_blocks += in.quarantined_blocks;
  MergeAggValue(query.agg_spec(0).op, in.agg, &out->agg);
  for (size_t i = 0; i < out->extra.size(); ++i) {
    MergeAggValue(query.agg_spec(static_cast<int>(i) + 1).op, in.extra[i],
                  &out->extra[i]);
  }
}

/// A QueryResult whose accumulators are initialized for the query's
/// aggregates (0 for COUNT/SUM/AVG, +inf for MIN, -inf for MAX). Every
/// index's Execute starts from this. Reads kinds through agg_spec(), like
/// the kernels and MergeQueryResults.
inline QueryResult InitResult(const Query& query) {
  QueryResult result;
  result.agg = AggIdentity(query.agg_spec(0).op);
  result.extra.resize(query.num_aggs() - 1);
  for (int i = 1; i < query.num_aggs(); ++i) {
    result.extra[i - 1] = AggIdentity(query.agg_spec(i).op);
  }
  return result;
}

/// Final scalar value of the `index`-th aggregate of a finished result: the
/// accumulator itself for COUNT/SUM/MIN/MAX, the mean for AVG. MIN/MAX/AVG
/// over zero matching rows have no defined value; this returns 0 in that
/// case (SQL would return NULL).
inline double FinalAggValue(const Query& query, const QueryResult& result,
                            int index) {
  const AggregateSpec spec = query.agg_spec(index);
  const int64_t acc = result.agg_value(index);
  if (result.matched == 0 && spec.op != AggKind::kCount &&
      spec.op != AggKind::kSum) {
    return 0.0;
  }
  if (spec.op == AggKind::kAvg) {
    return static_cast<double>(acc) / static_cast<double>(result.matched);
  }
  return static_cast<double>(acc);
}

/// Final scalar value of the primary (first) aggregate.
inline double FinalAggValue(const Query& query, const QueryResult& result) {
  return FinalAggValue(query, result, 0);
}

/// 64-bit hash combiner (boost-style golden-ratio mix) used for plan
/// fingerprints.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// The query's filters normalized into a canonical rectangle: one predicate
/// per filtered dimension (same-dim conjuncts intersect), sorted by
/// dimension. Two queries with equal normalized filters and equal aggregate
/// lists are answer-equivalent on any index, which is exactly the
/// equivalence a plan cache needs.
inline std::vector<Predicate> NormalizedFilters(const Query& query) {
  std::vector<Predicate> rect;
  for (const Predicate& p : query.filters) {
    bool merged = false;
    for (Predicate& r : rect) {
      if (r.dim == p.dim) {
        r.lo = std::max(r.lo, p.lo);
        r.hi = std::min(r.hi, p.hi);
        merged = true;
        break;
      }
    }
    if (!merged) rect.push_back(p);
  }
  std::sort(rect.begin(), rect.end(),
            [](const Predicate& a, const Predicate& b) { return a.dim < b.dim; });
  return rect;
}

/// Fingerprint of a query's normalized filter rectangle plus its aggregate
/// list — the plan-cache key half that depends on the query (the other half
/// is the index the plan addresses). Collisions are possible (64-bit hash);
/// a cache must confirm semantic equivalence on a fingerprint match by
/// comparing the normalized rectangles (NormalizedRectEqual) and aggregate
/// lists — FingerprintEquivalent is the Query-level form. The (rect, aggs)
/// overload lets a caller that already normalized the query hash without
/// renormalizing.
inline uint64_t QueryFingerprint(const std::vector<Predicate>& rect,
                                 const std::vector<AggregateSpec>& aggs) {
  uint64_t h = 0x5161'7573'6572'7631ULL;  // Arbitrary non-zero seed.
  for (const Predicate& p : rect) {
    h = HashCombine(h, static_cast<uint64_t>(p.dim));
    h = HashCombine(h, static_cast<uint64_t>(p.lo));
    h = HashCombine(h, static_cast<uint64_t>(p.hi));
  }
  h = HashCombine(h, static_cast<uint64_t>(aggs.size()));
  for (const AggregateSpec& spec : aggs) {
    h = HashCombine(h, static_cast<uint64_t>(spec.op));
    h = HashCombine(h, static_cast<uint64_t>(spec.column));
  }
  return h;
}

/// The query's aggregate list as a vector (the fingerprint/cache-key
/// shape).
inline std::vector<AggregateSpec> AggregateList(const Query& query) {
  std::vector<AggregateSpec> aggs;
  aggs.reserve(query.num_aggs());
  for (int a = 0; a < query.num_aggs(); ++a) {
    aggs.push_back(query.agg_spec(a));
  }
  return aggs;
}

inline uint64_t QueryFingerprint(const Query& query) {
  return QueryFingerprint(NormalizedFilters(query), AggregateList(query));
}

/// Element-wise equality of two normalized rectangles — the one
/// fingerprint-collision comparator, shared by FingerprintEquivalent and
/// the plan cache's key so the two can never drift apart.
inline bool NormalizedRectEqual(const std::vector<Predicate>& a,
                                const std::vector<Predicate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dim != b[i].dim || a[i].lo != b[i].lo || a[i].hi != b[i].hi) {
      return false;
    }
  }
  return true;
}

/// True when two queries are answer-equivalent for caching purposes: same
/// normalized filter rectangle and same aggregate list. (The `type` label
/// is irrelevant to execution and deliberately excluded.)
inline bool FingerprintEquivalent(const Query& a, const Query& b) {
  if (a.num_aggs() != b.num_aggs()) return false;
  for (int i = 0; i < a.num_aggs(); ++i) {
    if (!(a.agg_spec(i) == b.agg_spec(i))) return false;
  }
  return NormalizedRectEqual(NormalizedFilters(a), NormalizedFilters(b));
}

/// A workload is a list of queries; types, when present, are stored on the
/// queries themselves.
using Workload = std::vector<Query>;

/// Row-major multidimensional dataset used at build time. Indexes reorder it
/// into their clustered layout (via ColumnStore).
class Dataset {
 public:
  Dataset() = default;
  Dataset(int dims, std::vector<Value> row_major)
      : dims_(dims), data_(std::move(row_major)) {}

  int dims() const { return dims_; }
  int64_t size() const {
    return dims_ == 0 ? 0 : static_cast<int64_t>(data_.size()) / dims_;
  }
  Value at(int64_t row, int dim) const { return data_[row * dims_ + dim]; }
  Value& at(int64_t row, int dim) { return data_[row * dims_ + dim]; }

  const std::vector<Value>& raw() const { return data_; }
  std::vector<Value>& raw() { return data_; }

  void Reserve(int64_t rows) { data_.reserve(rows * dims_); }
  void AppendRow(const std::vector<Value>& row) {
    data_.insert(data_.end(), row.begin(), row.end());
  }

 private:
  int dims_ = 0;
  std::vector<Value> data_;
};

/// A dataset together with its generated workload and metadata; produced by
/// the generators in src/datasets.
struct Benchmark {
  std::string name;
  Dataset data;
  Workload workload;
  std::vector<std::string> dim_names;
  int num_query_types = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_TYPES_H_
