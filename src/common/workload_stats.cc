#include "src/common/workload_stats.h"

#include <algorithm>
#include <numeric>

namespace tsunami {

Dataset SampleDataset(const Dataset& data, int64_t max_rows, Rng* rng) {
  int64_t n = data.size();
  Dataset sample(data.dims(), {});
  if (n <= max_rows) {
    sample = data;
    return sample;
  }
  sample.Reserve(max_rows);
  std::vector<Value> row(data.dims());
  for (int64_t i = 0; i < max_rows; ++i) {
    int64_t r = static_cast<int64_t>(rng->NextBelow(n));
    for (int d = 0; d < data.dims(); ++d) row[d] = data.at(r, d);
    sample.AppendRow(row);
  }
  return sample;
}

double PredicateSelectivity(const Dataset& sample, const Predicate& p) {
  int64_t n = sample.size();
  if (n == 0) return 1.0;
  int64_t hits = 0;
  for (int64_t r = 0; r < n; ++r) {
    if (p.Matches(sample.at(r, p.dim))) ++hits;
  }
  return static_cast<double>(hits) / n;
}

double QuerySelectivity(const Dataset& sample, const Query& q) {
  int64_t n = sample.size();
  if (n == 0) return 1.0;
  int64_t hits = 0;
  for (int64_t r = 0; r < n; ++r) {
    bool ok = true;
    for (const Predicate& p : q.filters) {
      if (!p.Matches(sample.at(r, p.dim))) {
        ok = false;
        break;
      }
    }
    if (ok) ++hits;
  }
  return static_cast<double>(hits) / n;
}

std::vector<double> AvgSelectivityPerDim(const Dataset& sample,
                                         const Workload& workload, int dims) {
  std::vector<double> sum(dims, 0.0);
  std::vector<int64_t> count(dims, 0);
  for (const Query& q : workload) {
    for (const Predicate& p : q.filters) {
      if (p.dim < 0 || p.dim >= dims) continue;
      sum[p.dim] += PredicateSelectivity(sample, p);
      ++count[p.dim];
    }
  }
  std::vector<double> avg(dims, 1.0);
  for (int d = 0; d < dims; ++d) {
    if (count[d] > 0) avg[d] = sum[d] / count[d];
  }
  return avg;
}

std::vector<int> DimsBySelectivity(const Dataset& sample,
                                   const Workload& workload, int dims) {
  std::vector<double> avg = AvgSelectivityPerDim(sample, workload, dims);
  std::vector<int> order(dims);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return avg[a] < avg[b]; });
  return order;
}

DimBounds ComputeBounds(const Dataset& data) {
  DimBounds b;
  int dims = data.dims();
  b.lo.assign(dims, 0);
  b.hi.assign(dims, 0);
  if (data.size() == 0) return b;
  for (int d = 0; d < dims; ++d) {
    Value lo = data.at(0, d), hi = data.at(0, d);
    for (int64_t r = 1; r < data.size(); ++r) {
      Value v = data.at(r, d);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    b.lo[d] = lo;
    b.hi[d] = hi;
  }
  return b;
}

}  // namespace tsunami
