// Workload statistics shared by index builders: per-dimension filter
// selectivities (used for sort-dimension choice, k-d tree dimension order,
// partition initialization, and query-type embeddings, §4.3.1 / §5.3.2).
#ifndef TSUNAMI_COMMON_WORKLOAD_STATS_H_
#define TSUNAMI_COMMON_WORKLOAD_STATS_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace tsunami {

/// Uniform row sample of a dataset (without replacement for small n).
Dataset SampleDataset(const Dataset& data, int64_t max_rows, Rng* rng);

/// Fraction of sample rows matching the single predicate `p` (in [0, 1]).
double PredicateSelectivity(const Dataset& sample, const Predicate& p);

/// Fraction of sample rows matching all of the query's filters.
double QuerySelectivity(const Dataset& sample, const Query& q);

/// Per-dimension average selectivity over queries filtering that dimension;
/// dimensions never filtered get 1.0. Lower = more selective = more useful
/// to index.
std::vector<double> AvgSelectivityPerDim(const Dataset& sample,
                                         const Workload& workload, int dims);

/// Dimensions ordered from most selective (smallest average selectivity) to
/// least; never-filtered dimensions come last.
std::vector<int> DimsBySelectivity(const Dataset& sample,
                                   const Workload& workload, int dims);

/// Per-dimension [min, max] over the dataset. Empty datasets yield [0, 0].
struct DimBounds {
  std::vector<Value> lo;
  std::vector<Value> hi;
};
DimBounds ComputeBounds(const Dataset& data);

}  // namespace tsunami

#endif  // TSUNAMI_COMMON_WORKLOAD_STATS_H_
