#include "src/core/augmented_grid.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tsunami {
namespace {

// Intersects the inclusive range [lo2, hi2] into [*lo, *hi].
void IntersectRange(Value lo2, Value hi2, Value* lo, Value* hi) {
  *lo = std::max(*lo, lo2);
  *hi = std::min(*hi, hi2);
}

}  // namespace

AugmentedGrid::AugmentedGrid(const AugmentedGrid& other) { *this = other; }

AugmentedGrid& AugmentedGrid::operator=(const AugmentedGrid& other) {
  if (this == &other) return *this;
  dims_ = other.dims_;
  num_rows_ = other.num_rows_;
  grid_rows_ = other.grid_rows_;
  skeleton_ = other.skeleton_;
  partitions_ = other.partitions_;
  grid_dims_ = other.grid_dims_;
  strides_ = other.strides_;
  sort_dim_ = other.sort_dim_;
  num_cells_ = other.num_cells_;
  models_.clear();
  models_.reserve(other.models_.size());
  for (const auto& model : other.models_) {
    models_.push_back(model != nullptr
                          ? std::make_unique<EquiDepthCdf>(*model)
                          : nullptr);
  }
  ccdfs_ = other.ccdfs_;
  fms_ = other.fms_;
  part_min_ = other.part_min_;
  part_max_ = other.part_max_;
  dim_min_ = other.dim_min_;
  dim_max_ = other.dim_max_;
  cell_start_ = other.cell_start_;
  store_ = other.store_;
  base_ = other.base_;
  return *this;
}

void AugmentedGrid::Build(const Dataset& data, std::vector<uint32_t>* rows,
                          const Skeleton& skeleton,
                          std::vector<int> partitions,
                          const BuildOptions& options) {
  dims_ = data.dims();
  num_rows_ = static_cast<int64_t>(rows->size());
  skeleton_ = skeleton;
  assert(skeleton_.num_dims() == dims_);
  assert(skeleton_.Validate());

  partitions.resize(dims_, 1);
  for (int d = 0; d < dims_; ++d) {
    partitions[d] = std::max(partitions[d], 1);
    if (skeleton_.dims[d].strategy == PartitionStrategy::kMapped) {
      partitions[d] = 1;
    }
  }
  partitions_ = std::move(partitions);

  // §8 extension: pull functional-mapping outliers out of the grid. One
  // extreme row can blow up a mapping's error band; rows outside the
  // residual quantile band move to a trailing buffer that every query
  // scans, and the mappings are refit on the inliers.
  grid_rows_ = num_rows_;
  if (options.fm_outlier_fraction > 0.0 && skeleton_.NumMapped() > 0 &&
      num_rows_ >= 64) {
    std::vector<char> is_outlier(num_rows_, 0);
    std::vector<long double> resid(num_rows_);
    for (int d = 0; d < dims_; ++d) {
      if (skeleton_.dims[d].strategy != PartitionStrategy::kMapped) continue;
      int target = skeleton_.dims[d].other;
      std::vector<Value> ys(num_rows_), xs(num_rows_);
      for (int64_t i = 0; i < num_rows_; ++i) {
        ys[i] = data.at((*rows)[i], d);
        xs[i] = data.at((*rows)[i], target);
      }
      BoundedLinearModel fit = BoundedLinearModel::FitRobust(ys, xs);
      for (int64_t i = 0; i < num_rows_; ++i) {
        resid[i] = static_cast<long double>(xs[i]) - fit.PredictL(ys[i]);
      }
      std::vector<long double> sorted_resid = resid;
      std::sort(sorted_resid.begin(), sorted_resid.end());
      // Robust fence: residuals far outside the central 90% band are
      // outliers. A fixed fence multiple keeps clean data untouched while
      // catching arbitrarily extreme rows.
      long double q05 = sorted_resid[num_rows_ / 20];
      long double q95 = sorted_resid[num_rows_ - 1 - num_rows_ / 20];
      long double scale = std::max(q95 - q05, 1.0L);
      long double fence_lo = q05 - 8 * scale;
      long double fence_hi = q95 + 8 * scale;
      int64_t marked = 0;
      for (int64_t i = 0; i < num_rows_; ++i) {
        marked += resid[i] < fence_lo || resid[i] > fence_hi;
      }
      // Too many "outliers" means the correlation is just loose; buffering
      // would not tighten anything worth the extra scans.
      int64_t cap = std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::max(options.fm_outlier_fraction * 20, 0.001) *
                 num_rows_));
      if (marked == 0 || marked > cap) continue;
      for (int64_t i = 0; i < num_rows_; ++i) {
        if (resid[i] < fence_lo || resid[i] > fence_hi) is_outlier[i] = 1;
      }
    }
    // Stable partition by position: inliers first, outliers at the end.
    std::vector<uint32_t> reordered;
    reordered.reserve(num_rows_);
    for (int64_t i = 0; i < num_rows_; ++i) {
      if (!is_outlier[i]) reordered.push_back((*rows)[i]);
    }
    grid_rows_ = static_cast<int64_t>(reordered.size());
    for (int64_t i = 0; i < num_rows_; ++i) {
      if (is_outlier[i]) reordered.push_back((*rows)[i]);
    }
    *rows = std::move(reordered);
  }

  // Region bounds (used for mapped-dimension coverage checks). Computed
  // over the grid (inlier) rows; the outlier buffer is scanned with full
  // per-row checks, so it needs no bounds.
  dim_min_.assign(dims_, 0);
  dim_max_.assign(dims_, 0);
  for (int d = 0; d < dims_; ++d) {
    if (grid_rows_ == 0) break;
    Value lo = data.at((*rows)[0], d), hi = lo;
    for (int64_t i = 1; i < grid_rows_; ++i) {
      Value v = data.at((*rows)[i], d);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    dim_min_[d] = lo;
    dim_max_[d] = hi;
  }

  // Grid dimension order: independents (bases included) first, then
  // conditionals — a conditional's base always precedes it — with the sort
  // dimension moved to the end so that runs along it are sorted and can be
  // refined by binary search.
  std::vector<int> indep_dims, cond_dims;
  for (int d = 0; d < dims_; ++d) {
    switch (skeleton_.dims[d].strategy) {
      case PartitionStrategy::kIndependent:
        indep_dims.push_back(d);
        break;
      case PartitionStrategy::kConditional:
        cond_dims.push_back(d);
        break;
      case PartitionStrategy::kMapped:
        break;
    }
  }
  grid_dims_ = indep_dims;
  grid_dims_.insert(grid_dims_.end(), cond_dims.begin(), cond_dims.end());

  // Sort-dimension candidates: grid dims that are not a base of any
  // conditional (a base must stay outer in the odometer).
  sort_dim_ = -1;
  auto is_candidate = [&](int d) {
    return std::find(grid_dims_.begin(), grid_dims_.end(), d) !=
               grid_dims_.end() &&
           !skeleton_.IsBase(d);
  };
  if (options.sort_dim >= 0 && is_candidate(options.sort_dim)) {
    sort_dim_ = options.sort_dim;
  } else {
    for (int d : options.selectivity_order) {
      if (is_candidate(d)) {
        sort_dim_ = d;
        break;
      }
    }
    if (sort_dim_ < 0) {
      for (auto it = grid_dims_.rbegin(); it != grid_dims_.rend(); ++it) {
        if (is_candidate(*it)) {
          sort_dim_ = *it;
          break;
        }
      }
    }
  }
  if (sort_dim_ < 0) sort_dim_ = grid_dims_.back();  // All grid dims are
                                                     // bases: degenerate but
                                                     // still correct (no
                                                     // refinement benefit).
  grid_dims_.erase(std::find(grid_dims_.begin(), grid_dims_.end(), sort_dim_));
  grid_dims_.push_back(sort_dim_);

  // Enforce the cell cap by repeatedly halving the largest partition count.
  auto total_cells = [&]() {
    int64_t cells = 1;
    for (int d : grid_dims_) {
      if (cells > options.max_cells) break;
      cells *= partitions_[d];
    }
    return cells;
  };
  while (total_cells() > options.max_cells) {
    int largest = grid_dims_[0];
    for (int d : grid_dims_) {
      if (partitions_[d] > partitions_[largest]) largest = d;
    }
    partitions_[largest] = std::max(partitions_[largest] / 2, 1);
  }

  int m = static_cast<int>(grid_dims_.size());
  strides_.assign(m, 1);
  for (int j = m - 2; j >= 0; --j) {
    strides_[j] = strides_[j + 1] * partitions_[grid_dims_[j + 1]];
  }
  num_cells_ = strides_[0] * partitions_[grid_dims_[0]];

  // Per-dimension structures and per-row partition indices.
  models_.clear();
  models_.resize(dims_);
  ccdfs_.assign(dims_, ConditionalCdf());
  fms_.assign(dims_, BoundedLinearModel());
  part_min_.assign(dims_, {});
  part_max_.assign(dims_, {});
  std::vector<std::vector<int32_t>> row_parts(dims_);

  std::vector<Value> vals(grid_rows_);
  for (int d : indep_dims) {
    int p = partitions_[d];
    for (int64_t i = 0; i < grid_rows_; ++i) vals[i] = data.at((*rows)[i], d);
    std::vector<Value> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    // ~2 knots per partition keeps partitions balanced while keeping the
    // model compact (the paper's RMIs are similarly small).
    int knots = std::clamp(2 * p, 16, 128);
    models_[d] = EquiDepthCdf::BuildFromSorted(sorted, knots);
    row_parts[d].resize(grid_rows_);
    part_min_[d].assign(p, kValueMax);
    part_max_[d].assign(p, kValueMin);
    for (int64_t i = 0; i < grid_rows_; ++i) {
      int idx = models_[d]->PartitionOf(vals[i], p);
      row_parts[d][i] = idx;
      part_min_[d][idx] = std::min(part_min_[d][idx], vals[i]);
      part_max_[d][idx] = std::max(part_max_[d][idx], vals[i]);
    }
  }
  for (int d = 0; d < dims_; ++d) {
    if (skeleton_.dims[d].strategy != PartitionStrategy::kMapped) continue;
    int target = skeleton_.dims[d].other;
    std::vector<Value> ys(grid_rows_), xs(grid_rows_);
    for (int64_t i = 0; i < grid_rows_; ++i) {
      ys[i] = data.at((*rows)[i], d);
      xs[i] = data.at((*rows)[i], target);
    }
    fms_[d] = BoundedLinearModel::Fit(ys, xs);
  }
  for (int d : cond_dims) {
    int base = skeleton_.dims[d].other;
    ccdfs_[d] = ConditionalCdf::Build(
        grid_rows_, partitions_[base], partitions_[d],
        [&](int64_t i) { return static_cast<int>(row_parts[base][i]); },
        [&](int64_t i) { return data.at((*rows)[i], d); });
    row_parts[d].resize(grid_rows_);
    for (int64_t i = 0; i < grid_rows_; ++i) {
      row_parts[d][i] =
          ccdfs_[d].PartitionOf(row_parts[base][i], data.at((*rows)[i], d));
    }
  }

  // Cell id per grid row; sort the inlier prefix by (cell, sort value) —
  // the outlier buffer keeps its position at the tail.
  std::vector<int64_t> cell(grid_rows_);
  for (int64_t i = 0; i < grid_rows_; ++i) {
    int64_t c = 0;
    for (int j = 0; j < m; ++j) {
      c += static_cast<int64_t>(row_parts[grid_dims_[j]][i]) * strides_[j];
    }
    cell[i] = c;
  }
  std::vector<int64_t> order(grid_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    if (cell[a] != cell[b]) return cell[a] < cell[b];
    return data.at((*rows)[a], sort_dim_) < data.at((*rows)[b], sort_dim_);
  });
  std::vector<uint32_t> reordered(num_rows_);
  for (int64_t i = 0; i < grid_rows_; ++i) reordered[i] = (*rows)[order[i]];
  for (int64_t i = grid_rows_; i < num_rows_; ++i) reordered[i] = (*rows)[i];
  *rows = std::move(reordered);

  cell_start_.assign(num_cells_ + 1, 0);
  for (int64_t i = 0; i < grid_rows_; ++i) ++cell_start_[cell[order[i]] + 1];
  for (int64_t c = 0; c < num_cells_; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
}

void AugmentedGrid::Attach(const ColumnStore* store, int64_t base) {
  store_ = store;
  base_ = base;
}

void AugmentedGrid::Execute(const Query& query, QueryResult* out) const {
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  PlanRanges(query, &tasks, out);
  if (!tasks.empty()) store_->ScanRanges(tasks, query, out);
}

void AugmentedGrid::PlanRanges(const Query& query,
                               std::vector<RangeTask>* tasks,
                               QueryResult* counters) const {
  if (num_rows_ == 0 || store_ == nullptr) return;

  // Effective per-dimension filters: the original filters, narrowed by the
  // ranges induced through functional mappings (§5.2.1). Mapped dimensions'
  // own filters remain in the query and are checked during scans.
  // Scratch buffers are thread-local: queries run often, grids are many.
  static thread_local std::vector<Value> eff_lo, eff_hi;
  static thread_local std::vector<bool> has_eff;
  static thread_local std::vector<Value> orig_lo, orig_hi;
  static thread_local std::vector<bool> has_orig;
  static thread_local std::vector<DimRange> indep;
  static thread_local std::vector<int> cur_part;
  // A query may carry several filters on one dimension; all decisions below
  // (coverage, refinement, mapping) use the merged per-dimension constraint.
  orig_lo.assign(dims_, kValueMin);
  orig_hi.assign(dims_, kValueMax);
  has_orig.assign(dims_, false);
  for (const Predicate& p : query.filters) {
    IntersectRange(p.lo, p.hi, &orig_lo[p.dim], &orig_hi[p.dim]);
    has_orig[p.dim] = true;
  }
  eff_lo = orig_lo;
  eff_hi = orig_hi;
  has_eff = has_orig;
  // Outlier rows (§8 buffer) sit outside all cells and mappings; they are
  // scanned with full per-row checks whenever the grid gives up early
  // (e.g. a mapping-narrowed range became empty) and after the runs.
  auto plan_outliers = [&]() {
    if (grid_rows_ < num_rows_) {
      ++counters->cell_ranges;
      tasks->push_back(RangeTask{base_ + grid_rows_, base_ + num_rows_,
                                 /*exact=*/false});
    }
  };
  bool mapped_covered = true;
  for (int d = 0; d < dims_; ++d) {
    if (skeleton_.dims[d].strategy != PartitionStrategy::kMapped) continue;
    if (!has_orig[d]) continue;
    if (orig_lo[d] > orig_hi[d]) return;  // Contradictory filters.
    auto [x_lo, x_hi] = fms_[d].MapRange(orig_lo[d], orig_hi[d]);
    int target = skeleton_.dims[d].other;
    IntersectRange(x_lo, x_hi, &eff_lo[target], &eff_hi[target]);
    has_eff[target] = true;
    // An exact range may skip checking this filter only if it covers the
    // region's whole domain in d.
    if (orig_lo[d] > dim_min_[d] || orig_hi[d] < dim_max_[d]) {
      mapped_covered = false;
    }
  }
  for (int d = 0; d < dims_; ++d) {
    if (has_eff[d] && eff_lo[d] > eff_hi[d]) {
      // No grid cell can match, but buffered outliers still might (their
      // values lie outside the mappings' error bands).
      plan_outliers();
      return;
    }
  }

  indep.assign(dims_, DimRange{});
  for (int d : grid_dims_) {
    if (skeleton_.dims[d].strategy != PartitionStrategy::kIndependent) {
      continue;
    }
    int p = partitions_[d];
    if (has_eff[d]) {
      auto [l, h] = models_[d]->PartitionRange(eff_lo[d], eff_hi[d], p);
      indep[d] = DimRange{l, h};
    } else {
      indep[d] = DimRange{0, p - 1};
    }
  }

  cur_part.assign(dims_, 0);
  EnumerateRuns(query, indep, eff_lo, eff_hi, has_eff, orig_lo, orig_hi,
                has_orig, 0, 0, true, mapped_covered, &cur_part, tasks,
                counters);

  plan_outliers();
}

void AugmentedGrid::EnumerateRuns(
    const Query& query, const std::vector<DimRange>& indep,
    const std::vector<Value>& eff_lo, const std::vector<Value>& eff_hi,
    const std::vector<bool>& has_eff, const std::vector<Value>& orig_lo,
    const std::vector<Value>& orig_hi, const std::vector<bool>& has_orig,
    int depth, int64_t cell_base, bool covered, bool mapped_covered,
    std::vector<int>* cur_part, std::vector<RangeTask>* tasks,
    QueryResult* counters) const {
  int m = static_cast<int>(grid_dims_.size());
  int dim = grid_dims_[depth];
  bool conditional =
      skeleton_.dims[dim].strategy == PartitionStrategy::kConditional;
  int base = skeleton_.dims[dim].other;

  DimRange range;
  if (conditional) {
    if (has_eff[dim]) {
      auto [l, h] = ccdfs_[dim].PartitionRange((*cur_part)[base], eff_lo[dim],
                                               eff_hi[dim]);
      range = DimRange{l, h};
    } else {
      range = DimRange{0, partitions_[dim] - 1};
    }
  } else {
    range = indep[dim];
  }
  if (range.lo > range.hi) return;  // No points can match (Fig. 6 skip).

  if (depth == m - 1) {
    // Innermost dimension (the sort dimension): cells [lo, hi] form one
    // contiguous physical run, sorted by this dimension.
    int64_t c_lo = cell_base + range.lo;
    int64_t c_hi = cell_base + range.hi;
    ++counters->cell_ranges;
    int64_t rb = base_ + static_cast<int64_t>(cell_start_[c_lo]);
    int64_t re = base_ + static_cast<int64_t>(cell_start_[c_hi + 1]);
    if (rb >= re) return;
    if (has_orig[dim]) {
      // Binary-search refinement: the run is sorted by the sort dimension.
      rb = store_->LowerBound(sort_dim_, rb, re, orig_lo[dim]);
      re = store_->UpperBound(sort_dim_, rb, re, orig_hi[dim]);
    }
    if (rb < re) {
      tasks->push_back(RangeTask{rb, re, covered && mapped_covered});
    }
    return;
  }

  for (int idx = range.lo; idx <= range.hi; ++idx) {
    (*cur_part)[dim] = idx;
    bool covered_here = true;
    if (has_orig[dim]) {
      if (conditional) {
        covered_here = ccdfs_[dim].CoversPartition(
            (*cur_part)[base], idx, orig_lo[dim], orig_hi[dim]);
      } else {
        covered_here = orig_lo[dim] <= part_min_[dim][idx] &&
                       part_max_[dim][idx] <= orig_hi[dim];
      }
    }
    EnumerateRuns(query, indep, eff_lo, eff_hi, has_eff, orig_lo, orig_hi,
                  has_orig, depth + 1, cell_base + idx * strides_[depth],
                  covered && covered_here, mapped_covered, cur_part, tasks,
                  counters);
  }
}

int64_t AugmentedGrid::SizeBytes() const {
  int64_t bytes = static_cast<int64_t>(cell_start_.size()) * sizeof(uint32_t);
  for (int d = 0; d < dims_; ++d) {
    if (models_[d] != nullptr) bytes += models_[d]->SizeBytes();
    bytes += ccdfs_[d].SizeBytes();
    bytes += static_cast<int64_t>(part_min_[d].size()) * 2 * sizeof(Value);
    if (skeleton_.num_dims() == dims_ &&
        skeleton_.dims[d].strategy == PartitionStrategy::kMapped) {
      bytes += BoundedLinearModel::kSizeBytes;
    }
  }
  bytes += static_cast<int64_t>(grid_dims_.size()) *
           (sizeof(int) + sizeof(int64_t));
  return bytes;
}


void AugmentedGrid::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(dims_);
  writer->PutVarI64(num_rows_);
  writer->PutVarI64(grid_rows_);
  skeleton_.Serialize(writer);
  writer->PutIntVec(partitions_);
  writer->PutIntVec(grid_dims_);
  writer->PutVarU64(strides_.size());
  for (int64_t s : strides_) writer->PutVarI64(s);
  writer->PutVarI64(sort_dim_);
  writer->PutVarI64(num_cells_);
  for (int d = 0; d < dims_; ++d) {
    writer->PutBool(models_[d] != nullptr);
    if (models_[d] != nullptr) models_[d]->Serialize(writer);
    ccdfs_[d].Serialize(writer);
    fms_[d].Serialize(writer);
    writer->PutValueVec(part_min_[d]);
    writer->PutValueVec(part_max_[d]);
  }
  writer->PutValueVec(dim_min_);
  writer->PutValueVec(dim_max_);
  writer->PutVarU64(cell_start_.size());
  uint32_t prev = 0;
  for (uint32_t v : cell_start_) {
    // cell_start_ is non-decreasing: deltas are small varints.
    writer->PutVarU64(v - prev);
    prev = v;
  }
}

bool AugmentedGrid::Deserialize(BinaryReader* reader) {
  dims_ = static_cast<int>(reader->GetVarI64());
  num_rows_ = reader->GetVarI64();
  grid_rows_ = reader->GetVarI64();
  if (!reader->ok() || dims_ < 0 || dims_ > 4096 || num_rows_ < 0 ||
      grid_rows_ < 0 || grid_rows_ > num_rows_) {
    reader->MarkCorrupt();
    return false;
  }
  if (!skeleton_.Deserialize(reader)) return false;
  if (skeleton_.num_dims() != dims_) {
    reader->MarkCorrupt();
    return false;
  }
  if (!reader->GetIntVec(&partitions_)) return false;
  if (!reader->GetIntVec(&grid_dims_)) return false;
  uint64_t num_strides = reader->GetVarU64();
  if (!reader->ok() || num_strides != grid_dims_.size()) {
    reader->MarkCorrupt();
    return false;
  }
  strides_.resize(num_strides);
  for (uint64_t i = 0; i < num_strides; ++i) {
    strides_[i] = reader->GetVarI64();
  }
  sort_dim_ = static_cast<int>(reader->GetVarI64());
  num_cells_ = reader->GetVarI64();
  if (!reader->ok() || num_cells_ < 0) {
    reader->MarkCorrupt();
    return false;
  }
  models_.clear();
  models_.resize(dims_);
  ccdfs_.assign(dims_, ConditionalCdf());
  fms_.assign(dims_, BoundedLinearModel());
  part_min_.assign(dims_, {});
  part_max_.assign(dims_, {});
  for (int d = 0; d < dims_; ++d) {
    if (reader->GetBool()) {
      models_[d] = EquiDepthCdf::Deserialize(reader);
      if (models_[d] == nullptr) return false;
    }
    if (!ccdfs_[d].Deserialize(reader)) return false;
    if (!fms_[d].Deserialize(reader)) return false;
    if (!reader->GetValueVec(&part_min_[d])) return false;
    if (!reader->GetValueVec(&part_max_[d])) return false;
  }
  if (!reader->GetValueVec(&dim_min_)) return false;
  if (!reader->GetValueVec(&dim_max_)) return false;
  uint64_t num_starts = reader->GetVarU64();
  if (!reader->ok() || num_starts > reader->remaining() + 1 ||
      (num_cells_ > 0 &&
       num_starts != static_cast<uint64_t>(num_cells_) + 1)) {
    reader->MarkCorrupt();
    return false;
  }
  cell_start_.resize(num_starts);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < num_starts; ++i) {
    prev += reader->GetVarU64();
    if (prev > static_cast<uint64_t>(grid_rows_)) {
      reader->MarkCorrupt();
      return false;
    }
    cell_start_[i] = static_cast<uint32_t>(prev);
  }
  store_ = nullptr;  // Caller must Attach().
  base_ = 0;
  return reader->ok();
}

}  // namespace tsunami
