// The Augmented Grid (§5): a Flood-style grid whose dimensions may be
// partitioned independently (CDF(X)), removed via a functional mapping
// (F: X -> target), or partitioned conditionally (CDF(X | base)). With the
// all-independent skeleton this *is* Flood's index structure; Tsunami
// instantiates one Augmented Grid per Grid Tree region.
#ifndef TSUNAMI_CORE_AUGMENTED_GRID_H_
#define TSUNAMI_CORE_AUGMENTED_GRID_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cdf/cdf_model.h"
#include "src/cdf/conditional_cdf.h"
#include "src/common/linear_model.h"
#include "src/common/types.h"
#include "src/core/skeleton.h"
#include "src/storage/column_store.h"

namespace tsunami {

class AugmentedGrid {
 public:
  struct BuildOptions {
    /// Dimensions ordered most- to least-selective; used to pick the sort
    /// dimension (points within a cell are sorted by it and scans refine
    /// with binary search, the refinement of §6.1). Empty = dimension order.
    std::vector<int> selectivity_order;
    /// Force a specific sort dimension (-1 = choose automatically).
    int sort_dim = -1;
    /// Hard cap on the number of grid cells (lookup-table entries).
    int64_t max_cells = int64_t{1} << 22;
    /// Outlier buffer for functional mappings (§8 "Complex Correlations"):
    /// rows whose residual under a mapping falls outside the
    /// [fraction, 1-fraction] residual quantile band are moved to a
    /// separate always-scanned buffer when doing so shrinks the mapping's
    /// error band by at least 4x. 0 disables the buffer.
    double fm_outlier_fraction = 0.001;
  };

  AugmentedGrid() = default;
  AugmentedGrid(AugmentedGrid&&) = default;
  AugmentedGrid& operator=(AugmentedGrid&&) = default;
  /// Deep copy: the CDF models sit behind unique_ptrs purely to keep them
  /// polymorphic, so a clone duplicates them. The store attachment copies
  /// verbatim — a caller cloning a whole index must re-Attach the copy to
  /// its own store (the LoadFromFile / RepairedCopy pattern).
  AugmentedGrid(const AugmentedGrid& other);
  AugmentedGrid& operator=(const AugmentedGrid& other);

  /// Builds the grid over the rows `(*rows)[i]` of `data` and reorders
  /// *rows into the grid's clustered order (cells ascending; within a cell,
  /// sorted by the sort dimension). `partitions` holds the partition count
  /// per dimension; mapped dimensions are forced to 1. The skeleton must
  /// Validate().
  void Build(const Dataset& data, std::vector<uint32_t>* rows,
             const Skeleton& skeleton, std::vector<int> partitions,
             const BuildOptions& options);

  /// Points the grid at the column store holding its rows, which must be
  /// stored contiguously at [base, base + num_rows).
  void Attach(const ColumnStore* store, int64_t base);

  /// Executes a query over this grid's rows, accumulating into `out`.
  /// Equivalent to PlanRanges() followed by ColumnStore::ScanRanges().
  void Execute(const Query& query, QueryResult* out) const;

  /// Plans the physical row ranges the query must scan — candidate cell
  /// runs after binary-search refinement, plus the outlier buffer — and
  /// appends them to `tasks` without touching row data (beyond the
  /// refinement binary searches). Counts visited runs into
  /// counters->cell_ranges. Callers batch tasks across grids/regions and
  /// submit them to the scan kernel in one go.
  void PlanRanges(const Query& query, std::vector<RangeTask>* tasks,
                  QueryResult* counters) const;

  int64_t SizeBytes() const;

  /// Persistence (§8): serializes every model and lookup table; excludes
  /// the store attachment, which the caller re-establishes via Attach().
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_cells() const { return num_cells_; }
  /// Rows held in the outlier buffer instead of grid cells (§8 extension).
  int64_t num_outliers() const { return num_rows_ - grid_rows_; }
  int sort_dim() const { return sort_dim_; }
  const Skeleton& skeleton() const { return skeleton_; }
  const std::vector<int>& partitions() const { return partitions_; }

 private:
  struct DimRange {
    int lo = 0;
    int hi = -1;  // Inclusive; lo > hi means empty.
  };

  // Recursive odometer over grid_dims_[depth..]; `cell_base` accumulates
  // partition * stride for the fixed outer dimensions, `covered` tracks
  // whether every filtered outer dimension's partition is fully inside its
  // original filter. Emits one RangeTask per non-empty innermost run.
  void EnumerateRuns(const Query& query, const std::vector<DimRange>& indep,
                     const std::vector<Value>& eff_lo,
                     const std::vector<Value>& eff_hi,
                     const std::vector<bool>& has_eff,
                     const std::vector<Value>& orig_lo,
                     const std::vector<Value>& orig_hi,
                     const std::vector<bool>& has_orig, int depth,
                     int64_t cell_base, bool covered, bool mapped_covered,
                     std::vector<int>* cur_part,
                     std::vector<RangeTask>* tasks,
                     QueryResult* counters) const;

  int dims_ = 0;
  int64_t num_rows_ = 0;
  int64_t grid_rows_ = 0;  // Inlier rows placed in cells; outliers follow.
  Skeleton skeleton_;
  std::vector<int> partitions_;
  std::vector<int> grid_dims_;     // Ordered; sort dim last.
  std::vector<int64_t> strides_;   // Parallel to grid_dims_.
  int sort_dim_ = -1;
  int64_t num_cells_ = 1;

  std::vector<std::unique_ptr<EquiDepthCdf>> models_;  // Independent dims.
  std::vector<ConditionalCdf> ccdfs_;                  // Conditional dims.
  std::vector<BoundedLinearModel> fms_;                // Mapped dims.
  std::vector<std::vector<Value>> part_min_;  // Exact per-partition bounds
  std::vector<std::vector<Value>> part_max_;  // for independent dims.
  std::vector<Value> dim_min_;  // Region bounds per dimension.
  std::vector<Value> dim_max_;

  // Region-local row offsets; size num_cells_ + 1. 32-bit entries: the
  // lookup table dominates index size (§5.1), so keep it compact.
  std::vector<uint32_t> cell_start_;
  const ColumnStore* store_ = nullptr;
  int64_t base_ = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_AUGMENTED_GRID_H_
