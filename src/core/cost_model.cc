#include "src/core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/index.h"
#include "src/common/stats.h"
#include "src/storage/column_store.h"
#include "src/common/workload_stats.h"

namespace tsunami {

CostWeights CalibrateCostWeights(const ExecContext& ctx) {
  return CalibrateCostWeights(ctx.scan);
}

double PredictPlanNanos(const QueryPlan& plan, const CostWeights& weights) {
  if (!plan.use_tasks) return 0.0;
  int64_t inexact_rows = 0;
  int64_t exact_rows = 0;
  for (const RangeTask& task : plan.tasks) {
    (task.exact ? exact_rows : inexact_rows) += task.end - task.begin;
  }
  const int filtered =
      static_cast<int>(NormalizedFilters(plan.query).size());
  int agg_cols = 0;
  for (int a = 0; a < plan.query.num_aggs(); ++a) {
    if (plan.query.agg_spec(a).op != AggKind::kCount) ++agg_cols;
  }
  // Inexact rows pay the filter passes; exact rows skip them and pay only
  // the aggregate reads (an exact COUNT range is free, matching the
  // kernel's touch-no-data path).
  double nanos = weights.w0 * static_cast<double>(plan.tasks.size());
  nanos += weights.w1 * static_cast<double>(inexact_rows) *
           static_cast<double>(std::max(filtered, 1));
  nanos += weights.w1 * static_cast<double>(exact_rows) *
           static_cast<double>(agg_cols);
  return nanos;
}

CostWeights CalibrateCostWeights(const ScanOptions& options) {
  CostWeights weights;
  Rng rng(123);
  // Scan-cost probe shared by w1 and the per-width terms: builds a
  // 3-column store over Uniform(0, domain) values — so every block encodes
  // at the code width `domain` implies — and times the *actual* batched
  // kernel over short non-exact ranges at scattered offsets (the access
  // pattern real queries produce), under the caller's scan options, so a
  // forced SIMD tier calibrates the costs that tier actually pays at
  // execution time. Returns ns per (point, filtered dimension).
  auto scan_cost = [&](Value domain, bool encode) -> double {
    const int64_t n = 1 << 20;
    const int kCols = 3;
    Dataset data(kCols, {});
    data.Reserve(n);
    std::vector<Value> row(kCols);
    for (int64_t i = 0; i < n; ++i) {
      for (int c = 0; c < kCols; ++c) row[c] = rng.UniformValue(0, domain);
      data.AppendRow(row);
    }
    ColumnStore store(data, encode);
    Query query;
    for (int c = 0; c < kCols; ++c) {
      // ~2/3 selective per dimension, like the original {1000, 700000}
      // filters over the 2^20 domain.
      query.filters.push_back(
          Predicate{c, domain / 1000, domain - domain / 3});
    }
    const int64_t chunk = 2048;
    std::vector<RangeTask> tasks;
    for (int64_t begin = 0; begin + chunk <= n; begin += 7 * chunk) {
      tasks.push_back(RangeTask{begin, begin + chunk, /*exact=*/false});
    }
    QueryResult result;
    Timer timer;
    store.ScanRanges(tasks, query, &result, options);
    double ns = result.scanned > 0 ? static_cast<double>(timer.ElapsedNanos()) /
                                         (static_cast<double>(result.scanned) *
                                          kCols)
                                   : 1.5;
    return std::max(ns, 0.2);
  };
  // w1: the representative blended term, measured under the deployment's
  // default encoding (so the optimizer trades lookups vs scans at the
  // costs queries actually pay).
  const bool encoding = EncodingEnabledByDefault();
  weights.w1 = scan_cost(1 << 20, encoding);
  // Per-width terms: domains sized so every block narrows to 8/16/32-bit
  // codes. When narrowing is disabled (build define or environment), they
  // stay 0 — ScanCostForSpan falls back to the raw-measured w1, which is
  // what execution pays. The 2^20 domain already narrows to u32, so the
  // w1 probe doubles as the u32 term.
  if (encoding) {
    weights.w1_u8 = scan_cost(250, /*encode=*/true);
    weights.w1_u16 = scan_cost(50000, /*encode=*/true);
    weights.w1_u32 = weights.w1;
  }
  // w0: per-cell-range overhead — a lookup-table access, the cache miss of
  // jumping to a random physical position, and binary-search refinement.
  {
    const int64_t cells = 1 << 20;
    const int64_t heap = 1 << 22;
    std::vector<int64_t> cell_start(cells);
    for (int64_t i = 0; i < cells; ++i) {
      cell_start[i] = rng.NextBelow(heap - 64);
    }
    std::vector<Value> column(heap);
    for (int64_t i = 0; i < heap; ++i) {
      column[i] = rng.UniformValue(0, 1 << 20);
    }
    const int64_t trials = 1 << 17;
    Timer timer;
    int64_t sink = 0;
    for (int64_t i = 0; i < trials; ++i) {
      int64_t slot = rng.NextBelow(cells);
      int64_t begin = cell_start[slot];
      // Binary-search refinement over a short sorted-by-sort-dim run.
      auto it = std::lower_bound(column.begin() + begin,
                                 column.begin() + begin + 64,
                                 static_cast<Value>(1 << 19));
      sink += it - column.begin();
    }
    double ns = static_cast<double>(timer.ElapsedNanos()) / trials;
    if (sink != 1) weights.w0 = std::max(ns, 50.0);
  }
  return weights;
}

GridCostEvaluator::GridCostEvaluator(const Dataset& data,
                                     const std::vector<uint32_t>& rows,
                                     const Workload& queries,
                                     int max_sample_points,
                                     int max_sample_queries, uint64_t seed) {
  dims_ = data.dims();
  total_rows_ = static_cast<int64_t>(rows.size());
  Rng rng(seed);

  // Point sample.
  n_ = static_cast<int>(
      std::min<int64_t>(total_rows_, std::max(max_sample_points, 1)));
  vals_.assign(dims_, std::vector<Value>(n_));
  if (total_rows_ > 0) {
    for (int i = 0; i < n_; ++i) {
      uint32_t row = total_rows_ <= n_
                         ? rows[i]
                         : rows[rng.NextBelow(total_rows_)];
      for (int d = 0; d < dims_; ++d) vals_[d][i] = data.at(row, d);
    }
  }
  scale_ = n_ > 0 ? static_cast<double>(total_rows_) / n_ : 0.0;

  // Per-dimension sort orders and dense ranks.
  sorted_.assign(dims_, {});
  rank_.assign(dims_, std::vector<int32_t>(n_));
  order_.assign(dims_, std::vector<int32_t>(n_));
  for (int d = 0; d < dims_; ++d) {
    std::iota(order_[d].begin(), order_[d].end(), 0);
    std::stable_sort(
        order_[d].begin(), order_[d].end(),
        [&](int32_t a, int32_t b) { return vals_[d][a] < vals_[d][b]; });
    sorted_[d].resize(n_);
    for (int j = 0; j < n_; ++j) {
      sorted_[d][j] = vals_[d][order_[d][j]];
      rank_[d][order_[d][j]] = j;
    }
  }

  // Query subsample.
  if (static_cast<int>(queries.size()) <= max_sample_queries) {
    queries_ = queries;
  } else {
    std::vector<int> idx(queries.size());
    std::iota(idx.begin(), idx.end(), 0);
    for (int i = 0; i < max_sample_queries; ++i) {
      std::swap(idx[i], idx[i + rng.NextBelow(idx.size() - i)]);
      queries_.push_back(queries[idx[i]]);
    }
  }

  // Workload statistics for the optimizer heuristics.
  avg_sel_.assign(dims_, 1.0);
  filtered_.assign(dims_, false);
  {
    std::vector<double> sum(dims_, 0.0);
    std::vector<int> cnt(dims_, 0);
    for (const Query& q : queries_) {
      for (const Predicate& p : q.filters) {
        if (p.dim < 0 || p.dim >= dims_) continue;
        filtered_[p.dim] = true;
        // Selectivity from ranks: fraction of sample values inside [lo, hi].
        int64_t rlo = std::lower_bound(sorted_[p.dim].begin(),
                                       sorted_[p.dim].end(), p.lo) -
                      sorted_[p.dim].begin();
        int64_t rhi = std::upper_bound(sorted_[p.dim].begin(),
                                       sorted_[p.dim].end(), p.hi) -
                      sorted_[p.dim].begin();
        sum[p.dim] += n_ > 0 ? static_cast<double>(rhi - rlo) / n_ : 1.0;
        ++cnt[p.dim];
      }
    }
    for (int d = 0; d < dims_; ++d) {
      if (cnt[d] > 0) avg_sel_[d] = sum[d] / cnt[d];
    }
  }
  // Per-dim span estimates for block code widths (see CostWeights): a
  // kScanBlockRows-row window of the full data maps to a window of
  // ~n_ * 1024 / total_rows sorted sample values; average a few evenly
  // spaced windows. Full span is the domain a cell-partitioned dimension
  // divides.
  local_span_.assign(dims_, 0.0);
  full_span_.assign(dims_, 0.0);
  if (n_ > 0) {
    const int64_t window = std::clamp<int64_t>(
        total_rows_ > 0 ? n_ * kScanBlockRows / total_rows_ : n_, 1, n_);
    for (int d = 0; d < dims_; ++d) {
      full_span_[d] = static_cast<double>(sorted_[d].back()) -
                      static_cast<double>(sorted_[d].front());
      double sum = 0.0;
      const int kWindows = 16;
      for (int s = 0; s < kWindows; ++s) {
        const int64_t j = (n_ - window) * s / kWindows;
        sum += static_cast<double>(sorted_[d][j + window - 1]) -
               static_cast<double>(sorted_[d][j]);
      }
      local_span_[d] = sum / kWindows;
    }
  }

  sel_order_.resize(dims_);
  std::iota(sel_order_.begin(), sel_order_.end(), 0);
  std::stable_sort(sel_order_.begin(), sel_order_.end(), [&](int a, int b) {
    if (filtered_[a] != filtered_[b]) return static_cast<bool>(filtered_[a]);
    return avg_sel_[a] < avg_sel_[b];
  });

  corr_.assign(dims_, std::vector<double>(dims_, 0.0));
  for (int x = 0; x < dims_; ++x) {
    corr_[x][x] = 1.0;
    std::vector<double> xs(vals_[x].begin(), vals_[x].end());
    for (int y = x + 1; y < dims_; ++y) {
      std::vector<double> ys(vals_[y].begin(), vals_[y].end());
      double c = PearsonCorrelation(xs, ys);
      corr_[x][y] = c;
      corr_[y][x] = c;
    }
  }
}

const BoundedLinearModel& GridCostEvaluator::FittedFm(int mapped,
                                                      int target) const {
  auto key = std::make_pair(mapped, target);
  auto it = fm_cache_.find(key);
  if (it == fm_cache_.end()) {
    it = fm_cache_
             .emplace(key,
                      BoundedLinearModel::Fit(vals_[mapped], vals_[target]))
             .first;
  }
  return it->second;
}

double GridCostEvaluator::FmErrorBandRatio(int x, int y) const {
  if (n_ == 0) return 1.0;
  const BoundedLinearModel& fm = FittedFm(x, y);
  double domain = static_cast<double>(sorted_[y].back() - sorted_[y].front());
  return fm.ErrorBandWidth() / std::max(domain, 1.0);
}

double GridCostEvaluator::EmptyCellFraction(int x, int y, int g) const {
  if (n_ == 0) return 0.0;
  std::vector<char> occupied(g * g, 0);
  for (int i = 0; i < n_; ++i) {
    occupied[PartOfRank(rank_[x][i], g) * g + PartOfRank(rank_[y][i], g)] = 1;
  }
  int filled = 0;
  for (char c : occupied) filled += c;
  return 1.0 - static_cast<double>(filled) / (g * g);
}

namespace {

struct CondInfo {
  int base = -1;
  std::vector<int32_t> dep_part;               // Per sample point.
  std::vector<std::vector<Value>> base_sorted;  // Dep values per base part.
};

}  // namespace

double GridCostEvaluator::Cost(const Skeleton& skeleton,
                               const std::vector<int>& partitions,
                               const CostWeights& weights,
                               int sort_dim) const {
  double total = 0.0;
  for (const Query& q : queries_) {
    total += PredictQueryNanos(skeleton, partitions, weights, q, sort_dim);
  }
  return queries_.empty() ? 0.0 : total / queries_.size();
}

double GridCostEvaluator::PredictQueryNanos(const Skeleton& skeleton,
                                            const std::vector<int>& partitions,
                                            const CostWeights& weights,
                                            const Query& query,
                                            int sort_dim) const {
  if (n_ == 0) return 0.0;
  // Mirror AugmentedGrid::Build's dimension ordering and sort-dim choice.
  std::vector<int> grid_dims;
  for (int d = 0; d < dims_; ++d) {
    if (skeleton.dims[d].strategy == PartitionStrategy::kIndependent) {
      grid_dims.push_back(d);
    }
  }
  for (int d = 0; d < dims_; ++d) {
    if (skeleton.dims[d].strategy == PartitionStrategy::kConditional) {
      grid_dims.push_back(d);
    }
  }
  auto is_sort_candidate = [&](int d) {
    return d >= 0 && d < dims_ &&
           skeleton.dims[d].strategy != PartitionStrategy::kMapped &&
           !skeleton.IsBase(d);
  };
  if (!is_sort_candidate(sort_dim)) {
    sort_dim = -1;
    for (int d : sel_order_) {
      if (is_sort_candidate(d)) {
        sort_dim = d;
        break;
      }
    }
    if (sort_dim < 0) sort_dim = grid_dims.back();
  }
  grid_dims.erase(std::find(grid_dims.begin(), grid_dims.end(), sort_dim));
  grid_dims.push_back(sort_dim);

  // Conditional-dimension structures on the sample.
  std::vector<CondInfo> cond(dims_);
  for (int d = 0; d < dims_; ++d) {
    if (skeleton.dims[d].strategy != PartitionStrategy::kConditional) continue;
    CondInfo& info = cond[d];
    info.base = skeleton.dims[d].other;
    int pb = std::max(partitions[info.base], 1);
    int pd = std::max(partitions[d], 1);
    info.base_sorted.assign(pb, {});
    info.dep_part.resize(n_);
    // Traverse points in ascending dep value; positions within each base
    // bucket are then ascending, giving equi-depth dep partitions.
    for (int32_t i : order_[d]) {
      int bp = PartOfRank(rank_[info.base][i], pb);
      info.base_sorted[bp].push_back(vals_[d][i]);
    }
    std::vector<int> cursor(pb, 0);
    for (int32_t i : order_[d]) {
      int bp = PartOfRank(rank_[info.base][i], pb);
      int size = static_cast<int>(info.base_sorted[bp].size());
      info.dep_part[i] = static_cast<int>(
          static_cast<int64_t>(cursor[bp]++) * pd / std::max(size, 1));
    }
  }

  // Effective filters after functional-mapping transforms.
  std::vector<Value> eff_lo(dims_, kValueMin), eff_hi(dims_, kValueMax);
  std::vector<bool> has_eff(dims_, false);
  for (const Predicate& p : query.filters) {
    eff_lo[p.dim] = std::max(eff_lo[p.dim], p.lo);
    eff_hi[p.dim] = std::min(eff_hi[p.dim], p.hi);
    has_eff[p.dim] = true;
  }
  for (int d = 0; d < dims_; ++d) {
    if (skeleton.dims[d].strategy != PartitionStrategy::kMapped) continue;
    const Predicate* p = query.FilterOn(d);
    if (p == nullptr) continue;
    int target = skeleton.dims[d].other;
    auto [x_lo, x_hi] = FittedFm(d, target).MapRange(p->lo, p->hi);
    eff_lo[target] = std::max(eff_lo[target], x_lo);
    eff_hi[target] = std::min(eff_hi[target], x_hi);
    has_eff[target] = true;
  }
  for (int d = 0; d < dims_; ++d) {
    if (has_eff[d] && eff_lo[d] > eff_hi[d]) return weights.w0;
  }

  // Per-dimension partition ranges for independent dims.
  std::vector<int> lo_part(dims_, 0), hi_part(dims_, 0);
  for (int d : grid_dims) {
    int p = std::max(partitions[d], 1);
    if (skeleton.dims[d].strategy != PartitionStrategy::kIndependent) continue;
    if (!has_eff[d]) {
      lo_part[d] = 0;
      hi_part[d] = p - 1;
      continue;
    }
    int64_t rlo = std::lower_bound(sorted_[d].begin(), sorted_[d].end(),
                                   eff_lo[d]) -
                  sorted_[d].begin();
    int64_t rhi = std::upper_bound(sorted_[d].begin(), sorted_[d].end(),
                                   eff_hi[d]) -
                  sorted_[d].begin();
    lo_part[d] = PartOfRank(rlo, p);
    hi_part[d] = PartOfRank(std::max(rhi - 1, rlo), p);
  }
  // Conditional dims: per-base dep partition ranges (empty = {1, 0}).
  std::vector<std::vector<std::pair<int, int>>> cond_range(dims_);
  for (int d : grid_dims) {
    if (skeleton.dims[d].strategy != PartitionStrategy::kConditional) continue;
    const CondInfo& info = cond[d];
    int pb = static_cast<int>(info.base_sorted.size());
    int pd = std::max(partitions[d], 1);
    cond_range[d].assign(pb, {0, pd - 1});
    if (!has_eff[d]) continue;
    for (int bp = lo_part[info.base]; bp <= hi_part[info.base]; ++bp) {
      const std::vector<Value>& vec = info.base_sorted[bp];
      if (vec.empty() || eff_hi[d] < vec.front() || eff_lo[d] > vec.back()) {
        cond_range[d][bp] = {1, 0};
        continue;
      }
      int64_t plo = std::lower_bound(vec.begin(), vec.end(), eff_lo[d]) -
                    vec.begin();
      int64_t phi = std::upper_bound(vec.begin(), vec.end(), eff_hi[d]) -
                    vec.begin() - 1;
      if (phi < plo) {
        cond_range[d][bp] = {1, 0};
        continue;
      }
      int size = static_cast<int>(vec.size());
      cond_range[d][bp] = {static_cast<int>(plo * pd / size),
                           static_cast<int>(phi * pd / size)};
    }
  }

  // #cell ranges: product of partition extents over all grid dims except
  // the innermost (runs merge along the sort dimension). Conditional dims
  // contribute their average extent over the base's intersecting partitions.
  double ranges = 1.0;
  for (size_t j = 0; j + 1 < grid_dims.size(); ++j) {
    int d = grid_dims[j];
    if (skeleton.dims[d].strategy == PartitionStrategy::kIndependent) {
      ranges *= hi_part[d] - lo_part[d] + 1;
    } else {
      const CondInfo& info = cond[d];
      double sum = 0.0;
      int count = 0;
      for (int bp = lo_part[info.base]; bp <= hi_part[info.base]; ++bp) {
        auto [l, h] = cond_range[d][bp];
        sum += h >= l ? h - l + 1 : 0;
        ++count;
      }
      ranges *= count > 0 ? sum / count : 1.0;
    }
    if (ranges > 1e15) break;
  }

  // #scanned points: sample points inside the intersecting cells that also
  // survive the sort-dimension binary-search refinement. Points whose
  // partitions are strictly interior to every filtered dimension's
  // partition range sit in exactly-covered cells: the exact-range scan
  // optimization (§6.1) skips checking them, so they are discounted —
  // unless a filtered mapped dimension forces per-row checks everywhere.
  const Predicate* sort_filter = query.FilterOn(sort_dim);
  bool has_mapped_filter = false;
  for (int d = 0; d < dims_; ++d) {
    if (skeleton.dims[d].strategy == PartitionStrategy::kMapped &&
        query.FilterOn(d) != nullptr) {
      has_mapped_filter = true;
    }
  }
  int64_t scanned = 0;
  for (int i = 0; i < n_; ++i) {
    bool in = true;
    bool interior = !has_mapped_filter;
    for (int d : grid_dims) {
      int p = std::max(partitions[d], 1);
      int part;
      if (skeleton.dims[d].strategy == PartitionStrategy::kIndependent) {
        part = PartOfRank(rank_[d][i], p);
        if (part < lo_part[d] || part > hi_part[d]) {
          in = false;
          break;
        }
        if (d != sort_dim && query.FilterOn(d) != nullptr &&
            (part == lo_part[d] || part == hi_part[d])) {
          interior = false;
        }
      } else {
        const CondInfo& info = cond[d];
        int pb = static_cast<int>(info.base_sorted.size());
        int bp = PartOfRank(rank_[info.base][i], pb);
        if (bp < lo_part[info.base] || bp > hi_part[info.base]) {
          in = false;
          break;
        }
        auto [l, h] = cond_range[d][bp];
        if (info.dep_part[i] < l || info.dep_part[i] > h) {
          in = false;
          break;
        }
        if (d != sort_dim && query.FilterOn(d) != nullptr &&
            (info.dep_part[i] == l || info.dep_part[i] == h)) {
          interior = false;
        }
      }
    }
    if (in && sort_filter != nullptr &&
        !sort_filter->Matches(vals_[sort_dim][i])) {
      in = false;
    }
    // Interior points of exactly-covered cells cost (almost) nothing.
    scanned += in && !interior;
  }

  // Scan cost per point: one term per filter, at the cost of the filtered
  // dimension's estimated block code width under this layout — the sort
  // dimension's blocks span a 1024-row window of its sorted order, other
  // grid dimensions span about one cell, mapped/conditional dimensions
  // stay conservative at the full domain. Uncalibrated weights collapse
  // every term to w1, reproducing the original
  // w1 * scanned * #filtered-dims formula exactly.
  double scan_ns = 0.0;
  for (const Predicate& p : query.filters) {
    const int d = p.dim;
    double span = -1.0;  // Unknown: ScanCostForSpan falls back to w1.
    if (d >= 0 && d < dims_ && n_ > 0) {
      if (d == sort_dim) {
        span = local_span_[d];
      } else if (skeleton.dims[d].strategy ==
                 PartitionStrategy::kIndependent) {
        span = full_span_[d] / std::max(partitions[d], 1);
      } else {
        span = full_span_[d];
      }
    }
    scan_ns += weights.ScanCostForSpan(span);
  }
  return weights.w0 * ranges +
         static_cast<double>(scanned) * scale_ * scan_ns;
}

}  // namespace tsunami
