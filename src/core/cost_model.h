// The analytic query cost model (§5.3.1):
//   Time = w0 * (#cell ranges) + w1 * (#scanned points) * (#filtered dims)
// and a sample-based evaluator that predicts it for any (skeleton,
// partitions) candidate without building the grid.
#ifndef TSUNAMI_CORE_COST_MODEL_H_
#define TSUNAMI_CORE_COST_MODEL_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/linear_model.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/skeleton.h"
#include "src/storage/scan_kernel.h"

namespace tsunami {

class ExecContext;
struct QueryPlan;

/// Cost-model weights, in nanoseconds. w0 is the cost of one lookup-table
/// access plus the cache miss of jumping to a new physical range; w1 the
/// cost of scanning one dimension of one point.
///
/// The per-width terms refine w1 for encoded blocks: scanning a dimension
/// whose blocks narrowed to 8/16/32-bit codes costs proportionally less
/// bandwidth and packs more lanes per vector. 0 means uncalibrated — every
/// consumer falls back to w1, which keeps default-constructed weights
/// exactly at the pre-encoding model. CalibrateCostWeights measures all
/// four terms; the evaluator picks one per filtered dimension from an
/// estimate of that dimension's block value span under the candidate
/// layout (the sort dimension's blocks are narrow, other dimensions span
/// roughly one cell).
struct CostWeights {
  double w0 = 400.0;
  double w1 = 1.5;
  double w1_u8 = 0.0;
  double w1_u16 = 0.0;
  double w1_u32 = 0.0;

  /// The scan term for a dimension whose typical block spans `span` values
  /// (w1 when uncalibrated, narrowing disabled, or the span needs raw
  /// 64-bit blocks).
  double ScanCostForSpan(double span) const {
    if (span < 0.0 || span > 4294967295.0) return w1;
    if (span <= 255.0) return w1_u8 > 0.0 ? w1_u8 : w1;
    if (span <= 65535.0) return w1_u16 > 0.0 ? w1_u16 : w1;
    return w1_u32 > 0.0 ? w1_u32 : w1;
  }
};

/// Micro-measures w0/w1 on this machine (used by benches for Fig. 12b's
/// predicted-vs-actual comparison). Takes ~100 ms. The scan half runs the
/// same batched kernel path real queries execute, under `options` — pass
/// the ExecContext's ScanOptions (e.g. a forced SIMD tier) so calibrated
/// costs match the tier used at execution time.
CostWeights CalibrateCostWeights(const ScanOptions& options = {});

/// Calibrates with the scan options (kernel mode + SIMD tier) of the
/// context that will execute the queries.
CostWeights CalibrateCostWeights(const ExecContext& ctx);

/// Predicted execution time in nanoseconds for an already-prepared plan,
/// straight from the §5.3.1 analytic form: w0 per planned range plus the
/// per-row scan term over the rows the ranges cover — filtered dimensions
/// for inexact ranges, aggregate columns for exact ones. This is the
/// admission-control half of the model: QueryService compares it against a
/// query's deadline budget and rejects (kDeadlineInfeasible) work that
/// could not finish even on an idle machine. Plans without range tasks
/// (passthrough indexes) predict 0 — never rejected.
double PredictPlanNanos(const QueryPlan& plan, const CostWeights& weights);

/// Predicts average query time for Augmented Grid candidates over a region,
/// using a point sample and a query subsample (§5.3.1: "the features of
/// this cost model can be efficiently computed or estimated").
class GridCostEvaluator {
 public:
  /// `rows` are the region's row ids into `data`; `queries` the queries
  /// intersecting the region.
  GridCostEvaluator(const Dataset& data, const std::vector<uint32_t>& rows,
                    const Workload& queries, int max_sample_points,
                    int max_sample_queries, uint64_t seed);

  /// Predicted average per-query time in ns over the query subsample.
  /// `sort_dim` = -1 picks the default heuristic (most selective non-base
  /// grid dimension); the optimizer searches over explicit choices.
  double Cost(const Skeleton& skeleton, const std::vector<int>& partitions,
              const CostWeights& weights, int sort_dim = -1) const;

  /// Predicted time in ns for one specific query (used for Fig. 12b).
  double PredictQueryNanos(const Skeleton& skeleton,
                           const std::vector<int>& partitions,
                           const CostWeights& weights, const Query& query,
                           int sort_dim = -1) const;

  // --- Workload/data statistics used by the optimizer's heuristics. ---
  int dims() const { return dims_; }
  int64_t region_rows() const { return total_rows_; }
  int sample_points() const { return n_; }
  double avg_selectivity(int dim) const { return avg_sel_[dim]; }
  bool is_filtered(int dim) const { return filtered_[dim]; }
  /// Most- to least-selective dimension order (never-filtered last).
  const std::vector<int>& selectivity_order() const { return sel_order_; }
  /// Sample Pearson correlation between two dimensions.
  double correlation(int x, int y) const { return corr_[x][y]; }
  /// Width of the functional-mapping error band for mapping x -> y,
  /// relative to y's domain (the §5.3.2 "10% of Y's domain" heuristic).
  double FmErrorBandRatio(int x, int y) const;
  /// Fraction of empty cells in a g-by-g equi-depth grid over (x, y)
  /// (the §5.3.2 "25% of cells in the XY hyperplane empty" heuristic).
  double EmptyCellFraction(int x, int y, int g = 16) const;

 private:
  const BoundedLinearModel& FittedFm(int mapped, int target) const;
  int PartOfRank(int64_t rank, int p) const {
    int idx = static_cast<int>(rank * p / std::max(n_, 1));
    return idx < 0 ? 0 : (idx >= p ? p - 1 : idx);
  }

  int dims_ = 0;
  int n_ = 0;  // Sample size.
  int64_t total_rows_ = 0;
  double scale_ = 1.0;  // total_rows_ / n_.
  std::vector<std::vector<Value>> vals_;    // [dim][point].
  std::vector<std::vector<Value>> sorted_;  // [dim], ascending.
  // Per-dim value spans used to estimate block code widths: the typical
  // span of a kScanBlockRows-row window of the dimension's sorted order
  // (what blocks of the sort dimension see) and the full domain span.
  std::vector<double> local_span_;
  std::vector<double> full_span_;
  std::vector<std::vector<int32_t>> rank_;  // [dim][point], 0..n-1 distinct.
  std::vector<std::vector<int32_t>> order_;  // [dim], points by ascending value.
  Workload queries_;
  std::vector<double> avg_sel_;
  std::vector<bool> filtered_;
  std::vector<int> sel_order_;
  std::vector<std::vector<double>> corr_;
  mutable std::map<std::pair<int, int>, BoundedLinearModel> fm_cache_;
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_COST_MODEL_H_
