// EXPLAIN-style introspection of optimized index structures: a readable
// dump of the Grid Tree's splits and each region's Augmented Grid choices.
// Kept out of the hot-path translation units; pure string formatting.
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/grid_tree.h"
#include "src/core/tsunami.h"

namespace tsunami {

namespace {

std::string DimName(const std::vector<std::string>& names, int dim) {
  if (dim >= 0 && dim < static_cast<int>(names.size())) return names[dim];
  return "d" + std::to_string(dim);
}

void AppendFormatted(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out->append(buffer);
}

std::string DescribeSkeleton(const Skeleton& skeleton,
                             const std::vector<std::string>& names) {
  std::string out = "[";
  for (int d = 0; d < skeleton.num_dims(); ++d) {
    if (d > 0) out += ", ";
    const DimSpec& spec = skeleton.dims[d];
    switch (spec.strategy) {
      case PartitionStrategy::kIndependent:
        out += DimName(names, d);
        break;
      case PartitionStrategy::kMapped:
        out += DimName(names, d) + "->" + DimName(names, spec.other);
        break;
      case PartitionStrategy::kConditional:
        out += DimName(names, d) + "|" + DimName(names, spec.other);
        break;
    }
  }
  return out + "]";
}

}  // namespace

std::string GridTree::Describe(
    const std::vector<std::string>& dim_names) const {
  std::string out;
  if (nodes_.empty()) {
    return "GridTree: (empty — single region covering the whole space)\n";
  }
  AppendFormatted(&out, "GridTree: %d nodes, depth %d, %d regions\n",
                  num_nodes(), depth(), num_regions());
  // Depth-first dump; children of a node are printed indented below it.
  struct Frame {
    int32_t node;
    int indent;
  };
  std::vector<Frame> stack = {{0, 1}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    out.append(2 * frame.indent, ' ');
    if (node.split_dim < 0) {
      AppendFormatted(&out, "region %d\n", node.region);
      continue;
    }
    AppendFormatted(&out, "split on %s at {",
                    DimName(dim_names, node.split_dim).c_str());
    for (size_t i = 0; i < node.split_values.size(); ++i) {
      AppendFormatted(&out, i == 0 ? "%lld" : ", %lld",
                      static_cast<long long>(node.split_values[i]));
    }
    out += "}\n";
    // Push in reverse so children print in value order.
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back({*it, frame.indent + 1});
    }
  }
  return out;
}

std::string TsunamiIndex::Describe(
    const std::vector<std::string>& dim_names) const {
  std::string out;
  AppendFormatted(&out,
                  "%s: %lld rows, %d query types, %lld cells, %lld B index\n",
                  name_.c_str(), static_cast<long long>(store_.size()),
                  stats_.num_query_types,
                  static_cast<long long>(stats_.total_cells),
                  static_cast<long long>(IndexSizeBytes()));
  // Storage footprint: per-column encoded bytes vs the logical raw
  // (8 B/value) footprint, with the block codec-width mix.
  if (store_.size() > 0) {
    const int64_t raw_col_bytes =
        store_.size() * static_cast<int64_t>(sizeof(Value));
    AppendFormatted(
        &out, "storage: %lld B encoded of %lld B raw (%.2fx)\n",
        static_cast<long long>(store_.DataSizeBytes()),
        static_cast<long long>(raw_col_bytes * store_.dims()),
        static_cast<double>(raw_col_bytes * store_.dims()) /
            static_cast<double>(store_.DataSizeBytes()));
    for (int d = 0; d < store_.dims(); ++d) {
      const int64_t bytes = store_.encoded(d).SizeBytes();
      int64_t widths[4] = {0, 0, 0, 0};
      store_.encoded(d).WidthHistogram(widths);
      AppendFormatted(
          &out,
          "  column %s: %lld B (%.2fx; blocks w8:%lld w16:%lld w32:%lld "
          "raw:%lld)\n",
          DimName(dim_names, d).c_str(), static_cast<long long>(bytes),
          static_cast<double>(raw_col_bytes) / static_cast<double>(bytes),
          static_cast<long long>(widths[0]), static_cast<long long>(widths[1]),
          static_cast<long long>(widths[2]),
          static_cast<long long>(widths[3]));
    }
  }
  if (use_grid_tree_) out += tree_.Describe(dim_names);
  for (size_t r = 0; r < regions_.size(); ++r) {
    const Region& region = regions_[r];
    AppendFormatted(&out, "region %zu: rows [%lld, %lld)", r,
                    static_cast<long long>(region.begin),
                    static_cast<long long>(region.end));
    if (!region.has_grid) {
      out += " — unindexed (no queries intersect; scanned on demand)\n";
      continue;
    }
    AppendFormatted(&out, ", %lld queries at build\n",
                    static_cast<long long>(region.query_count));
    AppendFormatted(
        &out, "  skeleton %s\n",
        DescribeSkeleton(region.grid.skeleton(), dim_names).c_str());
    out += "  partitions:";
    const std::vector<int>& partitions = region.grid.partitions();
    for (int d = 0; d < static_cast<int>(partitions.size()); ++d) {
      if (region.grid.skeleton().dims[d].strategy ==
          PartitionStrategy::kMapped) {
        continue;  // Mapped dimensions are not in the grid.
      }
      AppendFormatted(&out, " %s=%d", DimName(dim_names, d).c_str(),
                      partitions[d]);
    }
    AppendFormatted(&out, "\n  sort dim %s, %lld cells, %lld outlier rows\n",
                    DimName(dim_names, region.grid.sort_dim()).c_str(),
                    static_cast<long long>(region.grid.num_cells()),
                    static_cast<long long>(region.grid.num_outliers()));
  }
  if (delta_rows_ > 0) {
    AppendFormatted(&out, "delta buffer: %lld unmerged rows\n",
                    static_cast<long long>(delta_rows_));
  }
  return out;
}

}  // namespace tsunami
