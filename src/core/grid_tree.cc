#include "src/core/grid_tree.h"

#include <algorithm>

#include "src/core/skew.h"

namespace tsunami {

struct GridTree::BuildContext {
  const Dataset& sample;
  const Workload& queries;
  int num_types;
  const GridTreeOptions& options;
  int64_t total_rows;
  int64_t total_queries;
};

GridTree GridTree::Build(const Dataset& sample, const Workload& typed_queries,
                         int num_types, const GridTreeOptions& options) {
  GridTree tree;
  BuildContext ctx{sample,  typed_queries,
                   num_types, options,
                   sample.size(), static_cast<int64_t>(typed_queries.size())};
  std::vector<int64_t> rows(sample.size());
  for (int64_t i = 0; i < sample.size(); ++i) rows[i] = i;
  std::vector<int> queries(typed_queries.size());
  for (size_t i = 0; i < typed_queries.size(); ++i) {
    queries[i] = static_cast<int>(i);
  }
  std::vector<Value> lo(sample.dims(), kValueMin);
  std::vector<Value> hi(sample.dims(), kValueMax);
  tree.BuildNode(&ctx, std::move(rows), std::move(queries), std::move(lo),
                 std::move(hi), 0);
  return tree;
}

int32_t GridTree::BuildNode(BuildContext* ctx, std::vector<int64_t> rows,
                            std::vector<int> queries,
                            std::vector<Value> box_lo,
                            std::vector<Value> box_hi, int depth) {
  const GridTreeOptions& opts = ctx->options;
  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  depth_ = std::max(depth_, depth);

  auto make_leaf = [&]() {
    nodes_[idx].region = num_regions_++;
    region_lo_.push_back(box_lo);
    region_hi_.push_back(box_hi);
    return idx;
  };

  bool too_few_points =
      static_cast<double>(rows.size()) <
      opts.min_points_frac * static_cast<double>(ctx->total_rows);
  bool too_few_queries =
      static_cast<double>(queries.size()) <
      opts.min_queries_frac * static_cast<double>(ctx->total_queries);
  if (rows.empty() || too_few_points || too_few_queries ||
      depth >= opts.max_depth || num_regions_ >= opts.max_regions) {
    return make_leaf();
  }

  Workload node_queries;
  node_queries.reserve(queries.size());
  for (int qi : queries) node_queries.push_back(ctx->queries[qi]);

  // Pick the split dimension with the largest skew reduction (§4.3.2),
  // each dimension evaluated independently via its skew tree.
  const Dataset& sample = ctx->sample;
  int dims = sample.dims();
  int best_dim = -1;
  SplitChoice best;
  for (int d = 0; d < dims; ++d) {
    // Histogram domain: the actual data range of this node in dimension d.
    Value lo = sample.at(rows[0], d), hi = lo;
    for (int64_t r : rows) {
      Value v = sample.at(r, d);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (lo == hi) continue;  // Single value: no skew possible.
    // If there are fewer unique values than bins, bin per unique value.
    std::vector<Value> unique;
    {
      std::vector<Value> vals;
      vals.reserve(rows.size());
      for (int64_t r : rows) vals.push_back(sample.at(r, d));
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      if (static_cast<int>(vals.size()) < opts.hist_bins) unique = vals;
    }
    std::vector<MassHistogram> hists = BuildTypeHistograms(
        node_queries, std::max(ctx->num_types, 1), d, lo, hi, opts.hist_bins,
        unique.empty() ? nullptr : &unique);
    SplitChoice choice = FindBestSplit(hists, opts.merge_factor);
    if (choice.reduction > best.reduction) {
      best = std::move(choice);
      best_dim = d;
    }
  }

  double min_reduction =
      opts.min_skew_reduction_frac * static_cast<double>(queries.size());
  if (best_dim < 0 || best.split_values.empty() ||
      best.reduction < min_reduction) {
    return make_leaf();
  }

  // Deduplicate split values and keep only those strictly inside the box.
  std::vector<Value>& splits = best.split_values;
  std::sort(splits.begin(), splits.end());
  splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
  std::erase_if(splits, [&](Value v) {
    return v <= box_lo[best_dim] || v > box_hi[best_dim];
  });
  if (splits.empty()) return make_leaf();

  int k = static_cast<int>(splits.size());
  std::vector<std::vector<int64_t>> child_rows(k + 1);
  for (int64_t r : rows) {
    Value v = sample.at(r, best_dim);
    int c = static_cast<int>(
        std::upper_bound(splits.begin(), splits.end(), v) - splits.begin());
    child_rows[c].push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[idx].split_dim = best_dim;
  nodes_[idx].split_values = splits;
  nodes_[idx].children.assign(k + 1, -1);
  for (int c = 0; c <= k; ++c) {
    std::vector<Value> clo = box_lo, chi = box_hi;
    if (c > 0) clo[best_dim] = splits[c - 1];
    if (c < k) chi[best_dim] = splits[c] - 1;
    std::vector<int> child_queries;
    for (int qi : queries) {
      const Predicate* p = ctx->queries[qi].FilterOn(best_dim);
      if (p == nullptr ||
          (p->lo <= chi[best_dim] && p->hi >= clo[best_dim])) {
        child_queries.push_back(qi);
      }
    }
    int32_t child =
        BuildNode(ctx, std::move(child_rows[c]), std::move(child_queries),
                  std::move(clo), std::move(chi), depth + 1);
    nodes_[idx].children[c] = child;
  }
  return idx;
}

int GridTree::RegionOf(const Dataset& data, int64_t row) const {
  if (nodes_.empty()) return 0;
  int32_t node = 0;
  while (nodes_[node].split_dim >= 0) {
    const Node& n = nodes_[node];
    Value v = data.at(row, n.split_dim);
    int c = static_cast<int>(std::upper_bound(n.split_values.begin(),
                                              n.split_values.end(), v) -
                             n.split_values.begin());
    node = n.children[c];
  }
  return nodes_[node].region;
}

void GridTree::CollectRegions(const Query& query,
                              std::vector<int>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  Collect(0, query, out);
}

void GridTree::Collect(int32_t node_idx, const Query& query,
                       std::vector<int>* out) const {
  const Node& node = nodes_[node_idx];
  if (node.split_dim < 0) {
    out->push_back(node.region);
    return;
  }
  const Predicate* p = query.FilterOn(node.split_dim);
  int c_lo = 0;
  int c_hi = static_cast<int>(node.children.size()) - 1;
  if (p != nullptr) {
    c_lo = static_cast<int>(std::upper_bound(node.split_values.begin(),
                                             node.split_values.end(), p->lo) -
                            node.split_values.begin());
    c_hi = static_cast<int>(std::upper_bound(node.split_values.begin(),
                                             node.split_values.end(), p->hi) -
                            node.split_values.begin());
  }
  for (int c = c_lo; c <= c_hi; ++c) Collect(node.children[c], query, out);
}

int64_t GridTree::SizeBytes() const {
  int64_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += sizeof(Node) +
             static_cast<int64_t>(node.split_values.size()) * sizeof(Value) +
             static_cast<int64_t>(node.children.size()) * sizeof(int32_t);
  }
  return bytes;
}


void GridTree::Serialize(BinaryWriter* writer) const {
  writer->PutVarI64(num_regions_);
  writer->PutVarI64(depth_);
  writer->PutVarU64(nodes_.size());
  for (const Node& node : nodes_) {
    writer->PutVarI64(node.split_dim);
    writer->PutValueVec(node.split_values);
    writer->PutVarU64(node.children.size());
    for (int32_t child : node.children) writer->PutVarI64(child);
    writer->PutVarI64(node.region);
  }
  writer->PutVarU64(region_lo_.size());
  for (size_t r = 0; r < region_lo_.size(); ++r) {
    writer->PutValueVec(region_lo_[r]);
    writer->PutValueVec(region_hi_[r]);
  }
}

bool GridTree::Deserialize(BinaryReader* reader) {
  num_regions_ = static_cast<int>(reader->GetVarI64());
  depth_ = static_cast<int>(reader->GetVarI64());
  uint64_t num_nodes = reader->GetVarU64();
  if (!reader->ok() || num_regions_ < 0 || num_nodes > reader->remaining()) {
    reader->MarkCorrupt();
    return false;
  }
  nodes_.assign(num_nodes, Node{});
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node& node = nodes_[i];
    node.split_dim = static_cast<int>(reader->GetVarI64());
    if (!reader->GetValueVec(&node.split_values)) return false;
    uint64_t num_children = reader->GetVarU64();
    if (!reader->ok() || num_children > reader->remaining()) {
      reader->MarkCorrupt();
      return false;
    }
    node.children.resize(num_children);
    for (uint64_t c = 0; c < num_children; ++c) {
      int64_t child = reader->GetVarI64();
      if (child < 0 || static_cast<uint64_t>(child) >= num_nodes) {
        reader->MarkCorrupt();
        return false;
      }
      node.children[c] = static_cast<int32_t>(child);
    }
    node.region = static_cast<int>(reader->GetVarI64());
    if (node.region >= num_regions_) {
      reader->MarkCorrupt();
      return false;
    }
  }
  uint64_t num_boxes = reader->GetVarU64();
  if (!reader->ok() || num_boxes != static_cast<uint64_t>(num_regions_)) {
    reader->MarkCorrupt();
    return false;
  }
  region_lo_.assign(num_boxes, {});
  region_hi_.assign(num_boxes, {});
  for (uint64_t r = 0; r < num_boxes; ++r) {
    if (!reader->GetValueVec(&region_lo_[r])) return false;
    if (!reader->GetValueVec(&region_hi_[r])) return false;
  }
  return reader->ok();
}

}  // namespace tsunami
