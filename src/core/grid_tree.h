// The Grid Tree (§4): a lightweight space-partitioning decision tree whose
// internal nodes split one dimension at multiple values, chosen greedily to
// maximally reduce query skew. Leaves are regions; Tsunami indexes each
// region with its own Augmented Grid.
#ifndef TSUNAMI_CORE_GRID_TREE_H_
#define TSUNAMI_CORE_GRID_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {

struct GridTreeOptions {
  int hist_bins = 128;  // §4.3.2: 128-bin histograms, 64-leaf skew trees.
  /// A split is accepted only if the best skew reduction exceeds this
  /// fraction of the node's query count (§4.3.2: 5% of |Q|).
  double min_skew_reduction_frac = 0.05;
  /// Nodes intersecting fewer points/queries than these fractions of the
  /// totals become leaves (§4.3.2: 1%).
  double min_points_frac = 0.01;
  double min_queries_frac = 0.01;
  /// Merge-pass regularizer factor (§4.3.2: 10%).
  double merge_factor = 1.10;
  int max_depth = 4;     // The optimized trees of Tab. 4 have depth <= 4.
  int max_regions = 40;  // Tab. 4 trees have 27..39 leaf regions.
};

/// A built Grid Tree. Queries are routed to all intersecting leaf regions;
/// points belong to exactly one region.
class GridTree {
 public:
  GridTree() = default;

  /// Builds from a row sample (thresholds scale by fractions, so a sample
  /// suffices) and a workload whose queries carry type labels (§4.3.1).
  static GridTree Build(const Dataset& sample, const Workload& typed_queries,
                        int num_types, const GridTreeOptions& options);

  int num_regions() const { return num_regions_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const { return depth_; }

  /// Region id of a point (reads `data.at(row, dim)` for split dims).
  int RegionOf(const Dataset& data, int64_t row) const;

  /// Region ids of all leaf regions intersecting the query's filters.
  void CollectRegions(const Query& query, std::vector<int>* out) const;

  /// Logical bounding box of region `r` (kValueMin/kValueMax where
  /// unbounded); used for exactness checks on unindexed regions.
  const std::vector<Value>& region_lo(int r) const { return region_lo_[r]; }
  const std::vector<Value>& region_hi(int r) const { return region_hi_[r]; }

  int64_t SizeBytes() const;

  /// Persistence (§8): nodes and region boxes round-trip exactly.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);

  /// Human-readable tree dump (EXPLAIN-style). `dim_names` labels split
  /// dimensions when provided; falls back to "d<i>".
  std::string Describe(const std::vector<std::string>& dim_names = {}) const;

 private:
  struct Node {
    int split_dim = -1;               // -1: leaf.
    std::vector<Value> split_values;  // Child i covers values < values[i].
    std::vector<int32_t> children;
    int region = -1;  // Leaf region id.
  };

  struct BuildContext;
  int32_t BuildNode(BuildContext* ctx, std::vector<int64_t> rows,
                    std::vector<int> queries, std::vector<Value> box_lo,
                    std::vector<Value> box_hi, int depth);

  void Collect(int32_t node, const Query& query, std::vector<int>* out) const;

  std::vector<Node> nodes_;
  std::vector<std::vector<Value>> region_lo_;
  std::vector<std::vector<Value>> region_hi_;
  int num_regions_ = 0;
  int depth_ = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_GRID_TREE_H_
