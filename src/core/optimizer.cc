#include "src/core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"

namespace tsunami {
namespace {

class GridOptimizer {
 public:
  GridOptimizer(const GridCostEvaluator& eval, const AgdOptions& opts)
      : eval_(eval), opts_(opts), rng_(opts.seed) {
    int d = eval_.dims();
    candidates_.resize(d);
    for (int x = 0; x < d; ++x) {
      std::vector<int> others;
      for (int y = 0; y < d; ++y) {
        if (y != x) others.push_back(y);
      }
      std::stable_sort(others.begin(), others.end(), [&](int a, int b) {
        return std::abs(eval_.correlation(x, a)) >
               std::abs(eval_.correlation(x, b));
      });
      if (static_cast<int>(others.size()) > opts_.max_candidate_others) {
        others.resize(opts_.max_candidate_others);
      }
      candidates_[x] = std::move(others);
    }
  }

  GridPlan Run(OptimizeMethod method) {
    GridPlan plan;
    bool naive = method == OptimizeMethod::kAgdNaiveInit ||
                 opts_.independent_only;
    plan.skeleton = naive ? Skeleton::AllIndependent(eval_.dims())
                          : HeuristicSkeleton();
    plan.partitions = InitPartitions(plan.skeleton);
    plan.sort_dim = ChooseSortDim(plan.skeleton, plan.partitions);
    plan.predicted_cost = Eval(plan.skeleton, plan.partitions, plan.sort_dim);
    if (method == OptimizeMethod::kBlackBox) return BlackBox(plan);

    bool search_skeletons =
        method != OptimizeMethod::kGd && !opts_.independent_only;
    for (int iter = 0; iter < opts_.max_iters; ++iter) {
      bool moved = GradientStep(&plan);
      if (search_skeletons) moved = SkeletonSearch(&plan) || moved;
      if (!moved) break;
    }
    return plan;
  }

 private:
  double Eval(const Skeleton& s, const std::vector<int>& p,
              int sort_dim) const {
    return eval_.Cost(s, p, opts_.weights, sort_dim);
  }

  // Picks the sort dimension minimizing predicted cost among valid
  // candidates (grid dims that are not conditional bases).
  int ChooseSortDim(const Skeleton& s, const std::vector<int>& p) const {
    int best = -1;
    double best_cost = 0.0;
    for (int d = 0; d < s.num_dims(); ++d) {
      if (s.dims[d].strategy == PartitionStrategy::kMapped || s.IsBase(d)) {
        continue;
      }
      double c = Eval(s, p, d);
      if (best < 0 || c < best_cost) {
        best = d;
        best_cost = c;
      }
    }
    return best;
  }

  int ClampP(int p) const {
    return std::clamp(p, 1, opts_.max_partitions_per_dim);
  }

  // Clamps per-dimension counts and enforces the total-cell cap by halving
  // the largest partition count until the product fits.
  void ClampPartitions(const Skeleton& s, std::vector<int>* p) const {
    std::vector<int> grid = s.GridDims();
    for (int d = 0; d < s.num_dims(); ++d) {
      (*p)[d] = s.dims[d].strategy == PartitionStrategy::kMapped
                    ? 1
                    : ClampP((*p)[d]);
    }
    auto cells = [&]() {
      double c = 1.0;
      for (int d : grid) c *= (*p)[d];
      return c;
    };
    while (cells() > static_cast<double>(opts_.max_cells)) {
      int largest = grid[0];
      for (int d : grid) {
        if ((*p)[d] > (*p)[largest]) largest = d;
      }
      if ((*p)[largest] <= 1) break;
      (*p)[largest] = std::max((*p)[largest] / 2, 1);
    }
  }

  // §5.3.2 step 1 heuristics: functional mapping when the fit is tight,
  // conditional CDF when independent partitioning would leave many empty
  // cells, otherwise independent.
  Skeleton HeuristicSkeleton() const {
    int d = eval_.dims();
    Skeleton s = Skeleton::AllIndependent(d);
    for (int x = 0; x < d; ++x) {
      double best_ratio = opts_.fm_error_threshold;
      int best_fm = -1;
      for (int y = 0; y < d; ++y) {
        if (y == x) continue;
        Skeleton trial = s;
        trial.dims[x] = DimSpec{PartitionStrategy::kMapped, y};
        if (!trial.Validate()) continue;
        double ratio = eval_.FmErrorBandRatio(x, y);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_fm = y;
        }
      }
      if (best_fm >= 0) {
        s.dims[x] = DimSpec{PartitionStrategy::kMapped, best_fm};
        continue;
      }
      double best_empty = opts_.ccdf_empty_threshold;
      int best_base = -1;
      for (int y = 0; y < d; ++y) {
        if (y == x) continue;
        Skeleton trial = s;
        trial.dims[x] = DimSpec{PartitionStrategy::kConditional, y};
        if (!trial.Validate()) continue;
        double empty = eval_.EmptyCellFraction(x, y);
        if (empty > best_empty) {
          best_empty = empty;
          best_base = y;
        }
      }
      if (best_base >= 0) {
        s.dims[x] = DimSpec{PartitionStrategy::kConditional, best_base};
      }
    }
    return s;
  }

  // §5.3.2 step 1: partitions proportional to how selective the workload is
  // in each grid dimension, within an overall cell budget.
  std::vector<int> InitPartitions(const Skeleton& s) const {
    int d = eval_.dims();
    std::vector<int> p(d, 1);
    std::vector<double> weight(d, 0.0);
    double weight_sum = 0.0;
    for (int dim : s.GridDims()) {
      if (eval_.is_filtered(dim)) {
        double sel = std::max(eval_.avg_selectivity(dim), 1e-6);
        weight[dim] = std::max(0.5, -std::log2(sel));
      } else if (s.IsBase(dim)) {
        weight[dim] = 1.0;  // Bases need partitions to stagger dependents.
      }
      weight_sum += weight[dim];
    }
    double budget = std::clamp(
        static_cast<double>(eval_.region_rows()) / opts_.rows_per_cell, 16.0,
        static_cast<double>(opts_.max_cells));
    double log_budget = std::log2(budget);
    for (int dim : s.GridDims()) {
      if (weight[dim] <= 0.0 || weight_sum <= 0.0) continue;
      double bits = log_budget * weight[dim] / weight_sum;
      p[dim] = ClampP(static_cast<int>(std::lround(std::exp2(bits))));
    }
    ClampPartitions(s, &p);
    return p;
  }

  // §5.3.2 step 2: numerical gradient over P in log space, then a short
  // backtracking line search along the descent direction.
  bool GradientStep(GridPlan* plan) {
    std::vector<int> grid = plan->skeleton.GridDims();
    std::vector<double> grad(eval_.dims(), 0.0);
    double gmax = 0.0;
    const double kStep = std::log(1.5);
    for (int d : grid) {
      int p = plan->partitions[d];
      int up = ClampP(static_cast<int>(std::ceil(p * 1.5)));
      int down = ClampP(std::max(1, static_cast<int>(std::floor(p / 1.5))));
      if (up == p && down == p) continue;
      std::vector<int> trial = plan->partitions;
      trial[d] = up;
      ClampPartitions(plan->skeleton, &trial);
      double c_up = Eval(plan->skeleton, trial, plan->sort_dim);
      trial = plan->partitions;
      trial[d] = down;
      ClampPartitions(plan->skeleton, &trial);
      double c_down = Eval(plan->skeleton, trial, plan->sort_dim);
      grad[d] = (c_up - c_down) / (2.0 * kStep);
      gmax = std::max(gmax, std::abs(grad[d]));
    }
    if (gmax <= 0.0) return false;

    double best_cost = plan->predicted_cost;
    std::vector<int> best_p;
    for (double t : {0.25, 0.5, 1.0, 2.0}) {
      std::vector<int> trial = plan->partitions;
      for (int d : grid) {
        double factor = std::exp(-t * grad[d] / gmax * kStep * 2.0);
        trial[d] = ClampP(static_cast<int>(
            std::lround(std::max(1.0, trial[d] * factor))));
      }
      ClampPartitions(plan->skeleton, &trial);
      if (trial == plan->partitions) continue;
      double c = Eval(plan->skeleton, trial, plan->sort_dim);
      if (c < best_cost) {
        best_cost = c;
        best_p = trial;
      }
    }
    if (best_p.empty()) return false;
    plan->partitions = std::move(best_p);
    plan->predicted_cost = best_cost;
    return true;
  }

  // §5.3.2 step 3: local search over skeletons one "hop" away — change the
  // partitioning strategy of a single dimension.
  bool SkeletonSearch(GridPlan* plan) {
    GridPlan best = *plan;
    bool improved = false;
    int d = eval_.dims();
    for (int x = 0; x < d; ++x) {
      std::vector<DimSpec> alts;
      alts.push_back(DimSpec{PartitionStrategy::kIndependent, -1});
      for (int y : candidates_[x]) {
        alts.push_back(DimSpec{PartitionStrategy::kMapped, y});
        alts.push_back(DimSpec{PartitionStrategy::kConditional, y});
      }
      for (const DimSpec& alt : alts) {
        if (alt == plan->skeleton.dims[x]) continue;
        Skeleton s = plan->skeleton;
        s.dims[x] = alt;
        if (!s.Validate()) continue;
        std::vector<int> p = plan->partitions;
        if (alt.strategy == PartitionStrategy::kMapped) {
          p[x] = 1;
        } else if (plan->skeleton.dims[x].strategy ==
                   PartitionStrategy::kMapped) {
          // Re-entering the grid: start from the geometric mean of the
          // other grid dims' counts; the next gradient step refines it.
          double log_sum = 0.0;
          int cnt = 0;
          for (int g : s.GridDims()) {
            if (g != x && p[g] > 1) {
              log_sum += std::log2(static_cast<double>(p[g]));
              ++cnt;
            }
          }
          p[x] = ClampP(static_cast<int>(
              std::lround(std::exp2(cnt > 0 ? log_sum / cnt : 3.0))));
        }
        if (alt.strategy == PartitionStrategy::kConditional) {
          p[alt.other] = std::max(p[alt.other], 8);
        }
        ClampPartitions(s, &p);
        int sort_dim = plan->sort_dim;
        if (sort_dim < 0 ||
            s.dims[sort_dim].strategy == PartitionStrategy::kMapped ||
            s.IsBase(sort_dim)) {
          sort_dim = ChooseSortDim(s, p);
        }
        double c = Eval(s, p, sort_dim);
        if (c < best.predicted_cost - 1e-9) {
          best = GridPlan{std::move(s), std::move(p), sort_dim, c};
          improved = true;
        }
      }
    }
    if (improved) {
      *plan = std::move(best);
      int re_chosen = ChooseSortDim(plan->skeleton, plan->partitions);
      if (re_chosen >= 0 && re_chosen != plan->sort_dim) {
        double c = Eval(plan->skeleton, plan->partitions, re_chosen);
        if (c < plan->predicted_cost) {
          plan->sort_dim = re_chosen;
          plan->predicted_cost = c;
        }
      }
    }
    return improved;
  }

  // §6.6 comparison: basin hopping over the joint (S, P) space.
  GridPlan BlackBox(GridPlan init) {
    GridPlan cur = init;
    GridPlan best = init;
    double t0 = 0.3 * std::max(init.predicted_cost, 1.0);
    int d = eval_.dims();
    for (int iter = 0; iter < opts_.blackbox_iters; ++iter) {
      GridPlan cand = cur;
      if (rng_.NextBool(0.5) && d >= 2) {
        int x = static_cast<int>(rng_.NextBelow(d));
        int y = static_cast<int>(rng_.NextBelow(d - 1));
        if (y >= x) ++y;
        PartitionStrategy strat = static_cast<PartitionStrategy>(
            rng_.NextBelow(3));
        Skeleton s = cand.skeleton;
        s.dims[x] = strat == PartitionStrategy::kIndependent
                        ? DimSpec{strat, -1}
                        : DimSpec{strat, y};
        if (s.Validate()) {
          cand.skeleton = s;
          if (strat == PartitionStrategy::kMapped) {
            cand.partitions[x] = 1;
          } else if (cand.partitions[x] <= 1) {
            cand.partitions[x] = 8;
          }
        }
      }
      for (int g : cand.skeleton.GridDims()) {
        double jitter = std::exp((rng_.NextDouble() - 0.5) * 1.4);
        cand.partitions[g] = ClampP(static_cast<int>(
            std::lround(std::max(1.0, cand.partitions[g] * jitter))));
      }
      ClampPartitions(cand.skeleton, &cand.partitions);
      if (cand.sort_dim >= 0 &&
          (cand.skeleton.dims[cand.sort_dim].strategy ==
               PartitionStrategy::kMapped ||
           cand.skeleton.IsBase(cand.sort_dim))) {
        cand.sort_dim = ChooseSortDim(cand.skeleton, cand.partitions);
      }
      cand.predicted_cost =
          Eval(cand.skeleton, cand.partitions, cand.sort_dim);
      double temp = t0 * std::pow(0.94, iter);
      if (cand.predicted_cost < cur.predicted_cost ||
          rng_.NextDouble() <
              std::exp(-(cand.predicted_cost - cur.predicted_cost) /
                       std::max(temp, 1e-9))) {
        cur = cand;
      }
      if (cur.predicted_cost < best.predicted_cost) best = cur;
    }
    return best;
  }

  const GridCostEvaluator& eval_;
  const AgdOptions& opts_;
  Rng rng_;
  std::vector<std::vector<int>> candidates_;
};

}  // namespace

GridPlan OptimizeGridWithEvaluator(const GridCostEvaluator& evaluator,
                                   OptimizeMethod method,
                                   const AgdOptions& options) {
  GridOptimizer optimizer(evaluator, options);
  return optimizer.Run(method);
}

GridPlan OptimizeGrid(const Dataset& data, const std::vector<uint32_t>& rows,
                      const Workload& queries, OptimizeMethod method,
                      const AgdOptions& options) {
  if (queries.empty() || rows.empty()) {
    GridPlan plan;
    plan.skeleton = Skeleton::AllIndependent(data.dims());
    plan.partitions.assign(data.dims(), 1);
    return plan;
  }
  GridCostEvaluator evaluator(data, rows, queries, options.max_sample_points,
                              options.max_sample_queries, options.seed);
  return OptimizeGridWithEvaluator(evaluator, method, options);
}


void GridPlan::Serialize(BinaryWriter* writer) const {
  skeleton.Serialize(writer);
  writer->PutIntVec(partitions);
  writer->PutVarI64(sort_dim);
  writer->PutDouble(predicted_cost);
}

bool GridPlan::Deserialize(BinaryReader* reader) {
  if (!skeleton.Deserialize(reader)) return false;
  if (!reader->GetIntVec(&partitions)) return false;
  sort_dim = static_cast<int>(reader->GetVarI64());
  predicted_cost = reader->GetDouble();
  return reader->ok();
}

}  // namespace tsunami
