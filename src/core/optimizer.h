// Augmented Grid optimization (§5.3): find the (skeleton, partitions) pair
// minimizing predicted average query time. Implements Adaptive Gradient
// Descent plus the three comparison methods of §6.6 (GD, AGD with naive
// initialization, and black-box basin hopping).
#ifndef TSUNAMI_CORE_OPTIMIZER_H_
#define TSUNAMI_CORE_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/core/cost_model.h"
#include "src/core/skeleton.h"

namespace tsunami {

enum class OptimizeMethod {
  kAgd,           // Adaptive gradient descent (heuristic init + skeleton
                  // local search), §5.3.2.
  kGd,            // Gradient descent over P only, same init as AGD.
  kAgdNaiveInit,  // AGD starting from the all-independent skeleton.
  kBlackBox,      // Basin hopping over (S, P), 50 iterations.
};

struct AgdOptions {
  int max_sample_points = 2048;
  int max_sample_queries = 96;
  int max_iters = 4;
  int64_t max_cells = int64_t{1} << 20;
  int max_partitions_per_dim = 1024;
  /// Initialization heuristics (§5.3.2): functional mapping if the error
  /// band is below this fraction of the target's domain; conditional CDF if
  /// the empty-cell fraction in the XY hyperplane exceeds the threshold.
  double fm_error_threshold = 0.10;
  double ccdf_empty_threshold = 0.25;
  /// Candidate other-dims per dimension in the skeleton local search,
  /// ranked by |correlation|.
  int max_candidate_others = 4;
  int blackbox_iters = 50;
  /// Restrict the skeleton to all-independent and never search skeletons:
  /// this is exactly Flood's optimization (also used for the "Grid Tree
  /// only" drill-down variant of §6.6).
  bool independent_only = false;
  CostWeights weights;
  uint64_t seed = 17;
  /// Initial cell budget: about one cell per this many rows.
  double rows_per_cell = 1024.0;
};

/// The optimizer's output: a fully specified Augmented Grid candidate.
struct GridPlan {
  Skeleton skeleton;
  std::vector<int> partitions;
  /// Sort dimension chosen by cost (points within cells are sorted by it;
  /// runs along it merge and are refined by binary search).
  int sort_dim = -1;
  double predicted_cost = 0.0;  // ns per query under the cost model.

  /// Persistence (§8): plans are saved with index snapshots so incremental
  /// re-optimization can keep reusing them after a reload.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);
};

/// Optimizes a grid over the region rows `rows` of `data` for `queries`.
GridPlan OptimizeGrid(const Dataset& data, const std::vector<uint32_t>& rows,
                      const Workload& queries, OptimizeMethod method,
                      const AgdOptions& options);

/// Same, reusing an existing evaluator (used by benches to compare methods
/// on identical samples).
GridPlan OptimizeGridWithEvaluator(const GridCostEvaluator& evaluator,
                                   OptimizeMethod method,
                                   const AgdOptions& options);

}  // namespace tsunami

#endif  // TSUNAMI_CORE_OPTIMIZER_H_
