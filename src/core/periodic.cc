#include "src/core/periodic.h"

#include <algorithm>
#include <cmath>

namespace tsunami {

Value PhaseOf(Value v, Value period) {
  Value m = v % period;
  return m < 0 ? m + period : m;
}

std::vector<PeriodFit> ScorePeriods(const Dataset& data, int driver,
                                    int dependent,
                                    const std::vector<Value>& candidates,
                                    const PeriodDetectorOptions& options) {
  std::vector<PeriodFit> fits;
  int64_t n = data.size();
  if (n < 2) return fits;
  int64_t sample = std::min<int64_t>(n, std::max<int64_t>(options.max_sample, 2));
  int64_t stride = std::max<int64_t>(1, n / sample);

  // Total variance of the dependent dimension over the sample.
  double mean = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < n; r += stride) {
    mean += static_cast<double>(data.at(r, dependent));
    ++count;
  }
  mean /= static_cast<double>(count);
  double ss_total = 0.0;
  for (int64_t r = 0; r < n; r += stride) {
    double d = static_cast<double>(data.at(r, dependent)) - mean;
    ss_total += d * d;
  }

  int bins = std::max(options.bins, 2);
  std::vector<double> bin_sum(bins);
  std::vector<int64_t> bin_count(bins);
  for (Value period : candidates) {
    if (period <= 0) continue;
    std::fill(bin_sum.begin(), bin_sum.end(), 0.0);
    std::fill(bin_count.begin(), bin_count.end(), 0);
    // Bin rows by phase and accumulate per-bin means of the dependent.
    for (int64_t r = 0; r < n; r += stride) {
      Value phase = PhaseOf(data.at(r, driver), period);
      int bin = static_cast<int>(
          static_cast<__int128>(phase) * bins / period);
      bin = std::clamp(bin, 0, bins - 1);
      bin_sum[bin] += static_cast<double>(data.at(r, dependent));
      ++bin_count[bin];
    }
    // eta^2 = between-bin sum of squares / total sum of squares.
    double ss_between = 0.0;
    for (int b = 0; b < bins; ++b) {
      if (bin_count[b] == 0) continue;
      double bin_mean = bin_sum[b] / static_cast<double>(bin_count[b]);
      double d = bin_mean - mean;
      ss_between += static_cast<double>(bin_count[b]) * d * d;
    }
    PeriodFit fit;
    fit.period = period;
    fit.score = ss_total > 0.0 ? ss_between / ss_total : 0.0;
    fits.push_back(fit);
  }
  std::stable_sort(fits.begin(), fits.end(),
                   [](const PeriodFit& a, const PeriodFit& b) {
                     return a.score > b.score;
                   });
  return fits;
}

PeriodFit DetectPeriod(const Dataset& data, int driver, int dependent,
                       const std::vector<Value>& candidates,
                       double min_score,
                       const PeriodDetectorOptions& options) {
  // Reject degenerate candidates: a "period" spanning most of the driver's
  // range explains variance without being periodic at all.
  Value lo = kValueMax, hi = kValueMin;
  for (int64_t r = 0; r < data.size(); ++r) {
    Value v = data.at(r, driver);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<Value> usable;
  for (Value c : candidates) {
    if (c > 0 && (data.size() == 0 || c <= (hi - lo) / 2)) usable.push_back(c);
  }
  std::vector<PeriodFit> fits =
      ScorePeriods(data, driver, dependent, usable, options);
  if (!fits.empty() && fits.front().score >= min_score) return fits.front();
  return PeriodFit{};
}

std::vector<PhaseColumnSpec> SuggestPhaseColumns(
    const Dataset& data, const std::vector<Value>& candidate_periods,
    double min_score, const PeriodDetectorOptions& options) {
  std::vector<PhaseColumnSpec> specs;
  for (int driver = 0; driver < data.dims(); ++driver) {
    PeriodFit best;
    for (int dep = 0; dep < data.dims(); ++dep) {
      if (dep == driver) continue;
      PeriodFit fit =
          DetectPeriod(data, driver, dep, candidate_periods, min_score,
                       options);
      if (fit.period > 0 && fit.score > best.score) best = fit;
    }
    if (best.period > 0) {
      specs.push_back(PhaseColumnSpec{driver, best.period});
    }
  }
  return specs;
}

Dataset AugmentWithPhases(const Dataset& data,
                          const std::vector<PhaseColumnSpec>& specs) {
  int out_dims = data.dims() + static_cast<int>(specs.size());
  Dataset out(out_dims, {});
  out.Reserve(data.size());
  std::vector<Value> row(out_dims);
  for (int64_t r = 0; r < data.size(); ++r) {
    for (int d = 0; d < data.dims(); ++d) row[d] = data.at(r, d);
    for (size_t s = 0; s < specs.size(); ++s) {
      row[data.dims() + s] =
          PhaseOf(data.at(r, specs[s].source_dim), specs[s].period);
    }
    out.AppendRow(row);
  }
  return out;
}

std::vector<Value> AugmentRow(const std::vector<Value>& row,
                              const std::vector<PhaseColumnSpec>& specs) {
  std::vector<Value> out = row;
  for (const PhaseColumnSpec& spec : specs) {
    out.push_back(PhaseOf(row[spec.source_dim], spec.period));
  }
  return out;
}

bool PhaseAlignFilter(const Predicate& filter, const PhaseColumnSpec& spec,
                      int phase_dim, Predicate* out) {
  if (filter.dim != spec.source_dim) return false;
  if (filter.lo > filter.hi) return false;
  // Unbounded ranges touch every phase (and would overflow the span
  // arithmetic below).
  if (filter.lo == kValueMin || filter.hi == kValueMax) return false;
  // The span must fit inside one period; otherwise the filter touches
  // every phase.
  if (filter.hi - filter.lo + 1 >= spec.period) return false;
  Value phase_lo = PhaseOf(filter.lo, spec.period);
  Value phase_hi = PhaseOf(filter.hi, spec.period);
  if (phase_lo > phase_hi) return false;  // Wraps across the period boundary.
  out->dim = phase_dim;
  out->lo = phase_lo;
  out->hi = phase_hi;
  return true;
}

}  // namespace tsunami
