// Temporal / periodic correlation support (§8 "Complex Correlations").
//
// The Augmented Grid's functional mappings and conditional CDFs capture
// correlations of the form Y ~ f(X). Periodic patterns — CPU load tracking
// the hour of day, sales tracking the day of week — are correlations with
// the *phase* of a dimension, Y ~ f(X mod P), which no monotone mapping
// over raw X can capture.
//
// This module handles them with derived phase columns: a detector finds
// the period P that best explains a dependent dimension's variance, and an
// augmentation step appends phase(X) = X mod P as an ordinary column. The
// existing optimizer then captures the pattern with the machinery it
// already has — typically CDF(Y | phase) — and queries over phase-aligned
// ranges ("9am to 10am, any day") become ordinary range filters over the
// derived dimension.
#ifndef TSUNAMI_CORE_PERIODIC_H_
#define TSUNAMI_CORE_PERIODIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// Phase of `v` under period `period`: v mod period, normalized into
/// [0, period) for negative values. Requires period > 0.
Value PhaseOf(Value v, Value period);

/// One candidate period's fit.
struct PeriodFit {
  Value period = 0;
  /// Correlation ratio eta^2 in [0, 1]: the fraction of the dependent
  /// dimension's variance explained by the phase bin of the driver.
  /// ~0 = no periodic relationship, ~1 = Y is a function of phase(X).
  double score = 0.0;
};

struct PeriodDetectorOptions {
  /// Phase-histogram resolution used to estimate the correlation ratio.
  int bins = 64;
  /// Subsampled rows (detection is statistical; a sample suffices).
  int64_t max_sample = 65536;
};

/// Scores how well each candidate period of dimension `driver` explains
/// dimension `dependent`, returning fits sorted by descending score.
/// Candidates must be positive; non-positive candidates are skipped.
std::vector<PeriodFit> ScorePeriods(const Dataset& data, int driver,
                                    int dependent,
                                    const std::vector<Value>& candidates,
                                    const PeriodDetectorOptions& options = {});

/// The best candidate period, or period = 0 when no candidate clears
/// `min_score`. A spurious period close to the driver's full range would
/// trivially explain everything; candidates spanning more than half the
/// driver's observed range are rejected.
PeriodFit DetectPeriod(const Dataset& data, int driver, int dependent,
                       const std::vector<Value>& candidates,
                       double min_score = 0.25,
                       const PeriodDetectorOptions& options = {});

/// One derived column: phase(source) under `period`.
struct PhaseColumnSpec {
  int source_dim = 0;
  Value period = 1;
  bool operator==(const PhaseColumnSpec&) const = default;
};

/// Scans all ordered dimension pairs (driver, dependent) and returns one
/// phase-column spec per driver whose best candidate period explains at
/// least `min_score` of some dependent dimension's variance. At most one
/// spec per driver dimension (the best-scoring one).
std::vector<PhaseColumnSpec> SuggestPhaseColumns(
    const Dataset& data, const std::vector<Value>& candidate_periods,
    double min_score = 0.25, const PeriodDetectorOptions& options = {});

/// Returns a copy of `data` with one extra column per spec, appended in
/// spec order. Row order is preserved.
Dataset AugmentWithPhases(const Dataset& data,
                          const std::vector<PhaseColumnSpec>& specs);

/// Computes the derived values for a single row (used when inserting into
/// an index built over an augmented dataset).
std::vector<Value> AugmentRow(const std::vector<Value>& row,
                              const std::vector<PhaseColumnSpec>& specs);

/// Derives the phase-range predicate implied by a range filter over
/// `source_dim` of `spec`: every point matching `filter` also has
/// phase(source) in [out->lo, out->hi]. Callers add the derived predicate
/// *alongside* the original (it narrows the index scan; it does not
/// replace the filter). Derivation succeeds when the filter spans less
/// than one period and its phase interval does not wrap; wrapped
/// intervals denote two disjoint phase ranges and are left to the
/// caller's disjunction support (bool_expr.h). Returns true on success.
bool PhaseAlignFilter(const Predicate& filter, const PhaseColumnSpec& spec,
                      int phase_dim, Predicate* out);

}  // namespace tsunami

#endif  // TSUNAMI_CORE_PERIODIC_H_
