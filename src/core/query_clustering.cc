#include "src/core/query_clustering.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "src/common/workload_stats.h"

namespace tsunami {

std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        double eps, int min_pts, int* num_clusters) {
  int n = static_cast<int>(points.size());
  std::vector<int> label(n, -1);  // -1 = unvisited/noise.
  double eps2 = eps * eps;
  auto dist2 = [&](int a, int b) {
    double s = 0.0;
    size_t k = std::min(points[a].size(), points[b].size());
    for (size_t i = 0; i < k; ++i) {
      double d = points[a][i] - points[b][i];
      s += d * d;
    }
    return s;
  };
  auto neighbors = [&](int i) {
    std::vector<int> out;
    for (int j = 0; j < n; ++j) {
      if (dist2(i, j) <= eps2) out.push_back(j);
    }
    return out;
  };

  int next_cluster = 0;
  for (int i = 0; i < n; ++i) {
    if (label[i] != -1) continue;
    std::vector<int> seeds = neighbors(i);
    if (static_cast<int>(seeds.size()) < min_pts) continue;  // Not core.
    int cluster = next_cluster++;
    label[i] = cluster;
    std::queue<int> frontier;
    for (int j : seeds) frontier.push(j);
    while (!frontier.empty()) {
      int j = frontier.front();
      frontier.pop();
      if (label[j] != -1) continue;
      label[j] = cluster;
      std::vector<int> js = neighbors(j);
      if (static_cast<int>(js.size()) >= min_pts) {
        for (int k : js) {
          if (label[k] == -1) frontier.push(k);
        }
      }
    }
  }
  // Gather remaining noise points into one catch-all cluster.
  bool has_noise = false;
  for (int i = 0; i < n; ++i) {
    if (label[i] == -1) {
      has_noise = true;
      label[i] = next_cluster;
    }
  }
  if (has_noise) ++next_cluster;
  if (num_clusters != nullptr) *num_clusters = next_cluster;
  return label;
}

std::vector<int> ClusterQueryTypes(const Dataset& sample,
                                   const Workload& workload,
                                   const ClusteringOptions& options,
                                   int* num_types) {
  int n = static_cast<int>(workload.size());
  std::vector<int> type(n, 0);
  // Group queries by the exact set of dimensions they filter.
  std::map<std::vector<int>, std::vector<int>> groups;
  for (int i = 0; i < n; ++i) {
    std::vector<int> dims;
    for (const Predicate& p : workload[i].filters) dims.push_back(p.dim);
    std::sort(dims.begin(), dims.end());
    groups[dims].push_back(i);
  }
  int next_type = 0;
  for (const auto& [dims, members] : groups) {
    // Selectivity embedding: one coordinate per filtered dimension.
    std::vector<std::vector<double>> embeddings(members.size());
    for (size_t m = 0; m < members.size(); ++m) {
      const Query& q = workload[members[m]];
      for (int dim : dims) {
        const Predicate* p = q.FilterOn(dim);
        embeddings[m].push_back(
            p != nullptr ? PredicateSelectivity(sample, *p) : 1.0);
      }
    }
    int clusters = 0;
    std::vector<int> local =
        Dbscan(embeddings, options.eps, options.min_pts, &clusters);
    for (size_t m = 0; m < members.size(); ++m) {
      type[members[m]] = next_type + local[m];
    }
    next_type += std::max(clusters, 1);
  }
  if (num_types != nullptr) *num_types = next_type;
  return type;
}

Workload LabelQueryTypes(const Dataset& sample, const Workload& workload,
                         const ClusteringOptions& options, int* num_types) {
  std::vector<int> types =
      ClusterQueryTypes(sample, workload, options, num_types);
  Workload labeled = workload;
  for (size_t i = 0; i < labeled.size(); ++i) labeled[i].type = types[i];
  return labeled;
}

}  // namespace tsunami
