// Query-type clustering (§4.3.1): queries filtering different dimension sets
// are distinct types; within each dimension set, queries are embedded by
// their per-dimension filter selectivities and clustered with DBSCAN
// (eps = 0.2, which the paper never needed to tune).
#ifndef TSUNAMI_CORE_QUERY_CLUSTERING_H_
#define TSUNAMI_CORE_QUERY_CLUSTERING_H_

#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// Generic DBSCAN over points in R^k with Euclidean distance. Returns one
/// cluster id per point in [0, num_clusters); noise points that are not
/// density-reachable from any core point are gathered into one extra
/// cluster per call (so every point gets a usable type id).
std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        double eps, int min_pts, int* num_clusters);

struct ClusteringOptions {
  double eps = 0.2;
  int min_pts = 4;
};

/// Clusters `workload` into query types and returns one type id per query
/// (dense ids in [0, *num_types)). `sample` is a row sample used to
/// estimate per-dimension filter selectivities for the embeddings.
std::vector<int> ClusterQueryTypes(const Dataset& sample,
                                   const Workload& workload,
                                   const ClusteringOptions& options,
                                   int* num_types);

/// Copies the workload with `type` set from ClusterQueryTypes.
Workload LabelQueryTypes(const Dataset& sample, const Workload& workload,
                         const ClusteringOptions& options, int* num_types);

}  // namespace tsunami

#endif  // TSUNAMI_CORE_QUERY_CLUSTERING_H_
