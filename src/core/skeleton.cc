#include "src/core/skeleton.h"

namespace tsunami {

Skeleton Skeleton::AllIndependent(int d) {
  Skeleton s;
  s.dims.assign(d, DimSpec{});
  return s;
}

std::vector<int> Skeleton::GridDims() const {
  std::vector<int> grid;
  for (int d = 0; d < num_dims(); ++d) {
    if (dims[d].strategy != PartitionStrategy::kMapped) grid.push_back(d);
  }
  return grid;
}

bool Skeleton::IsBase(int dim) const {
  for (const DimSpec& spec : dims) {
    if (spec.strategy == PartitionStrategy::kConditional &&
        spec.other == dim) {
      return true;
    }
  }
  return false;
}

int Skeleton::NumMapped() const {
  int n = 0;
  for (const DimSpec& spec : dims) {
    if (spec.strategy == PartitionStrategy::kMapped) ++n;
  }
  return n;
}

int Skeleton::NumConditional() const {
  int n = 0;
  for (const DimSpec& spec : dims) {
    if (spec.strategy == PartitionStrategy::kConditional) ++n;
  }
  return n;
}

bool Skeleton::Validate(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  int d = num_dims();
  if (d == 0) return fail("empty skeleton");
  int num_grid = 0;
  for (int x = 0; x < d; ++x) {
    const DimSpec& spec = dims[x];
    if (spec.strategy == PartitionStrategy::kIndependent) {
      ++num_grid;
      continue;
    }
    if (spec.other < 0 || spec.other >= d || spec.other == x) {
      return fail("dim " + std::to_string(x) + ": other out of range");
    }
    const DimSpec& other = dims[spec.other];
    if (spec.strategy == PartitionStrategy::kMapped) {
      if (other.strategy == PartitionStrategy::kMapped) {
        return fail("dim " + std::to_string(x) +
                    ": target of a mapping cannot itself be mapped");
      }
      if (IsBase(x)) {
        return fail("dim " + std::to_string(x) +
                    ": a base dimension cannot be mapped");
      }
    } else {  // kConditional
      ++num_grid;
      if (other.strategy != PartitionStrategy::kIndependent) {
        return fail("dim " + std::to_string(x) +
                    ": base of a conditional CDF must be independent");
      }
    }
  }
  if (num_grid == 0) return fail("no grid dimensions remain");
  return true;
}

std::string Skeleton::ToString() const {
  std::string s = "[";
  for (int x = 0; x < num_dims(); ++x) {
    if (x > 0) s += ", ";
    s += "d" + std::to_string(x);
    switch (dims[x].strategy) {
      case PartitionStrategy::kIndependent:
        break;
      case PartitionStrategy::kMapped:
        s += "->d" + std::to_string(dims[x].other);
        break;
      case PartitionStrategy::kConditional:
        s += "|d" + std::to_string(dims[x].other);
        break;
    }
  }
  return s + "]";
}


void Skeleton::Serialize(BinaryWriter* writer) const {
  writer->PutVarU64(dims.size());
  for (const DimSpec& spec : dims) {
    writer->PutU8(static_cast<uint8_t>(spec.strategy));
    writer->PutVarI64(spec.other);
  }
}

bool Skeleton::Deserialize(BinaryReader* reader) {
  uint64_t n = reader->GetVarU64();
  if (!reader->ok() || n > reader->remaining()) {
    reader->MarkCorrupt();
    return false;
  }
  dims.assign(n, DimSpec{});
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t strategy = reader->GetU8();
    if (strategy > static_cast<uint8_t>(PartitionStrategy::kConditional)) {
      reader->MarkCorrupt();
      return false;
    }
    dims[i].strategy = static_cast<PartitionStrategy>(strategy);
    dims[i].other = static_cast<int>(reader->GetVarI64());
  }
  if (!reader->ok() || !Validate()) {
    reader->MarkCorrupt();
    return false;
  }
  return true;
}

}  // namespace tsunami
