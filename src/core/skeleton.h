// Augmented Grid skeletons (§5.2): the per-dimension choice of partitioning
// strategy. A skeleton plus per-dimension partition counts uniquely defines
// an Augmented Grid.
#ifndef TSUNAMI_CORE_SKELETON_H_
#define TSUNAMI_CORE_SKELETON_H_

#include <string>
#include <vector>

#include "src/io/serializer.h"

namespace tsunami {

/// How one dimension participates in the grid.
enum class PartitionStrategy {
  kIndependent,  // Partitioned uniformly in CDF(X) — what Flood does.
  kMapped,       // Removed from the grid; filters transformed to the target
                 // dimension via a functional mapping F: X -> target.
  kConditional,  // Partitioned uniformly in CDF(X | base).
};

struct DimSpec {
  PartitionStrategy strategy = PartitionStrategy::kIndependent;
  int other = -1;  // Target dim for kMapped; base dim for kConditional.

  bool operator==(const DimSpec&) const = default;
};

/// A full skeleton: one DimSpec per dimension, e.g. [X, Y|X, Z->X].
struct Skeleton {
  std::vector<DimSpec> dims;

  Skeleton() = default;
  /// All-independent skeleton over `d` dimensions (Flood's structure; also
  /// the naive initialization of §6.6's AGD-NI).
  static Skeleton AllIndependent(int d);

  bool operator==(const Skeleton&) const = default;

  int num_dims() const { return static_cast<int>(dims.size()); }

  /// Dimensions that participate in the grid (everything not mapped), in
  /// ascending dimension order.
  std::vector<int> GridDims() const;

  /// True if `dim` is the base of at least one conditional dimension.
  bool IsBase(int dim) const;

  int NumMapped() const;
  int NumConditional() const;

  /// Checks the structural restrictions of §5.2.1/§5.2.2:
  ///  - `other` is a distinct, in-range dimension;
  ///  - a mapped dimension's target is not itself mapped;
  ///  - a mapped dimension is not the base of a conditional dimension;
  ///  - a conditional dimension's base is independent;
  ///  - at least one dimension remains in the grid.
  /// On failure returns false and, if `error` != nullptr, explains why.
  bool Validate(std::string* error = nullptr) const;

  /// Compact notation, e.g. "[d0, d1|d0, d2->d0]".
  std::string ToString() const;

  /// Persistence (§8). Deserialize re-runs Validate() on the decoded
  /// skeleton and fails on structurally invalid input.
  void Serialize(BinaryWriter* writer) const;
  bool Deserialize(BinaryReader* reader);
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_SKELETON_H_
