#include "src/core/skew.h"

#include <algorithm>
#include <cmath>

#include "src/common/emd.h"

namespace tsunami {

std::vector<MassHistogram> BuildTypeHistograms(
    const Workload& queries, int num_types, int dim, Value lo, Value hi,
    int bins, const std::vector<Value>* unique_values) {
  bool per_unique = unique_values != nullptr &&
                    static_cast<int>(unique_values->size()) < bins &&
                    !unique_values->empty();
  std::vector<MassHistogram> hists;
  hists.reserve(std::max(num_types, 1));
  for (int t = 0; t < std::max(num_types, 1); ++t) {
    if (per_unique) {
      hists.emplace_back(*unique_values);
    } else {
      hists.emplace_back(lo, hi, bins);
    }
  }
  for (const Query& q : queries) {
    int t = q.type >= 0 && q.type < num_types ? q.type : 0;
    const Predicate* p = q.FilterOn(dim);
    Value qlo = p != nullptr ? p->lo : lo;
    Value qhi = p != nullptr ? p->hi : hi;
    hists[t].AddRangeMass(qlo, qhi);
  }
  return hists;
}

double CombinedSkew(const std::vector<MassHistogram>& hists, int bin_lo,
                    int bin_hi) {
  double skew = 0.0;
  for (const MassHistogram& h : hists) {
    skew += SkewOfMassRange(h.mass(), bin_lo, bin_hi);
  }
  return skew;
}

namespace {

// One node of the skew tree over the bin range [lo, hi).
struct SkewTreeNode {
  int lo = 0;
  int hi = 0;
  double skew = 0.0;  // Combined skew over [lo, hi).
  double best = 0.0;  // Min combined skew of any covering of [lo, hi).
  int left = -1;
  int right = -1;
};

// First pass (§4.3.2): bottom-up, annotate the minimum combined skew
// achievable over each node's subtree.
int BuildSkewTree(const std::vector<MassHistogram>& hists, int lo, int hi,
                  int bins_per_leaf, std::vector<SkewTreeNode>* nodes) {
  int idx = static_cast<int>(nodes->size());
  nodes->push_back(SkewTreeNode{lo, hi, CombinedSkew(hists, lo, hi), 0.0,
                                -1, -1});
  if (hi - lo <= bins_per_leaf) {
    (*nodes)[idx].best = (*nodes)[idx].skew;
    return idx;
  }
  int mid = lo + (hi - lo) / 2;
  int left = BuildSkewTree(hists, lo, mid, bins_per_leaf, nodes);
  int right = BuildSkewTree(hists, mid, hi, bins_per_leaf, nodes);
  SkewTreeNode& node = (*nodes)[idx];
  node.left = left;
  node.right = right;
  node.best = std::min(node.skew, (*nodes)[left].best + (*nodes)[right].best);
  return idx;
}

// Second pass: top-down, a node whose own skew achieves the annotated best
// joins the covering set; otherwise recurse.
void ExtractCovering(const std::vector<SkewTreeNode>& nodes, int idx,
                     std::vector<std::pair<int, int>>* segments) {
  const SkewTreeNode& node = nodes[idx];
  if (node.left < 0 || node.skew <= node.best + 1e-12) {
    segments->emplace_back(node.lo, node.hi);
    return;
  }
  ExtractCovering(nodes, node.left, segments);
  ExtractCovering(nodes, node.right, segments);
}

}  // namespace

SplitChoice FindBestSplit(const std::vector<MassHistogram>& hists,
                          double merge_factor, int bins_per_leaf) {
  SplitChoice choice;
  if (hists.empty()) return choice;
  int nbins = hists[0].bins();
  if (nbins <= 1) return choice;
  if (hists[0].per_unique_value()) bins_per_leaf = 1;

  std::vector<SkewTreeNode> nodes;
  int root = BuildSkewTree(hists, 0, nbins, bins_per_leaf, &nodes);
  std::vector<std::pair<int, int>> segments;
  ExtractCovering(nodes, root, &segments);

  // Final ordered merge pass (§4.3.2): merge adjacent covering nodes when
  // the combined skew is within `merge_factor` of the sum of the parts.
  // This counteracts superfluous binary-tree boundaries and regularizes
  // against too many splits.
  std::vector<std::pair<int, int>> merged;
  std::vector<double> merged_skew;
  for (const auto& seg : segments) {
    if (!merged.empty()) {
      double combined = CombinedSkew(hists, merged.back().first, seg.second);
      double parts =
          merged_skew.back() + CombinedSkew(hists, seg.first, seg.second);
      if (combined <= parts * merge_factor) {
        merged.back().second = seg.second;
        merged_skew.back() = combined;
        continue;
      }
    }
    merged.push_back(seg);
    merged_skew.push_back(CombinedSkew(hists, seg.first, seg.second));
  }

  // Bound the node's fan-out: greedily merge the adjacent pair whose merge
  // increases combined skew the least until at most `max_segments` remain.
  // (The Grid Tree stays lightweight — Tab. 4 trees have ~1-2 nodes per
  // region.)
  constexpr int kMaxSegments = 8;
  while (static_cast<int>(merged.size()) > kMaxSegments) {
    size_t best_i = 0;
    double best_delta = 0.0;
    bool first = true;
    for (size_t i = 0; i + 1 < merged.size(); ++i) {
      double combined =
          CombinedSkew(hists, merged[i].first, merged[i + 1].second);
      double delta = combined - merged_skew[i] - merged_skew[i + 1];
      if (first || delta < best_delta) {
        best_delta = delta;
        best_i = i;
        first = false;
      }
    }
    merged[best_i].second = merged[best_i + 1].second;
    merged_skew[best_i] =
        CombinedSkew(hists, merged[best_i].first, merged[best_i].second);
    merged.erase(merged.begin() + best_i + 1);
    merged_skew.erase(merged_skew.begin() + best_i + 1);
  }

  if (merged.size() <= 1) return choice;  // No useful split.
  double total = CombinedSkew(hists, 0, nbins);
  double sum_parts = 0.0;
  for (double s : merged_skew) sum_parts += s;
  choice.reduction = total - sum_parts;
  for (size_t i = 1; i < merged.size(); ++i) {
    int b = merged[i].first;
    choice.boundaries.push_back(b);
    choice.split_values.push_back(hists[0].BinLo(b));
  }
  return choice;
}

}  // namespace tsunami
