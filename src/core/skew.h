// Query skew (§4.2.1) and the skew tree (§4.3.2): given per-query-type mass
// histograms over one dimension, find the split values that maximally reduce
// combined skew via a balanced binary tree + dynamic programming, followed
// by the merge regularizer.
#ifndef TSUNAMI_CORE_SKEW_H_
#define TSUNAMI_CORE_SKEW_H_

#include <vector>

#include "src/common/histogram.h"
#include "src/common/types.h"

namespace tsunami {

/// Builds one mass histogram per query type over dimension `dim`, domain
/// [lo, hi] (inclusive). Every query in `queries` contributes one unit of
/// mass over the bins its filter intersects; queries without a filter on
/// `dim` span the whole domain. If `unique_values` is non-null and smaller
/// than `bins`, the histograms use one bin per unique value (§4.3.2).
std::vector<MassHistogram> BuildTypeHistograms(
    const Workload& queries, int num_types, int dim, Value lo, Value hi,
    int bins, const std::vector<Value>* unique_values = nullptr);

/// Combined skew over the bin range [bin_lo, bin_hi): the sum over query
/// types of the EMD between each type's sub-histogram and the uniform
/// distribution carrying the same mass (the redefined Skew of §4.3.1).
double CombinedSkew(const std::vector<MassHistogram>& hists, int bin_lo,
                    int bin_hi);

/// Result of the skew-tree search over one dimension.
struct SplitChoice {
  /// Interior bin boundaries of the chosen covering set (strictly
  /// increasing, excluding 0 and nbins). Empty means "do not split".
  std::vector<int> boundaries;
  /// The corresponding split values V: child i covers values
  /// [split_values[i-1], split_values[i] - 1].
  std::vector<Value> split_values;
  /// Skew(whole range) - sum of segment skews, in query-mass units.
  double reduction = 0.0;
};

/// Runs the skew-tree dynamic program (§4.3.2): builds a balanced binary
/// tree over the histogram bins (leaves cover `bins_per_leaf` bins), solves
/// for the covering set with minimum combined skew, merges adjacent covering
/// nodes whose combined skew is within `merge_factor` of the sum of parts,
/// and returns the resulting split values and skew reduction.
SplitChoice FindBestSplit(const std::vector<MassHistogram>& hists,
                          double merge_factor = 1.10, int bins_per_leaf = 2);

}  // namespace tsunami

#endif  // TSUNAMI_CORE_SKEW_H_
