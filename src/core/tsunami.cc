#include "src/core/tsunami.h"

#include <algorithm>
#include <numeric>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/workload_stats.h"
#include "src/exec/thread_pool.h"
#include "src/storage/scan_kernel_simd.h"

namespace tsunami {

TsunamiIndex::TsunamiIndex(const Dataset& data, const Workload& workload,
                           const TsunamiOptions& options)
    : name_(options.name),
      use_grid_tree_(options.use_grid_tree),
      delta_cols_(data.dims()) {
  BuildIndex(data, workload, options, /*previous=*/nullptr);
}

TsunamiIndex::TsunamiIndex(const TsunamiIndex& previous,
                           const Workload& new_workload,
                           const TsunamiOptions& options)
    : name_(options.name),
      use_grid_tree_(options.use_grid_tree),
      delta_cols_(previous.store_.dims()) {
  Dataset data = previous.MaterializeData();
  BuildIndex(data, new_workload, options, &previous);
}

TsunamiIndex::TsunamiIndex(const TsunamiIndex& previous,
                           const Dataset& extra_rows,
                           const Workload& new_workload,
                           const TsunamiOptions& options)
    : name_(options.name),
      use_grid_tree_(options.use_grid_tree),
      delta_cols_(previous.store_.dims()) {
  Dataset data = previous.MaterializeData();
  data.Reserve(data.size() + extra_rows.size());
  std::vector<Value> row(data.dims());
  for (int64_t r = 0; r < extra_rows.size(); ++r) {
    for (int d = 0; d < data.dims(); ++d) row[d] = extra_rows.at(r, d);
    data.AppendRow(row);
  }
  BuildIndex(data, new_workload, options, &previous);
}

void TsunamiIndex::BuildIndex(const Dataset& data, const Workload& workload,
                              const TsunamiOptions& options,
                              const TsunamiIndex* previous) {
  Timer optimize_timer;
  Rng rng(options.agd.seed);
  Dataset sample = SampleDataset(data, options.sample_rows, &rng);

  // Step 0: cluster queries into types (§4.3.1).
  Workload typed;
  int num_types = 0;
  if (options.cluster_queries) {
    typed = LabelQueryTypes(sample, workload, options.clustering, &num_types);
  } else {
    typed = workload;
    for (const Query& q : typed) num_types = std::max(num_types, q.type + 1);
    if (num_types == 0) num_types = 1;
  }
  stats_.num_query_types = num_types;

  // Step 1: optimize the Grid Tree on the sample + workload (§4.3) — or,
  // for incremental re-optimization, reuse the previous tree so regions
  // stay aligned and their plans remain meaningful.
  bool reuse_tree = previous != nullptr && use_grid_tree_ &&
                    previous->use_grid_tree_ &&
                    previous->tree_.num_regions() > 0;
  if (reuse_tree) {
    tree_ = previous->tree_;
  } else if (use_grid_tree_) {
    tree_ = GridTree::Build(sample, typed, num_types, options.tree);
  }
  if (use_grid_tree_) {
    stats_.tree_nodes = tree_.num_nodes();
    stats_.tree_depth = tree_.depth();
  }
  int num_regions = use_grid_tree_ ? tree_.num_regions() : 1;
  stats_.num_regions = num_regions;

  // Assign every point to its region and every query to the regions it
  // intersects.
  std::vector<std::vector<uint32_t>> region_rows(num_regions);
  for (int64_t r = 0; r < data.size(); ++r) {
    int region = use_grid_tree_ ? tree_.RegionOf(data, r) : 0;
    region_rows[region].push_back(static_cast<uint32_t>(r));
  }
  std::vector<Workload> region_queries(num_regions);
  if (use_grid_tree_) {
    std::vector<int> hits;
    for (const Query& q : typed) {
      tree_.CollectRegions(q, &hits);
      for (int region : hits) region_queries[region].push_back(q);
    }
  } else {
    region_queries[0] = typed;
  }

  // Step 2: optimize an Augmented Grid per intersected region (§5.3). The
  // "Grid Tree only" variant restricts skeletons to all-independent, i.e.
  // an instance of Flood per region.
  AgdOptions agd = options.agd;
  if (!options.use_augmentation) agd.independent_only = true;
  OptimizeMethod method =
      options.use_augmentation ? OptimizeMethod::kAgd : OptimizeMethod::kGd;

  regions_.resize(num_regions);
  // Regions are independent: optimize and build them in parallel (§6.1:
  // "optimization and data sorting for index creation are performed in
  // parallel"). Per-region outputs land in pre-sized vectors, so results
  // are identical for any thread count.
  std::vector<char> region_reused(num_regions, 0);
  std::vector<double> region_sort_seconds(num_regions, 0.0);
  ThreadPool pool(options.build_threads > 1 ? options.build_threads : 0);
  pool.ParallelFor(0, num_regions, 1, [&](int64_t region) {
    Region& reg = regions_[region];
    if (use_grid_tree_) {
      reg.box_lo = tree_.region_lo(region);
      reg.box_hi = tree_.region_hi(region);
    } else {
      reg.box_lo.assign(data.dims(), kValueMin);
      reg.box_hi.assign(data.dims(), kValueMax);
    }
    std::vector<uint32_t>& rows = region_rows[region];
    if (region_queries[region].empty() || rows.empty()) return;
    reg.query_count = static_cast<int64_t>(region_queries[region].size());
    reg.workload_sel =
        AvgSelectivityPerDim(sample, region_queries[region], data.dims());
    // Incremental path: reuse the previous plan when this region's
    // workload barely moved (similar volume and per-dim selectivities).
    bool reused = false;
    if (reuse_tree && region < static_cast<int>(previous->regions_.size())) {
      const Region& prev = previous->regions_[region];
      if (prev.has_grid && prev.query_count > 0) {
        double ratio = static_cast<double>(reg.query_count) /
                       static_cast<double>(prev.query_count);
        double max_sel_diff = 0.0;
        for (int d = 0; d < data.dims(); ++d) {
          max_sel_diff = std::max(
              max_sel_diff,
              std::abs(reg.workload_sel[d] - prev.workload_sel[d]));
        }
        if (ratio >= 0.5 && ratio <= 2.0 && max_sel_diff <= 0.25) {
          reg.plan = prev.plan;
          reused = true;
          region_reused[region] = 1;
        }
      }
    }
    if (!reused) {
      AgdOptions region_agd = agd;
      region_agd.seed = options.agd.seed + region;  // Decorrelate samples.
      reg.plan = OptimizeGrid(data, rows, region_queries[region], method,
                              region_agd);
    }
    const GridPlan& plan = reg.plan;
    AugmentedGrid::BuildOptions build_options;
    build_options.selectivity_order =
        DimsBySelectivity(sample, region_queries[region], data.dims());
    build_options.sort_dim = plan.sort_dim;
    build_options.max_cells = agd.max_cells;
    Timer sort_timer;
    reg.grid.Build(data, &rows, plan.skeleton, plan.partitions,
                   build_options);
    region_sort_seconds[region] = sort_timer.ElapsedSeconds();
    reg.has_grid = true;
  });

  // Sequential epilogue: physical layout (regions are concatenated in
  // region order) and build statistics.
  double sort_seconds = 0.0;
  std::vector<uint32_t> perm;
  perm.reserve(data.size());
  int64_t total_fms = 0, total_ccdfs = 0;
  for (int region = 0; region < num_regions; ++region) {
    Region& reg = regions_[region];
    const std::vector<uint32_t>& rows = region_rows[region];
    if (reg.has_grid) {
      ++stats_.num_indexed_regions;
      stats_.total_cells += reg.grid.num_cells();
      total_fms += reg.plan.skeleton.NumMapped();
      total_ccdfs += reg.plan.skeleton.NumConditional();
    }
    stats_.regions_reused += region_reused[region];
    sort_seconds += region_sort_seconds[region];
    reg.begin = static_cast<int64_t>(perm.size());
    perm.insert(perm.end(), rows.begin(), rows.end());
    reg.end = static_cast<int64_t>(perm.size());
  }
  if (stats_.num_indexed_regions > 0) {
    stats_.avg_fms_per_region =
        static_cast<double>(total_fms) / stats_.num_indexed_regions;
    stats_.avg_ccdfs_per_region =
        static_cast<double>(total_ccdfs) / stats_.num_indexed_regions;
  }

  // Region point-count distribution (Tab. 4).
  {
    std::vector<double> counts;
    for (const auto& rows : region_rows) {
      counts.push_back(static_cast<double>(rows.size()));
    }
    if (!counts.empty()) {
      stats_.min_region_points = static_cast<int64_t>(Percentile(counts, 0));
      stats_.median_region_points =
          static_cast<int64_t>(Percentile(counts, 50));
      stats_.max_region_points =
          static_cast<int64_t>(Percentile(counts, 100));
    }
  }
  stats_.optimize_seconds = optimize_timer.ElapsedSeconds() - sort_seconds;

  // Step 3: materialize the clustered column store and attach the grids.
  Timer sort_timer;
  store_ = ColumnStore(data, perm);
  for (Region& reg : regions_) {
    if (reg.has_grid) reg.grid.Attach(&store_, reg.begin);
  }
  stats_.sort_seconds = sort_seconds + sort_timer.ElapsedSeconds();

  // Retain the folded delta rows' raw values keyed by physical position:
  // the incremental rebuild consumed `previous`'s delta buffer (its rows
  // are the tail of MaterializeData's output), and keeping their values
  // lets RepairQuarantinedFromDelta re-encode a freshly folded block whose
  // checksum later fails, instead of serving it degraded until the next
  // full rebuild.
  // (Both the previous index's buffered rows and any external extra rows
  // appended by the fold constructor count: everything past the previous
  // store's size is fold-origin.)
  fold_backup_ = FoldBackup{};
  if (previous != nullptr && data.size() > previous->store_.size()) {
    const uint32_t first_delta =
        static_cast<uint32_t>(previous->store_.size());
    fold_backup_.cols.assign(data.dims(), {});
    for (int64_t i = 0; i < static_cast<int64_t>(perm.size()); ++i) {
      if (perm[i] < first_delta) continue;
      fold_backup_.pos.push_back(i);
      for (int d = 0; d < data.dims(); ++d) {
        fold_backup_.cols[d].push_back(data.at(perm[i], d));
      }
    }
  }
}

int64_t TsunamiIndex::RepairQuarantinedFromDelta() {
  if (fold_backup_.pos.empty() || store_.QuarantinedBlocks() == 0) return 0;
  int64_t repaired = 0;
  const int64_t rows = store_.size();
  const int64_t num_blocks = (rows + kScanBlockRows - 1) / kScanBlockRows;
  const std::vector<int64_t>& pos = fold_backup_.pos;
  for (int d = 0; d < store_.dims(); ++d) {
    const EncodedColumn& col = store_.encoded(d);
    for (int64_t b = 0; b < num_blocks; ++b) {
      if (!col.IsQuarantined(b)) continue;
      const int64_t lo = b * kScanBlockRows;
      const int64_t hi = std::min(lo + kScanBlockRows, rows);
      const int64_t n = hi - lo;
      // Repairable iff every row of the block was a folded delta row:
      // `pos` is strictly ascending, so covering [lo, hi) takes exactly n
      // consecutive entries starting at value lo.
      const auto it = std::lower_bound(pos.begin(), pos.end(), lo);
      const int64_t idx = it - pos.begin();
      if (idx + n > static_cast<int64_t>(pos.size())) continue;
      if (pos[idx] != lo || pos[idx + n - 1] != hi - 1) continue;
      if (store_.RepairBlock(d, b, fold_backup_.cols[d].data() + idx, n)) {
        ++repaired;
      }
    }
  }
  return repaired;
}

std::unique_ptr<TsunamiIndex> TsunamiIndex::RepairedCopy(
    int64_t* repaired) const {
  // Member-wise copy is deep for everything that matters (ColumnStore and
  // the grids hold value vectors; EncodedColumn's per-block verification
  // state copies via relaxed atomic loads) — except each grid's raw store
  // pointer, which must be re-bound to the clone's store, exactly as
  // LoadFromFile does after deserializing.
  std::unique_ptr<TsunamiIndex> clone(new TsunamiIndex(*this));
  for (Region& reg : clone->regions_) {
    if (reg.has_grid) reg.grid.Attach(&clone->store_, reg.begin);
  }
  const int64_t healed = clone->RepairQuarantinedFromDelta();
  if (repaired != nullptr) *repaired = healed;
  return clone;
}

void TsunamiIndex::Insert(const std::vector<Value>& row) {
  for (size_t d = 0; d < delta_cols_.size(); ++d) {
    delta_cols_[d].push_back(row[d]);
  }
  ++delta_rows_;
}

Dataset TsunamiIndex::MaterializeData() const {
  Dataset data(store_.dims(), {});
  data.Reserve(store_.size() + delta_rows_);
  std::vector<Value> row(store_.dims());
  for (int64_t r = 0; r < store_.size(); ++r) {
    for (int d = 0; d < store_.dims(); ++d) row[d] = store_.Get(r, d);
    data.AppendRow(row);
  }
  for (int64_t r = 0; r < delta_rows_; ++r) {
    for (int d = 0; d < store_.dims(); ++d) row[d] = delta_cols_[d][r];
    data.AppendRow(row);
  }
  return data;
}

void TsunamiIndex::PlanRegion(int region, const Query& query,
                              std::vector<RangeTask>* tasks,
                              QueryResult* counters) const {
  const Region& reg = regions_[region];
  if (reg.has_grid) {
    reg.grid.PlanRanges(query, tasks, counters);
    return;
  }
  // Unindexed region (no query type intersected it at build time): scan it
  // whole; exact when the query's box contains the region's box.
  bool exact = true;
  for (const Predicate& p : query.filters) {
    if (p.lo > reg.box_lo[p.dim] || p.hi < reg.box_hi[p.dim]) {
      exact = false;
      break;
    }
  }
  ++counters->cell_ranges;
  if (reg.begin < reg.end) {
    tasks->push_back(RangeTask{reg.begin, reg.end, exact});
  }
}

void TsunamiIndex::ExecuteRegion(int region, const Query& query,
                                 QueryResult* result) const {
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  PlanRegion(region, query, &tasks, result);
  if (!tasks.empty()) store_.ScanRanges(tasks, query, result);
}

void TsunamiIndex::ExecuteDelta(const Query& query,
                                QueryResult* result) const {
  // Inserted-but-unmerged rows: columnar scan of the delta buffer through
  // the same SimdOps compare+compress passes as the clustered store —
  // kScanBlockRows-sized chunks build a selection vector, then the
  // aggregate tails gather the survivors. Sums are associative modulo 2^64
  // and min/max are associative, so the result is bit-identical to the old
  // row-at-a-time loop.
  if (delta_rows_ == 0) return;
  ++result->cell_ranges;
  result->scanned += delta_rows_;
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const std::vector<Predicate>& filters = query.filters;
  const int num_aggs = query.num_aggs();
  uint32_t sel[kScanBlockRows];
  for (int64_t begin = 0; begin < delta_rows_; begin += kScanBlockRows) {
    const int count =
        static_cast<int>(std::min(kScanBlockRows, delta_rows_ - begin));
    int n;
    if (filters.empty()) {
      for (int i = 0; i < count; ++i) sel[i] = static_cast<uint32_t>(i);
      n = count;
    } else {
      const Predicate& first = filters[0];
      n = ops.first_pass(delta_cols_[first.dim].data() + begin, count,
                         first.lo, first.hi, sel);
      for (size_t f = 1; f < filters.size() && n > 0; ++f) {
        const Predicate& p = filters[f];
        n = ops.refine_pass(delta_cols_[p.dim].data() + begin, sel, n, p.lo,
                            p.hi);
      }
    }
    if (n == 0) continue;
    result->matched += n;
    for (int a = 0; a < num_aggs; ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      int64_t* acc = result->agg_accumulator(a);
      if (spec.op == AggKind::kCount) {
        *acc += n;
        continue;
      }
      const Value* col = delta_cols_[spec.column].data() + begin;
      switch (spec.op) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          *acc += ops.sum_gather(col, sel, n);
          break;
        case AggKind::kMin: {
          Value m = ops.min_gather(col, sel, n);
          if (m < *acc) *acc = m;
          break;
        }
        case AggKind::kMax: {
          Value m = ops.max_gather(col, sel, n);
          if (m > *acc) *acc = m;
          break;
        }
      }
    }
  }
}

QueryResult TsunamiIndex::Execute(const Query& query) const {
  QueryResult result = InitResult(query);
  static thread_local std::vector<int> hits;
  static thread_local std::vector<RangeTask> tasks;
  tasks.clear();
  if (use_grid_tree_) {
    tree_.CollectRegions(query, &hits);
  } else {
    hits.assign(1, 0);
  }
  // Batch submission: plan every intersected region's ranges first, then
  // hand the whole batch to the scan kernel in one call.
  for (int region : hits) PlanRegion(region, query, &tasks, &result);
  store_.ScanRanges(tasks, query, &result);
  ExecuteDelta(query, &result);
  return result;
}

QueryPlan TsunamiIndex::Prepare(const Query& query) const {
  QueryPlan plan;
  plan.query = query;
  plan.counters = InitResult(query);
  plan.use_tasks = true;
  std::vector<int> hits;
  if (use_grid_tree_) {
    tree_.CollectRegions(query, &hits);
  } else {
    hits.assign(1, 0);
  }
  for (int region : hits) {
    PlanRegion(region, query, &plan.tasks, &plan.counters);
  }
  return plan;
}

void TsunamiIndex::FinishPlan(const QueryPlan& plan,
                              QueryResult* result) const {
  // Planned range scans cover the clustered store only; the delta buffer
  // is the plan's non-range epilogue, whatever executor ran the scans.
  ExecuteDelta(plan.query, result);
}

int64_t TsunamiIndex::IndexSizeBytes() const {
  int64_t bytes = use_grid_tree_ ? tree_.SizeBytes() : 0;
  for (const Region& reg : regions_) {
    bytes += static_cast<int64_t>(sizeof(Region));
    if (reg.has_grid) bytes += reg.grid.SizeBytes();
  }
  return bytes;
}


bool TsunamiIndex::SaveToFile(const std::string& path,
                              std::string* error) const {
  BinaryWriter writer;
  writer.PutString(name_);
  writer.PutBool(use_grid_tree_);
  // Delta buffer, columnar (mirrors the in-memory layout).
  writer.PutVarI64(static_cast<int64_t>(delta_cols_.size()));
  writer.PutVarI64(delta_rows_);
  for (const std::vector<Value>& col : delta_cols_) writer.PutValueVec(col);
  tree_.Serialize(&writer);
  store_.Serialize(&writer);

  writer.PutVarU64(regions_.size());
  for (const Region& region : regions_) {
    writer.PutBool(region.has_grid);
    if (region.has_grid) {
      region.grid.Serialize(&writer);
      region.plan.Serialize(&writer);
    }
    writer.PutDoubleVec(region.workload_sel);
    writer.PutVarI64(region.query_count);
    writer.PutVarI64(region.begin);
    writer.PutVarI64(region.end);
    writer.PutValueVec(region.box_lo);
    writer.PutValueVec(region.box_hi);
  }

  writer.PutVarI64(stats_.num_query_types);
  writer.PutVarI64(stats_.tree_nodes);
  writer.PutVarI64(stats_.tree_depth);
  writer.PutVarI64(stats_.num_regions);
  writer.PutVarI64(stats_.num_indexed_regions);
  writer.PutVarI64(stats_.min_region_points);
  writer.PutVarI64(stats_.median_region_points);
  writer.PutVarI64(stats_.max_region_points);
  writer.PutDouble(stats_.avg_fms_per_region);
  writer.PutDouble(stats_.avg_ccdfs_per_region);
  writer.PutVarI64(stats_.total_cells);
  writer.PutVarI64(stats_.regions_reused);
  writer.PutDouble(stats_.optimize_seconds);
  writer.PutDouble(stats_.sort_seconds);

  return WriteFramedFile(path, FileKind::kTsunamiIndex, writer.buffer(),
                         error);
}

std::unique_ptr<TsunamiIndex> TsunamiIndex::LoadFromFile(
    const std::string& path, std::string* error) {
  auto fail = [error](const std::string& message)
      -> std::unique_ptr<TsunamiIndex> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  std::string payload;
  if (!ReadFramedFile(path, FileKind::kTsunamiIndex, &payload, error)) {
    return nullptr;
  }
  BinaryReader reader(payload);
  std::unique_ptr<TsunamiIndex> index(new TsunamiIndex());
  index->name_ = reader.GetString();
  index->use_grid_tree_ = reader.GetBool();
  {
    const int64_t delta_dims = reader.GetVarI64();
    const int64_t delta_rows = reader.GetVarI64();
    if (!reader.ok() || delta_dims < 0 || delta_dims > 4096 ||
        delta_rows < 0) {
      return fail("corrupt snapshot: delta buffer");
    }
    index->delta_cols_.assign(delta_dims, {});
    for (int64_t d = 0; d < delta_dims; ++d) {
      if (!reader.GetValueVec(&index->delta_cols_[d]) ||
          static_cast<int64_t>(index->delta_cols_[d].size()) != delta_rows) {
        return fail("corrupt snapshot: delta buffer");
      }
    }
    index->delta_rows_ = delta_rows;
  }
  if (!index->tree_.Deserialize(&reader)) {
    return fail("corrupt snapshot: grid tree");
  }
  if (!index->store_.Deserialize(&reader)) {
    return fail("corrupt snapshot: column store");
  }

  uint64_t num_regions = reader.GetVarU64();
  if (!reader.ok() || num_regions > reader.remaining() + 1) {
    return fail("corrupt snapshot: region count");
  }
  index->regions_.clear();
  index->regions_.resize(num_regions);
  const int64_t store_rows = index->store_.size();
  for (uint64_t i = 0; i < num_regions; ++i) {
    Region& region = index->regions_[i];
    region.has_grid = reader.GetBool();
    if (region.has_grid) {
      if (!region.grid.Deserialize(&reader)) {
        return fail("corrupt snapshot: region grid");
      }
      if (!region.plan.Deserialize(&reader)) {
        return fail("corrupt snapshot: region plan");
      }
    }
    if (!reader.GetDoubleVec(&region.workload_sel)) {
      return fail("corrupt snapshot: region workload summary");
    }
    region.query_count = reader.GetVarI64();
    region.begin = reader.GetVarI64();
    region.end = reader.GetVarI64();
    if (!reader.GetValueVec(&region.box_lo) ||
        !reader.GetValueVec(&region.box_hi)) {
      return fail("corrupt snapshot: region box");
    }
    if (region.begin < 0 || region.begin > region.end ||
        region.end > store_rows ||
        (region.has_grid &&
         region.grid.num_rows() != region.end - region.begin)) {
      return fail("corrupt snapshot: region range");
    }
    if (region.has_grid) {
      region.grid.Attach(&index->store_, region.begin);
    }
  }

  Stats& stats = index->stats_;
  stats.num_query_types = static_cast<int>(reader.GetVarI64());
  stats.tree_nodes = static_cast<int>(reader.GetVarI64());
  stats.tree_depth = static_cast<int>(reader.GetVarI64());
  stats.num_regions = static_cast<int>(reader.GetVarI64());
  stats.num_indexed_regions = static_cast<int>(reader.GetVarI64());
  stats.min_region_points = reader.GetVarI64();
  stats.median_region_points = reader.GetVarI64();
  stats.max_region_points = reader.GetVarI64();
  stats.avg_fms_per_region = reader.GetDouble();
  stats.avg_ccdfs_per_region = reader.GetDouble();
  stats.total_cells = reader.GetVarI64();
  stats.regions_reused = static_cast<int>(reader.GetVarI64());
  stats.optimize_seconds = reader.GetDouble();
  stats.sort_seconds = reader.GetDouble();

  if (!reader.ok() || !reader.AtEnd()) {
    return fail("corrupt snapshot: trailing or truncated payload");
  }
  return index;
}

}  // namespace tsunami
