// Tsunami (§3): the end-to-end learned multi-dimensional index. Clusters
// the workload into query types, builds a Grid Tree to carve the space into
// low-skew regions, and indexes each region that queries touch with an
// optimized Augmented Grid. Regions no query intersects get no index.
#ifndef TSUNAMI_CORE_TSUNAMI_H_
#define TSUNAMI_CORE_TSUNAMI_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/core/augmented_grid.h"
#include "src/core/grid_tree.h"
#include "src/core/optimizer.h"
#include "src/core/query_clustering.h"
#include "src/storage/column_store.h"

namespace tsunami {

struct TsunamiOptions {
  GridTreeOptions tree;
  AgdOptions agd;
  ClusteringOptions clustering;
  /// Disable to get the "Augmented Grid only" drill-down variant (§6.6):
  /// one Augmented Grid over the whole space.
  bool use_grid_tree = true;
  /// Disable to get the "Grid Tree only" variant: an instance of Flood
  /// (all-independent skeleton, GD-optimized) in each region.
  bool use_augmentation = true;
  /// Cluster query types with DBSCAN (§4.3.1). If false, the `type` labels
  /// already on the queries are used.
  bool cluster_queries = true;
  /// Row-sample size for clustering, selectivity estimation, and the Grid
  /// Tree build (thresholds are fractions, so a sample suffices).
  int64_t sample_rows = 100000;
  /// Threads for per-region optimization and grid building (§6.1 performs
  /// these in parallel). Regions are independent, so any thread count
  /// produces an identical index; <= 1 builds inline.
  int build_threads = 1;
  /// Display name (benches rename the drill-down variants).
  std::string name = "Tsunami";
};

class TsunamiIndex : public MultiDimIndex {
 public:
  /// Index statistics after optimization (Tab. 4) plus build timings
  /// (Fig. 9b: sort time vs optimization time).
  struct Stats {
    int num_query_types = 0;
    int tree_nodes = 0;
    int tree_depth = 0;
    int num_regions = 0;
    int num_indexed_regions = 0;
    int64_t min_region_points = 0;
    int64_t median_region_points = 0;
    int64_t max_region_points = 0;
    double avg_fms_per_region = 0.0;
    double avg_ccdfs_per_region = 0.0;
    int64_t total_cells = 0;
    /// Regions whose previous plan was reused by the incremental
    /// constructor (0 for full builds).
    int regions_reused = 0;
    double optimize_seconds = 0.0;  // Clustering + tree + grid optimization.
    double sort_seconds = 0.0;      // Data reorganization.
  };

  TsunamiIndex(const Dataset& data, const Workload& workload)
      : TsunamiIndex(data, workload, TsunamiOptions()) {}
  TsunamiIndex(const Dataset& data, const Workload& workload,
               const TsunamiOptions& options);

  /// Incremental re-optimization (§8): rebuilds for `new_workload` while
  /// *reusing* the previous Grid Tree and, for regions whose workload
  /// barely changed, the previous Augmented Grid plans — only regions that
  /// saw significant shift pay the optimization cost again. Folds
  /// `previous`'s delta buffer into the rebuilt index.
  TsunamiIndex(const TsunamiIndex& previous, const Workload& new_workload,
               const TsunamiOptions& options);

  /// Incremental re-optimization that additionally folds `extra_rows` in
  /// (the ingest compactor's path: `previous` is an immutable published
  /// index whose delta buffer is empty, and the rows to merge live in
  /// external delta chunks). Same tree/plan reuse as the constructor above.
  TsunamiIndex(const TsunamiIndex& previous, const Dataset& extra_rows,
               const Workload& new_workload, const TsunamiOptions& options);

  std::string Name() const override { return name_; }
  QueryResult Execute(const Query& query) const override;

  /// Plans every intersected region's RangeTasks up front (the batch path's
  /// planning half). The returned plan scans through ExecutePlan.
  QueryPlan Prepare(const Query& query) const override;

  /// Plan epilogue: the delta buffer's contribution (§8 insertions), which
  /// every executor of a Tsunami plan — base ExecutePlan, QueryService's
  /// chunked scheduler jobs — adds after the planned range scans.
  void FinishPlan(const QueryPlan& plan, QueryResult* result) const override;

  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return store_; }

  const Stats& stats() const { return stats_; }
  const GridTree& grid_tree() const { return tree_; }

  /// EXPLAIN-style description of the optimized structure: the Grid Tree's
  /// splits plus, per region, its row range, query count, skeleton,
  /// partition counts, cells, and outlier-buffer size.
  std::string Describe(const std::vector<std::string>& dim_names = {}) const;

  // --- Insertions via a delta buffer (§8 "Data and Workload Shift") ---
  // Tsunami is read-optimized; inserts append to an unsorted delta buffer
  // that every query scans, and are periodically folded into a rebuilt
  // index (the delta-index scheme of [39] the paper proposes). The buffer
  // is columnar (one append-only vector per dimension), so delta execution
  // runs the same SimdOps compare+compress passes as the clustered store
  // instead of a row-major row-at-a-time loop.

  /// Appends a row (one value per dimension) to the delta buffer.
  void Insert(const std::vector<Value>& row);

  /// Rows currently buffered.
  int64_t delta_size() const { return delta_rows_; }

  /// The full logical table (indexed rows + delta buffer) as a row-major
  /// dataset; rebuild via `TsunamiIndex(index.MaterializeData(), ...)` to
  /// merge the buffer.
  Dataset MaterializeData() const;

  /// Re-materializes quarantined (checksum-failed) encoded blocks whose
  /// rows all came from the most recent incremental rebuild's delta fold,
  /// using the raw values retained from that fold — corruption confined to
  /// freshly folded blocks heals in place instead of degrading every query
  /// that touches them. Returns the number of blocks repaired; blocks with
  /// any pre-fold row (and everything on an index without a fold, or
  /// loaded from a snapshot — the backup is not persisted) are left
  /// quarantined for a full rebuild to clear.
  int64_t RepairQuarantinedFromDelta();

  /// Copy-on-repair: clones this index, repairs the clone's quarantined
  /// fold-origin blocks (exactly RepairQuarantinedFromDelta, but on the
  /// copy), and returns it — `this` is never mutated, so readers pinned on
  /// a snapshot holding it can never observe a half-repaired block. The
  /// ingest layer publishes the clone as a new snapshot version. Safe to
  /// call concurrently with scans of `this` (all mutable block state is
  /// atomic); `repaired` receives the number of blocks healed.
  std::unique_ptr<TsunamiIndex> RepairedCopy(int64_t* repaired = nullptr) const;

  // --- Persistence (§8 "Persistence") ---
  // A snapshot holds the clustered column store, the Grid Tree, every
  // region's Augmented Grid and plan, the delta buffer, and build stats.
  // Loading re-attaches grids to the store and serves queries immediately,
  // without re-running optimization or re-sorting data.

  /// Writes a framed, checksummed snapshot to `path`.
  bool SaveToFile(const std::string& path,
                  std::string* error = nullptr) const;

  /// Reopens a snapshot. Returns nullptr (with `error` set) on missing
  /// file, version/kind mismatch, checksum failure, or corrupt payload.
  static std::unique_ptr<TsunamiIndex> LoadFromFile(
      const std::string& path, std::string* error = nullptr);

 private:
  TsunamiIndex() = default;  // For LoadFromFile.

  struct Region {
    bool has_grid = false;
    AugmentedGrid grid;
    GridPlan plan;  // Kept for incremental re-optimization (§8).
    std::vector<double> workload_sel;  // Per-dim avg selectivity summary.
    int64_t query_count = 0;
    int64_t begin = 0;  // Physical range [begin, end) in the store.
    int64_t end = 0;
    std::vector<Value> box_lo;  // Logical box (for exactness checks when
    std::vector<Value> box_hi;  // the region has no grid).
  };

  // Shared implementation of the two constructors. `previous` != nullptr
  // enables tree + plan reuse.
  void BuildIndex(const Dataset& data, const Workload& workload,
                  const TsunamiOptions& options,
                  const TsunamiIndex* previous);

  // One region's contribution to a query (grid execution or raw scan).
  void ExecuteRegion(int region, const Query& query,
                     QueryResult* result) const;
  // Plans one region's RangeTasks (grid runs or the raw region range)
  // without scanning; counts visited ranges into counters->cell_ranges.
  void PlanRegion(int region, const Query& query,
                  std::vector<RangeTask>* tasks, QueryResult* counters) const;
  // The delta buffer's contribution (always scanned, §8 insertions):
  // chunked compare+compress through the auto-dispatched SimdOps, bit-
  // identical to the old row-at-a-time loop.
  void ExecuteDelta(const Query& query, QueryResult* result) const;

  std::string name_;
  bool use_grid_tree_ = true;
  // Columnar insert buffer, scanned by every query; one vector per dim.
  std::vector<std::vector<Value>> delta_cols_;
  int64_t delta_rows_ = 0;
  /// Raw values of the rows folded out of the delta buffer by the most
  /// recent incremental rebuild, keyed by their physical positions in the
  /// clustered store (ascending). The redundancy RepairQuarantinedFromDelta
  /// trades for: a corrupt freshly-folded block can be re-encoded from
  /// here. In-memory only — snapshots do not carry it.
  struct FoldBackup {
    std::vector<int64_t> pos;              // Ascending physical rows.
    std::vector<std::vector<Value>> cols;  // [dim][i]: value at pos[i].
  };
  FoldBackup fold_backup_;
  GridTree tree_;
  std::vector<Region> regions_;
  ColumnStore store_;
  Stats stats_;
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_TSUNAMI_H_
