#include "src/core/workload_monitor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "src/common/workload_stats.h"

namespace tsunami {
namespace {

std::vector<int> FilteredDims(const Query& q) {
  std::vector<int> dims;
  for (const Predicate& p : q.filters) dims.push_back(p.dim);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

std::vector<double> Embedding(const Dataset& sample, const Query& q,
                              const std::vector<int>& dims) {
  std::vector<double> e;
  e.reserve(dims.size());
  for (int dim : dims) {
    const Predicate* p = q.FilterOn(dim);
    e.push_back(p != nullptr ? PredicateSelectivity(sample, *p) : 1.0);
  }
  return e;
}

}  // namespace

WorkloadMonitor::WorkloadMonitor(const Dataset& sample,
                                 const Workload& typed_workload,
                                 const WorkloadMonitorOptions& options)
    : sample_(sample), options_(options) {
  // One centroid per (dimension set, type): mean embedding + frequency.
  std::map<std::pair<std::vector<int>, int>, std::vector<const Query*>>
      groups;
  for (const Query& q : typed_workload) {
    groups[{FilteredDims(q), std::max(q.type, 0)}].push_back(&q);
  }
  for (const auto& [key, members] : groups) {
    TypeCentroid centroid;
    centroid.dims = key.first;
    centroid.embedding.assign(centroid.dims.size(), 0.0);
    for (const Query* q : members) {
      std::vector<double> e = Embedding(sample_, *q, centroid.dims);
      for (size_t i = 0; i < e.size(); ++i) centroid.embedding[i] += e[i];
    }
    for (double& v : centroid.embedding) v /= members.size();
    centroid.build_fraction =
        static_cast<double>(members.size()) /
        std::max<size_t>(typed_workload.size(), 1);
    centroids_.push_back(std::move(centroid));
  }
  observed_counts_.assign(centroids_.size(), 0);
}

int WorkloadMonitor::MatchType(const Query& query) const {
  std::vector<int> dims = FilteredDims(query);
  int best = -1;
  double best_dist = options_.eps;
  for (size_t c = 0; c < centroids_.size(); ++c) {
    if (centroids_[c].dims != dims) continue;
    std::vector<double> e = Embedding(sample_, query, dims);
    double dist2 = 0.0;
    for (size_t i = 0; i < e.size(); ++i) {
      double d = e[i] - centroids_[c].embedding[i];
      dist2 += d * d;
    }
    double dist = std::sqrt(dist2);
    if (dist <= best_dist) {
      best_dist = dist;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void WorkloadMonitor::Observe(const Query& query) {
  int type = MatchType(query);
  if (type < 0) {
    ++unknown_count_;
  } else {
    ++observed_counts_[type];
  }
  ++observed_;
}

double WorkloadMonitor::unknown_fraction() const {
  if (observed_ == 0) return 0.0;
  return static_cast<double>(unknown_count_) / observed_;
}

double WorkloadMonitor::frequency_drift() const {
  if (observed_ == 0) return 0.0;
  // Total-variation distance between build-time and observed frequencies
  // over the known types plus the "unknown" bucket.
  double tv = unknown_fraction();  // Build-time unknown mass is zero.
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double observed_frac =
        static_cast<double>(observed_counts_[c]) / observed_;
    tv += std::abs(observed_frac - centroids_[c].build_fraction);
  }
  return tv / 2.0;
}

bool WorkloadMonitor::ShouldReoptimize() const {
  if (observed_ < options_.window) return false;
  return !Reason().empty();
}

std::string WorkloadMonitor::Reason() const {
  if (observed_ < options_.window) return "";
  if (unknown_fraction() > options_.new_type_threshold) {
    return "new query type";
  }
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double observed_frac =
        static_cast<double>(observed_counts_[c]) / observed_;
    if (centroids_[c].build_fraction > 0.05 &&
        observed_frac <
            centroids_[c].build_fraction * options_.disappeared_factor) {
      return "type disappeared";
    }
  }
  if (frequency_drift() > options_.frequency_drift_threshold) {
    return "frequency drift";
  }
  return "";
}

void WorkloadMonitor::Reset() {
  observed_counts_.assign(centroids_.size(), 0);
  unknown_count_ = 0;
  observed_ = 0;
}

}  // namespace tsunami
