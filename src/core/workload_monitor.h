// Workload-shift detection (§8 "Data and Workload Shift"): Tsunami adapts
// quickly once re-optimization is triggered, but the paper leaves open how
// to *detect* that the workload changed. This monitor implements the
// detectors the paper proposes: an existing query type disappearing, a new
// query type appearing, and relative type frequencies drifting.
#ifndef TSUNAMI_CORE_WORKLOAD_MONITOR_H_
#define TSUNAMI_CORE_WORKLOAD_MONITOR_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

struct WorkloadMonitorOptions {
  /// Distance threshold for "this query belongs to a known type": same as
  /// the clustering eps (§4.3.1).
  double eps = 0.2;
  /// Observations to accumulate before judging (a full window).
  int window = 256;
  /// Fraction of recent queries not matching any build-time type that
  /// signals a new query type.
  double new_type_threshold = 0.20;
  /// Total-variation distance between build-time and observed type
  /// frequencies that signals drift.
  double frequency_drift_threshold = 0.30;
  /// Fraction below which a formerly-common type counts as disappeared.
  double disappeared_factor = 0.10;
};

/// Tracks observed queries against the workload the index was optimized
/// for and reports when re-optimization is merited.
///
/// Build-time query types are summarized by centroids of the same
/// selectivity embeddings used for clustering (§4.3.1): one centroid per
/// (filtered-dimension-set, type) pair.
class WorkloadMonitor {
 public:
  /// `sample` estimates filter selectivities; `typed_workload` must carry
  /// type labels (e.g. from LabelQueryTypes or TsunamiIndex's clustering).
  WorkloadMonitor(const Dataset& sample, const Workload& typed_workload,
                  const WorkloadMonitorOptions& options =
                      WorkloadMonitorOptions());

  /// Records one executed query.
  void Observe(const Query& query);

  /// True once a full window has been observed and at least one detector
  /// fires. Call Reset() after re-optimizing.
  bool ShouldReoptimize() const;

  /// Human-readable reason for the last ShouldReoptimize() == true, empty
  /// otherwise ("new query type", "type disappeared", "frequency drift").
  std::string Reason() const;

  /// Clears the observation window (after a rebuild).
  void Reset();

  int64_t observed() const { return observed_; }
  double unknown_fraction() const;
  double frequency_drift() const;

 private:
  struct TypeCentroid {
    std::vector<int> dims;           // Sorted filtered-dimension set.
    std::vector<double> embedding;   // Mean per-dim selectivity.
    double build_fraction = 0.0;     // Frequency in the build workload.
  };

  // Index of the centroid matching `query` within eps, or -1.
  int MatchType(const Query& query) const;

  Dataset sample_;
  WorkloadMonitorOptions options_;
  std::vector<TypeCentroid> centroids_;
  std::vector<int64_t> observed_counts_;  // Per centroid.
  int64_t unknown_count_ = 0;
  int64_t observed_ = 0;
};

}  // namespace tsunami

#endif  // TSUNAMI_CORE_WORKLOAD_MONITOR_H_
