// Umbrella header: all dataset/workload generators (§6.2, §6.5).
#ifndef TSUNAMI_DATASETS_DATASETS_H_
#define TSUNAMI_DATASETS_DATASETS_H_

#include "src/datasets/perfmon.h"    // IWYU pragma: export
#include "src/datasets/stocks.h"     // IWYU pragma: export
#include "src/datasets/synthetic.h"  // IWYU pragma: export
#include "src/datasets/taxi.h"       // IWYU pragma: export
#include "src/datasets/tpch.h"       // IWYU pragma: export
#include "src/datasets/workload_builder.h"  // IWYU pragma: export

namespace tsunami {

/// The four evaluation benchmarks (Tab. 3) at the given scale.
inline std::vector<Benchmark> MakeAllBenchmarks(int64_t rows) {
  std::vector<Benchmark> benchmarks;
  benchmarks.push_back(MakeTpchBenchmark(rows));
  benchmarks.push_back(MakeTaxiBenchmark(rows));
  benchmarks.push_back(MakePerfmonBenchmark(rows));
  benchmarks.push_back(MakeStocksBenchmark(rows));
  return benchmarks;
}

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_DATASETS_H_
