#include "src/datasets/perfmon.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/datasets/workload_builder.h"

namespace tsunami {

Benchmark MakePerfmonBenchmark(int64_t rows, uint64_t seed,
                               int queries_per_type) {
  Benchmark bench;
  bench.name = "Perfmon";
  bench.dim_names = {"log_time", "machine", "cpu_user", "cpu_sys",
                     "load1",    "load5",   "mem"};
  Rng rng(seed);
  constexpr int64_t kYearSec = 365LL * 24 * 3600;
  Dataset data(7, {});
  data.Reserve(rows);
  std::vector<Value> row(7);
  for (int64_t i = 0; i < rows; ++i) {
    // CPU usage in basis points: mostly idle, occasional spikes.
    double burst = std::pow(rng.NextDouble(), 3.0);
    Value cpu_user = static_cast<Value>(burst * 10000.0);
    Value cpu_sys = std::clamp<Value>(
        static_cast<Value>(cpu_user * 0.3 + rng.NextGaussian() * 300.0), 0,
        10000);
    Value load1 = std::max<Value>(
        0, static_cast<Value>(cpu_user * 2.4 +
                              rng.NextExponential(1.0 / 800.0)));
    Value load5 = std::max<Value>(
        0, load1 + static_cast<Value>(rng.NextGaussian() * 150.0));
    row[0] = rng.UniformValue(0, kYearSec - 1);
    row[1] = static_cast<Value>(rng.NextBelow(500));
    row[2] = cpu_user;
    row[3] = cpu_sys;
    row[4] = load1;
    row[5] = load5;
    row[6] = std::clamp<Value>(
        static_cast<Value>(6000 + rng.NextGaussian() * 1500.0), 0, 10000);
    data.AppendRow(row);
  }

  ColumnQuantiles quant(data, 100000, seed + 1);
  Workload& w = bench.workload;
  for (int i = 0; i < queries_per_type; ++i) {
    // T0: a machine band with high load in the last two months.
    Query q0;
    q0.type = 0;
    q0.filters = {quant.Window(0, 1.0 / 12, 10.0 / 12, 1.0, &rng),
                  quant.Window(1, 0.5, 0.0, 1.0, &rng),
                  quant.Range(4, 0.80, 1.0)};
    w.push_back(q0);
    // T1: high user CPU in a one-month window of the last quarter.
    Query q1;
    q1.type = 1;
    q1.filters = {quant.Window(0, 1.0 / 12, 0.75, 1.0, &rng),
                  quant.Range(2, 0.85, 1.0)};
    w.push_back(q1);
    // T2: a small machine set over one month, any time (uniform).
    Query q2;
    q2.type = 2;
    q2.filters = {quant.Window(1, 0.10, 0.0, 1.0, &rng),
                  quant.Window(0, 1.0 / 12, 0.0, 1.0, &rng)};
    w.push_back(q2);
    // T3: low memory with high 5-minute load (extremes monitoring).
    Query q3;
    q3.type = 3;
    q3.filters = {quant.Range(6, 0.0, 0.20), quant.Range(5, 0.80, 1.0)};
    w.push_back(q3);
    // T4: mid-band system CPU vs 1-minute load.
    Query q4;
    q4.type = 4;
    q4.filters = {quant.Window(3, 0.25, 0.0, 1.0, &rng),
                  quant.Window(4, 0.25, 0.0, 1.0, &rng)};
    w.push_back(q4);
  }
  bench.num_query_types = 5;
  bench.data = std::move(data);
  return bench;
}

}  // namespace tsunami
