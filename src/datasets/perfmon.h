// Synthetic emulation of the Perfmon dataset (§6.2): a year of machine
// monitoring logs — log time, machine, CPU usages, load averages, memory —
// with correlated cpu_sys ~ cpu_user and load5 ~ load1, and workload skew
// over time (recent) and CPU usage (high). Five query types.
#ifndef TSUNAMI_DATASETS_PERFMON_H_
#define TSUNAMI_DATASETS_PERFMON_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Dimensions: 0 log_time (s), 1 machine_id, 2 cpu_user (bp), 3 cpu_sys
/// (bp), 4 load1 (milli), 5 load5 (milli), 6 mem (bp).
Benchmark MakePerfmonBenchmark(int64_t rows, uint64_t seed = 2,
                               int queries_per_type = 100);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_PERFMON_H_
