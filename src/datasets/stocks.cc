#include "src/datasets/stocks.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/datasets/workload_builder.h"

namespace tsunami {

Benchmark MakeStocksBenchmark(int64_t rows, uint64_t seed,
                              int queries_per_type) {
  Benchmark bench;
  bench.name = "Stocks";
  bench.dim_names = {"date", "open",   "close",    "low",
                     "high", "volume", "adj_close"};
  Rng rng(seed);
  constexpr int64_t kDays = 48LL * 365;  // 1970..2018.
  Dataset data(7, {});
  data.Reserve(rows);
  std::vector<Value> row(7);
  for (int64_t i = 0; i < rows; ++i) {
    Value date = rng.UniformValue(0, kDays - 1);
    // Prices log-normal in cents; intra-day moves are small percentages, so
    // open/close/low/high are tightly monotonically correlated.
    double open = 100.0 * std::exp(rng.NextGaussian() * 1.6 + 2.0);
    open = std::clamp(open, 50.0, 5.0e6);
    double close = open * (1.0 + rng.NextGaussian() * 0.02);
    double low = std::min(open, close) *
                 (1.0 - std::abs(rng.NextGaussian()) * 0.01);
    double high = std::max(open, close) *
                  (1.0 + std::abs(rng.NextGaussian()) * 0.01);
    double volume = std::exp(rng.NextGaussian() * 1.8 + 10.0);
    // Split adjustment drifts with date: a loose correlation with close.
    double adj = close * (0.5 + 0.5 * static_cast<double>(date) / kDays +
                          rng.NextGaussian() * 0.05);
    row[0] = date;
    row[1] = static_cast<Value>(open);
    row[2] = static_cast<Value>(std::max(close, 1.0));
    row[3] = static_cast<Value>(std::max(low, 1.0));
    row[4] = static_cast<Value>(std::max(high, 1.0));
    row[5] = static_cast<Value>(std::max(volume, 1.0));
    row[6] = static_cast<Value>(std::max(adj, 1.0));
    data.AppendRow(row);
  }

  ColumnQuantiles quant(data, 100000, seed + 1);
  Workload& w = bench.workload;
  for (int i = 0; i < queries_per_type; ++i) {
    // T0: small intra-day change at high volume: a narrow low/high band.
    double center = rng.NextDouble() * 0.8;
    Query q0;
    q0.type = 0;
    q0.filters = {quant.Range(3, center, center + 0.2),
                  quant.Range(4, center, center + 0.2),
                  quant.Range(5, 0.80, 1.0)};
    w.push_back(q0);
    // T1: close price band over a one-year span of the past decade.
    Query q1;
    q1.type = 1;
    q1.filters = {quant.Window(0, 1.0 / 48, 38.0 / 48, 1.0, &rng),
                  quant.Window(2, 0.25, 0.0, 1.0, &rng)};
    w.push_back(q1);
    // T2: open price band over recent six-month windows.
    Query q2;
    q2.type = 2;
    q2.filters = {quant.Window(0, 0.5 / 48, 46.0 / 48, 1.0, &rng),
                  quant.Window(1, 0.20, 0.0, 1.0, &rng)};
    w.push_back(q2);
    // T3: very low trading volume over a two-year window, any time.
    Query q3;
    q3.type = 3;
    q3.filters = {quant.Range(5, 0.0, 0.10),
                  quant.Window(0, 2.0 / 48, 0.0, 1.0, &rng)};
    w.push_back(q3);
    // T4: very high volume in the last five years.
    Query q4;
    q4.type = 4;
    q4.filters = {quant.Range(5, 0.95, 1.0),
                  quant.Window(0, 1.0 / 48, 43.0 / 48, 1.0, &rng)};
    w.push_back(q4);
  }
  bench.num_query_types = 5;
  bench.data = std::move(data);
  return bench;
}

}  // namespace tsunami
