// Synthetic emulation of the daily-historical-stocks dataset (§6.2): daily
// open/close/low/high prices (tightly correlated), trading volume, adjusted
// close, and date, with workload skew over time (recent) and volume
// (extremes). Five query types.
#ifndef TSUNAMI_DATASETS_STOCKS_H_
#define TSUNAMI_DATASETS_STOCKS_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Dimensions: 0 date (days), 1 open, 2 close, 3 low, 4 high (cents),
/// 5 volume, 6 adj_close (cents).
Benchmark MakeStocksBenchmark(int64_t rows, uint64_t seed = 3,
                              int queries_per_type = 100);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_STOCKS_H_
