#include "src/datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/random.h"
#include "src/datasets/workload_builder.h"

namespace tsunami {
namespace {

constexpr Value kDomain = 1'000'000'000;

std::vector<std::string> DimNames(int dims) {
  std::vector<std::string> names;
  for (int d = 0; d < dims; ++d) names.push_back("d" + std::to_string(d));
  return names;
}

}  // namespace

Benchmark MakeUniformBenchmark(int dims, int64_t rows, uint64_t seed,
                               int queries_per_type, int num_types) {
  Benchmark bench;
  bench.name = "Uniform" + std::to_string(dims) + "d";
  bench.dim_names = DimNames(dims);
  Rng rng(seed);
  Dataset data(dims, {});
  data.Reserve(rows);
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < dims; ++d) row[d] = rng.UniformValue(0, kDomain - 1);
    data.AppendRow(row);
  }
  bench.num_query_types = num_types;
  for (int t = 0; t < num_types; ++t) {
    // Type t filters dims {t % dims, (t+1) % dims} with per-type widths.
    int d0 = t % dims;
    int d1 = (t + 1) % dims;
    double w0 = 0.05 + 0.05 * t;
    double w1 = 0.2;
    for (int i = 0; i < queries_per_type; ++i) {
      Query q;
      q.type = t;
      double s0 = rng.NextDouble() * (1.0 - w0);
      q.filters.push_back(Predicate{d0, static_cast<Value>(s0 * kDomain),
                                    static_cast<Value>((s0 + w0) * kDomain)});
      if (d1 != d0) {
        double s1 = rng.NextDouble() * (1.0 - w1);
        q.filters.push_back(
            Predicate{d1, static_cast<Value>(s1 * kDomain),
                      static_cast<Value>((s1 + w1) * kDomain)});
      }
      bench.workload.push_back(q);
    }
  }
  bench.data = std::move(data);
  return bench;
}

Benchmark MakeScalingBenchmark(int dims, int64_t rows, bool correlated,
                               uint64_t seed, int queries_per_type) {
  Benchmark bench;
  bench.name = std::string(correlated ? "Corr" : "Uncorr") +
               std::to_string(dims) + "d";
  bench.dim_names = DimNames(dims);
  Rng rng(seed);
  Dataset data(dims, {});
  data.Reserve(rows);
  int half = dims / 2;
  std::vector<Value> row(dims);
  for (int64_t i = 0; i < rows; ++i) {
    for (int d = 0; d < (correlated ? half : dims); ++d) {
      row[d] = rng.UniformValue(0, kDomain - 1);
    }
    if (correlated) {
      for (int d = half; d < dims; ++d) {
        int src = d - half;
        // Alternate strong (±1%) and loose (±10%) linear correlation.
        double err = (d % 2 == 0) ? 0.01 : 0.10;
        double noise = (rng.NextDouble() * 2.0 - 1.0) * err * kDomain;
        row[d] = std::clamp<Value>(
            row[src] + static_cast<Value>(noise), 0, kDomain - 1);
      }
    }
    data.AppendRow(row);
  }

  // Four query types. Earlier dimensions get exponentially higher
  // selectivity (smaller widths); query centers are skewed towards the top
  // of the domain in the first four dimensions.
  bench.num_query_types = 4;
  for (int t = 0; t < 4; ++t) {
    // Each type filters three dimensions spread across the space.
    std::vector<int> fdims = {t % dims, (t + 2) % dims,
                              (half + t) % dims};
    std::sort(fdims.begin(), fdims.end());
    fdims.erase(std::unique(fdims.begin(), fdims.end()), fdims.end());
    for (int i = 0; i < queries_per_type; ++i) {
      Query q;
      q.type = t;
      for (int d : fdims) {
        double width = std::min(0.04 * std::pow(2.2, d), 0.9);
        double start;
        if (d < 4) {
          // Skewed placement: most queries land near the top of the domain.
          double u = std::pow(rng.NextDouble(), 3.0);
          start = (1.0 - width) * (1.0 - u);
        } else {
          start = rng.NextDouble() * (1.0 - width);
        }
        q.filters.push_back(
            Predicate{d, static_cast<Value>(start * kDomain),
                      static_cast<Value>((start + width) * kDomain)});
      }
      bench.workload.push_back(q);
    }
  }
  bench.data = std::move(data);
  return bench;
}

Workload MakeSelectivityWorkload(const Dataset& data,
                                 double target_selectivity, uint64_t seed,
                                 int num_queries) {
  Rng rng(seed);
  ColumnQuantiles quant(data, 100000, seed + 1);
  // Filter four dimensions with equal per-dimension quantile width so that
  // the product approximates the target (exact on independent dimensions).
  const int kFilterDims = std::min(4, data.dims());
  double width = std::pow(target_selectivity, 1.0 / kFilterDims);
  Workload w;
  for (int i = 0; i < num_queries; ++i) {
    Query q;
    q.type = 0;
    for (int d = 0; d < kFilterDims; ++d) {
      double start = rng.NextDouble() * (1.0 - width);
      q.filters.push_back(quant.Range(d, start, start + width));
    }
    w.push_back(q);
  }
  return w;
}

}  // namespace tsunami
