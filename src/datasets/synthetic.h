// Synthetic d-dimensional datasets and workloads for the scalability
// studies (§6.5): uncorrelated (i.i.d. uniform) and correlated (half the
// dimensions linearly correlated to the other half, strongly ±1% or loosely
// ±10%), with four query types that filter earlier dimensions exponentially
// more selectively and skew query placement over the first four dimensions.
#ifndef TSUNAMI_DATASETS_SYNTHETIC_H_
#define TSUNAMI_DATASETS_SYNTHETIC_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Plain i.i.d.-uniform dataset with a simple multi-type workload; handy
/// for tests.
Benchmark MakeUniformBenchmark(int dims, int64_t rows, uint64_t seed = 7,
                               int queries_per_type = 50, int num_types = 4);

/// The Fig. 10 datasets. `correlated=false`: every dimension i.i.d. uniform.
/// `correlated=true`: dimensions [0, d/2) uniform; dimension d/2 + j is
/// linearly correlated to dimension j, alternating strong (±1%) and loose
/// (±10%) error.
Benchmark MakeScalingBenchmark(int dims, int64_t rows, bool correlated,
                               uint64_t seed = 8, int queries_per_type = 100);

/// Fig. 11b: queries over the 8-d correlated dataset with filter ranges
/// scaled equally in each dimension to hit `target_selectivity` (a
/// fraction, e.g. 0.001 = 0.1%).
Workload MakeSelectivityWorkload(const Dataset& data,
                                 double target_selectivity,
                                 uint64_t seed = 9, int num_queries = 100);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_SYNTHETIC_H_
