#include "src/datasets/taxi.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/datasets/workload_builder.h"

namespace tsunami {
namespace {

constexpr int64_t kTwoYearsSec = 2LL * 365 * 24 * 3600;

}  // namespace

Benchmark MakeTaxiBenchmark(int64_t rows, uint64_t seed,
                            int queries_per_type) {
  Benchmark bench;
  bench.name = "Taxi";
  bench.dim_names = {"pickup_time", "dropoff_time", "passengers",
                     "distance",    "fare",         "tip",
                     "total",       "pickup_zone",  "dropoff_zone"};
  Rng rng(seed);
  Dataset data(9, {});
  data.Reserve(rows);
  std::vector<Value> row(9);
  for (int64_t i = 0; i < rows; ++i) {
    Value pickup = rng.UniformValue(0, kTwoYearsSec - 1);
    Value duration = 60 + static_cast<Value>(
                              std::min(rng.NextExponential(1.0 / 900), 7200.0));
    // Passenger count: mostly single riders, a long thin tail.
    double u = rng.NextDouble();
    Value passengers = u < 0.70   ? 1
                       : u < 0.85 ? 2
                       : u < 0.90 ? 3
                       : u < 0.94 ? 4
                       : u < 0.97 ? 5
                                  : 6;
    Value distance = static_cast<Value>(
        std::min(rng.NextExponential(1.0 / 3000.0), 50000.0));
    Value fare = std::max<Value>(
        250, 250 + distance / 4 +
                 static_cast<Value>(rng.NextGaussian() * 200.0));
    double tip_rate = rng.NextBool(0.3) ? 0.0 : 0.10 + 0.15 * rng.NextDouble();
    Value tip = static_cast<Value>(fare * tip_rate);
    row[0] = pickup;
    row[1] = pickup + duration;
    row[2] = passengers;
    row[3] = distance;
    row[4] = fare;
    row[5] = tip;
    row[6] = fare + tip;
    row[7] = rng.NextZipf(263, 0.6);
    row[8] = rng.NextZipf(263, 0.6);
    data.AppendRow(row);
  }

  ColumnQuantiles quant(data, 100000, seed + 1);
  Workload& w = bench.workload;
  for (int i = 0; i < queries_per_type; ++i) {
    // T0: single-passenger trips between two zone bands, recent months.
    Query q0;
    q0.type = 0;
    q0.filters = {Predicate{2, 1, 1},
                  quant.Window(7, 0.15, 0.0, 1.0, &rng),
                  quant.Window(8, 0.15, 0.0, 1.0, &rng),
                  quant.Window(0, 0.125, 0.75, 1.0, &rng)};
    w.push_back(q0);
    // T1: short-distance trips in a one-month window of the past year.
    Query q1;
    q1.type = 1;
    q1.filters = {quant.Window(0, 1.0 / 24, 0.5, 1.0, &rng),
                  quant.Range(3, 0.0, 0.20 + 0.15 * rng.NextDouble())};
    w.push_back(q1);
    // T2: very high passenger counts over a recent half-year window.
    Query q2;
    q2.type = 2;
    q2.filters = {Predicate{2, 5, 6},
                  quant.Window(0, 0.25, 0.5, 1.0, &rng)};
    w.push_back(q2);
    // T3: fare x distance band, uniform over all time (no time filter).
    Query q3;
    q3.type = 3;
    q3.filters = {quant.Window(4, 0.15, 0.0, 1.0, &rng),
                  quant.Window(3, 0.15, 0.0, 1.0, &rng)};
    w.push_back(q3);
    // T4: high tips in the last quarter.
    Query q4;
    q4.type = 4;
    q4.filters = {quant.Range(5, 0.85, 1.0),
                  quant.Window(0, 1.0 / 24, 0.875, 1.0, &rng)};
    w.push_back(q4);
    // T5: drop-off zone band over a drop-off-time month, any time.
    Query q5;
    q5.type = 5;
    q5.filters = {quant.Window(1, 1.0 / 24, 0.0, 1.0, &rng),
                  quant.Window(8, 0.30, 0.0, 1.0, &rng)};
    w.push_back(q5);
  }
  bench.num_query_types = 6;
  bench.data = std::move(data);
  return bench;
}

}  // namespace tsunami
