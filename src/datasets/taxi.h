// Synthetic emulation of the NYC yellow-taxi dataset and workload (§6.2):
// pick-up/drop-off times, passenger count, trip distance, itemized fares,
// and zones, with the documented correlations (drop-off ~ pick-up time,
// fare ~ distance, total ~ fare) and workload skew (recent time, extreme
// passenger counts, short distances). Six query types, 100 queries each.
#ifndef TSUNAMI_DATASETS_TAXI_H_
#define TSUNAMI_DATASETS_TAXI_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Dimensions: 0 pickup_time (s), 1 dropoff_time (s), 2 passenger_count,
/// 3 trip_distance (m), 4 fare (cents), 5 tip (cents), 6 total (cents),
/// 7 pickup_zone, 8 dropoff_zone.
Benchmark MakeTaxiBenchmark(int64_t rows, uint64_t seed = 1,
                            int queries_per_type = 100);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_TAXI_H_
