#include "src/datasets/tpch.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/datasets/workload_builder.h"

namespace tsunami {
namespace {

constexpr int64_t kDays = 7LL * 365;  // 1992..1998 shipping window.

}  // namespace

Benchmark MakeTpchBenchmark(int64_t rows, uint64_t seed,
                            int queries_per_type) {
  Benchmark bench;
  bench.name = "TPC-H";
  bench.dim_names = {"quantity",  "ext_price",   "discount",
                     "tax",       "ship_mode",   "ship_date",
                     "commit_date", "receipt_date"};
  Rng rng(seed);
  Dataset data(8, {});
  data.Reserve(rows);
  std::vector<Value> row(8);
  for (int64_t i = 0; i < rows; ++i) {
    Value quantity = rng.UniformValue(1, 50);
    // Extended price = quantity * part price; part prices span ~[900, 1100]
    // dollars, giving a loose monotonic correlation with quantity.
    Value unit_price = rng.UniformValue(90000, 110000);
    Value ship = rng.UniformValue(0, kDays - 1);
    row[0] = quantity;
    row[1] = quantity * unit_price;
    row[2] = rng.UniformValue(0, 10);
    row[3] = rng.UniformValue(0, 8);
    row[4] = static_cast<Value>(rng.NextBelow(7));
    row[5] = ship;
    row[6] = ship + rng.UniformValue(-30, 60);
    row[7] = ship + rng.UniformValue(1, 30);
    data.AppendRow(row);
  }

  ColumnQuantiles quant(data, 100000, seed + 1);
  Workload& w = bench.workload;
  for (int i = 0; i < queries_per_type; ++i) {
    // T0 (Q6-style): shipped in one year, discount band, small quantity.
    Query q0;
    q0.type = 0;
    q0.filters = {quant.Window(5, 1.0 / 7, 0.0, 1.0, &rng),
                  Predicate{2, 2, 4}, Predicate{0, 1, 24}};
    w.push_back(q0);
    // T1 (Q12-style): received recently by one ship mode.
    Query q1;
    q1.type = 1;
    q1.filters = {quant.Window(7, 0.25 / 7, 6.0 / 7, 1.0, &rng),
                  Predicate{4, static_cast<Value>(rng.NextBelow(7)),
                            static_cast<Value>(0)}};
    q1.filters[1].hi = q1.filters[1].lo;  // Equality on ship mode.
    w.push_back(q1);
    // T2: high-priced orders with a significant discount, recent two years.
    Query q2;
    q2.type = 2;
    q2.filters = {quant.Range(1, 0.90, 1.0), Predicate{2, 8, 10},
                  quant.Window(5, 2.0 / 7, 5.0 / 7, 1.0, &rng)};
    w.push_back(q2);
    // T3: committed in a half-year window with low tax.
    Query q3;
    q3.type = 3;
    q3.filters = {quant.Window(6, 0.5 / 7, 0.0, 1.0, &rng),
                  Predicate{3, 0, 2}};
    w.push_back(q3);
    // T4 ("shipments by air with below ten items"), recent year.
    Query q4;
    q4.type = 4;
    q4.filters = {Predicate{0, 1, 9},
                  Predicate{4, 0, 1},
                  quant.Window(5, 1.0 / 7, 6.0 / 7, 1.0, &rng)};
    w.push_back(q4);
  }
  bench.num_query_types = 5;
  bench.data = std::move(data);
  return bench;
}

Workload MakeTpchShiftedWorkload(const Dataset& data, uint64_t seed,
                                 int queries_per_type) {
  Rng rng(seed);
  ColumnQuantiles quant(data, 100000, seed + 1);
  Workload w;
  for (int i = 0; i < queries_per_type; ++i) {
    // T0': high tax over an old shipping year.
    Query q0;
    q0.type = 0;
    q0.filters = {Predicate{3, 7, 8},
                  quant.Window(5, 1.0 / 7, 0.0, 3.0 / 7, &rng)};
    w.push_back(q0);
    // T1': bulk orders (quantity >= 45) committed in a quarter window.
    Query q1;
    q1.type = 1;
    q1.filters = {Predicate{0, 45, 50},
                  quant.Window(6, 0.25 / 7, 0.0, 1.0, &rng)};
    w.push_back(q1);
    // T2': cheapest orders with no discount.
    Query q2;
    q2.type = 2;
    q2.filters = {quant.Range(1, 0.0, 0.05), Predicate{2, 0, 1}};
    w.push_back(q2);
    // T3': received in one month with a steep discount.
    Query q3;
    q3.type = 3;
    q3.filters = {quant.Window(7, 1.0 / 84, 0.0, 1.0, &rng),
                  Predicate{2, 9, 10}};
    w.push_back(q3);
    // T4': one ship mode, mid quantities, mid prices.
    Query q4;
    Value mode = static_cast<Value>(rng.NextBelow(7));
    q4.type = 4;
    q4.filters = {Predicate{4, mode, mode}, Predicate{0, 20, 30},
                  quant.Window(1, 0.20, 0.0, 1.0, &rng)};
    w.push_back(q4);
  }
  return w;
}

}  // namespace tsunami
