// Synthetic emulation of the TPC-H lineitem fact table and a workload of
// TPC-H-style filters (§6.2): quantity, extended price (~ quantity), tax,
// discount, ship mode, and the three tightly correlated dates. Five query
// types, plus a second five-type workload for the Fig. 9a workload shift.
#ifndef TSUNAMI_DATASETS_TPCH_H_
#define TSUNAMI_DATASETS_TPCH_H_

#include <cstdint>

#include "src/common/types.h"

namespace tsunami {

/// Dimensions: 0 quantity, 1 extended_price (cents), 2 discount (%),
/// 3 tax (%), 4 ship_mode (7 values), 5 ship_date, 6 commit_date,
/// 7 receipt_date (days).
Benchmark MakeTpchBenchmark(int64_t rows, uint64_t seed = 4,
                            int queries_per_type = 100);

/// Five *new* query types over the same data (the midnight workload shift
/// of Fig. 9a).
Workload MakeTpchShiftedWorkload(const Dataset& data, uint64_t seed = 5,
                                 int queries_per_type = 100);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_TPCH_H_
