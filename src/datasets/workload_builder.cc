#include "src/datasets/workload_builder.h"

#include <algorithm>
#include <cstdlib>

namespace tsunami {

ColumnQuantiles::ColumnQuantiles(const Dataset& data, int64_t max_sample,
                                 uint64_t seed) {
  Rng rng(seed);
  int64_t n = data.size();
  int64_t take = std::min(n, max_sample);
  sorted_.resize(data.dims());
  for (int d = 0; d < data.dims(); ++d) {
    sorted_[d].resize(take);
    for (int64_t i = 0; i < take; ++i) {
      int64_t row = n <= max_sample ? i : static_cast<int64_t>(rng.NextBelow(n));
      sorted_[d][i] = data.at(row, d);
    }
    std::sort(sorted_[d].begin(), sorted_[d].end());
  }
}

Value ColumnQuantiles::Q(int dim, double q) const {
  const std::vector<Value>& col = sorted_[dim];
  if (col.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t idx = static_cast<int64_t>(q * (col.size() - 1) + 0.5);
  return col[idx];
}

Predicate ColumnQuantiles::Range(int dim, double q_lo, double q_hi) const {
  return Predicate{dim, Q(dim, q_lo), Q(dim, q_hi)};
}

Predicate ColumnQuantiles::Window(int dim, double width, double lo_q,
                                  double hi_q, Rng* rng) const {
  double span = std::max(hi_q - lo_q - width, 0.0);
  double start = lo_q + rng->NextDouble() * span;
  return Range(dim, start, start + width);
}

int64_t RowsFromEnv(int64_t fallback) {
  const char* env = std::getenv("TSUNAMI_SCALE_ROWS");
  if (env == nullptr) return fallback;
  int64_t rows = std::atoll(env);
  return rows > 0 ? rows : fallback;
}

}  // namespace tsunami
