// Helpers for synthesizing workloads: quantile-based predicate construction
// so generated queries hit the selectivity ranges the paper reports (§6.2).
#ifndef TSUNAMI_DATASETS_WORKLOAD_BUILDER_H_
#define TSUNAMI_DATASETS_WORKLOAD_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace tsunami {

/// Per-dimension sorted value samples for quantile lookups.
class ColumnQuantiles {
 public:
  explicit ColumnQuantiles(const Dataset& data, int64_t max_sample = 100000,
                           uint64_t seed = 99);

  /// Value at quantile q in [0, 1] of dimension `dim`.
  Value Q(int dim, double q) const;

  /// Inclusive range predicate covering quantiles [q_lo, q_hi] of `dim`.
  Predicate Range(int dim, double q_lo, double q_hi) const;

  /// Range of quantile-width `width` whose start is uniform in
  /// [lo_q, hi_q - width] (a "window" predicate).
  Predicate Window(int dim, double width, double lo_q, double hi_q,
                   Rng* rng) const;

 private:
  std::vector<std::vector<Value>> sorted_;
};

/// Number of rows for generated datasets: the TSUNAMI_SCALE_ROWS environment
/// variable if set, else `fallback`.
int64_t RowsFromEnv(int64_t fallback);

}  // namespace tsunami

#endif  // TSUNAMI_DATASETS_WORKLOAD_BUILDER_H_
