#include "src/durability/durable_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "src/common/fault_injection.h"
#include "src/common/resource_governor.h"

namespace tsunami {
namespace durability {

namespace {

/// Atomic, durable TsunamiIndex write: tmp + fsync + rename + dir fsync.
/// The rename is an `fs.enospc` site (kEnospcCheckpointRename): renaming
/// into a full directory can need a block for the directory entry.
bool SaveIndexDurable(const TsunamiIndex& index, const std::string& dir,
                      const std::string& file, bool fsync,
                      std::string* error) {
  const std::string path = dir + "/" + file;
  const std::string tmp = path + ".tmp";
  if (!index.SaveToFile(tmp, error)) return false;
  if (fsync && !FsyncPath(tmp, error)) {
    std::remove(tmp.c_str());
    return false;
  }
  bool renamed = !TSUNAMI_FAULT_FIRES("fs.enospc", kEnospcCheckpointRename);
  if (renamed) renamed = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!renamed) {
    if (error != nullptr) *error = "cannot rename '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (fsync) return FsyncDir(dir, error);
  return true;
}

WalWriterOptions MakeWalOptions(const DurabilityOptions& options) {
  WalWriterOptions w;
  w.fsync = options.fsync;
  w.background = options.wal_background;
  w.max_commit_delay_micros = options.wal_commit_delay_micros;
  return w;
}

int64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

}  // namespace

const char* ToString(InsertResult r) {
  switch (r) {
    case InsertResult::kOk:
      return "ok";
    case InsertResult::kResourceExhausted:
      return "resource-exhausted";
    case InsertResult::kNotDurable:
      return "not-durable";
    case InsertResult::kRejected:
      return "rejected";
  }
  return "?";
}

bool WriteManifest(const std::string& path, const Manifest& manifest,
                   std::string* error) {
  if (TSUNAMI_FAULT_FIRES("fs.enospc", kEnospcManifestWrite)) {
    if (error != nullptr) *error = "injected: fs.enospc at manifest write";
    return false;
  }
  BinaryWriter w;
  w.PutVarU64(manifest.seq);
  w.PutVarU64(manifest.checkpoint_version);
  w.PutString(manifest.snapshot_file);
  w.PutVarI64(manifest.rows_folded);
  w.PutVarU64(manifest.first_segment);
  w.PutVarU64(manifest.active_segment);
  return WriteFramedFileDurable(path, FileKind::kDurabilityManifest,
                                w.buffer(), error);
}

bool ReadManifest(const std::string& path, Manifest* manifest,
                  std::string* error, FileError* code) {
  std::string payload;
  uint32_t version = kTsunamiFormatVersion;
  if (!ReadFramedFile(path, FileKind::kDurabilityManifest, &payload, error,
                      code, &version)) {
    return false;
  }
  BinaryReader r(payload);
  r.set_version(version);
  Manifest m;
  m.seq = r.GetVarU64();
  m.checkpoint_version = r.GetVarU64();
  m.snapshot_file = r.GetString();
  m.rows_folded = r.GetVarI64();
  m.first_segment = r.GetVarU64();
  m.active_segment = r.GetVarU64();
  if (!r.ok() || !r.AtEnd() || m.snapshot_file.empty() ||
      m.rows_folded < 0 || m.first_segment > m.active_segment) {
    if (error != nullptr) *error = "'" + path + "' holds a malformed manifest";
    if (code != nullptr) *code = FileError::kChecksumMismatch;
    return false;
  }
  *manifest = m;
  return true;
}

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

std::string CheckpointPath(const std::string& dir, uint64_t version) {
  return dir + "/checkpoint-" + std::to_string(version) + ".tsnm";
}

DurableIngestStore::DurableIngestStore(const DurabilityOptions& options)
    : options_(options) {}

DurableIngestStore::~DurableIngestStore() {
  // Quiesce maintenance first: the fold hook uses the WAL.
  if (store_ != nullptr) store_->StopBackground();
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableIngestStore::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

std::string DurableIngestStore::ReservePath() const {
  return options_.dir + "/RESERVE";
}

void DurableIngestStore::CreateReserve() {
  if (options_.reserve_bytes <= 0) return;
  const std::string path = ReservePath();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  // Actually write the bytes (not ftruncate): a sparse file reserves
  // nothing, and the whole point is blocks the filesystem cannot hand to
  // anyone else.
  const std::string block(4096, '\0');
  int64_t left = options_.reserve_bytes;
  bool ok = true;
  while (left > 0) {
    const size_t want = static_cast<size_t>(
        std::min<int64_t>(left, static_cast<int64_t>(block.size())));
    const ssize_t r = ::write(fd, block.data(), want);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    left -= static_cast<int64_t>(r);
  }
  if (ok) ::fdatasync(fd);
  ::close(fd);
  // A partial reserve on an already-tight disk is worse than none: it eats
  // the very space a checkpoint needs.
  if (!ok) std::remove(path.c_str());
}

bool DurableIngestStore::DropReserve() {
  if (std::remove(ReservePath().c_str()) != 0) return false;
  std::lock_guard<std::mutex> s(stats_mu_);
  ++stats_.reserve_drops;
  return true;
}

std::unique_ptr<DurableIngestStore> DurableIngestStore::Open(
    const Dataset& base_data, const Workload& workload,
    const DurabilityOptions& options, std::string* error) {
  std::string err;
  if (options.dir.empty()) {
    if (error != nullptr) *error = "durability dir must be set";
    return nullptr;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create '" + options.dir + "': " + ec.message();
    }
    return nullptr;
  }
  std::unique_ptr<DurableIngestStore> s(new DurableIngestStore(options));
  if (std::filesystem::exists(s->ManifestPath())) {
    Manifest manifest;
    // A corrupt manifest fails Open — never silently rebuild over a
    // directory that claims to hold data.
    if (!ReadManifest(s->ManifestPath(), &manifest, &err) ||
        !s->Recover(workload, manifest, &err)) {
      if (error != nullptr) *error = err;
      return nullptr;
    }
  } else if (!s->Bootstrap(base_data, workload, &err)) {
    if (error != nullptr) *error = err;
    return nullptr;
  }
  return s;
}

bool DurableIngestStore::Bootstrap(const Dataset& base_data,
                                   const Workload& workload,
                                   std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  ingest::IngestOptions quiet = options_.ingest;
  quiet.background_compaction = false;
  store_ = std::make_unique<ingest::IngestStore>(base_data, workload, quiet);

  const uint64_t version = store_->version();
  const std::string file = "checkpoint-" + std::to_string(version) + ".tsnm";
  if (!SaveIndexDurable(store_->CurrentSnapshot()->index(), options_.dir,
                        file, options_.fsync, error)) {
    return false;
  }

  wal_ = std::make_shared<WalWriter>(WalSegmentPath(options_.dir, 1),
                                     MakeWalOptions(options_));
  if (!wal_->ok()) {
    if (error != nullptr) {
      *error = "cannot open WAL segment '" + WalSegmentPath(options_.dir, 1) +
               "'";
    }
    return false;
  }
  active_segment_ = 1;
  next_segment_seq_ = 2;

  Manifest m;
  m.seq = 1;
  m.checkpoint_version = version;
  m.snapshot_file = file;
  m.rows_folded = 0;
  m.first_segment = 1;
  m.active_segment = 1;
  if (!WriteManifest(ManifestPath(), m, error)) return false;
  manifest_ = m;
  CreateReserve();

  recovery_.recovered = false;
  recovery_.checkpoint_version = version;
  recovery_.checkpoint_rows = base_data.size();
  recovery_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  AttachHook();
  if (options_.ingest.background_compaction) store_->StartBackground();
  return true;
}

bool DurableIngestStore::Recover(const Workload& workload,
                                 const Manifest& manifest,
                                 std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string err;
  std::unique_ptr<TsunamiIndex> loaded = TsunamiIndex::LoadFromFile(
      options_.dir + "/" + manifest.snapshot_file, &err);
  if (loaded == nullptr) {
    if (error != nullptr) {
      *error = "recovery: cannot load checkpoint: " + err;
    }
    return false;
  }
  std::shared_ptr<const TsunamiIndex> index(std::move(loaded));
  recovery_.recovered = true;
  recovery_.checkpoint_version = manifest.checkpoint_version;
  recovery_.checkpoint_rows = index->store().size();
  recovery_.replay_cursor = manifest.rows_folded;

  ingest::IngestOptions quiet = options_.ingest;
  quiet.background_compaction = false;
  store_ = std::make_unique<ingest::IngestStore>(
      index, workload, quiet, manifest.checkpoint_version);
  next_ordinal_ = manifest.rows_folded;
  rows_folded_total_ = manifest.rows_folded;
  manifest_ = manifest;

  // Replay every live segment in order. A torn/corrupt tail ends that
  // segment's records — the next segment (created by a previous recovery's
  // rotation) continues at exactly the surviving cursor, so replay goes on;
  // the gap check below is what guards against actual mid-log loss.
  // Size-based rotation rolls segments without rewriting the manifest, so
  // the live log may extend past manifest.active_segment: keep scanning
  // while consecutively-numbered segment files exist.
  bool aborted = false;
  uint64_t last_seq = manifest.active_segment;
  for (uint64_t seq = manifest.first_segment; !aborted; ++seq) {
    const std::string seg_path = WalSegmentPath(options_.dir, seq);
    if (seq > manifest.active_segment) {
      std::error_code ec;
      if (!std::filesystem::exists(seg_path, ec)) break;
    }
    last_seq = seq;
    WalSegmentContents seg = ReadWalSegment(seg_path);
    if (seg.tail_status != FileError::kIoError) ++recovery_.segments_read;
    for (WalRecord& record : seg.records) {
      const int64_t n = static_cast<int64_t>(record.rows.size());
      if (record.first_ordinal > next_ordinal_) {
        // Rows missing between the cursor and this record: applying past
        // the hole would corrupt ingestion order. Stop replay entirely.
        recovery_.wal_tail_status = FileError::kChecksumMismatch;
        recovery_.wal_tail_message =
            "ordinal gap: segment " + std::to_string(seq) + " starts at " +
            std::to_string(record.first_ordinal) + ", cursor at " +
            std::to_string(next_ordinal_);
        aborted = true;
        break;
      }
      const int64_t skip =
          std::min<int64_t>(n, next_ordinal_ - record.first_ordinal);
      recovery_.skipped_rows += skip;
      if (skip < n) {
        std::vector<std::vector<Value>> apply(
            record.rows.begin() + static_cast<ptrdiff_t>(skip),
            record.rows.end());
        store_->InsertBatch(apply);
        next_ordinal_ += n - skip;
        recovery_.replayed_rows += n - skip;
      }
      ++recovery_.replayed_records;
    }
    if (!aborted && seg.tail_status != FileError::kNone) {
      recovery_.wal_tail_status = seg.tail_status;
      recovery_.wal_tail_message = seg.message;
    }
    if (!aborted) {
      closed_segment_end_[seq] = next_ordinal_;
      const int64_t seg_bytes = FileSizeOrZero(seg_path);
      closed_segment_bytes_[seq] = seg_bytes;
      ChargeWalBytes(seg_bytes);
    }
  }

  // Never append to a possibly-torn tail: garbage mid-file would hide every
  // later record from the next recovery. Always begin a fresh segment —
  // past any orphan file a gap-aborted replay left behind, so a new
  // segment never truncates evidence.
  uint64_t new_seg = last_seq + 1;
  {
    std::error_code ec;
    while (std::filesystem::exists(WalSegmentPath(options_.dir, new_seg),
                                   ec)) {
      ++new_seg;
    }
  }
  wal_ = std::make_shared<WalWriter>(WalSegmentPath(options_.dir, new_seg),
                                     MakeWalOptions(options_));
  if (!wal_->ok()) {
    if (error != nullptr) {
      *error = "recovery: cannot open WAL segment '" +
               WalSegmentPath(options_.dir, new_seg) + "'";
    }
    return false;
  }
  active_segment_ = new_seg;
  next_segment_seq_ = new_seg + 1;

  Manifest m = manifest;
  m.seq = manifest.seq + 1;
  m.active_segment = new_seg;
  m.first_segment = new_seg;
  for (const auto& [seg_seq, end] : closed_segment_end_) {
    if (end > m.rows_folded) {
      m.first_segment = std::min(m.first_segment, seg_seq);
    }
  }
  if (!WriteManifest(ManifestPath(), m, error)) return false;
  manifest_ = m;
  for (auto it = closed_segment_end_.begin();
       it != closed_segment_end_.end();) {
    if (it->second <= m.rows_folded) {
      std::remove(WalSegmentPath(options_.dir, it->first).c_str());
      const auto bit = closed_segment_bytes_.find(it->first);
      if (bit != closed_segment_bytes_.end()) {
        ReleaseWalBytes(bit->second);
        closed_segment_bytes_.erase(bit);
      }
      ++stats_.segments_deleted;
      it = closed_segment_end_.erase(it);
    } else {
      ++it;
    }
  }
  CreateReserve();

  recovery_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  AttachHook();
  if (options_.ingest.background_compaction) store_->StartBackground();
  return true;
}

void DurableIngestStore::AttachHook() {
  store_->SetFoldHook(
      [this](const std::shared_ptr<const TsunamiIndex>& index,
             uint64_t version, int64_t rows_folded) {
        OnFold(index, version, rows_folded);
      });
}

bool DurableIngestStore::Insert(const std::vector<Value>& row) {
  return InsertBatch({row});
}

bool DurableIngestStore::InsertBatch(
    const std::vector<std::vector<Value>>& rows) {
  return TryInsertBatch(rows) == InsertResult::kOk;
}

InsertResult DurableIngestStore::TryInsert(const std::vector<Value>& row) {
  return TryInsertBatch({row});
}

bool DurableIngestStore::enospc_latched() const {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return enospc_latched_;
}

InsertResult DurableIngestStore::LatchFailureLocked(WalFailure reason) {
  if (reason == WalFailure::kNoSpace) {
    if (!enospc_latched_) {
      enospc_latched_ = true;
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.enospc_latches;
    }
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.resource_rejections;
    return InsertResult::kResourceExhausted;
  }
  write_disabled_ = true;
  std::lock_guard<std::mutex> s(stats_mu_);
  ++stats_.rejected_batches;
  return InsertResult::kRejected;
}

InsertResult DurableIngestStore::TryInsertBatch(
    const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return InsertResult::kOk;
  // Disk-full latch: try to drain-and-re-arm (throttled) before rejecting,
  // so ingest resumes by itself once space frees.
  if (enospc_latched() && !AttemptRearm()) {
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.resource_rejections;
    return InsertResult::kResourceExhausted;
  }
  // The expensive part of framing (per-value varints) does not depend on
  // the ordinal, so concurrent writers encode in parallel here; the
  // sequencer lock below only covers the frame prefix, a memcpy, and the
  // in-memory apply.
  const std::string payload = EncodeRowBatchPayload(rows);
  ResourceGovernor* const gov = options_.ingest.governor;
  uint64_t lsn = 0;
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    if (enospc_latched_) {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.resource_rejections;
      return InsertResult::kResourceExhausted;
    }
    if (write_disabled_) {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.rejected_batches;
      return InsertResult::kRejected;
    }
    if (wal_->failed()) return LatchFailureLocked(wal_->failure());
    // WAL disk budget: reject *before* assigning an ordinal so the refusal
    // is retryable (nothing logged, nothing applied). The estimate ignores
    // the short frame prefix; exact bytes are charged after framing.
    if (gov != nullptr &&
        gov->WouldExceed(ResourcePool::kWalDisk,
                         static_cast<int64_t>(payload.size()))) {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.resource_rejections;
      return InsertResult::kResourceExhausted;
    }
    std::string frame = FrameRowBatchPayload(next_ordinal_, rows.size(),
                                             rows.front().size(), payload);
    const int64_t frame_bytes = static_cast<int64_t>(frame.size());
    lsn = wal_->Append(std::move(frame));
    if (lsn == 0) return LatchFailureLocked(wal_->failure());
    ChargeWalBytes(frame_bytes);
    active_segment_bytes_ += frame_bytes;
    // Apply under seq_mu_: store append order must equal ordinal order (the
    // prefix property recovery depends on).
    next_ordinal_ += static_cast<int64_t>(rows.size());
    store_->InsertBatch(rows);
    // Pin the writer this batch appended to: a concurrent disk-full re-arm
    // may swap wal_ while we wait for durability below.
    wal = wal_;
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.batches_logged;
    stats_.rows_logged += static_cast<int64_t>(rows.size());
  }
  MaybeRotateBySize();
  if (!options_.durable_acks) return InsertResult::kOk;
  if (wal->WaitDurable(lsn)) {
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.durable_acks;
    return InsertResult::kOk;
  }
  // The log died between our append and its fsync: the rows are applied in
  // memory but not durable. Latch the matching failure mode so later
  // inserts are refused pre-admission.
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    if (wal_.get() == wal.get() && !write_disabled_ && !enospc_latched_) {
      if (wal->failure() == WalFailure::kNoSpace) {
        enospc_latched_ = true;
        std::lock_guard<std::mutex> s(stats_mu_);
        ++stats_.enospc_latches;
      } else {
        write_disabled_ = true;
      }
    }
  }
  std::lock_guard<std::mutex> s(stats_mu_);
  ++stats_.failed_acks;
  return InsertResult::kNotDurable;
}

void DurableIngestStore::MaybeRotateBySize() {
  if (options_.max_segment_bytes <= 0) return;
  {
    // Cheap peek before taking the checkpoint lock on every batch.
    std::lock_guard<std::mutex> seq(seq_mu_);
    if (active_segment_bytes_ < options_.max_segment_bytes) return;
  }
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  std::lock_guard<std::mutex> seq(seq_mu_);
  if (active_segment_bytes_ < options_.max_segment_bytes) return;
  if (enospc_latched_ || write_disabled_ || wal_->failed()) return;
  // No manifest write here: recovery forward-scans past the manifest's
  // active_segment, so a roll only needs the new file to exist.
  const uint64_t new_seg = next_segment_seq_;
  if (!wal_->RotateTo(WalSegmentPath(options_.dir, new_seg))) return;
  ++next_segment_seq_;
  closed_segment_end_[active_segment_] = next_ordinal_;
  closed_segment_bytes_[active_segment_] = active_segment_bytes_;
  active_segment_ = new_seg;
  active_segment_bytes_ = 0;
  std::lock_guard<std::mutex> s(stats_mu_);
  ++stats_.size_rotations;
}

bool DurableIngestStore::AttemptRearm() {
  {
    std::lock_guard<std::mutex> seq(seq_mu_);
    if (!enospc_latched_) return !write_disabled_;
  }
  {
    std::lock_guard<std::mutex> ck(ckpt_mu_);
    const auto now = std::chrono::steady_clock::now();
    if (now - last_rearm_attempt_ <
        std::chrono::milliseconds(options_.rearm_backoff_millis)) {
      return false;
    }
    last_rearm_attempt_ = now;
    // A fold since the latch may already have drained everything.
    if (RearmLocked()) return true;
  }
  // Drive a full drain: seal the open chunk and fold synchronously. The
  // fold hook writes the checkpoint and re-arms inline when it covers
  // every assigned ordinal.
  store_->ForceRoll();
  store_->CompactNow();
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  return RearmLocked();
}

bool DurableIngestStore::RearmLocked() {
  int64_t assigned = 0;
  {
    std::lock_guard<std::mutex> seq(seq_mu_);
    if (!enospc_latched_) return !write_disabled_;
    assigned = next_ordinal_;
  }
  // Every ordinal ever assigned — including rows applied in memory whose
  // acks failed — must be covered by the *durable* manifest before a fresh
  // segment opens. Resuming the log across undrained ordinals would leave
  // a gap that makes the next recovery discard everything after it.
  if (manifest_.rows_folded < assigned) return false;
  const uint64_t new_seg = next_segment_seq_;
  auto fresh = std::make_shared<WalWriter>(WalSegmentPath(options_.dir, new_seg),
                                           MakeWalOptions(options_));
  if (!fresh->ok()) {
    std::remove(WalSegmentPath(options_.dir, new_seg).c_str());
    return false;
  }
  Manifest m = manifest_;
  m.seq = manifest_.seq + 1;
  m.first_segment = new_seg;
  m.active_segment = new_seg;
  std::string err;
  bool wrote = WriteManifest(ManifestPath(), m, &err);
  if (!wrote && DropReserve()) wrote = WriteManifest(ManifestPath(), m, &err);
  if (!wrote) {
    fresh->Close();
    std::remove(WalSegmentPath(options_.dir, new_seg).c_str());
    return false;
  }
  manifest_ = m;
  ++next_segment_seq_;
  // The checkpoint covers every segment of the dead log; delete them all
  // (closed ones and the failed active one).
  int64_t deleted = 0;
  for (auto it = closed_segment_end_.begin();
       it != closed_segment_end_.end();) {
    std::remove(WalSegmentPath(options_.dir, it->first).c_str());
    const auto bit = closed_segment_bytes_.find(it->first);
    if (bit != closed_segment_bytes_.end()) {
      ReleaseWalBytes(bit->second);
      closed_segment_bytes_.erase(bit);
    }
    ++deleted;
    it = closed_segment_end_.erase(it);
  }
  std::remove(WalSegmentPath(options_.dir, active_segment_).c_str());
  ++deleted;
  {
    std::lock_guard<std::mutex> seq(seq_mu_);
    ReleaseWalBytes(active_segment_bytes_);
    active_segment_bytes_ = 0;
    wal_ = std::move(fresh);
    enospc_latched_ = false;
    write_disabled_ = false;
  }
  active_segment_ = new_seg;
  CreateReserve();
  std::lock_guard<std::mutex> s(stats_mu_);
  ++stats_.rearms;
  stats_.segments_deleted += deleted;
  return true;
}

void DurableIngestStore::ChargeWalBytes(int64_t bytes) {
  if (options_.ingest.governor != nullptr && bytes > 0) {
    options_.ingest.governor->Charge(ResourcePool::kWalDisk, bytes);
  }
}

void DurableIngestStore::ReleaseWalBytes(int64_t bytes) {
  if (options_.ingest.governor != nullptr && bytes > 0) {
    options_.ingest.governor->Release(ResourcePool::kWalDisk, bytes);
  }
}

void DurableIngestStore::OnFold(
    const std::shared_ptr<const TsunamiIndex>& index, uint64_t version,
    int64_t rows_folded) {
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  rows_folded_total_ += rows_folded;
  if (!options_.checkpoint_on_fold) return;
  const std::string file = "checkpoint-" + std::to_string(version) + ".tsnm";
  try {
    if (TSUNAMI_FAULT_FIRES("durability.checkpoint_throw",
                            static_cast<int64_t>(version))) {
      throw std::runtime_error("injected: durability.checkpoint_throw");
    }
    std::string err;
    bool saved =
        SaveIndexDurable(*index, options_.dir, file, options_.fsync, &err);
    if (!saved && DropReserve()) {
      // Disk full: spend the preallocated reserve so the checkpoint that
      // will *free* space (by truncating the WAL) can land.
      saved =
          SaveIndexDurable(*index, options_.dir, file, options_.fsync, &err);
    }
    if (!saved) throw std::runtime_error(err);
    // Rotate under seq_mu_ so the closed segment's end ordinal is exact:
    // every record logged so far lands in it, nothing after does.
    {
      std::lock_guard<std::mutex> seq(seq_mu_);
      const uint64_t new_seg = next_segment_seq_;
      if (wal_->RotateTo(WalSegmentPath(options_.dir, new_seg))) {
        ++next_segment_seq_;
        closed_segment_end_[active_segment_] = next_ordinal_;
        closed_segment_bytes_[active_segment_] = active_segment_bytes_;
        active_segment_ = new_seg;
        active_segment_bytes_ = 0;
      }
      // Rotation failure means the WAL is dead; the manifest below still
      // advances the replay cursor, which is strictly beneficial.
    }
    Manifest m;
    m.seq = manifest_.seq + 1;
    m.checkpoint_version = version;
    m.snapshot_file = file;
    m.rows_folded = rows_folded_total_;
    m.active_segment = active_segment_;
    m.first_segment = active_segment_;
    for (const auto& [seg_seq, end] : closed_segment_end_) {
      if (end > m.rows_folded) {
        m.first_segment = std::min(m.first_segment, seg_seq);
      }
    }
    std::string werr;
    bool wrote = WriteManifest(ManifestPath(), m, &werr);
    if (!wrote && DropReserve()) {
      wrote = WriteManifest(ManifestPath(), m, &werr);
    }
    if (!wrote) throw std::runtime_error(werr);
    const std::string prev_snapshot = manifest_.snapshot_file;
    manifest_ = m;
    // Everything the checkpoint covers can go: fully folded segments and
    // the superseded snapshot.
    int64_t deleted = 0;
    for (auto it = closed_segment_end_.begin();
         it != closed_segment_end_.end();) {
      if (it->second <= m.rows_folded) {
        std::remove(WalSegmentPath(options_.dir, it->first).c_str());
        const auto bit = closed_segment_bytes_.find(it->first);
        if (bit != closed_segment_bytes_.end()) {
          ReleaseWalBytes(bit->second);
          closed_segment_bytes_.erase(bit);
        }
        ++deleted;
        it = closed_segment_end_.erase(it);
      } else {
        ++it;
      }
    }
    if (!prev_snapshot.empty() && prev_snapshot != file) {
      std::remove((options_.dir + "/" + prev_snapshot).c_str());
    }
    // Replenish a spent reserve: the checkpoint just freed segment bytes,
    // so this is the moment the preallocation can succeed again.
    if (options_.reserve_bytes > 0 &&
        !std::filesystem::exists(ReservePath())) {
      CreateReserve();
    }
    {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.checkpoints;
      stats_.segments_deleted += deleted;
    }
  } catch (const std::exception&) {
    // Fail closed: the WAL retains every record; the next fold retries.
    std::remove((options_.dir + "/" + file + ".tmp").c_str());
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.checkpoint_failures;
  }
  // Disk-full poll: if we are latched and the checkpoint that just landed
  // (or an earlier one) now covers every assigned ordinal, re-open the log
  // here — ingest resumes without waiting for the next rejected insert.
  bool latched;
  {
    std::lock_guard<std::mutex> seq(seq_mu_);
    latched = enospc_latched_;
  }
  if (latched) (void)RearmLocked();
}

bool DurableIngestStore::CheckpointNow() {
  uint64_t before;
  {
    std::lock_guard<std::mutex> ck(ckpt_mu_);
    before = manifest_.seq;
  }
  store_->ForceRoll();
  store_->CompactNow();
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  return manifest_.seq != before;
}

int64_t DurableIngestStore::next_ordinal() const {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return next_ordinal_;
}

DurableIngestStore::Stats DurableIngestStore::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    wal = wal_;
  }
  s.wal = wal->stats();
  return s;
}

}  // namespace durability
}  // namespace tsunami
