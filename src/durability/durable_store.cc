#include "src/durability/durable_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "src/common/fault_injection.h"

namespace tsunami {
namespace durability {

namespace {

/// Atomic, durable TsunamiIndex write: tmp + fsync + rename + dir fsync.
bool SaveIndexDurable(const TsunamiIndex& index, const std::string& dir,
                      const std::string& file, bool fsync,
                      std::string* error) {
  const std::string path = dir + "/" + file;
  const std::string tmp = path + ".tmp";
  if (!index.SaveToFile(tmp, error)) return false;
  if (fsync && !FsyncPath(tmp, error)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (fsync) return FsyncDir(dir, error);
  return true;
}

}  // namespace

bool WriteManifest(const std::string& path, const Manifest& manifest,
                   std::string* error) {
  BinaryWriter w;
  w.PutVarU64(manifest.seq);
  w.PutVarU64(manifest.checkpoint_version);
  w.PutString(manifest.snapshot_file);
  w.PutVarI64(manifest.rows_folded);
  w.PutVarU64(manifest.first_segment);
  w.PutVarU64(manifest.active_segment);
  return WriteFramedFileDurable(path, FileKind::kDurabilityManifest,
                                w.buffer(), error);
}

bool ReadManifest(const std::string& path, Manifest* manifest,
                  std::string* error, FileError* code) {
  std::string payload;
  uint32_t version = kTsunamiFormatVersion;
  if (!ReadFramedFile(path, FileKind::kDurabilityManifest, &payload, error,
                      code, &version)) {
    return false;
  }
  BinaryReader r(payload);
  r.set_version(version);
  Manifest m;
  m.seq = r.GetVarU64();
  m.checkpoint_version = r.GetVarU64();
  m.snapshot_file = r.GetString();
  m.rows_folded = r.GetVarI64();
  m.first_segment = r.GetVarU64();
  m.active_segment = r.GetVarU64();
  if (!r.ok() || !r.AtEnd() || m.snapshot_file.empty() ||
      m.rows_folded < 0 || m.first_segment > m.active_segment) {
    if (error != nullptr) *error = "'" + path + "' holds a malformed manifest";
    if (code != nullptr) *code = FileError::kChecksumMismatch;
    return false;
  }
  *manifest = m;
  return true;
}

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

std::string CheckpointPath(const std::string& dir, uint64_t version) {
  return dir + "/checkpoint-" + std::to_string(version) + ".tsnm";
}

DurableIngestStore::DurableIngestStore(const DurabilityOptions& options)
    : options_(options) {}

DurableIngestStore::~DurableIngestStore() {
  // Quiesce maintenance first: the fold hook uses the WAL.
  if (store_ != nullptr) store_->StopBackground();
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableIngestStore::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

std::unique_ptr<DurableIngestStore> DurableIngestStore::Open(
    const Dataset& base_data, const Workload& workload,
    const DurabilityOptions& options, std::string* error) {
  std::string err;
  if (options.dir.empty()) {
    if (error != nullptr) *error = "durability dir must be set";
    return nullptr;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create '" + options.dir + "': " + ec.message();
    }
    return nullptr;
  }
  std::unique_ptr<DurableIngestStore> s(new DurableIngestStore(options));
  if (std::filesystem::exists(s->ManifestPath())) {
    Manifest manifest;
    // A corrupt manifest fails Open — never silently rebuild over a
    // directory that claims to hold data.
    if (!ReadManifest(s->ManifestPath(), &manifest, &err) ||
        !s->Recover(workload, manifest, &err)) {
      if (error != nullptr) *error = err;
      return nullptr;
    }
  } else if (!s->Bootstrap(base_data, workload, &err)) {
    if (error != nullptr) *error = err;
    return nullptr;
  }
  return s;
}

bool DurableIngestStore::Bootstrap(const Dataset& base_data,
                                   const Workload& workload,
                                   std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  ingest::IngestOptions quiet = options_.ingest;
  quiet.background_compaction = false;
  store_ = std::make_unique<ingest::IngestStore>(base_data, workload, quiet);

  const uint64_t version = store_->version();
  const std::string file = "checkpoint-" + std::to_string(version) + ".tsnm";
  if (!SaveIndexDurable(store_->CurrentSnapshot()->index(), options_.dir,
                        file, options_.fsync, error)) {
    return false;
  }

  WalWriterOptions wopts;
  wopts.fsync = options_.fsync;
  wopts.background = options_.wal_background;
  wal_ = std::make_unique<WalWriter>(WalSegmentPath(options_.dir, 1), wopts);
  if (!wal_->ok()) {
    if (error != nullptr) {
      *error = "cannot open WAL segment '" + WalSegmentPath(options_.dir, 1) +
               "'";
    }
    return false;
  }
  active_segment_ = 1;
  next_segment_seq_ = 2;

  Manifest m;
  m.seq = 1;
  m.checkpoint_version = version;
  m.snapshot_file = file;
  m.rows_folded = 0;
  m.first_segment = 1;
  m.active_segment = 1;
  if (!WriteManifest(ManifestPath(), m, error)) return false;
  manifest_ = m;

  recovery_.recovered = false;
  recovery_.checkpoint_version = version;
  recovery_.checkpoint_rows = base_data.size();
  recovery_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  AttachHook();
  if (options_.ingest.background_compaction) store_->StartBackground();
  return true;
}

bool DurableIngestStore::Recover(const Workload& workload,
                                 const Manifest& manifest,
                                 std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  std::string err;
  std::unique_ptr<TsunamiIndex> loaded = TsunamiIndex::LoadFromFile(
      options_.dir + "/" + manifest.snapshot_file, &err);
  if (loaded == nullptr) {
    if (error != nullptr) {
      *error = "recovery: cannot load checkpoint: " + err;
    }
    return false;
  }
  std::shared_ptr<const TsunamiIndex> index(std::move(loaded));
  recovery_.recovered = true;
  recovery_.checkpoint_version = manifest.checkpoint_version;
  recovery_.checkpoint_rows = index->store().size();
  recovery_.replay_cursor = manifest.rows_folded;

  ingest::IngestOptions quiet = options_.ingest;
  quiet.background_compaction = false;
  store_ = std::make_unique<ingest::IngestStore>(
      index, workload, quiet, manifest.checkpoint_version);
  next_ordinal_ = manifest.rows_folded;
  rows_folded_total_ = manifest.rows_folded;
  manifest_ = manifest;

  // Replay every live segment in order. A torn/corrupt tail ends that
  // segment's records — the next segment (created by a previous recovery's
  // rotation) continues at exactly the surviving cursor, so replay goes on;
  // the gap check below is what guards against actual mid-log loss.
  bool aborted = false;
  for (uint64_t seq = manifest.first_segment;
       seq <= manifest.active_segment && !aborted; ++seq) {
    WalSegmentContents seg = ReadWalSegment(WalSegmentPath(options_.dir, seq));
    if (seg.tail_status != FileError::kIoError) ++recovery_.segments_read;
    for (WalRecord& record : seg.records) {
      const int64_t n = static_cast<int64_t>(record.rows.size());
      if (record.first_ordinal > next_ordinal_) {
        // Rows missing between the cursor and this record: applying past
        // the hole would corrupt ingestion order. Stop replay entirely.
        recovery_.wal_tail_status = FileError::kChecksumMismatch;
        recovery_.wal_tail_message =
            "ordinal gap: segment " + std::to_string(seq) + " starts at " +
            std::to_string(record.first_ordinal) + ", cursor at " +
            std::to_string(next_ordinal_);
        aborted = true;
        break;
      }
      const int64_t skip =
          std::min<int64_t>(n, next_ordinal_ - record.first_ordinal);
      recovery_.skipped_rows += skip;
      if (skip < n) {
        std::vector<std::vector<Value>> apply(
            record.rows.begin() + static_cast<ptrdiff_t>(skip),
            record.rows.end());
        store_->InsertBatch(apply);
        next_ordinal_ += n - skip;
        recovery_.replayed_rows += n - skip;
      }
      ++recovery_.replayed_records;
    }
    if (!aborted && seg.tail_status != FileError::kNone) {
      recovery_.wal_tail_status = seg.tail_status;
      recovery_.wal_tail_message = seg.message;
    }
    if (!aborted) closed_segment_end_[seq] = next_ordinal_;
  }

  // Never append to a possibly-torn tail: garbage mid-file would hide every
  // later record from the next recovery. Always begin a fresh segment.
  const uint64_t new_seg = manifest.active_segment + 1;
  WalWriterOptions wopts;
  wopts.fsync = options_.fsync;
  wopts.background = options_.wal_background;
  wal_ = std::make_unique<WalWriter>(WalSegmentPath(options_.dir, new_seg),
                                     wopts);
  if (!wal_->ok()) {
    if (error != nullptr) {
      *error = "recovery: cannot open WAL segment '" +
               WalSegmentPath(options_.dir, new_seg) + "'";
    }
    return false;
  }
  active_segment_ = new_seg;
  next_segment_seq_ = new_seg + 1;

  Manifest m = manifest;
  m.seq = manifest.seq + 1;
  m.active_segment = new_seg;
  m.first_segment = new_seg;
  for (const auto& [seg_seq, end] : closed_segment_end_) {
    if (end > m.rows_folded) {
      m.first_segment = std::min(m.first_segment, seg_seq);
    }
  }
  if (!WriteManifest(ManifestPath(), m, error)) return false;
  manifest_ = m;
  for (auto it = closed_segment_end_.begin();
       it != closed_segment_end_.end();) {
    if (it->second <= m.rows_folded) {
      std::remove(WalSegmentPath(options_.dir, it->first).c_str());
      ++stats_.segments_deleted;
      it = closed_segment_end_.erase(it);
    } else {
      ++it;
    }
  }

  recovery_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  AttachHook();
  if (options_.ingest.background_compaction) store_->StartBackground();
  return true;
}

void DurableIngestStore::AttachHook() {
  store_->SetFoldHook(
      [this](const std::shared_ptr<const TsunamiIndex>& index,
             uint64_t version, int64_t rows_folded) {
        OnFold(index, version, rows_folded);
      });
}

bool DurableIngestStore::Insert(const std::vector<Value>& row) {
  return InsertBatch({row});
}

bool DurableIngestStore::InsertBatch(
    const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return true;
  // The expensive part of framing (per-value varints) does not depend on
  // the ordinal, so concurrent writers encode in parallel here; the
  // sequencer lock below only covers the frame prefix, a memcpy, and the
  // in-memory apply.
  const std::string payload = EncodeRowBatchPayload(rows);
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    if (write_disabled_ || wal_->failed()) {
      write_disabled_ = true;
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.rejected_batches;
      return false;
    }
    lsn = wal_->Append(FrameRowBatchPayload(next_ordinal_, rows.size(),
                                            rows.front().size(), payload));
    if (lsn == 0) {
      write_disabled_ = true;
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.rejected_batches;
      return false;
    }
    // Apply under seq_mu_: store append order must equal ordinal order (the
    // prefix property recovery depends on).
    next_ordinal_ += static_cast<int64_t>(rows.size());
    store_->InsertBatch(rows);
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.batches_logged;
    stats_.rows_logged += static_cast<int64_t>(rows.size());
  }
  if (!options_.durable_acks) return true;
  const bool durable = wal_->WaitDurable(lsn);
  {
    std::lock_guard<std::mutex> s(stats_mu_);
    if (durable) {
      ++stats_.durable_acks;
    } else {
      ++stats_.failed_acks;
    }
  }
  return durable;
}

void DurableIngestStore::OnFold(
    const std::shared_ptr<const TsunamiIndex>& index, uint64_t version,
    int64_t rows_folded) {
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  rows_folded_total_ += rows_folded;
  if (!options_.checkpoint_on_fold) return;
  const std::string file = "checkpoint-" + std::to_string(version) + ".tsnm";
  try {
    if (TSUNAMI_FAULT_FIRES("durability.checkpoint_throw",
                            static_cast<int64_t>(version))) {
      throw std::runtime_error("injected: durability.checkpoint_throw");
    }
    std::string err;
    if (!SaveIndexDurable(*index, options_.dir, file, options_.fsync, &err)) {
      throw std::runtime_error(err);
    }
    // Rotate under seq_mu_ so the closed segment's end ordinal is exact:
    // every record logged so far lands in it, nothing after does.
    {
      std::lock_guard<std::mutex> seq(seq_mu_);
      const uint64_t new_seg = next_segment_seq_;
      if (wal_->RotateTo(WalSegmentPath(options_.dir, new_seg))) {
        ++next_segment_seq_;
        closed_segment_end_[active_segment_] = next_ordinal_;
        active_segment_ = new_seg;
      }
      // Rotation failure means the WAL is dead; the manifest below still
      // advances the replay cursor, which is strictly beneficial.
    }
    Manifest m;
    m.seq = manifest_.seq + 1;
    m.checkpoint_version = version;
    m.snapshot_file = file;
    m.rows_folded = rows_folded_total_;
    m.active_segment = active_segment_;
    m.first_segment = active_segment_;
    for (const auto& [seg_seq, end] : closed_segment_end_) {
      if (end > m.rows_folded) {
        m.first_segment = std::min(m.first_segment, seg_seq);
      }
    }
    std::string werr;
    if (!WriteManifest(ManifestPath(), m, &werr)) {
      throw std::runtime_error(werr);
    }
    const std::string prev_snapshot = manifest_.snapshot_file;
    manifest_ = m;
    // Everything the checkpoint covers can go: fully folded segments and
    // the superseded snapshot.
    int64_t deleted = 0;
    for (auto it = closed_segment_end_.begin();
         it != closed_segment_end_.end();) {
      if (it->second <= m.rows_folded) {
        std::remove(WalSegmentPath(options_.dir, it->first).c_str());
        ++deleted;
        it = closed_segment_end_.erase(it);
      } else {
        ++it;
      }
    }
    if (!prev_snapshot.empty() && prev_snapshot != file) {
      std::remove((options_.dir + "/" + prev_snapshot).c_str());
    }
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.checkpoints;
    stats_.segments_deleted += deleted;
  } catch (const std::exception&) {
    // Fail closed: the WAL retains every record; the next fold retries.
    std::remove((options_.dir + "/" + file + ".tmp").c_str());
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.checkpoint_failures;
  }
}

bool DurableIngestStore::CheckpointNow() {
  uint64_t before;
  {
    std::lock_guard<std::mutex> ck(ckpt_mu_);
    before = manifest_.seq;
  }
  store_->ForceRoll();
  store_->CompactNow();
  std::lock_guard<std::mutex> ck(ckpt_mu_);
  return manifest_.seq != before;
}

int64_t DurableIngestStore::next_ordinal() const {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return next_ordinal_;
}

DurableIngestStore::Stats DurableIngestStore::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.wal = wal_->stats();
  return s;
}

}  // namespace durability
}  // namespace tsunami
