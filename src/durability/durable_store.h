// DurableIngestStore: crash durability for ingest::IngestStore.
//
// Layout of a durability directory:
//   MANIFEST              CRC-framed (FileKind::kDurabilityManifest) state:
//                         which checkpoint file is current, the WAL replay
//                         cursor, and the live WAL segment range. Replaced
//                         atomically (tmp + fsync + rename + dir fsync).
//   checkpoint-<v>.tsnm   A full TsunamiIndex snapshot (format v3) written
//                         durably at fold time; <v> is the store version it
//                         published as.
//   wal-<seq>.log         WAL segments (src/durability/wal.h framing).
//
// The three moving parts:
//   * Logging — InsertBatch assigns each row a global *ordinal* (ingestion
//     order, starting at 0 for the first post-construction insert), appends
//     one WAL record, applies the rows to the in-memory store, and — in
//     durable-ack mode — blocks until the group committer has fsync'd the
//     record. An ack therefore means "on stable storage", not just
//     "visible".
//   * Checkpointing — the IngestStore fold hook fires after every fold
//     publish. Because a fold consumes a strict prefix of ingestion order,
//     the cumulative folded-row count F is an exact replay cursor: the hook
//     writes the folded index durably, rotates the WAL, persists a manifest
//     with rows_folded = F, and deletes segments whose rows all fall below
//     F. A checkpoint failure (including the `durability.checkpoint_throw`
//     fault) is swallowed: the WAL keeps everything and the next fold
//     retries.
//   * Recovery — Open() with an existing MANIFEST loads the checkpoint,
//     adopts it at its recorded version, replays WAL records in segment
//     order skipping rows with ordinal < F (per-row, so a batch straddling
//     the fold boundary is half-skipped, never double-applied), tolerates a
//     torn tail (replay just ends there), and always begins a *fresh*
//     segment — appending after a tear would hide later records from the
//     next recovery.
//
// Failure model: fail closed. Once the WAL fails (torn write, fsync
// failure), the store refuses further durable inserts; rows already applied
// in memory but never acked may be lost on crash — but an acked row is never
// lost and no row is ever applied twice.
#ifndef TSUNAMI_DURABILITY_DURABLE_STORE_H_
#define TSUNAMI_DURABILITY_DURABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/durability/wal.h"
#include "src/ingest/ingest_store.h"

namespace tsunami {
namespace durability {

/// The durable state record. `rows_folded` is the WAL replay cursor F:
/// rows with ordinal < F live in the checkpoint file; replay skips them.
struct Manifest {
  uint64_t seq = 0;               // Monotone manifest generation.
  uint64_t checkpoint_version = 0;  // Store version of the checkpoint.
  std::string snapshot_file;      // Relative filename of the checkpoint.
  int64_t rows_folded = 0;        // Replay cursor F (ordinals < F skipped).
  uint64_t first_segment = 0;     // Oldest live WAL segment seq.
  uint64_t active_segment = 0;    // Segment receiving appends.
};

/// Serializes / atomically replaces the MANIFEST file at `path`.
bool WriteManifest(const std::string& path, const Manifest& manifest,
                   std::string* error);
/// Reads and validates MANIFEST; typed cause in `code` on failure.
bool ReadManifest(const std::string& path, Manifest* manifest,
                  std::string* error, FileError* code = nullptr);

/// "wal-<seq>.log" under `dir`.
std::string WalSegmentPath(const std::string& dir, uint64_t seq);
/// "checkpoint-<version>.tsnm" under `dir`.
std::string CheckpointPath(const std::string& dir, uint64_t version);

struct DurabilityOptions {
  /// Durability directory (created if absent).
  std::string dir;
  /// InsertBatch blocks until its WAL record is fsync'd and returns whether
  /// it is durable. Off: rows are logged asynchronously and InsertBatch
  /// returns as soon as they are enqueued + applied (crash may lose the
  /// tail; recovery still never double-applies).
  bool durable_acks = true;
  /// Write a checkpoint (snapshot + manifest + WAL truncation) at every
  /// fold publish. Off: the WAL only ever grows (tests).
  bool checkpoint_on_fold = true;
  /// fsync group commits and checkpoint files. Off is never durable —
  /// benchmark use only, to isolate the fsync cost.
  bool fsync = true;
  /// Run the WAL group-commit thread. Off = manual mode: nothing commits
  /// until wal().CommitPending() (deterministic grouping for tests).
  bool wal_background = true;
  /// Options for the wrapped IngestStore. `background_compaction` here
  /// controls whether Open() starts the compactor after recovery.
  ingest::IngestOptions ingest;
};

/// What Open() found and did. `wal_tail_status` is FileError::kNone after a
/// clean shutdown; kTruncated / kChecksumMismatch record a tolerated torn
/// tail (with the offset in `wal_tail_message`).
struct RecoveryInfo {
  bool recovered = false;          // False: fresh directory, bootstrapped.
  uint64_t checkpoint_version = 0;
  int64_t checkpoint_rows = 0;     // Rows in the loaded snapshot.
  int64_t replay_cursor = 0;       // Manifest rows_folded (F).
  int64_t replayed_records = 0;
  int64_t replayed_rows = 0;       // Applied (ordinal >= F).
  int64_t skipped_rows = 0;        // Already in the checkpoint (< F).
  int64_t segments_read = 0;
  FileError wal_tail_status = FileError::kNone;
  std::string wal_tail_message;
  double seconds = 0;              // Recovery wall time.
};

class DurableIngestStore {
 public:
  /// Opens (or bootstraps) a durable store in `options.dir`. `base_data` /
  /// `workload` seed a fresh directory; on recovery `base_data` is ignored
  /// (the checkpoint already holds it) and `workload` is the fold target.
  /// Returns nullptr with `error` set when the directory is unusable or its
  /// manifest/checkpoint is corrupt — never silently rebuilds over data.
  static std::unique_ptr<DurableIngestStore> Open(
      const Dataset& base_data, const Workload& workload,
      const DurabilityOptions& options, std::string* error = nullptr);

  ~DurableIngestStore();
  DurableIngestStore(const DurableIngestStore&) = delete;
  DurableIngestStore& operator=(const DurableIngestStore&) = delete;

  /// The wrapped store: queries, snapshots, listeners all live here. Writes
  /// MUST go through the durable insert paths below, never directly.
  ingest::IngestStore& store() { return *store_; }
  const ingest::IngestStore& store() const { return *store_; }

  /// Logs + applies one batch. In durable-ack mode, true means every row is
  /// fsync'd; false means the log failed (fail closed — the rows may be
  /// visible in memory but were NOT acked and may not survive a crash).
  /// After a WAL failure the store is write-disabled: later calls return
  /// false without applying anything.
  bool InsertBatch(const std::vector<std::vector<Value>>& rows);
  bool Insert(const std::vector<Value>& row);

  /// Forces a checkpoint: rolls the open chunk and folds synchronously,
  /// which drives the fold hook. Returns true when a new checkpoint
  /// manifest landed.
  bool CheckpointNow();

  const RecoveryInfo& recovery() const { return recovery_; }
  const DurabilityOptions& options() const { return options_; }
  /// Ordinal the next inserted row will get (== rows ever logged).
  int64_t next_ordinal() const;

  /// The WAL writer (tests: manual CommitPending, fault stats).
  WalWriter& wal() { return *wal_; }

  struct Stats {
    int64_t rows_logged = 0;
    int64_t batches_logged = 0;
    int64_t durable_acks = 0;      // Batches acked fsync'd.
    int64_t failed_acks = 0;       // Batches applied but never durable.
    int64_t rejected_batches = 0;  // Refused outright (write-disabled).
    int64_t checkpoints = 0;
    int64_t checkpoint_failures = 0;
    int64_t segments_deleted = 0;
    WalWriter::Stats wal;
  };
  Stats stats() const;

 private:
  DurableIngestStore(const DurabilityOptions& options);

  bool Bootstrap(const Dataset& base_data, const Workload& workload,
                 std::string* error);
  bool Recover(const Workload& workload, const Manifest& manifest,
               std::string* error);
  void AttachHook();
  /// The fold hook body; runs under the store's compact_mu_.
  void OnFold(const std::shared_ptr<const TsunamiIndex>& index,
              uint64_t version, int64_t rows_folded);
  std::string ManifestPath() const;

  DurabilityOptions options_;
  RecoveryInfo recovery_;

  // Lock order: (store compact_mu_, via fold hook) -> seq_mu_ -> store
  // write_mu_ / WAL internals. seq_mu_ makes ordinal assignment, WAL append
  // order, and in-memory apply order one atomic sequence — the prefix
  // property recovery depends on.
  mutable std::mutex seq_mu_;
  int64_t next_ordinal_ = 0;       // seq_mu_
  bool write_disabled_ = false;    // seq_mu_; latched on WAL failure.

  // Checkpoint state; mutated only in OnFold (serialized by compact_mu_)
  // and during single-threaded Open.
  mutable std::mutex ckpt_mu_;
  Manifest manifest_;              // Last durably written manifest.
  int64_t rows_folded_total_ = 0;  // In-memory fold cursor (>= manifest's).
  uint64_t active_segment_ = 1;    // Segment currently receiving appends.
  uint64_t next_segment_seq_ = 1;
  // Closed segments still on disk -> end ordinal (one past the last row
  // logged into it). A segment is deletable once end <= manifest rows_folded.
  std::map<uint64_t, int64_t> closed_segment_end_;

  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<ingest::IngestStore> store_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace durability
}  // namespace tsunami

#endif  // TSUNAMI_DURABILITY_DURABLE_STORE_H_
