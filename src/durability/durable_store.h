// DurableIngestStore: crash durability for ingest::IngestStore.
//
// Layout of a durability directory:
//   MANIFEST              CRC-framed (FileKind::kDurabilityManifest) state:
//                         which checkpoint file is current, the WAL replay
//                         cursor, and the live WAL segment range. Replaced
//                         atomically (tmp + fsync + rename + dir fsync).
//   checkpoint-<v>.tsnm   A full TsunamiIndex snapshot (format v3) written
//                         durably at fold time; <v> is the store version it
//                         published as.
//   wal-<seq>.log         WAL segments (src/durability/wal.h framing).
//
// The three moving parts:
//   * Logging — InsertBatch assigns each row a global *ordinal* (ingestion
//     order, starting at 0 for the first post-construction insert), appends
//     one WAL record, applies the rows to the in-memory store, and — in
//     durable-ack mode — blocks until the group committer has fsync'd the
//     record. An ack therefore means "on stable storage", not just
//     "visible".
//   * Checkpointing — the IngestStore fold hook fires after every fold
//     publish. Because a fold consumes a strict prefix of ingestion order,
//     the cumulative folded-row count F is an exact replay cursor: the hook
//     writes the folded index durably, rotates the WAL, persists a manifest
//     with rows_folded = F, and deletes segments whose rows all fall below
//     F. A checkpoint failure (including the `durability.checkpoint_throw`
//     fault) is swallowed: the WAL keeps everything and the next fold
//     retries.
//   * Recovery — Open() with an existing MANIFEST loads the checkpoint,
//     adopts it at its recorded version, replays WAL records in segment
//     order skipping rows with ordinal < F (per-row, so a batch straddling
//     the fold boundary is half-skipped, never double-applied), tolerates a
//     torn tail (replay just ends there), and always begins a *fresh*
//     segment — appending after a tear would hide later records from the
//     next recovery.
//
// Failure model: fail closed. Once the WAL fails (torn write, fsync
// failure), the store refuses further durable inserts; rows already applied
// in memory but never acked may be lost on crash — but an acked row is never
// lost and no row is ever applied twice.
//
// ENOSPC is the one *recoverable* failure. When the WAL dies with
// WalFailure::kNoSpace (real errno or the `fs.enospc` fault), the store
// latches a disk-full state instead of the permanent write-disable: acks
// fail closed, inserts return kResourceExhausted (retryable — nothing was
// applied), and read serving continues untouched. Re-arming is gated on a
// *full checkpoint drain*: every ordinal ever assigned must be covered by a
// durable checkpoint before a fresh WAL segment opens, because rows that
// were applied in memory but never fsync'd still occupy ordinals — resuming
// a new segment without draining them would leave an ordinal gap that makes
// recovery discard every later record. The store retries the drain on each
// rejected insert (throttled) and opportunistically after every fold, so
// ingest resumes on its own once space frees. A preallocated RESERVE file
// is dropped (and the write retried once) when a checkpoint or manifest
// write itself hits ENOSPC, so the small renames that advance the replay
// cursor can always complete even on a full disk.
#ifndef TSUNAMI_DURABILITY_DURABLE_STORE_H_
#define TSUNAMI_DURABILITY_DURABLE_STORE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/durability/wal.h"
#include "src/ingest/ingest_store.h"

namespace tsunami {
namespace durability {

/// The durable state record. `rows_folded` is the WAL replay cursor F:
/// rows with ordinal < F live in the checkpoint file; replay skips them.
struct Manifest {
  uint64_t seq = 0;               // Monotone manifest generation.
  uint64_t checkpoint_version = 0;  // Store version of the checkpoint.
  std::string snapshot_file;      // Relative filename of the checkpoint.
  int64_t rows_folded = 0;        // Replay cursor F (ordinals < F skipped).
  uint64_t first_segment = 0;     // Oldest live WAL segment seq.
  uint64_t active_segment = 0;    // Segment receiving appends.
};

/// Serializes / atomically replaces the MANIFEST file at `path`.
bool WriteManifest(const std::string& path, const Manifest& manifest,
                   std::string* error);
/// Reads and validates MANIFEST; typed cause in `code` on failure.
bool ReadManifest(const std::string& path, Manifest* manifest,
                  std::string* error, FileError* code = nullptr);

/// "wal-<seq>.log" under `dir`.
std::string WalSegmentPath(const std::string& dir, uint64_t seq);
/// "checkpoint-<version>.tsnm" under `dir`.
std::string CheckpointPath(const std::string& dir, uint64_t version);

struct DurabilityOptions {
  /// Durability directory (created if absent).
  std::string dir;
  /// InsertBatch blocks until its WAL record is fsync'd and returns whether
  /// it is durable. Off: rows are logged asynchronously and InsertBatch
  /// returns as soon as they are enqueued + applied (crash may lose the
  /// tail; recovery still never double-applies).
  bool durable_acks = true;
  /// Write a checkpoint (snapshot + manifest + WAL truncation) at every
  /// fold publish. Off: the WAL only ever grows (tests).
  bool checkpoint_on_fold = true;
  /// fsync group commits and checkpoint files. Off is never durable —
  /// benchmark use only, to isolate the fsync cost.
  bool fsync = true;
  /// Run the WAL group-commit thread. Off = manual mode: nothing commits
  /// until wal().CommitPending() (deterministic grouping for tests).
  bool wal_background = true;
  /// Group-commit latency shaping (WalWriterOptions::max_commit_delay_micros):
  /// the committer waits up to this long after the first pending record to
  /// coalesce more acks into one fsync. 0 = commit immediately.
  uint32_t wal_commit_delay_micros = 0;
  /// Rotate the active WAL segment once it exceeds this many bytes, without
  /// waiting for a checkpoint (recovery forward-scans past the manifest's
  /// active_segment, so no manifest write is needed per rotation). Bounds
  /// the recovery replay window and lets checkpoints reclaim disk in
  /// segment-sized steps. 0 = rotate only at checkpoints.
  int64_t max_segment_bytes = 0;
  /// Size of the preallocated RESERVE file dropped to guarantee checkpoint
  /// and manifest writes complete on a full disk. 0 = no reserve.
  int64_t reserve_bytes = int64_t{256} * 1024;
  /// Minimum delay between disk-full re-arm attempts driven by rejected
  /// inserts (each attempt forces a checkpoint drain, which is not free).
  /// Tests set 0 for deterministic single-call re-arm.
  int64_t rearm_backoff_millis = 200;
  /// Options for the wrapped IngestStore. `background_compaction` here
  /// controls whether Open() starts the compactor after recovery. The
  /// embedded `governor` (when set) is also used by the durable layer to
  /// account WAL on-disk bytes against ResourcePool::kWalDisk.
  ingest::IngestOptions ingest;
};

/// Typed outcome of a durable insert. The bool Insert/InsertBatch wrappers
/// collapse this to `result == kOk`.
enum class InsertResult : uint8_t {
  /// Logged, applied, and (in durable-ack mode) fsync'd.
  kOk = 0,
  /// Refused *pre-admission* — no ordinal assigned, nothing applied, nothing
  /// logged — because the governor's WAL-disk budget is exhausted or the
  /// store is in the disk-full latch. Safe to retry after backoff.
  kResourceExhausted,
  /// The rows were applied in memory but the log failed before the ack
  /// fsync'd; they may not survive a crash. NOT retryable (a retry would
  /// double-apply).
  kNotDurable,
  /// Refused outright: the log failed for a non-recoverable reason and the
  /// store is permanently write-disabled.
  kRejected,
};

const char* ToString(InsertResult r);

/// What Open() found and did. `wal_tail_status` is FileError::kNone after a
/// clean shutdown; kTruncated / kChecksumMismatch record a tolerated torn
/// tail (with the offset in `wal_tail_message`).
struct RecoveryInfo {
  bool recovered = false;          // False: fresh directory, bootstrapped.
  uint64_t checkpoint_version = 0;
  int64_t checkpoint_rows = 0;     // Rows in the loaded snapshot.
  int64_t replay_cursor = 0;       // Manifest rows_folded (F).
  int64_t replayed_records = 0;
  int64_t replayed_rows = 0;       // Applied (ordinal >= F).
  int64_t skipped_rows = 0;        // Already in the checkpoint (< F).
  int64_t segments_read = 0;
  FileError wal_tail_status = FileError::kNone;
  std::string wal_tail_message;
  double seconds = 0;              // Recovery wall time.
};

class DurableIngestStore {
 public:
  /// Opens (or bootstraps) a durable store in `options.dir`. `base_data` /
  /// `workload` seed a fresh directory; on recovery `base_data` is ignored
  /// (the checkpoint already holds it) and `workload` is the fold target.
  /// Returns nullptr with `error` set when the directory is unusable or its
  /// manifest/checkpoint is corrupt — never silently rebuilds over data.
  static std::unique_ptr<DurableIngestStore> Open(
      const Dataset& base_data, const Workload& workload,
      const DurabilityOptions& options, std::string* error = nullptr);

  ~DurableIngestStore();
  DurableIngestStore(const DurableIngestStore&) = delete;
  DurableIngestStore& operator=(const DurableIngestStore&) = delete;

  /// The wrapped store: queries, snapshots, listeners all live here. Writes
  /// MUST go through the durable insert paths below, never directly.
  ingest::IngestStore& store() { return *store_; }
  const ingest::IngestStore& store() const { return *store_; }

  /// Logs + applies one batch. In durable-ack mode, true means every row is
  /// fsync'd; false means the log failed (fail closed — the rows may be
  /// visible in memory but were NOT acked and may not survive a crash).
  /// After a WAL failure the store is write-disabled: later calls return
  /// false without applying anything.
  bool InsertBatch(const std::vector<std::vector<Value>>& rows);
  bool Insert(const std::vector<Value>& row);

  /// Typed variants: distinguish retryable pre-admission refusals
  /// (kResourceExhausted) from applied-but-not-durable (kNotDurable) and
  /// permanent write-disable (kRejected). When the store is in the
  /// disk-full latch this first attempts a (throttled) re-arm, so ingest
  /// resumes automatically once space frees.
  InsertResult TryInsertBatch(const std::vector<std::vector<Value>>& rows);
  InsertResult TryInsert(const std::vector<Value>& row);

  /// True while the store is latched in the recoverable disk-full state.
  bool enospc_latched() const;

  /// Forces a checkpoint: rolls the open chunk and folds synchronously,
  /// which drives the fold hook. Returns true when a new checkpoint
  /// manifest landed.
  bool CheckpointNow();

  const RecoveryInfo& recovery() const { return recovery_; }
  const DurabilityOptions& options() const { return options_; }
  /// Ordinal the next inserted row will get (== rows ever logged).
  int64_t next_ordinal() const;

  /// The WAL writer (tests: manual CommitPending, fault stats). Unsafe to
  /// hold across a disk-full re-arm, which swaps in a fresh writer.
  WalWriter& wal() { return *wal_; }

  struct Stats {
    int64_t rows_logged = 0;
    int64_t batches_logged = 0;
    int64_t durable_acks = 0;      // Batches acked fsync'd.
    int64_t failed_acks = 0;       // Batches applied but never durable.
    int64_t rejected_batches = 0;  // Refused outright (write-disabled).
    int64_t resource_rejections = 0;  // kResourceExhausted refusals.
    int64_t checkpoints = 0;
    int64_t checkpoint_failures = 0;
    int64_t segments_deleted = 0;
    int64_t size_rotations = 0;    // Segment rolls from max_segment_bytes.
    int64_t enospc_latches = 0;    // Times the disk-full latch engaged.
    int64_t rearms = 0;            // Successful disk-full recoveries.
    int64_t reserve_drops = 0;     // RESERVE spent to finish a checkpoint.
    WalWriter::Stats wal;
  };
  Stats stats() const;

 private:
  DurableIngestStore(const DurabilityOptions& options);

  bool Bootstrap(const Dataset& base_data, const Workload& workload,
                 std::string* error);
  bool Recover(const Workload& workload, const Manifest& manifest,
               std::string* error);
  void AttachHook();
  /// The fold hook body; runs under the store's compact_mu_.
  void OnFold(const std::shared_ptr<const TsunamiIndex>& index,
              uint64_t version, int64_t rows_folded);
  std::string ManifestPath() const;
  std::string ReservePath() const;
  /// (Re)creates the preallocated RESERVE file. Best effort.
  void CreateReserve();
  /// Frees the reserve ahead of retrying a failed checkpoint/manifest
  /// write. True if a reserve was actually on disk to drop.
  bool DropReserve();
  /// Latches the recoverable/permanent failure state matching the WAL's
  /// failure reason. Caller holds seq_mu_.
  InsertResult LatchFailureLocked(WalFailure reason);
  /// Rotates to a fresh segment when the active one outgrew
  /// max_segment_bytes. Takes ckpt_mu_ then seq_mu_ (the OnFold order) —
  /// callers must hold neither.
  void MaybeRotateBySize();
  /// Disk-full recovery driver: forces a checkpoint drain, then re-arms if
  /// it covered every ordinal. Throttled by rearm_backoff_millis. Callers
  /// must hold neither lock. True when the latch is clear on return.
  bool AttemptRearm();
  /// Re-arm step: if the latch is set and the durable manifest covers every
  /// assigned ordinal, opens a fresh WAL segment, persists a manifest for
  /// it, swaps the writer, and clears the latch. Caller holds ckpt_mu_
  /// only. True when the store is armed on return.
  bool RearmLocked();
  /// Charges/releases ResourcePool::kWalDisk when a governor is configured.
  void ChargeWalBytes(int64_t bytes);
  void ReleaseWalBytes(int64_t bytes);

  DurabilityOptions options_;
  RecoveryInfo recovery_;

  // Lock order: (store compact_mu_, via fold hook) -> ckpt_mu_ -> seq_mu_ ->
  // store write_mu_ / WAL internals. seq_mu_ makes ordinal assignment, WAL
  // append order, and in-memory apply order one atomic sequence — the
  // prefix property recovery depends on.
  mutable std::mutex seq_mu_;
  int64_t next_ordinal_ = 0;       // seq_mu_
  bool write_disabled_ = false;    // seq_mu_; latched on WAL failure.
  bool enospc_latched_ = false;    // seq_mu_; recoverable disk-full state.
  int64_t active_segment_bytes_ = 0;  // seq_mu_; frame bytes this segment.

  // Checkpoint state; mutated under ckpt_mu_ (OnFold, size rotation,
  // re-arm) and during single-threaded Open.
  mutable std::mutex ckpt_mu_;
  Manifest manifest_;              // Last durably written manifest.
  int64_t rows_folded_total_ = 0;  // In-memory fold cursor (>= manifest's).
  uint64_t active_segment_ = 1;    // Segment currently receiving appends.
  uint64_t next_segment_seq_ = 1;
  std::chrono::steady_clock::time_point last_rearm_attempt_{};  // ckpt_mu_
  // Closed segments still on disk -> end ordinal (one past the last row
  // logged into it). A segment is deletable once end <= manifest rows_folded.
  std::map<uint64_t, int64_t> closed_segment_end_;
  // Closed segments still on disk -> their on-disk bytes, released from the
  // governor's kWalDisk pool when the segment is deleted.
  std::map<uint64_t, int64_t> closed_segment_bytes_;

  // shared_ptr because InsertBatch calls WaitDurable outside seq_mu_ while
  // a concurrent re-arm may swap in a fresh writer: each waiter pins the
  // writer it appended to.
  std::shared_ptr<WalWriter> wal_;
  std::unique_ptr<ingest::IngestStore> store_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace durability
}  // namespace tsunami

#endif  // TSUNAMI_DURABILITY_DURABLE_STORE_H_
