#include "src/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/fault_injection.h"

namespace tsunami {
namespace durability {

namespace {

uint32_t ReadFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Little-endian hosts only, like the rest of the serializer.
}

uint64_t ReadFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool FsyncData(int fd) {
#if defined(__linux__)
  return ::fdatasync(fd) == 0;
#else
  return ::fsync(fd) == 0;
#endif
}

}  // namespace

namespace {

std::string FrameBody(const std::string& body) {
  BinaryWriter frame;
  frame.PutFixed32(static_cast<uint32_t>(body.size()));
  frame.PutFixed64(XxHash64(body, kWalHashSeed));
  std::string out = frame.Release();
  out += body;
  return out;
}

}  // namespace

namespace {

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline char* PutVar(char* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(static_cast<uint8_t>(v));
  return p;
}

}  // namespace

std::string EncodeRowBatchPayload(
    const std::vector<std::vector<Value>>& rows) {
  // The insert hot path: every acked row runs through here, so the payload
  // is built in one allocation with raw varint writes instead of
  // BinaryWriter's byte-at-a-time appends.
  const size_t dims = rows.empty() ? 1 : rows.front().size();
  std::string out;
  out.resize(rows.size() * dims * 10);
  char* p = out.data();
  for (const std::vector<Value>& row : rows) {
    for (Value v : row) p = PutVar(p, Zigzag(v));
  }
  out.resize(static_cast<size_t>(p - out.data()));
  return out;
}

std::string FrameRowBatchPayload(int64_t first_ordinal, size_t row_count,
                                 size_t dims, std::string_view payload) {
  std::string out;
  out.resize(kWalFrameHeaderSize + 1 + 3 * 10 + payload.size());
  char* const body = out.data() + kWalFrameHeaderSize;
  char* p = body;
  *p++ = static_cast<char>(WalRecordType::kRowBatch);
  p = PutVar(p, Zigzag(first_ordinal));
  p = PutVar(p, row_count);
  p = PutVar(p, dims);
  std::memcpy(p, payload.data(), payload.size());
  p += payload.size();
  const uint32_t body_len = static_cast<uint32_t>(p - body);
  out.resize(kWalFrameHeaderSize + body_len);
  const uint64_t hash = XxHash64(
      std::string_view(out.data() + kWalFrameHeaderSize, body_len),
      kWalHashSeed);
  // Little-endian hosts only, matching ReadFixed32/64 above.
  std::memcpy(out.data(), &body_len, sizeof(body_len));
  std::memcpy(out.data() + 4, &hash, sizeof(hash));
  return out;
}

std::string EncodeRowBatchRecord(int64_t first_ordinal,
                                 const std::vector<std::vector<Value>>& rows) {
  // The wire bytes are identical to EncodeWalRecord's (wal_test asserts it).
  return FrameRowBatchPayload(first_ordinal, rows.size(),
                              rows.empty() ? 1 : rows.front().size(),
                              EncodeRowBatchPayload(rows));
}

std::string EncodeWalRecord(const WalRecord& record) {
  BinaryWriter body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutVarI64(record.first_ordinal);
  body.PutVarU64(record.rows.size());
  // Derive the row width from the rows themselves (record.dims is an output
  // of decoding, not an input): a mismatch here would frame a record that
  // fails its own decode.
  body.PutVarU64(record.rows.empty() ? std::max(record.dims, 1)
                                     : record.rows.front().size());
  for (const std::vector<Value>& row : record.rows) {
    for (Value v : row) body.PutVarI64(v);
  }
  return FrameBody(body.buffer());
}

FileError DecodeWalFrame(std::string_view data, size_t* offset,
                         WalRecord* out) {
  const size_t start = *offset;
  if (data.size() - start < kWalFrameHeaderSize) return FileError::kTruncated;
  const uint32_t body_len = ReadFixed32(data.data() + start);
  const uint64_t body_hash = ReadFixed64(data.data() + start + 4);
  // A length beyond the cap is a corrupt header, not an allocation request.
  if (body_len > kMaxWalBodyBytes) return FileError::kChecksumMismatch;
  if (data.size() - start - kWalFrameHeaderSize < body_len) {
    return FileError::kTruncated;
  }
  std::string_view body = data.substr(start + kWalFrameHeaderSize, body_len);
  if (XxHash64(body, kWalHashSeed) != body_hash) {
    return FileError::kChecksumMismatch;
  }

  BinaryReader reader(body);
  WalRecord record;
  uint8_t type = reader.GetU8();
  record.first_ordinal = reader.GetVarI64();
  uint64_t row_count = reader.GetVarU64();
  uint64_t dims = reader.GetVarU64();
  // The hash already vouches for the bytes; these guards only catch encoder
  // bugs, and a mismatch still fails typed instead of allocating wildly.
  if (!reader.ok() || type != static_cast<uint8_t>(WalRecordType::kRowBatch) ||
      dims == 0 || dims > body.size() || row_count > body.size() ||
      row_count * dims > body.size()) {
    return FileError::kChecksumMismatch;
  }
  record.dims = static_cast<int>(dims);
  record.rows.resize(row_count);
  for (uint64_t r = 0; r < row_count; ++r) {
    record.rows[r].resize(dims);
    for (uint64_t d = 0; d < dims; ++d) {
      record.rows[r][d] = reader.GetVarI64();
    }
  }
  if (!reader.ok() || !reader.AtEnd()) return FileError::kChecksumMismatch;
  *out = std::move(record);
  *offset = start + kWalFrameHeaderSize + body_len;
  return FileError::kNone;
}

WalSegmentContents ReadWalSegment(const std::string& path) {
  WalSegmentContents result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.tail_status = FileError::kIoError;
    result.message = "cannot open WAL segment '" + path + "'";
    return result;
  }
  std::string contents;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);

  size_t offset = 0;
  while (offset < contents.size()) {
    WalRecord record;
    FileError status = DecodeWalFrame(contents, &offset, &record);
    if (status == FileError::kNone) {
      result.records.push_back(std::move(record));
      continue;
    }
    result.tail_status = status;
    result.tail_offset = offset;
    result.message =
        "'" + path + "': " +
        (status == FileError::kTruncated ? "record torn (truncated)"
                                         : "record checksum mismatch") +
        " at offset " + std::to_string(offset) + " of " +
        std::to_string(contents.size()) + " bytes";
    return result;
  }
  result.tail_offset = contents.size();
  return result;
}

WalWriter::WalWriter(const std::string& path, const WalWriterOptions& options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!OpenLocked(path)) {
    failed_ = true;
    return;
  }
  if (options_.background) {
    committer_ = std::thread([this] { CommitterLoop(); });
  }
}

WalWriter::~WalWriter() { Close(); }

bool WalWriter::OpenLocked(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  fd_ = fd;
  path_ = path;
  return true;
}

bool WalWriter::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_ && !closed_;
}

bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

WalFailure WalWriter::failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_;
}

uint64_t WalWriter::Append(std::string frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || closed_) return 0;
  uint64_t lsn = next_lsn_++;
  queue_.push_back(Pending{lsn, std::move(frame)});
  ++stats_.appends;
  pending_cv_.notify_one();
  return lsn;
}

bool WalWriter::WaitDurable(uint64_t lsn) {
  if (lsn == 0) return false;
  std::unique_lock<std::mutex> lock(mu_);
  durable_cv_.wait(lock, [&] { return failed_ || durable_lsn_ >= lsn; });
  // Once durable, always durable — even if the log failed afterwards.
  return durable_lsn_ >= lsn;
}

void WalWriter::FailLocked(WalFailure reason) {
  failed_ = true;
  if (failure_ == WalFailure::kNone) failure_ = reason;
  queue_.clear();
  durable_cv_.notify_all();
  pending_cv_.notify_all();
}

bool WalWriter::CommitLocked(std::unique_lock<std::mutex>& lock) {
  // Caller holds mu_ and has checked !committing_. The I/O runs with mu_
  // dropped so writers keep enqueueing the next group meanwhile; committing_
  // keeps two commits from interleaving their writes.
  if (failed_) return false;
  if (queue_.empty()) return true;
  committing_ = true;

  // Take the group out of the queue with pointer moves only; the byte
  // concatenation happens after the lock drops so writers keep appending at
  // full speed while the group is assembled and written.
  std::vector<std::string> frames;
  uint64_t last_lsn = 0;
  size_t group_bytes = 0;
  while (!queue_.empty() && group_bytes < options_.max_group_bytes) {
    group_bytes += queue_.front().frame.size();
    last_lsn = queue_.front().lsn;
    frames.push_back(std::move(queue_.front().frame));
    queue_.pop_front();
  }
  const int64_t group_records = static_cast<int64_t>(frames.size());
  const int fd = fd_;
  lock.unlock();

  std::string buffer;
  buffer.reserve(group_bytes);
  for (const std::string& frame : frames) buffer += frame;

  // Fault site: a crash tears the group mid-write. Only a prefix of the
  // buffer reaches the file (param = bytes kept, default half) and the log
  // fails — exactly what replay's torn-tail tolerance must absorb.
  size_t to_write = buffer.size();
  bool torn = false;
  if (TSUNAMI_FAULT_FIRES("wal.torn_write", buffer.size())) {
    int64_t keep = fault::Param("wal.torn_write");
    if (keep < 0 || keep >= static_cast<int64_t>(buffer.size())) {
      keep = static_cast<int64_t>(buffer.size() / 2);
    }
    to_write = static_cast<size_t>(keep);
    torn = true;
  }

  bool wrote = true;
  bool no_space = false;
  size_t written = 0;
  // Fault site: the filesystem fills up under the group write. Nothing
  // reaches the file; the log fails closed with a *recoverable* reason so
  // the durable store can re-arm once space frees.
  if (TSUNAMI_FAULT_FIRES("fs.enospc", kEnospcWalWrite)) {
    wrote = false;
    no_space = true;
  }
  while (wrote && written < to_write) {
    ssize_t r = ::write(fd, buffer.data() + written, to_write - written);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      if (r < 0 && errno == ENOSPC) no_space = true;
      wrote = false;
      break;
    }
    written += static_cast<size_t>(r);
  }

  bool synced = false;
  bool fsync_failed = false;
  if (wrote && !torn) {
    // Fault sites: the device lied or died at fsync (wal.fsync_fail), or
    // the delayed-allocation write only surfaces ENOSPC at sync time
    // (fs.enospc). Fail closed either way — nothing past durable_lsn_ may
    // ever be acked.
    if (TSUNAMI_FAULT_FIRES("wal.fsync_fail", last_lsn)) {
      fsync_failed = true;
    } else if (TSUNAMI_FAULT_FIRES("fs.enospc", kEnospcWalFsync)) {
      fsync_failed = true;
      no_space = true;
    } else if (options_.fsync) {
      errno = 0;
      synced = FsyncData(fd);
      fsync_failed = !synced;
      if (fsync_failed && errno == ENOSPC) no_space = true;
    } else {
      synced = true;
    }
  }

  lock.lock();
  committing_ = false;
  stats_.bytes_written += static_cast<int64_t>(written);
  if (torn) ++stats_.torn_writes;
  if (fsync_failed) ++stats_.fsync_failures;
  if (no_space) ++stats_.enospc_failures;
  bool success = wrote && !torn && synced;
  if (success) {
    durable_lsn_ = last_lsn;
    stats_.records_committed += group_records;
    ++stats_.group_commits;
    if (group_records > stats_.max_group_records) {
      stats_.max_group_records = group_records;
    }
    durable_cv_.notify_all();
  } else {
    FailLocked(no_space ? WalFailure::kNoSpace
                        : torn ? WalFailure::kTornWrite : WalFailure::kIoError);
  }
  return success;
}

bool WalWriter::CommitPending() {
  std::unique_lock<std::mutex> lock(mu_);
  // Also wait out an in-flight group: its frames left the queue already,
  // but they are not durable (and not counted) until it completes.
  while (!failed_ && (!queue_.empty() || committing_)) {
    if (committing_) {
      durable_cv_.wait(lock);
      continue;
    }
    CommitLocked(lock);
  }
  return !failed_;
}

bool WalWriter::RotateTo(const std::string& new_path) {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain into the old segment so the boundary is exact — including any
  // in-flight group, which is still writing to the fd about to be closed.
  // The caller serializes rotation against new appends (the durable store
  // holds its sequencer lock), so this terminates.
  while (!failed_ && (!queue_.empty() || committing_)) {
    if (committing_) {
      durable_cv_.wait(lock);
      continue;
    }
    CommitLocked(lock);
  }
  if (failed_ || closed_) return false;
  ::close(fd_);
  fd_ = -1;
  if (!OpenLocked(new_path)) {
    FailLocked(errno == ENOSPC ? WalFailure::kNoSpace : WalFailure::kIoError);
    return false;
  }
  return true;
}

void WalWriter::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return;
  // Best-effort final flush (waiting out any in-flight group), then refuse
  // further appends.
  while (!failed_ && (!queue_.empty() || committing_)) {
    if (committing_) {
      durable_cv_.wait(lock);
      continue;
    }
    CommitLocked(lock);
  }
  closed_ = true;
  stop_ = true;
  pending_cv_.notify_all();
  lock.unlock();
  if (committer_.joinable()) committer_.join();
  lock.lock();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

const std::string& WalWriter::path() const { return path_; }

WalWriter::Stats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WalWriter::CommitterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    pending_cv_.wait(lock, [&] {
      return stop_ || failed_ || (!queue_.empty() && !committing_);
    });
    if (stop_ || failed_) return;
    if (options_.max_commit_delay_micros > 0) {
      // Latency shaping: hold the group open briefly so concurrent writers
      // land in this fsync instead of the next one. New appends notify
      // pending_cv_, but the predicate only releases the wait on stop/fail,
      // so the full delay elapses (bounded ack latency, bigger groups).
      const size_t before = queue_.size();
      pending_cv_.wait_for(
          lock, std::chrono::microseconds(options_.max_commit_delay_micros),
          [&] { return stop_ || failed_; });
      if (stop_ || failed_) return;
      if (committing_) continue;  // A manual CommitPending took the group.
      if (queue_.empty()) continue;
      if (queue_.size() > before) ++stats_.delayed_commits;
    }
    CommitLocked(lock);
  }
}

}  // namespace durability
}  // namespace tsunami
