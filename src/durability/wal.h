// Write-ahead log for the ingest path (ROADMAP "Durable ingest"): hash-framed
// row-batch records appended to segment files, committed by a dedicated
// log-writer thread doing fsync'd group commit. Writers enqueue a framed
// record and receive an LSN; the committer coalesces everything pending into
// one write+fsync and releases acks at the durable LSN, so N concurrent
// writers share one fsync instead of paying one each.
//
// Record framing within a segment (all little-endian):
//   fixed32 body_len | fixed64 XxHash64(body, kWalHashSeed) | body
// body:
//   u8 record type | varint first_ordinal | varint row_count | varint dims |
//   row-major zigzag-varint values
//
// The frame hash (not a CRC over the whole file) is what makes the tail
// torn-tolerant: a crash mid-append leaves either a partial frame
// (kTruncated: fewer bytes than the header promises) or a complete frame
// with garbage bytes (kChecksumMismatch). Replay treats both as the clean
// end of the log — records before the tear are intact because commits are
// sequential appends and an ack is only released after fsync.
//
// Fault sites (src/common/fault_injection.h):
//   wal.torn_write  — the group write stops after a prefix of the buffer
//                     (param = bytes to keep, default half) and the log
//                     fails: simulates a crash tearing the tail.
//   wal.fsync_fail  — fsync reports failure; the log fails closed: every
//                     pending and future ack returns false, nothing is ever
//                     acked that is not on stable storage.
//   fs.enospc       — the write (match_arg kEnospcWalWrite) or fsync
//                     (kEnospcWalFsync) path reports ENOSPC. The log fails
//                     closed like any other I/O failure, but records
//                     failure() == kNoSpace so the durable store can latch
//                     a *recoverable* disk-full state and re-arm with a
//                     fresh writer once a checkpoint drains the backlog.
#ifndef TSUNAMI_DURABILITY_WAL_H_
#define TSUNAMI_DURABILITY_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/io/serializer.h"

namespace tsunami {
namespace durability {

/// Seed for the per-record XxHash64 frame hash, so WAL frames never verify
/// against hashes computed for storage blocks.
inline constexpr uint64_t kWalHashSeed = 0x57414C21;  // "WAL!"

/// fixed32 body length + fixed64 body hash.
inline constexpr size_t kWalFrameHeaderSize = 4 + 8;

/// Upper bound on one record body; a corrupt length prefix larger than this
/// is treated as a torn/corrupt tail rather than an allocation request.
inline constexpr uint32_t kMaxWalBodyBytes = 64u << 20;

enum class WalRecordType : uint8_t {
  kRowBatch = 1,
};

/// match_arg values for the `fs.enospc` fault site — one per filesystem
/// call site that can hit a full disk. Arming with match_arg = -1 fires at
/// every site.
enum EnospcSite : int64_t {
  kEnospcWalWrite = 0,
  kEnospcWalFsync = 1,
  kEnospcCheckpointRename = 2,
  kEnospcManifestWrite = 3,
};

/// Why the log failed (latched; kNone while healthy). kNoSpace is the one
/// recoverable cause: the durable store keeps serving reads, fails acks
/// closed, and re-arms with a fresh writer once a checkpoint has drained
/// everything the dead log covered.
enum class WalFailure : uint8_t {
  kNone = 0,
  kTornWrite,  // Injected torn group write (wal.torn_write).
  kIoError,    // write/fsync/open failed for a non-ENOSPC reason.
  kNoSpace,    // ENOSPC (real errno or injected fs.enospc).
};

/// One logical WAL record: a batch of rows with the global insert ordinal of
/// its first row. Ordinals are assigned in ingestion order, so recovery can
/// skip exactly the rows a durable checkpoint already folded (the manifest's
/// replay cursor) — even when a batch straddles the fold boundary.
struct WalRecord {
  WalRecordType type = WalRecordType::kRowBatch;
  int64_t first_ordinal = 0;
  int dims = 0;
  std::vector<std::vector<Value>> rows;
};

/// Encodes `record` as a framed byte string ready for WalWriter::Append.
std::string EncodeWalRecord(const WalRecord& record);

/// Frames a row batch directly (no WalRecord materialization — the hot
/// insert path uses this).
std::string EncodeRowBatchRecord(int64_t first_ordinal,
                                 const std::vector<std::vector<Value>>& rows);

/// The ordinal-independent part of a row-batch body (the row-major zigzag
/// varints). Writers build this OUTSIDE the insert sequencer lock — it is
/// the expensive part of framing, and nothing in it depends on the ordinal
/// the batch will be assigned — then hand it to FrameRowBatchPayload inside
/// the lock, which only writes the short prefix and one memcpy.
std::string EncodeRowBatchPayload(const std::vector<std::vector<Value>>& rows);

/// Completes a frame from a pre-encoded payload: prepends the record
/// prefix (type, first_ordinal, row_count, dims) and the hash header.
/// Byte-identical to EncodeRowBatchRecord on the same rows.
std::string FrameRowBatchPayload(int64_t first_ordinal, size_t row_count,
                                 size_t dims, std::string_view payload);

/// Decodes the frame starting at `data[*offset]`. On success advances
/// `*offset` past the frame and returns FileError::kNone. kTruncated means
/// the bytes end mid-frame; kChecksumMismatch means a complete frame whose
/// body fails its hash (or decodes to a malformed record). `*offset` is left
/// at the frame start on failure.
FileError DecodeWalFrame(std::string_view data, size_t* offset,
                         WalRecord* out);

/// Result of scanning one segment file front to back.
struct WalSegmentContents {
  std::vector<WalRecord> records;   // Every intact record, in order.
  FileError tail_status = FileError::kNone;  // kNone = clean end of file.
  size_t tail_offset = 0;           // Byte offset where reading stopped.
  std::string message;              // Human-readable cause when not kNone.
};

/// Reads every intact record of the segment at `path`. A torn or corrupt
/// tail ends the read cleanly (records before it are returned, tail_status
/// says why and at which offset); a missing/unreadable file is kIoError.
WalSegmentContents ReadWalSegment(const std::string& path);

struct WalWriterOptions {
  /// fsync (fdatasync) every group commit. Off = page-cache-only commits;
  /// useful to isolate the fsync cost in benchmarks, never durable.
  bool fsync = true;
  /// Run the committer on a dedicated thread. Off = manual mode: nothing
  /// commits until CommitPending(), which tests use to control grouping
  /// deterministically.
  bool background = true;
  /// Cap on bytes coalesced into one group write.
  size_t max_group_bytes = size_t{4} << 20;
  /// Group-commit latency shaping: after the first record of a group
  /// arrives, the background committer waits up to this long for more
  /// records before issuing the write+fsync, trading sync-ack p50 for more
  /// acks per fsync under light concurrency. 0 (default) commits as soon
  /// as the committer wakes — the lowest-latency behavior. Ignored in
  /// manual mode (CommitPending commits immediately either way).
  uint32_t max_commit_delay_micros = 0;
};

/// Append-only writer for one-or-more WAL segments with group commit.
///
/// Thread-safe. Append() never blocks on I/O; WaitDurable() blocks until the
/// record's LSN is on stable storage or the log has failed. The log fails
/// closed and latched: after a torn write or fsync failure, every pending
/// and future WaitDurable returns false and Append returns 0. A failed log
/// never revives in-process — recovery happens by reopening the directory.
class WalWriter {
 public:
  explicit WalWriter(const std::string& path,
                     const WalWriterOptions& options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// False when the segment could not be opened or the log has failed.
  bool ok() const;
  bool failed() const;
  /// Why the log failed (kNone while healthy). Latched with failed_.
  WalFailure failure() const;

  /// Enqueues one framed record (from EncodeWalRecord) and returns its LSN
  /// (1-based, monotone across rotations). Returns 0 if the log has failed.
  uint64_t Append(std::string frame);

  /// Blocks until every record with LSN <= `lsn` is written and fsync'd.
  /// True = durable; false = the log failed first (fail closed: the bytes
  /// may or may not be on disk, so the caller must not ack).
  bool WaitDurable(uint64_t lsn);

  /// Synchronously commits everything currently enqueued (one group write +
  /// fsync). The only commit path in manual mode; safe to call in background
  /// mode too. True unless the log failed.
  bool CommitPending();

  /// Commits and fsyncs everything pending into the current segment, closes
  /// it, and switches appends to `new_path`. LSNs keep counting. Returns
  /// false (and fails the log) if the flush, close, or open fails. Used by
  /// checkpointing so the manifest can name an exact segment boundary.
  bool RotateTo(const std::string& new_path);

  /// Flushes pending records, fsyncs, and closes the file. Further appends
  /// fail. Called by the destructor.
  void Close();

  uint64_t durable_lsn() const;
  uint64_t last_lsn() const;
  const std::string& path() const;

  struct Stats {
    int64_t appends = 0;           // Records enqueued.
    int64_t records_committed = 0;
    int64_t group_commits = 0;     // write+fsync batches issued.
    int64_t max_group_records = 0; // Largest single group.
    int64_t bytes_written = 0;
    int64_t fsync_failures = 0;    // Includes injected wal.fsync_fail.
    int64_t torn_writes = 0;       // Injected wal.torn_write fires.
    int64_t enospc_failures = 0;   // ENOSPC hits (real or injected).
    int64_t delayed_commits = 0;   // Groups shaped by max_commit_delay.
  };
  Stats stats() const;

 private:
  struct Pending {
    uint64_t lsn;
    std::string frame;
  };

  bool OpenLocked(const std::string& path);
  // Writes + fsyncs every queued record; updates durable_lsn_ and stats.
  // Both mu_ and commit_mu_ rules: see the .cc.
  bool CommitLocked(std::unique_lock<std::mutex>& lock);
  void FailLocked(WalFailure reason);
  void CommitterLoop();

  WalWriterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable pending_cv_;   // Signals the committer.
  std::condition_variable durable_cv_;   // Signals WaitDurable callers.
  std::deque<Pending> queue_;
  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  bool failed_ = false;
  WalFailure failure_ = WalFailure::kNone;
  bool closed_ = false;
  bool stop_ = false;
  bool committing_ = false;  // A CommitLocked is in flight (drops mu_ for IO).
  Stats stats_;

  std::thread committer_;
};

}  // namespace durability
}  // namespace tsunami

#endif  // TSUNAMI_DURABILITY_WAL_H_
