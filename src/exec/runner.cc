#include "src/exec/runner.h"

#include "src/common/stats.h"

namespace tsunami {

std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ThreadPool* pool) {
  std::vector<QueryResult> results(workload.size());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < workload.size(); ++i) {
      results[i] = index.Execute(workload[i]);
    }
    return results;
  }
  pool->ParallelFor(0, static_cast<int64_t>(workload.size()), 4,
                    [&](int64_t i) { results[i] = index.Execute(workload[i]); });
  return results;
}

WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload,
                                 ThreadPool* pool) {
  WorkloadRunStats stats;
  Timer timer;
  std::vector<QueryResult> results = RunWorkload(index, workload, pool);
  stats.total_seconds = timer.ElapsedSeconds();
  if (!workload.empty()) {
    stats.avg_query_micros = stats.total_seconds * 1e6 / workload.size();
  }
  for (const QueryResult& r : results) {
    stats.total_scanned += r.scanned;
    stats.total_matched += r.matched;
    stats.total_cell_ranges += r.cell_ranges;
  }
  return stats;
}

}  // namespace tsunami
