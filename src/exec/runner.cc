#include "src/exec/runner.h"

#include <algorithm>

#include "src/common/stats.h"
#include "src/exec/task_scheduler.h"

namespace tsunami {

std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ThreadPool* pool) {
  std::vector<QueryResult> results(workload.size());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < workload.size(); ++i) {
      results[i] = index.Execute(workload[i]);
    }
    return results;
  }
  pool->ParallelFor(0, static_cast<int64_t>(workload.size()), 4,
                    [&](int64_t i) { results[i] = index.Execute(workload[i]); });
  return results;
}

QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ThreadPool* pool,
                              const ScanOptions& options) {
  ExecContext ctx(pool, options);
  return ExecuteRangeTasks(store, tasks, query, ctx);
}

std::vector<std::vector<RangeTask>> ChunkRangeTasks(
    std::span<const RangeTask> tasks, int64_t target_rows) {
  const int64_t target = std::max<int64_t>(target_rows, kScanBlockRows);
  std::vector<std::vector<RangeTask>> chunks;
  chunks.emplace_back();
  int64_t chunk_rows = 0;
  auto emit = [&](RangeTask task) {
    while (task.end - task.begin + chunk_rows > target) {
      int64_t take = target - chunk_rows;
      // Round the split point down to a block boundary (but always make
      // progress) so neither side scans a partial block unnecessarily.
      int64_t split = task.begin + take;
      split -= split % kScanBlockRows;
      if (split <= task.begin) split = task.begin + take;
      chunks.back().push_back(RangeTask{task.begin, split, task.exact});
      chunks.emplace_back();
      chunk_rows = 0;
      task.begin = split;
    }
    chunks.back().push_back(task);
    chunk_rows += task.end - task.begin;
    if (chunk_rows >= target) {
      chunks.emplace_back();
      chunk_rows = 0;
    }
  };
  for (const RangeTask& task : tasks) {
    if (task.begin < task.end) emit(task);
  }
  if (chunks.back().empty()) chunks.pop_back();
  return chunks;
}

QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ExecContext& ctx) {
  ThreadPool* pool = ctx.pool;
  QueryResult total = InitResult(query);
  int64_t total_rows = 0;
  for (const RangeTask& task : tasks) total_rows += task.end - task.begin;
  const int threads =
      pool != nullptr ? pool->num_threads()
                      : (ctx.scheduler != nullptr
                             ? ctx.scheduler->num_threads()
                             : 0);
  // Below ~4 blocks per thread the merge and dispatch overhead exceeds the
  // scan itself; run the batch inline. The stop probe rides in the scan
  // options, so cancellation lands between tasks and mid-task.
  if (threads <= 1 || total_rows < threads * 4 * kScanBlockRows) {
    store.ScanRanges(tasks, query, &total, ctx.CancellableScan());
    return total;
  }
  // Row-balanced chunks, ~4 per thread. Chunks cover disjoint rows, so
  // partials merge exactly.
  const int64_t target = (total_rows + threads * 4 - 1) / (threads * 4);
  std::vector<std::vector<RangeTask>> chunks = ChunkRangeTasks(tasks, target);
  std::vector<QueryResult> partials(chunks.size());
  auto run_chunk = [&](int64_t i) {
    partials[i] = InitResult(query);
    // Cancellation boundary: whole chunks are skipped once the flag is
    // seen (partials stay exact for the chunks that did run); inside a
    // chunk the probe stops at the next block-aligned slice.
    if (ctx.ShouldStop()) return;
    store.ScanRanges(chunks[i], query, &partials[i], ctx.CancellableScan());
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, static_cast<int64_t>(chunks.size()), 1, run_chunk);
  } else {
    // Scheduler path: the chunks join the shared work-stealing deques, so
    // a concurrent caller's idle workers pick them up too.
    TaskScheduler::JobRef job = ctx.scheduler->Submit(
        static_cast<int64_t>(chunks.size()),
        [&](int64_t i, int) { run_chunk(i); }, ctx.priority);
    ctx.scheduler->Wait(job);
  }
  for (const QueryResult& partial : partials) {
    MergeQueryResults(query, partial, &total);
  }
  return total;
}

std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ExecContext& ctx) {
  return index.ExecuteBatch(
      std::span<const Query>(workload.data(), workload.size()), ctx);
}

WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload, ExecContext& ctx) {
  WorkloadRunStats stats;
  Timer timer;
  std::vector<QueryResult> results = RunWorkload(index, workload, ctx);
  stats.total_seconds = timer.ElapsedSeconds();
  if (!workload.empty()) {
    stats.avg_query_micros = stats.total_seconds * 1e6 / workload.size();
  }
  for (const QueryResult& r : results) {
    stats.total_scanned += r.scanned;
    stats.total_matched += r.matched;
    stats.total_cell_ranges += r.cell_ranges;
  }
  return stats;
}

WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload,
                                 ThreadPool* pool) {
  WorkloadRunStats stats;
  Timer timer;
  std::vector<QueryResult> results = RunWorkload(index, workload, pool);
  stats.total_seconds = timer.ElapsedSeconds();
  if (!workload.empty()) {
    stats.avg_query_micros = stats.total_seconds * 1e6 / workload.size();
  }
  for (const QueryResult& r : results) {
    stats.total_scanned += r.scanned;
    stats.total_matched += r.matched;
    stats.total_cell_ranges += r.cell_ranges;
  }
  return stats;
}

}  // namespace tsunami
