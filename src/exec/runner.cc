#include "src/exec/runner.h"

#include <algorithm>

#include "src/common/stats.h"

namespace tsunami {

std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ThreadPool* pool) {
  std::vector<QueryResult> results(workload.size());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < workload.size(); ++i) {
      results[i] = index.Execute(workload[i]);
    }
    return results;
  }
  pool->ParallelFor(0, static_cast<int64_t>(workload.size()), 4,
                    [&](int64_t i) { results[i] = index.Execute(workload[i]); });
  return results;
}

QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ThreadPool* pool,
                              const ScanOptions& options) {
  ExecContext ctx(pool, options);
  return ExecuteRangeTasks(store, tasks, query, ctx);
}

QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ExecContext& ctx) {
  ThreadPool* pool = ctx.pool;
  const ScanOptions& options = ctx.scan;
  QueryResult total = InitResult(query);
  int64_t total_rows = 0;
  for (const RangeTask& task : tasks) total_rows += task.end - task.begin;
  const int threads = pool == nullptr ? 0 : pool->num_threads();
  // Below ~4 blocks per thread the merge and dispatch overhead exceeds the
  // scan itself; run the batch inline (cancellation checked between tasks).
  if (threads <= 1 || total_rows < threads * 4 * kScanBlockRows) {
    const bool cancellable =
        ctx.cancel != nullptr || ctx.deadline_seconds > 0.0;
    if (!cancellable) {
      store.ScanRanges(tasks, query, &total, options);
      return total;
    }
    for (const RangeTask& task : tasks) {
      if (ctx.ShouldStop()) break;
      store.ScanRanges({&task, 1}, query, &total, options);
    }
    return total;
  }
  // Row-balanced chunks: split the batch (and any oversized task, at block
  // boundaries so full-block zone-map paths stay aligned) into ~4 chunks
  // per thread. Chunks cover disjoint rows, so partials merge exactly.
  const int64_t target = std::max<int64_t>(
      kScanBlockRows, (total_rows + threads * 4 - 1) / (threads * 4));
  std::vector<std::vector<RangeTask>> chunks;
  chunks.emplace_back();
  int64_t chunk_rows = 0;
  auto emit = [&](RangeTask task) {
    while (task.end - task.begin + chunk_rows > target) {
      int64_t take = target - chunk_rows;
      // Round the split point down to a block boundary (but always make
      // progress) so neither side scans a partial block unnecessarily.
      int64_t split = task.begin + take;
      split -= split % kScanBlockRows;
      if (split <= task.begin) split = task.begin + take;
      chunks.back().push_back(RangeTask{task.begin, split, task.exact});
      chunks.emplace_back();
      chunk_rows = 0;
      task.begin = split;
    }
    chunks.back().push_back(task);
    chunk_rows += task.end - task.begin;
    if (chunk_rows >= target) {
      chunks.emplace_back();
      chunk_rows = 0;
    }
  };
  for (const RangeTask& task : tasks) {
    if (task.begin < task.end) emit(task);
  }
  if (chunks.back().empty()) chunks.pop_back();

  std::vector<QueryResult> partials(chunks.size());
  pool->ParallelFor(0, static_cast<int64_t>(chunks.size()), 1,
                    [&](int64_t i) {
                      partials[i] = InitResult(query);
                      // Cancellation boundary: whole chunks are skipped
                      // once the flag is seen (partials stay exact for the
                      // chunks that did run).
                      if (ctx.ShouldStop()) return;
                      store.ScanRanges(chunks[i], query, &partials[i],
                                       options);
                    });
  for (const QueryResult& partial : partials) {
    MergeQueryResults(query, partial, &total);
  }
  return total;
}

std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ExecContext& ctx) {
  return index.ExecuteBatch(
      std::span<const Query>(workload.data(), workload.size()), ctx);
}

WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload, ExecContext& ctx) {
  WorkloadRunStats stats;
  Timer timer;
  std::vector<QueryResult> results = RunWorkload(index, workload, ctx);
  stats.total_seconds = timer.ElapsedSeconds();
  if (!workload.empty()) {
    stats.avg_query_micros = stats.total_seconds * 1e6 / workload.size();
  }
  for (const QueryResult& r : results) {
    stats.total_scanned += r.scanned;
    stats.total_matched += r.matched;
    stats.total_cell_ranges += r.cell_ranges;
  }
  return stats;
}

WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload,
                                 ThreadPool* pool) {
  WorkloadRunStats stats;
  Timer timer;
  std::vector<QueryResult> results = RunWorkload(index, workload, pool);
  stats.total_seconds = timer.ElapsedSeconds();
  if (!workload.empty()) {
    stats.avg_query_micros = stats.total_seconds * 1e6 / workload.size();
  }
  for (const QueryResult& r : results) {
    stats.total_scanned += r.scanned;
    stats.total_matched += r.matched;
    stats.total_cell_ranges += r.cell_ranges;
  }
  return stats;
}

}  // namespace tsunami
