// Batch workload execution over any index, optionally in parallel. Built
// indexes are immutable and their Execute() paths are thread-safe, so
// queries parallelize without coordination.
#ifndef TSUNAMI_EXEC_RUNNER_H_
#define TSUNAMI_EXEC_RUNNER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/exec/thread_pool.h"
#include "src/storage/column_store.h"

namespace tsunami {

/// Per-run aggregate counters.
struct WorkloadRunStats {
  double total_seconds = 0.0;
  double avg_query_micros = 0.0;
  int64_t total_scanned = 0;
  int64_t total_matched = 0;
  int64_t total_cell_ranges = 0;
};

/// Executes every query, in workload order. With a non-null pool the
/// queries are spread across its threads; results are positionally stable
/// either way.
std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ThreadPool* pool = nullptr);

/// Batch-API variant: executes the workload through the index's
/// ExecuteBatch with `ctx` (pool, scan options, cancellation, stats).
std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ExecContext& ctx);

/// Executes and times the workload, returning aggregate counters.
WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload,
                                 ThreadPool* pool = nullptr);

/// Batch-API variant of MeasureWorkload: times one ExecuteBatch call.
WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload, ExecContext& ctx);

/// Splits a RangeTask batch into row-balanced chunks of roughly
/// `target_rows` rows each, cutting oversized tasks at zone-map block
/// boundaries (so full-block fast paths stay aligned and any re-split is
/// bit-identical). Chunks cover disjoint rows in submission order — the
/// shared decomposition for the pool executor below and for QueryService's
/// per-query scheduler jobs.
std::vector<std::vector<RangeTask>> ChunkRangeTasks(
    std::span<const RangeTask> tasks, int64_t target_rows);

/// Batched multi-range executor: scans every planned RangeTask against the
/// store, splitting the batch into row-balanced chunks across the pool's
/// threads (large tasks are split at zone-map block boundaries). Each
/// thread accumulates a private partial QueryResult; partials are merged
/// exactly once, so the result is bit-identical to a serial ScanRanges for
/// any thread count. Does not touch cell_ranges (the planner counts runs).
QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ThreadPool* pool,
                              const ScanOptions& options = {});

/// ExecContext-aware variant: scans through ctx's pool (or, when the
/// context carries a TaskScheduler instead, through the shared
/// work-stealing deques — chunks of concurrent callers interleave and idle
/// workers steal) and honors cooperative cancellation: the deadline/flag
/// is probed between chunks *and* mid-chunk at block-aligned slices
/// (ScanOptions::stop_probe), so even one giant scan stops promptly — a
/// cancelled call returns the partial accumulated so far.
QueryResult ExecuteRangeTasks(const ColumnStore& store,
                              std::span<const RangeTask> tasks,
                              const Query& query, ExecContext& ctx);

}  // namespace tsunami

#endif  // TSUNAMI_EXEC_RUNNER_H_
