// Batch workload execution over any index, optionally in parallel. Built
// indexes are immutable and their Execute() paths are thread-safe, so
// queries parallelize without coordination.
#ifndef TSUNAMI_EXEC_RUNNER_H_
#define TSUNAMI_EXEC_RUNNER_H_

#include <cstdint>
#include <vector>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/exec/thread_pool.h"

namespace tsunami {

/// Per-run aggregate counters.
struct WorkloadRunStats {
  double total_seconds = 0.0;
  double avg_query_micros = 0.0;
  int64_t total_scanned = 0;
  int64_t total_matched = 0;
  int64_t total_cell_ranges = 0;
};

/// Executes every query, in workload order. With a non-null pool the
/// queries are spread across its threads; results are positionally stable
/// either way.
std::vector<QueryResult> RunWorkload(const MultiDimIndex& index,
                                     const Workload& workload,
                                     ThreadPool* pool = nullptr);

/// Executes and times the workload, returning aggregate counters.
WorkloadRunStats MeasureWorkload(const MultiDimIndex& index,
                                 const Workload& workload,
                                 ThreadPool* pool = nullptr);

}  // namespace tsunami

#endif  // TSUNAMI_EXEC_RUNNER_H_
