#include "src/exec/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/common/fault_injection.h"

namespace tsunami {

TaskScheduler::TaskScheduler(int threads) {
  if (threads <= 0) return;
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::unique_lock<std::mutex> lock(sleep_mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

TaskScheduler::JobRef TaskScheduler::Submit(
    int64_t num_chunks, std::function<void(int64_t, int)> fn, int priority) {
  JobRef job = std::make_shared<Job>();
  job->fn_ = std::move(fn);
  jobs_.fetch_add(1, std::memory_order_relaxed);
  if (num_chunks <= 0) {
    job->done_.store(true, std::memory_order_release);
    return job;
  }
  job->remaining_.store(num_chunks, std::memory_order_relaxed);
  if (workers_.empty()) {
    // Inline scheduler: run every chunk on the submitting thread, in order.
    for (int64_t c = 0; c < num_chunks; ++c) RunTask(Task{job, c}, 0);
    return job;
  }
  // Round-robin the chunks across the deques, starting where the previous
  // submission stopped so small jobs do not pile onto worker 0. Stealing
  // makes the initial placement a hint, not an assignment.
  const int n = num_threads();
  uint64_t start = next_worker_.fetch_add(static_cast<uint64_t>(num_chunks),
                                          std::memory_order_relaxed);
  for (int64_t c = 0; c < num_chunks; ++c) {
    Worker& w = *workers_[(start + static_cast<uint64_t>(c)) % n];
    std::unique_lock<std::mutex> lock(w.mu);
    if (priority > 0) {
      w.deque.push_front(Task{job, c});
    } else {
      w.deque.push_back(Task{job, c});
    }
    // Counted under the same mutex as the push (and decremented under it
    // on pop/steal in NextTask), so the queue_depth() gauge can never read
    // negative: per deque, a chunk's decrement is ordered after its
    // increment.
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Empty sleep-mutex section before notifying: a worker that evaluated
    // the sleep predicate as false before our increments must either have
    // blocked already (and receive the notify) or re-evaluate after this
    // fence (and see the count) — never neither (the classic lost wakeup).
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  if (num_chunks == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  return job;
}

void TaskScheduler::Wait(const JobRef& job) {
  if (job->finished()) return;
  std::unique_lock<std::mutex> lock(job->mu_);
  job->cv_.wait(lock, [&] { return job->finished(); });
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.boosts = boosts_.load(std::memory_order_relaxed);
  s.task_failures = task_failures_.load(std::memory_order_relaxed);
  return s;
}

void TaskScheduler::Boost(const JobRef& job) {
  if (job == nullptr || job->finished() || workers_.empty()) return;
  bool moved = false;
  for (std::unique_ptr<Worker>& wp : workers_) {
    Worker& w = *wp;
    std::unique_lock<std::mutex> lock(w.mu);
    // Stable partition keeps both the job's chunks and the rest in their
    // existing relative order; only the boundary between them moves.
    auto mid = std::stable_partition(
        w.deque.begin(), w.deque.end(),
        [&job](const Task& t) { return t.job == job; });
    moved = moved || mid != w.deque.begin();
  }
  if (moved) boosts_.fetch_add(1, std::memory_order_relaxed);
}

bool TaskScheduler::NextTask(int id, Task* out) {
  // Own deque first (front: the oldest of our queued chunks, or a
  // just-submitted high-priority one).
  {
    Worker& own = *workers_[id];
    std::unique_lock<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      *out = std::move(own.deque.front());
      own.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from the back of the first non-empty victim, scanning clockwise
  // from our neighbor so contended victims rotate.
  const int n = num_threads();
  for (int i = 1; i < n; ++i) {
    Worker& victim = *workers_[(id + i) % n];
    std::unique_lock<std::mutex> lock(victim.mu);
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.back());
      victim.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskScheduler::RunTask(const Task& task, int worker) {
  try {
    // Fault sites: a chunk that throws (exercises the failed-job path) and
    // a worker that stalls mid-chunk (exercises deadline enforcement and
    // stealing under stragglers).
    if (TSUNAMI_FAULT_FIRES("sched.task_throw", task.chunk)) {
      throw std::runtime_error("injected task fault");
    }
    if (TSUNAMI_FAULT_FIRES("sched.stall", task.chunk)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    task.job->fn_(task.chunk, worker);
  } catch (...) {
    // Swallow: the worker survives, the job completes (below) but is
    // marked failed so the caller knows its partials are untrustworthy.
    task.job->failed_.store(true, std::memory_order_release);
    task_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  chunks_.fetch_add(1, std::memory_order_relaxed);
  if (task.job->remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last chunk: publish completion under the job mutex so a waiter
    // cannot check finished(), sleep, and miss the notify.
    std::unique_lock<std::mutex> lock(task.job->mu_);
    task.job->done_.store(true, std::memory_order_release);
    task.job->cv_.notify_all();
  }
}

void TaskScheduler::WorkerLoop(int id) {
  for (;;) {
    Task task;
    if (NextTask(id, &task)) {
      RunTask(task, id);
      task = Task{};  // Drop the JobRef before blocking again.
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    work_cv_.wait(lock, [&] {
      return shutting_down_ || queued_.load(std::memory_order_relaxed) > 0;
    });
    if (shutting_down_ && queued_.load(std::memory_order_relaxed) <= 0) {
      return;
    }
  }
}

}  // namespace tsunami
