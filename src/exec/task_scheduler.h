// Work-stealing task scheduler: the serving path's execution substrate.
//
// ThreadPool (thread_pool.h) drains one FIFO queue, which is exactly right
// for homogeneous build work but wrong for a skewed query batch: once each
// worker holds one query, a giant region query serializes on its worker
// while the needle queries finish and the rest of the machine idles. The
// scheduler closes that gap with the classic per-worker-deque design: each
// worker owns a deque, submitted jobs spread their chunks round-robin
// across all deques, a worker pops from the front of its own deque and —
// when empty — steals from the back of a victim's, so the chunks of a
// decomposed giant query are picked up by every idle core regardless of
// which deques they landed in.
//
// Jobs are chunk-indexed fan-outs (`fn(chunk, worker)` for chunk in
// [0, num_chunks)) with an asynchronous completion handle, which is the
// shape both clients need: QueryService decomposes each admitted query's
// QueryPlan into block-aligned RangeTask chunks and submits one job per
// query (Await blocks on the handle), and ExecuteRangeTasks submits its
// row-balanced chunk lists and waits inline. Chunks of concurrently
// submitted jobs interleave in the deques — that is the point: one shared
// scheduler parallelizes *across* queries and *within* each query at once.
//
// Chunks must be independent; result aggregation is the caller's job
// (per-chunk partials merged after Wait, the same disjoint-rows argument
// ExecuteRangeTasks already relies on). A chunk that throws does not take
// the worker down: the exception is swallowed, the job is marked failed()
// and still completes (Wait never hangs), and the caller decides what a
// failed job's partials are worth — QueryService discards them and reports
// the query as failed.
#ifndef TSUNAMI_EXEC_TASK_SCHEDULER_H_
#define TSUNAMI_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tsunami {

class TaskScheduler {
 public:
  /// One submitted fan-out. Opaque to callers; pass the handle back to
  /// Wait() / Finished(). Held by shared_ptr so in-flight chunks keep the
  /// job alive even if the submitter abandons the handle.
  class Job {
   public:
    bool finished() const { return done_.load(std::memory_order_acquire); }

    /// True when any chunk of this job threw. The job still completes (every
    /// chunk runs or is drained); the caller must treat its partials as
    /// untrustworthy.
    bool failed() const { return failed_.load(std::memory_order_acquire); }

   private:
    friend class TaskScheduler;
    std::function<void(int64_t, int)> fn_;
    std::atomic<int64_t> remaining_{0};
    std::atomic<bool> done_{false};
    std::atomic<bool> failed_{false};
    std::mutex mu_;
    std::condition_variable cv_;
  };
  using JobRef = std::shared_ptr<Job>;

  /// Cumulative counters since construction. `steals` is the health metric
  /// for skewed batches: zero on a balanced batch, large when workers ran
  /// dry and pulled a straggler's chunks.
  struct Stats {
    int64_t jobs = 0;
    int64_t chunks = 0;
    int64_t steals = 0;
    int64_t boosts = 0;         // Jobs moved to deque fronts by Boost().
    int64_t task_failures = 0;  // Chunks that threw (swallowed, job failed).
  };

  /// With `threads <= 0` the scheduler degenerates to inline execution on
  /// the submitting thread (deterministic chunk order; nothing to steal),
  /// mirroring ThreadPool's inline mode.
  explicit TaskScheduler(int threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues `fn(chunk, worker)` for chunk in [0, num_chunks), spreading
  /// chunks round-robin across the per-worker deques, and returns
  /// immediately. `worker` is the index of the executing worker (0 on the
  /// submitting thread for inline schedulers) — useful for per-worker
  /// scratch. Chunks with `priority > 0` are pushed to the *front* of the
  /// deques, so a latency-sensitive query's chunks run ahead of queued
  /// backlog (stealing still takes victims' backs, preserving the jump).
  JobRef Submit(int64_t num_chunks, std::function<void(int64_t, int)> fn,
                int priority = 0);

  /// Blocks until every chunk of `job` has finished.
  void Wait(const JobRef& job);

  /// Moves every still-queued chunk of `job` to the front of its deque,
  /// preserving their relative order — the dynamic half of prioritization:
  /// priorities are otherwise fixed at Submit, but a query drifting toward
  /// its deadline can be boosted past queued backlog mid-flight
  /// (QueryService does this when a pending query's remaining deadline
  /// budget falls below half). Chunks already running or finished are
  /// unaffected; a no-op for null/finished jobs and inline schedulers.
  void Boost(const JobRef& job);

  /// Non-blocking completion check.
  static bool Finished(const JobRef& job) { return job->finished(); }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Chunks currently queued (not yet picked up); the service's queue-depth
  /// gauge.
  int64_t queue_depth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  struct Task {
    JobRef job;
    int64_t chunk = 0;
  };
  /// One worker's deque. Guarded by its own mutex — chunk granularity is
  /// thousands of rows, so a short critical section per pop/steal is noise
  /// next to the scan itself, and plain mutexes keep the stealing protocol
  /// obviously correct under TSan.
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void WorkerLoop(int id);
  /// Pops from the front of worker `id`'s own deque, or steals from the
  /// back of another's. Returns false when every deque is empty.
  bool NextTask(int id, Task* out);
  void RunTask(const Task& task, int worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mu_;
  std::condition_variable work_cv_;
  bool shutting_down_ = false;

  std::atomic<int64_t> queued_{0};
  std::atomic<uint64_t> next_worker_{0};  // Round-robin submission cursor.
  std::atomic<int64_t> jobs_{0};
  std::atomic<int64_t> chunks_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> boosts_{0};
  std::atomic<int64_t> task_failures_{0};
};

}  // namespace tsunami

#endif  // TSUNAMI_EXEC_TASK_SCHEDULER_H_
