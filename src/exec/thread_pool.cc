#include "src/exec/thread_pool.h"

#include <algorithm>

namespace tsunami {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(threads, 0);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // Inline pool.
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(grain, 1);
  if (workers_.empty() || end - begin <= grain) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Bound the number of chunks so tiny grains do not flood the queue.
  int64_t chunks = std::min<int64_t>((end - begin + grain - 1) / grain,
                                     8 * num_threads());
  int64_t step = (end - begin + chunks - 1) / chunks;
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  for (int64_t lo = begin; lo < end; lo += step) ++remaining;
  int64_t pending = remaining;
  for (int64_t lo = begin; lo < end; lo += step) {
    int64_t hi = std::min(lo + step, end);
    Submit([&, lo, hi] {
      for (int64_t i = lo; i < hi; ++i) fn(i);
      std::unique_lock<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
  (void)remaining;
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace tsunami
