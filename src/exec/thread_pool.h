// Fixed-size thread pool used for parallel index construction (§6.1:
// "Optimization and data sorting for index creation are performed in
// parallel for Tsunami and all baselines") and for batch query execution.
#ifndef TSUNAMI_EXEC_THREAD_POOL_H_
#define TSUNAMI_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsunami {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// Tasks must not throw. Destruction waits for all submitted tasks to
/// finish. With `threads == 0` the pool degenerates to inline execution on
/// the calling thread, which keeps single-threaded code paths allocation-
/// and synchronization-free.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Inline pools run it before returning.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs `fn(i)` for i in [begin, end), splitting the range into chunks of
  /// at least `grain` iterations. Blocks until complete. Iterations must be
  /// independent.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// A sensible default: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tsunami

#endif  // TSUNAMI_EXEC_THREAD_POOL_H_
