#include "src/flood/flood.h"

#include <numeric>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/workload_stats.h"

namespace tsunami {

FloodIndex::FloodIndex(const Dataset& data, const Workload& workload,
                       const FloodOptions& options) {
  Timer optimize_timer;
  AgdOptions agd = options.agd;
  agd.independent_only = true;

  std::vector<uint32_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0u);
  GridPlan plan =
      OptimizeGrid(data, rows, workload, OptimizeMethod::kGd, agd);

  Rng rng(agd.seed);
  Dataset sample = SampleDataset(data, 50000, &rng);
  AugmentedGrid::BuildOptions build_options;
  build_options.selectivity_order =
      DimsBySelectivity(sample, workload, data.dims());
  build_options.sort_dim = plan.sort_dim;
  build_options.max_cells = agd.max_cells;
  optimize_seconds_ = optimize_timer.ElapsedSeconds();

  Timer sort_timer;
  grid_.Build(data, &rows, plan.skeleton, plan.partitions, build_options);
  store_ = ColumnStore(data, rows);
  grid_.Attach(&store_, 0);
  sort_seconds_ = sort_timer.ElapsedSeconds();
}

}  // namespace tsunami
