// Flood (Nathan et al., SIGMOD 2020; §2.2 of the Tsunami paper): a single
// grid over the full data space, every dimension partitioned independently
// in CDF(X), sized by gradient descent over the cost model. Per §6.1 this
// reimplementation uses Tsunami's cost model and binary-search refinement
// instead of Flood's random-forest model and per-cell models.
#ifndef TSUNAMI_FLOOD_FLOOD_H_
#define TSUNAMI_FLOOD_FLOOD_H_

#include <cstdint>
#include <string>

#include "src/common/index.h"
#include "src/common/types.h"
#include "src/core/augmented_grid.h"
#include "src/core/optimizer.h"
#include "src/storage/column_store.h"

namespace tsunami {

struct FloodOptions {
  AgdOptions agd;  // independent_only is forced on.
};

class FloodIndex : public MultiDimIndex {
 public:
  FloodIndex(const Dataset& data, const Workload& workload)
      : FloodIndex(data, workload, FloodOptions()) {}
  FloodIndex(const Dataset& data, const Workload& workload,
             const FloodOptions& options);

  std::string Name() const override { return "Flood"; }
  QueryResult Execute(const Query& query) const override {
    QueryResult result = InitResult(query);
    grid_.Execute(query, &result);
    return result;
  }

  /// Plans the grid's candidate runs up front; the base ExecutePlan /
  /// ExecuteBatch then submit them as one batched scan through the
  /// context's pool and scan options. Flood plans are pure range scans
  /// (no FinishPlan epilogue), so QueryService decomposes them into
  /// work-stealing chunks with no index-specific hook needed.
  QueryPlan Prepare(const Query& query) const override {
    QueryPlan plan;
    plan.query = query;
    plan.counters = InitResult(query);
    plan.use_tasks = true;
    grid_.PlanRanges(query, &plan.tasks, &plan.counters);
    return plan;
  }

  int64_t IndexSizeBytes() const override { return grid_.SizeBytes(); }
  const ColumnStore& store() const override { return store_; }

  int64_t num_cells() const { return grid_.num_cells(); }
  const AugmentedGrid& grid() const { return grid_; }
  double optimize_seconds() const { return optimize_seconds_; }
  double sort_seconds() const { return sort_seconds_; }

 private:
  AugmentedGrid grid_;
  ColumnStore store_;
  double optimize_seconds_ = 0.0;
  double sort_seconds_ = 0.0;
};

}  // namespace tsunami

#endif  // TSUNAMI_FLOOD_FLOOD_H_
