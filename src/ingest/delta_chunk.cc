#include "src/ingest/delta_chunk.h"

#include <algorithm>
#include <cassert>

#include "src/storage/scan_kernel_simd.h"
#include "src/storage/simd_dispatch.h"

namespace tsunami {
namespace ingest {

DeltaChunk::DeltaChunk(int dims, int64_t capacity, uint64_t id)
    : dims_(dims), capacity_(capacity), id_(id), cols_(dims) {
  assert(dims > 0 && capacity > 0);
  for (int d = 0; d < dims; ++d) {
    cols_[d] = std::make_unique<Value[]>(static_cast<size_t>(capacity));
  }
}

DeltaChunk::~DeltaChunk() {
  delete encoded_.load(std::memory_order_relaxed);
}

bool DeltaChunk::Append(const Value* row) {
  const int64_t pos = committed_.load(std::memory_order_relaxed);
  if (pos == capacity_) return false;
  for (int d = 0; d < dims_; ++d) cols_[d][pos] = row[d];
  // Release: the row's values happen-before any reader that observes the
  // new count.
  committed_.store(pos + 1, std::memory_order_release);
  return true;
}

void DeltaChunk::Seal() const {
  assert(full());
  if (sealed()) return;
  // Materialize the (immutable, fully committed) rows and push them through
  // the block codecs. Built off to the side; readers switch over on the
  // release store below.
  Dataset data(dims_, {});
  data.Reserve(capacity_);
  std::vector<Value> row(dims_);
  for (int64_t r = 0; r < capacity_; ++r) {
    for (int d = 0; d < dims_; ++d) row[d] = cols_[d][r];
    data.AppendRow(row);
  }
  const ColumnStore* store = new ColumnStore(data);
  const ColumnStore* expected = nullptr;
  if (!encoded_.compare_exchange_strong(expected, store,
                                        std::memory_order_release,
                                        std::memory_order_acquire)) {
    delete store;  // lost a (harmless) race with another sealer
  }
}

void DeltaChunk::Scan(const Query& query, QueryResult* result,
                      const ScanOptions& options) const {
  const int64_t rows = committed();
  if (rows == 0) return;
  // Same counter semantics as the store's delta epilogue: the chunk is one
  // cell range and is charged for every committed row, whichever physical
  // path runs — so encoded and raw scans are bit-for-bit comparable.
  ++result->cell_ranges;
  const ColumnStore* store = encoded_.load(std::memory_order_acquire);
  if (store != nullptr && rows == capacity_) {
    store->ScanRange(0, rows, query, /*exact=*/false, result, options);
    return;
  }
  result->scanned += rows;
  ScanRaw(rows, query, result);
}

void DeltaChunk::ScanRaw(int64_t rows, const Query& query,
                         QueryResult* result) const {
  const SimdOps& ops = OpsForTier(SimdTier::kAuto);
  const std::vector<Predicate>& filters = query.filters;
  const int num_aggs = query.num_aggs();
  uint32_t sel[kScanBlockRows];
  for (int64_t begin = 0; begin < rows; begin += kScanBlockRows) {
    const int count = static_cast<int>(std::min(kScanBlockRows, rows - begin));
    int n;
    if (filters.empty()) {
      for (int i = 0; i < count; ++i) sel[i] = static_cast<uint32_t>(i);
      n = count;
    } else {
      const Predicate& first = filters[0];
      n = ops.first_pass(cols_[first.dim].get() + begin, count, first.lo,
                         first.hi, sel);
      for (size_t f = 1; f < filters.size() && n > 0; ++f) {
        const Predicate& p = filters[f];
        n = ops.refine_pass(cols_[p.dim].get() + begin, sel, n, p.lo, p.hi);
      }
    }
    if (n == 0) continue;
    result->matched += n;
    for (int a = 0; a < num_aggs; ++a) {
      const AggregateSpec spec = query.agg_spec(a);
      int64_t* acc = result->agg_accumulator(a);
      if (spec.op == AggKind::kCount) {
        *acc += n;
        continue;
      }
      const Value* col = cols_[spec.column].get() + begin;
      switch (spec.op) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          *acc += ops.sum_gather(col, sel, n);
          break;
        case AggKind::kMin: {
          Value m = ops.min_gather(col, sel, n);
          if (m < *acc) *acc = m;
          break;
        }
        case AggKind::kMax: {
          Value m = ops.max_gather(col, sel, n);
          if (m > *acc) *acc = m;
          break;
        }
      }
    }
  }
}

Value DeltaChunk::Get(int64_t row, int dim) const {
  assert(row < committed());
  return cols_[dim][row];
}

void DeltaChunk::AppendRowsTo(Dataset* out, int64_t rows) const {
  assert(rows <= committed());
  std::vector<Value> row(dims_);
  for (int64_t r = 0; r < rows; ++r) {
    for (int d = 0; d < dims_; ++d) row[d] = cols_[d][r];
    out->AppendRow(row);
  }
}

int64_t DeltaChunk::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) +
                  capacity_ * dims_ * static_cast<int64_t>(sizeof(Value));
  const ColumnStore* store = encoded_.load(std::memory_order_acquire);
  if (store != nullptr) bytes += store->DataSizeBytes();
  return bytes;
}

}  // namespace ingest
}  // namespace tsunami
