// Fixed-capacity columnar delta chunk: the append target for concurrent
// ingest.
//
// Concurrency contract: exactly one writer at a time (IngestStore's writer
// mutex serializes Append callers); any number of concurrent readers. The
// writer stores row values first, then publishes them with a release store
// of `committed_`; readers acquire-load `committed_` and only touch rows
// below it — never a torn read, never a partially visible row.
//
// A full chunk can be Seal()ed: the committed rows are re-encoded through
// the block codecs (frame-of-reference + width narrowing, checksums, zone
// maps) into an internal ColumnStore published behind an atomic pointer.
// Scans use the encoded form once sealed and the raw columns before —
// bit-identical either way (the scan kernel counts `scanned` as the rows a
// range is responsible for, not the rows touched after block skipping).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/storage/column_store.h"
#include "src/storage/scan_kernel.h"

namespace tsunami {
namespace ingest {

class DeltaChunk {
 public:
  // `id` must be unique within the owning store: compaction identifies the
  // chunks it folded by id when reconciling against a chunk list that may
  // have grown during the build.
  DeltaChunk(int dims, int64_t capacity, uint64_t id);
  ~DeltaChunk();
  DeltaChunk(const DeltaChunk&) = delete;
  DeltaChunk& operator=(const DeltaChunk&) = delete;

  int dims() const { return dims_; }
  int64_t capacity() const { return capacity_; }
  uint64_t id() const { return id_; }

  // Rows visible to readers (acquire).
  int64_t committed() const {
    return committed_.load(std::memory_order_acquire);
  }
  bool full() const { return committed() == capacity_; }

  // Appends one row of `dims()` values. Single writer only. Returns false
  // when the chunk is full (the caller rolls to a fresh chunk).
  bool Append(const Value* row);

  // Re-encodes the committed rows into block-codec form and publishes it
  // for subsequent scans. Requires full() (a sealed chunk never grows, so
  // the encoded form can never go stale). Idempotent; safe to call from the
  // compactor thread while readers scan. Const: sealing changes only the
  // physical representation, never the logical rows.
  void Seal() const;
  bool sealed() const {
    return encoded_.load(std::memory_order_acquire) != nullptr;
  }

  // Scans the rows committed at call time and folds matches into `result`
  // with the same counter semantics as the store's delta epilogue: one
  // cell_range, `scanned` charged for every committed row.
  void Scan(const Query& query, QueryResult* result,
            const ScanOptions& options = {}) const;

  // Reads one committed row value (row < committed()).
  Value Get(int64_t row, int dim) const;

  // Appends the first `rows` committed rows to `out` (for folding).
  void AppendRowsTo(Dataset* out, int64_t rows) const;

  int64_t MemoryBytes() const;

 private:
  void ScanRaw(int64_t rows, const Query& query, QueryResult* result) const;

  const int dims_;
  const int64_t capacity_;
  const uint64_t id_;
  std::vector<std::unique_ptr<Value[]>> cols_;
  std::atomic<int64_t> committed_{0};
  // Owned; set once by Seal(). Plain pointer (not shared_ptr) so readers
  // pay one acquire load — the chunk outlives every scan because snapshots
  // hold it by shared_ptr.
  mutable std::atomic<const ColumnStore*> encoded_{nullptr};
};

}  // namespace ingest
}  // namespace tsunami
