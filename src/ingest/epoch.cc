#include "src/ingest/epoch.h"

#include <cassert>

namespace tsunami {
namespace ingest {

uint64_t EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[current_];
  ++pinned_;
  return current_;
}

void EpochManager::Unpin(uint64_t epoch) {
  std::vector<std::function<void()>> runnable;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    assert(it != pins_.end() && it->second > 0);
    if (it == pins_.end()) return;
    if (--it->second == 0) pins_.erase(it);
    --pinned_;
    runnable = CollectReclaimable(lock);
  }
  for (auto& fn : runnable) fn();
}

void EpochManager::Retire(std::function<void()> reclaim) {
  std::vector<std::function<void()>> runnable;
  {
    std::unique_lock<std::mutex> lock(mu_);
    retired_.push_back(Retired{current_, std::move(reclaim)});
    ++retired_count_;
    ++current_;
    runnable = CollectReclaimable(lock);
  }
  for (auto& fn : runnable) fn();
}

int64_t EpochManager::TryReclaim() {
  std::vector<std::function<void()>> runnable;
  {
    std::unique_lock<std::mutex> lock(mu_);
    runnable = CollectReclaimable(lock);
  }
  for (auto& fn : runnable) fn();
  return static_cast<int64_t>(runnable.size());
}

std::vector<std::function<void()>> EpochManager::CollectReclaimable(
    const std::unique_lock<std::mutex>& lock) {
  (void)lock;
  // A retired entry at epoch E is reclaimable once no pin at epoch <= E
  // remains. retired_ is epoch-ordered, so pop from the front.
  const uint64_t oldest_pin =
      pins_.empty() ? current_ + 1 : pins_.begin()->first;
  std::vector<std::function<void()>> runnable;
  while (!retired_.empty() && retired_.front().epoch < oldest_pin) {
    const uint64_t lag = current_ - retired_.front().epoch;
    if (lag > max_retire_lag_) max_retire_lag_ = lag;
    runnable.push_back(std::move(retired_.front().fn));
    retired_.pop_front();
    ++reclaimed_count_;
  }
  return runnable;
}

EpochManager::Stats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.current_epoch = current_;
  s.oldest_pinned = pins_.empty() ? current_ : pins_.begin()->first;
  s.pinned = pinned_;
  s.retired = retired_count_;
  s.reclaimed = reclaimed_count_;
  s.pending = retired_count_ - reclaimed_count_;
  s.max_retire_lag = max_retire_lag_;
  return s;
}

}  // namespace ingest
}  // namespace tsunami
