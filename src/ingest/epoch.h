// Epoch-based reclamation for the snapshot store.
//
// Readers Pin() before touching a published snapshot and Unpin() when done;
// publishers Retire() the superseded version with a reclaim callback that
// runs once every reader pinned at or before the retire point has advanced.
// The shared_ptr held by each reader is the memory-safety net — epochs exist
// for *deterministic* reclamation (a quiesced store frees superseded
// versions immediately instead of at unpredictable ref-count zeros) and for
// the retirement-lag statistics the bench reports.
//
// Ordering contract (what makes reclamation safe): Pin() and Retire() both
// take the manager mutex. A publisher swaps the snapshot pointer *before*
// calling Retire(), so any reader whose Pin() observes an epoch newer than
// the retire point also observes the new pointer; readers on older epochs
// hold the retired version alive until they Unpin().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace tsunami {
namespace ingest {

class EpochManager {
 public:
  struct Stats {
    uint64_t current_epoch = 0;
    // Oldest epoch a live reader holds; == current_epoch when idle.
    uint64_t oldest_pinned = 0;
    int64_t pinned = 0;     // live pins
    int64_t retired = 0;    // Retire() calls so far
    int64_t reclaimed = 0;  // reclaim callbacks that have run
    int64_t pending = 0;    // retired - reclaimed
    // Largest (reclaim epoch - retire epoch) observed: how far the slowest
    // reader dragged a dead version behind the current epoch.
    uint64_t max_retire_lag = 0;
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Enters the current epoch; the returned value must be passed to Unpin().
  uint64_t Pin();

  // Leaves `epoch`; runs any reclaim callbacks this unblocks (outside the
  // manager lock, so a callback may re-enter Pin/Retire).
  void Unpin(uint64_t epoch);

  // Registers `reclaim` to run once no reader is pinned at or before the
  // current epoch, then advances the epoch. Runs immediately when no reader
  // is pinned. `reclaim` typically drops the last owning reference to a
  // superseded snapshot.
  void Retire(std::function<void()> reclaim);

  // Runs every reclaim callback whose epoch has quiesced; returns how many
  // ran. Unpin() calls this automatically — exposed for tests and shutdown.
  int64_t TryReclaim();

  Stats stats() const;

 private:
  struct Retired {
    uint64_t epoch = 0;
    std::function<void()> fn;
  };

  // Collects runnable callbacks under `lock`, leaving them to the caller to
  // run after unlocking.
  std::vector<std::function<void()>> CollectReclaimable(
      const std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  uint64_t current_ = 1;
  std::map<uint64_t, int64_t> pins_;  // epoch -> live pin count
  std::deque<Retired> retired_;
  int64_t pinned_ = 0;
  int64_t retired_count_ = 0;
  int64_t reclaimed_count_ = 0;
  uint64_t max_retire_lag_ = 0;
};

// RAII pin. Move-only; default-constructed instances are inert.
class EpochPin {
 public:
  EpochPin() = default;
  explicit EpochPin(EpochManager* mgr) : mgr_(mgr), epoch_(mgr->Pin()) {}
  ~EpochPin() { Release(); }
  EpochPin(EpochPin&& other) noexcept
      : mgr_(std::exchange(other.mgr_, nullptr)), epoch_(other.epoch_) {}
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      Release();
      mgr_ = std::exchange(other.mgr_, nullptr);
      epoch_ = other.epoch_;
    }
    return *this;
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  bool held() const { return mgr_ != nullptr; }
  uint64_t epoch() const { return epoch_; }
  void Release() {
    if (mgr_ != nullptr) std::exchange(mgr_, nullptr)->Unpin(epoch_);
  }

 private:
  EpochManager* mgr_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace ingest
}  // namespace tsunami
