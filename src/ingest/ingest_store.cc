#include "src/ingest/ingest_store.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/common/workload_stats.h"

namespace tsunami {
namespace ingest {

namespace {

// `ingest.swap_delay`: stall inside the publish critical section to widen
// the window in which readers race a swap (param = microseconds).
void MaybeDelaySwap([[maybe_unused]] uint64_t version) {
  if (TSUNAMI_FAULT_FIRES("ingest.swap_delay", static_cast<int64_t>(version))) {
    const int64_t us = fault::Param("ingest.swap_delay");
    std::this_thread::sleep_for(
        std::chrono::microseconds(us > 0 ? us : 1000));
  }
}

}  // namespace

IngestStore::IngestStore(const Dataset& data, const Workload& workload,
                         const IngestOptions& options)
    : name_(options.index.name + "+ingest"),
      options_(options),
      dims_(data.dims()),
      open_chunk_(std::make_shared<DeltaChunk>(
          data.dims(), options.chunk_capacity, /*id=*/1)),
      next_chunk_id_(2),
      snapshots_(std::make_shared<const ColumnStoreSnapshot>(
          /*version=*/1,
          std::make_shared<const TsunamiIndex>(data, workload, options.index),
          std::vector<std::shared_ptr<const DeltaChunk>>{open_chunk_})),
      workload_(workload) {
  if (options_.monitor_workload) {
    Rng rng(options_.index.agd.seed);
    monitor_ = std::make_unique<WorkloadMonitor>(
        SampleDataset(data, options_.index.sample_rows, &rng), workload,
        options_.monitor);
  }
  if (options_.background_compaction) {
    compactor_ = std::make_unique<Compactor>(this, options_.compact_poll_ms,
                                             options_.background_nice);
    compactor_->Start();
  }
}

IngestStore::IngestStore(std::shared_ptr<const TsunamiIndex> index,
                         const Workload& workload,
                         const IngestOptions& options,
                         uint64_t initial_version)
    : name_(options.index.name + "+ingest"),
      options_(options),
      dims_(index->store().dims()),
      open_chunk_(std::make_shared<DeltaChunk>(
          index->store().dims(), options.chunk_capacity, /*id=*/1)),
      next_chunk_id_(2),
      snapshots_(std::make_shared<const ColumnStoreSnapshot>(
          initial_version, index,
          std::vector<std::shared_ptr<const DeltaChunk>>{open_chunk_})),
      workload_(workload) {
  if (options_.monitor_workload) {
    Rng rng(options_.index.agd.seed);
    Dataset data = index->MaterializeData();
    monitor_ = std::make_unique<WorkloadMonitor>(
        SampleDataset(data, options_.index.sample_rows, &rng), workload,
        options_.monitor);
  }
  if (options_.background_compaction) {
    compactor_ = std::make_unique<Compactor>(this, options_.compact_poll_ms,
                                             options_.background_nice);
    compactor_->Start();
  }
}

IngestStore::~IngestStore() { StopBackground(); }

void IngestStore::SetFoldHook(FoldHook hook) { fold_hook_ = std::move(hook); }

void IngestStore::StartBackground() {
  if (compactor_ != nullptr) return;
  compactor_ = std::make_unique<Compactor>(this, options_.compact_poll_ms,
                                           options_.background_nice);
  compactor_->Start();
}

void IngestStore::StopBackground() {
  if (compactor_ != nullptr) compactor_->Stop();
}

// --- Reads -----------------------------------------------------------------

QueryResult IngestStore::Execute(const Query& query) const {
  Observe(query);
  return PinSnapshot()->Execute(query);
}

QueryPlan IngestStore::Prepare(const Query& query) const {
  Observe(query);
  std::shared_ptr<const ColumnStoreSnapshot> snap = snapshots_.Pin();
  QueryPlan plan = snap->Prepare(query);
  // The plan owns the pin: the snapshot (and its read epoch) stays alive
  // until the last copy of the plan dies.
  plan.pin = std::shared_ptr<const void>(snap, snap.get());
  return plan;
}

const MultiDimIndex& IngestStore::PlanTarget(const QueryPlan& plan) const {
  if (plan.pin != nullptr) {
    return *static_cast<const ColumnStoreSnapshot*>(plan.pin.get());
  }
  return *this;
}

QueryResult IngestStore::ExecutePlan(const QueryPlan& plan,
                                     ExecContext& ctx) const {
  // The base implementation scans this->store(), which tracks the *newest*
  // snapshot — a pinned plan must scan the version its tasks address.
  if (plan.pin != nullptr) return PlanTarget(plan).ExecutePlan(plan, ctx);
  return Execute(plan.query);
}

void IngestStore::FinishPlan(const QueryPlan& plan,
                             QueryResult* result) const {
  if (plan.pin != nullptr) PlanTarget(plan).FinishPlan(plan, result);
}

int64_t IngestStore::IndexSizeBytes() const {
  return snapshots_.Current()->IndexSizeBytes();
}

const ColumnStore& IngestStore::store() const {
  return snapshots_.Current()->store();
}

void IngestStore::Observe(const Query& query) const {
  if (monitor_ == nullptr) return;
  std::unique_lock<std::mutex> lock(monitor_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // Never stall a read path on observation.
  monitor_->Observe(query);
  recent_queries_.push_back(query);
  const size_t cap = static_cast<size_t>(options_.monitor.window) * 2;
  while (recent_queries_.size() > cap) recent_queries_.pop_front();
}

// --- Writers ---------------------------------------------------------------

void IngestStore::Insert(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == dims_);
  if (options_.governor != nullptr) {
    options_.governor->Charge(ResourcePool::kDeltaBacklog, RowBytes());
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  InsertLocked(row.data());
}

int64_t IngestStore::InsertBatch(const std::vector<std::vector<Value>>& rows) {
  if (options_.governor != nullptr) {
    options_.governor->Charge(ResourcePool::kDeltaBacklog,
                              static_cast<int64_t>(rows.size()) * RowBytes());
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  for (const std::vector<Value>& row : rows) {
    assert(static_cast<int>(row.size()) == dims_);
    InsertLocked(row.data());
  }
  return static_cast<int64_t>(rows.size());
}

InsertAdmit IngestStore::TryInsert(const std::vector<Value>& row) {
  return TryInsertBatch({row});
}

InsertAdmit IngestStore::TryInsertBatch(
    const std::vector<std::vector<Value>>& rows) {
  if (rows.empty()) return InsertAdmit::kOk;
  const int64_t bytes = static_cast<int64_t>(rows.size()) * RowBytes();
  // Backpressure is decided *before* the writer lock and before any append:
  // a refused batch touched nothing, so the caller can retry verbatim once
  // the compactor folds the backlog down (kick it so that happens soon).
  if (options_.governor != nullptr &&
      !options_.governor->TryCharge(ResourcePool::kDeltaBacklog, bytes)) {
    if (compactor_ != nullptr) compactor_->Kick();
    return InsertAdmit::kResourceExhausted;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  for (const std::vector<Value>& row : rows) {
    assert(static_cast<int>(row.size()) == dims_);
    InsertLocked(row.data());
  }
  return InsertAdmit::kOk;
}

void IngestStore::InsertLocked(const Value* row) {
  if (!open_chunk_->Append(row)) {
    RollLocked();
    const bool ok = open_chunk_->Append(row);
    assert(ok);
    (void)ok;
  }
  rows_ingested_.fetch_add(1, std::memory_order_relaxed);
}

void IngestStore::ForceRoll() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (open_chunk_->committed() == 0) return;
  RollLocked();
}

void IngestStore::RollLocked() {
  auto fresh = std::make_shared<DeltaChunk>(dims_, options_.chunk_capacity,
                                            next_chunk_id_++);
  uint64_t published;
  {
    std::lock_guard<std::mutex> pub(publish_mu_);
    auto cur = snapshots_.Current();
    std::vector<std::shared_ptr<const DeltaChunk>> chunks = cur->chunks();
    chunks.push_back(fresh);
    auto next = std::make_shared<const ColumnStoreSnapshot>(
        cur->version() + 1, cur->index_ptr(), std::move(chunks));
    published = next->version();
    MaybeDelaySwap(published);
    snapshots_.Publish(std::move(next));
  }
  open_chunk_ = std::move(fresh);
  chunk_rolls_.fetch_add(1, std::memory_order_relaxed);
  NotifyListeners(published);
  if (compactor_ != nullptr) compactor_->Kick();
}

// --- Maintenance -----------------------------------------------------------

void IngestStore::RequestReorganize(const Workload& workload) {
  {
    std::lock_guard<std::mutex> lock(reorg_mu_);
    pending_reorg_ = workload;
  }
  if (compactor_ != nullptr) {
    compactor_->Kick();
  } else {
    BackgroundTick();
  }
}

uint64_t IngestStore::CompactNow(const Workload* workload) {
  return CompactOnce(workload);
}

void IngestStore::BackgroundTick() {
  auto cur = snapshots_.Current();
  // Seal retired full chunks past the block threshold so long-lived deltas
  // scan encoded blocks instead of raw rows.
  if (options_.encode_min_blocks > 0 &&
      options_.chunk_capacity >= options_.encode_min_blocks * kScanBlockRows) {
    for (const auto& chunk : cur->chunks()) {
      if (chunk->full() && !chunk->sealed()) {
        chunk->Seal();
        chunks_sealed_.fetch_add(1, std::memory_order_relaxed);
        if (options_.governor != nullptr) {
          // A sealed chunk holds its encoded payload alongside the raw
          // rows until a fold consumes it; track that residency.
          options_.governor->Charge(ResourcePool::kSealedChunks,
                                    chunk->MemoryBytes());
        }
      }
    }
  }
  std::optional<Workload> reorg;
  {
    std::lock_guard<std::mutex> lock(reorg_mu_);
    reorg.swap(pending_reorg_);
  }
  if (!reorg.has_value() && monitor_ != nullptr) {
    std::unique_lock<std::mutex> lock(monitor_mu_, std::try_to_lock);
    if (lock.owns_lock() && monitor_->ShouldReoptimize()) {
      reorg.emplace(recent_queries_.begin(), recent_queries_.end());
      monitor_->Reset();
    }
  }
  if (reorg.has_value()) {
    CompactOnce(&*reorg);
    return;
  }
  if (RetiredChunks() >= options_.compact_min_chunks) CompactOnce(nullptr);
}

int64_t IngestStore::RetiredChunks() const {
  auto cur = snapshots_.Current();
  uint64_t open_id;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    open_id = open_chunk_->id();
  }
  int64_t retired = 0;
  for (const auto& chunk : cur->chunks()) {
    if (chunk->id() < open_id) ++retired;
  }
  return retired;
}

uint64_t IngestStore::CompactOnce(const Workload* reorg_workload) {
  std::lock_guard<std::mutex> heavy(compact_mu_);
  auto base = snapshots_.Current();
  // Retired chunks (everything but the open tail) have final committed
  // counts — only the open chunk ever receives appends. Capture the open
  // id *after* `base`: ids are monotone, so every base chunk below it is
  // retired and immutable.
  uint64_t open_id;
  {
    std::lock_guard<std::mutex> w(write_mu_);
    open_id = open_chunk_->id();
  }
  std::vector<std::shared_ptr<const DeltaChunk>> fold;
  for (const auto& chunk : base->chunks()) {
    if (chunk->id() < open_id) fold.push_back(chunk);
  }
  if (fold.empty() && reorg_workload == nullptr) return snapshots_.version();
  try {
    if (TSUNAMI_FAULT_FIRES("ingest.compact_throw",
                            static_cast<int64_t>(base->version()))) {
      throw std::runtime_error("injected: ingest.compact_throw");
    }
    Dataset extra(dims_, {});
    int64_t extra_rows = 0;
    for (const auto& chunk : fold) extra_rows += chunk->committed();
    extra.Reserve(extra_rows);
    for (const auto& chunk : fold) {
      chunk->AppendRowsTo(&extra, chunk->committed());
    }
    Workload target;
    {
      std::lock_guard<std::mutex> lock(workload_mu_);
      target = reorg_workload != nullptr ? *reorg_workload : workload_;
    }
    // The heavy part — cluster, optimize, re-sort, re-encode — runs with no
    // store lock held; readers and writers proceed against the old version.
    auto merged = std::make_shared<const TsunamiIndex>(
        base->index(), extra, target, options_.index);
    uint64_t published;
    {
      std::lock_guard<std::mutex> pub(publish_mu_);
      auto cur = snapshots_.Current();
      // The chunk list may have grown (rolls) since `base`; keep everything
      // we did not fold.
      std::vector<std::shared_ptr<const DeltaChunk>> remaining;
      for (const auto& chunk : cur->chunks()) {
        if (chunk->id() >= open_id) remaining.push_back(chunk);
      }
      auto next = std::make_shared<const ColumnStoreSnapshot>(
          cur->version() + 1, merged, std::move(remaining));
      published = next->version();
      MaybeDelaySwap(published);
      snapshots_.Publish(std::move(next));
    }
    if (reorg_workload != nullptr) {
      std::lock_guard<std::mutex> lock(workload_mu_);
      workload_ = *reorg_workload;
      reorgs_.fetch_add(1, std::memory_order_relaxed);
    }
    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (options_.governor != nullptr) {
      // The fold consumed these rows out of the delta backlog (and any
      // sealed payloads riding with them); give the bytes back so
      // backpressured writers unblock.
      options_.governor->Release(ResourcePool::kDeltaBacklog,
                                 extra_rows * RowBytes());
      for (const auto& chunk : fold) {
        if (chunk->sealed()) {
          options_.governor->Release(ResourcePool::kSealedChunks,
                                     chunk->MemoryBytes());
        }
      }
    }
    NotifyListeners(published);
    if (fold_hook_) {
      // Checkpoint opportunity (still under compact_mu_, after publish). A
      // throwing hook must never unpublish or fail the fold: the hook's own
      // layer retains its WAL and retries at the next fold.
      try {
        fold_hook_(merged, published, extra_rows);
      } catch (const std::exception&) {
      }
    }
    return published;
  } catch (const std::exception&) {
    // Fail closed: the old snapshot keeps serving; the chunks stay queued
    // for the next attempt.
    failed_compactions_.fetch_add(1, std::memory_order_relaxed);
    return snapshots_.version();
  }
}

int64_t IngestStore::RepairQuarantined() {
  std::lock_guard<std::mutex> heavy(compact_mu_);
  auto base = snapshots_.Current();
  if (base->index().store().QuarantinedBlocks() == 0) return 0;
  int64_t healed = 0;
  std::shared_ptr<const TsunamiIndex> repaired(
      base->index().RepairedCopy(&healed));
  if (healed == 0) return 0;
  uint64_t published;
  {
    std::lock_guard<std::mutex> pub(publish_mu_);
    auto cur = snapshots_.Current();
    // compact_mu_ is held, so cur's index is still `base`'s — only the
    // chunk list can have grown.
    auto next = std::make_shared<const ColumnStoreSnapshot>(
        cur->version() + 1, std::move(repaired), cur->chunks());
    published = next->version();
    MaybeDelaySwap(published);
    snapshots_.Publish(std::move(next));
  }
  repairs_published_.fetch_add(1, std::memory_order_relaxed);
  NotifyListeners(published);
  return healed;
}

// --- Introspection ---------------------------------------------------------

IngestStore::Stats IngestStore::stats() const {
  Stats s;
  s.rows_ingested = rows_ingested_.load(std::memory_order_relaxed);
  s.chunk_rolls = chunk_rolls_.load(std::memory_order_relaxed);
  s.chunks_sealed = chunks_sealed_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.failed_compactions =
      failed_compactions_.load(std::memory_order_relaxed);
  s.reorgs = reorgs_.load(std::memory_order_relaxed);
  s.repairs_published = repairs_published_.load(std::memory_order_relaxed);
  auto cur = snapshots_.Current();
  s.delta_rows = cur->ChunkRows();
  s.store_rows = cur->index().store().size();
  s.version = cur->version();
  s.epochs = snapshots_.epochs().stats();
  return s;
}

void IngestStore::AddPublishListener(std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.push_back(std::move(listener));
}

void IngestStore::NotifyListeners(uint64_t version) {
  std::vector<std::function<void(uint64_t)>> listeners;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    listeners = listeners_;
  }
  for (const auto& listener : listeners) listener(version);
}

// --- Compactor -------------------------------------------------------------

Compactor::Compactor(IngestStore* store, int poll_ms, int nice_value)
    : store_(store),
      poll_ms_(poll_ms > 0 ? poll_ms : 1),
      nice_value_(nice_value) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Compactor::Kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    kicked_ = true;
  }
  cv_.notify_all();
}

void Compactor::Loop() {
#if defined(__linux__)
  // Per-thread on Linux: deprioritize maintenance (and any build helpers it
  // spawns, which inherit the value) relative to query workers. Failure is
  // ignored — priority is an optimization, never a correctness requirement.
  if (nice_value_ != 0) {
    setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                nice_value_);
  }
#else
  (void)nice_value_;
#endif
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(poll_ms_),
                   [this] { return stop_ || kicked_; });
      if (stop_) return;
      kicked_ = false;
    }
    try {
      store_->BackgroundTick();
    } catch (const std::exception&) {
      // CompactOnce fails closed internally; anything else (allocation
      // failure during sealing) is dropped — the next tick retries.
    }
    ticks_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ingest
}  // namespace tsunami
