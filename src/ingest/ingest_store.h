// IngestStore: a Tsunami index that ingests concurrently and re-organizes
// without ever blocking readers.
//
// Layout: an immutable sorted TsunamiIndex plus a list of columnar delta
// chunks, published together as a ColumnStoreSnapshot behind an atomically
// swapped shared_ptr (src/ingest/snapshot.h). The three mutation paths all
// publish *new* versions — no query-visible state is ever mutated in place:
//
//   * Writers (Insert) append to the open tail chunk under a writer mutex;
//     a full chunk is retired by publishing a snapshot with a fresh tail
//     ("chunk roll"). Readers see new rows via the chunk's release/acquire
//     committed counter — no lock on the read path.
//   * The background Compactor (or CompactNow) seals retired chunks with
//     the block codecs, folds them into a rebuilt sorted index (the §8
//     incremental constructor — built entirely off to the side), and
//     publishes the result. A workload reorganization (RequestReorganize,
//     or the embedded WorkloadMonitor firing) is the same fold with a new
//     target workload: the grid rebuild rides the identical swap.
//   * RepairQuarantined heals checksum-quarantined fold-origin blocks on a
//     *copy* of the index (TsunamiIndex::RepairedCopy) and publishes the
//     healed copy — a reader pinned on the old version never observes a
//     half-repaired block.
//
// Queries pin one snapshot in Prepare (QueryPlan::pin holds it, epoch
// pinned, until the plan dies); plans, zone maps, grid, and quarantine
// state all resolve against the pinned version. StoreVersion() lets the
// plan cache drop plans bound to superseded versions.
//
// Fault sites (TSUNAMI_FAULT_INJECTION builds): `ingest.compact_throw`
// aborts a compaction after the fold set is chosen — the build fails closed
// and the old snapshot keeps serving; `ingest.swap_delay` stalls inside the
// publish critical section (param = microseconds, default 1000) to widen
// the roll/compact race window for the TSan soaks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/index.h"
#include "src/common/resource_governor.h"
#include "src/common/types.h"
#include "src/core/tsunami.h"
#include "src/core/workload_monitor.h"
#include "src/ingest/delta_chunk.h"
#include "src/ingest/snapshot.h"

namespace tsunami {
namespace ingest {

class Compactor;

struct IngestOptions {
  /// Options for the sorted index (initial build and every fold/reorg).
  TsunamiOptions index;
  /// Rows per delta chunk. A full chunk is retired (snapshot roll) and
  /// becomes a seal + fold candidate.
  int64_t chunk_capacity = 4 * kScanBlockRows;
  /// Re-encode retired chunks through the block codecs once they span at
  /// least this many blocks; 0 disables sealing (chunks scan raw forever).
  int64_t encode_min_blocks = 2;
  /// Retired chunks that trigger a background fold into the sorted index.
  int64_t compact_min_chunks = 2;
  /// Run the background Compactor thread (seal + fold + reorg). When off,
  /// CompactNow / ForceRoll drive everything synchronously.
  bool background_compaction = true;
  /// Compactor poll interval.
  int compact_poll_ms = 20;
  /// Nice value for the background Compactor thread (Linux; ignored
  /// elsewhere and when 0). Maintenance must yield CPU to serving traffic:
  /// on a loaded or small host an un-niced fold competes with query workers
  /// and shows up directly in serving p99. The fold still makes progress —
  /// it just soaks up idle cycles instead of contending for busy ones.
  int background_nice = 10;
  /// Feed observed queries to a WorkloadMonitor and reorganize
  /// automatically when it fires. Observation uses a try-lock: a contended
  /// reader skips it rather than wait.
  bool monitor_workload = false;
  WorkloadMonitorOptions monitor;
  /// Borrowed resource governor (must outlive the store; null = ungoverned).
  /// The store charges the delta-backlog pool per committed row and the
  /// sealed-chunks pool per sealed chunk, releasing both when a fold
  /// consumes them. TryInsert/TryInsertBatch enforce the delta budget;
  /// the unconditional Insert/InsertBatch only account.
  ResourceGovernor* governor = nullptr;
};

/// Typed admission result for the backpressured write paths.
enum class InsertAdmit : uint8_t {
  kOk = 0,
  /// The governor's delta-backlog budget (or an injected gov.mem_pressure)
  /// refused the bytes. Nothing was applied — safely retryable once the
  /// compactor folds the backlog below budget.
  kResourceExhausted = 1,
};

class IngestStore : public MultiDimIndex {
 public:
  struct Stats {
    int64_t rows_ingested = 0;
    int64_t chunk_rolls = 0;
    int64_t chunks_sealed = 0;
    int64_t compactions = 0;       // Successful folds (incl. reorgs).
    int64_t failed_compactions = 0;
    int64_t reorgs = 0;            // Folds that retargeted the workload.
    int64_t repairs_published = 0;
    int64_t delta_rows = 0;        // Committed rows not yet folded.
    int64_t store_rows = 0;        // Rows in the current sorted index.
    uint64_t version = 0;
    EpochManager::Stats epochs;
  };

  IngestStore(const Dataset& data, const Workload& workload,
              const IngestOptions& options = IngestOptions());
  /// Recovery constructor: adopts an already-built index (e.g. loaded from a
  /// durable checkpoint) as version `initial_version` instead of building
  /// one from a Dataset. The durability layer replays its WAL tail into the
  /// store through the normal insert path, then calls StartBackground().
  IngestStore(std::shared_ptr<const TsunamiIndex> index,
              const Workload& workload, const IngestOptions& options,
              uint64_t initial_version);
  ~IngestStore() override;
  IngestStore(const IngestStore&) = delete;
  IngestStore& operator=(const IngestStore&) = delete;

  // --- MultiDimIndex (reads resolve against a pinned snapshot) ---
  std::string Name() const override { return name_; }
  QueryResult Execute(const Query& query) const override;
  QueryPlan Prepare(const Query& query) const override;
  QueryResult ExecutePlan(const QueryPlan& plan,
                          ExecContext& ctx) const override;
  void FinishPlan(const QueryPlan& plan, QueryResult* result) const override;
  /// The snapshot the plan pinned: its store is what the tasks address.
  const MultiDimIndex& PlanTarget(const QueryPlan& plan) const override;
  uint64_t StoreVersion() const override { return snapshots_.version(); }
  int64_t IndexSizeBytes() const override;
  /// The *current* snapshot's store — stable only until the next fold or
  /// reorg publishes. Concurrent readers must pin (PinSnapshot / Prepare)
  /// instead.
  const ColumnStore& store() const override;

  // --- Writers ---
  /// Appends one row (one value per dimension). Thread-safe (serialized by
  /// the writer mutex); visible to readers on return.
  void Insert(const std::vector<Value>& row);
  /// Appends a batch of rows under one writer-lock acquisition; returns
  /// rows appended.
  int64_t InsertBatch(const std::vector<std::vector<Value>>& rows);
  /// Governed variants: charge the delta-backlog pool *before* appending
  /// and return kResourceExhausted — applying nothing — when the budget
  /// (or an injected gov.mem_pressure) refuses. With no governor they
  /// behave exactly like Insert/InsertBatch.
  InsertAdmit TryInsert(const std::vector<Value>& row);
  InsertAdmit TryInsertBatch(const std::vector<std::vector<Value>>& rows);
  /// Retires a non-empty open chunk so every ingested row becomes a fold
  /// candidate (CompactNow() after ForceRoll() drains the delta entirely).
  void ForceRoll();

  // --- Reorganization / maintenance ---
  /// Re-optimizes for `workload` off to the side and swaps the result in.
  /// Asynchronous when the background compactor runs (returns after
  /// queueing); otherwise compacts synchronously before returning.
  void RequestReorganize(const Workload& workload);
  /// Synchronous fold of every retired chunk into the sorted index
  /// (re-optimizing for `workload` when non-null). Returns the store
  /// version afterwards — unchanged when there was nothing to do or the
  /// build failed closed.
  uint64_t CompactNow(const Workload* workload = nullptr);
  /// Publishes a version with quarantined fold-origin blocks healed (see
  /// TsunamiIndex::RepairedCopy). Returns blocks repaired.
  int64_t RepairQuarantined();
  /// Feeds one query to the workload monitor (no-op unless
  /// options.monitor_workload). Execute/Prepare call this themselves.
  void Observe(const Query& query) const;

  // --- Introspection ---
  std::shared_ptr<const ColumnStoreSnapshot> PinSnapshot() const {
    return snapshots_.Pin();
  }
  std::shared_ptr<const ColumnStoreSnapshot> CurrentSnapshot() const {
    return snapshots_.Current();
  }
  uint64_t version() const { return snapshots_.version(); }
  int64_t rows() const { return snapshots_.Current()->TotalRows(); }
  Stats stats() const;
  EpochManager& epochs() const { return snapshots_.epochs(); }
  /// Registers a callback invoked (outside all store locks) with the new
  /// version after every publish — e.g. PlanCache::InvalidateIndex, so
  /// cached plans stop pinning a superseded snapshot promptly.
  void AddPublishListener(std::function<void(uint64_t)> listener);

  /// Called under compact_mu_ after every successful fold publish (never for
  /// chunk rolls or repairs), with the newly published index, its version,
  /// and the number of delta rows this fold consumed. Because writers append
  /// in chunk-id order and a fold always consumes every retired chunk, the
  /// rows a fold eats are a strict *prefix* of ingestion order — the hook's
  /// cumulative row count is therefore an exact replay cursor for WAL
  /// truncation. Exceptions are swallowed (a failed checkpoint must never
  /// unpublish); the hook does its own fail-closed bookkeeping.
  using FoldHook =
      std::function<void(const std::shared_ptr<const TsunamiIndex>& index,
                         uint64_t version, int64_t rows_folded)>;
  /// Installs the fold hook. Call before any fold can run (i.e. before
  /// StartBackground() when constructed with background compaction off).
  void SetFoldHook(FoldHook hook);

  /// Starts the background Compactor if it is not already running — even
  /// when the options said `background_compaction = false`. The durability
  /// layer constructs the store quiet, replays the WAL, installs the fold
  /// hook, then starts maintenance here. Not thread-safe against concurrent
  /// writers; call during single-threaded setup.
  void StartBackground();

  /// One background-maintenance step: seals eligible retired chunks, then
  /// folds / reorganizes when thresholds or requests call for it. The
  /// Compactor calls this in its loop; synchronous callers may too.
  void BackgroundTick();

  /// Stops and joins the background Compactor (idempotent; no-op when
  /// background compaction is off). An in-flight fold finishes — and
  /// publishes, notifying listeners — before this returns. Call it before
  /// anything a publish listener references dies: the store must outlive a
  /// QueryService that queries it, so the service (declared later) is
  /// destroyed *first*, while the compactor could otherwise still publish
  /// into its plan cache.
  void StopBackground();

 private:
  void InsertLocked(const Value* row);
  void RollLocked();  // write_mu_ held; publishes a fresh open tail.
  // The fold + publish engine behind CompactNow/BackgroundTick. compact_mu_
  // serializes callers; the index build runs outside every other lock.
  uint64_t CompactOnce(const Workload* reorg_workload);
  void NotifyListeners(uint64_t version);
  int64_t RetiredChunks() const;
  /// Raw bytes one committed row occupies in a delta chunk (the unit the
  /// governor's delta-backlog pool is charged in).
  int64_t RowBytes() const {
    return static_cast<int64_t>(dims_) *
           static_cast<int64_t>(sizeof(Value));
  }

  std::string name_;
  IngestOptions options_;
  int dims_ = 0;

  // Lock order: write_mu_ -> publish_mu_; compact_mu_ -> publish_mu_.
  // publish_mu_ serializes every snapshot swap; compact_mu_ serializes the
  // heavy fold/repair sections; neither is ever taken on a read path.
  mutable std::mutex write_mu_;
  mutable std::mutex publish_mu_;
  mutable std::mutex compact_mu_;

  // Declared before snapshots_ so the constructor can seed the initial
  // snapshot with the open tail chunk.
  std::shared_ptr<DeltaChunk> open_chunk_;  // write_mu_
  uint64_t next_chunk_id_ = 1;              // write_mu_
  SnapshotStore snapshots_;

  std::mutex workload_mu_;
  Workload workload_;  // The workload the current index is optimized for.
  std::mutex reorg_mu_;
  std::optional<Workload> pending_reorg_;

  // Monitor state (try-lock from read paths).
  mutable std::mutex monitor_mu_;
  mutable std::unique_ptr<WorkloadMonitor> monitor_;
  mutable std::deque<Query> recent_queries_;

  std::mutex listeners_mu_;
  std::vector<std::function<void(uint64_t)>> listeners_;

  // Set once during single-threaded setup (SetFoldHook), read under
  // compact_mu_ by CompactOnce.
  FoldHook fold_hook_;

  mutable std::atomic<int64_t> rows_ingested_{0};
  mutable std::atomic<int64_t> chunk_rolls_{0};
  mutable std::atomic<int64_t> chunks_sealed_{0};
  mutable std::atomic<int64_t> compactions_{0};
  mutable std::atomic<int64_t> failed_compactions_{0};
  mutable std::atomic<int64_t> reorgs_{0};
  mutable std::atomic<int64_t> repairs_published_{0};

  // Last member: joined (and therefore quiet) before anything above dies.
  std::unique_ptr<Compactor> compactor_;
};

// The background maintenance thread: periodically (and when kicked) runs
// IngestStore::BackgroundTick. Separate from the store so tests can drive
// ticks synchronously without a thread.
class Compactor {
 public:
  Compactor(IngestStore* store, int poll_ms, int nice_value = 0);
  ~Compactor();
  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void Start();
  void Stop();  // Idempotent; joins the thread.
  void Kick();  // Wakes the loop immediately (reorg requests, full chunks).
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  IngestStore* store_;
  int poll_ms_;
  int nice_value_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool kicked_ = false;
  std::atomic<int64_t> ticks_{0};
  std::thread thread_;
};

}  // namespace ingest
}  // namespace tsunami
