#include "src/ingest/scrubber.h"

#include <chrono>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "src/storage/column_store.h"

namespace tsunami {
namespace ingest {

Scrubber::Scrubber(IngestStore* store, const ScrubberOptions& options)
    : store_(store), options_(options) {
  if (options_.poll_ms <= 0) options_.poll_ms = 1;
  if (options_.blocks_per_slice <= 0) options_.blocks_per_slice = 1;
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

int64_t Scrubber::ScrubSlice() {
  const auto snap = store_->PinSnapshot();
  const ColumnStore& cs = snap->index().store();
  const int dims = cs.dims();
  if (dims == 0) return 0;
  if (snap->version() != cursor_version_) {
    // A fold/reorg published a new store; the old blocks no longer exist.
    // Restart the sweep against the new version.
    cursor_version_ = snap->version();
    cursor_dim_ = 0;
    cursor_block_ = 0;
  }
  int64_t scrubbed = 0;
  int64_t found = 0;
  while (scrubbed < options_.blocks_per_slice) {
    const EncodedColumn& col = cs.encoded(cursor_dim_);
    if (cursor_block_ >= col.num_blocks()) {
      cursor_block_ = 0;
      if (++cursor_dim_ >= dims) {
        cursor_dim_ = 0;
        sweeps_.fetch_add(1, std::memory_order_relaxed);
        break;  // Sweep complete; next slice starts the store over.
      }
      continue;
    }
    if (!col.IsQuarantined(cursor_block_) && !col.ScrubBlock(cursor_block_)) {
      ++found;
    }
    ++cursor_block_;
    ++scrubbed;
  }
  slices_.fetch_add(1, std::memory_order_relaxed);
  blocks_.fetch_add(scrubbed, std::memory_order_relaxed);
  if (found > 0) {
    corruptions_.fetch_add(found, std::memory_order_relaxed);
    if (options_.repair) {
      repaired_.fetch_add(store_->RepairQuarantined(),
                          std::memory_order_relaxed);
    }
  }
  return scrubbed;
}

void Scrubber::Loop() {
#if defined(__linux__)
  // Same discipline as the Compactor: scrubbing soaks up idle cycles, it
  // must never contend with query workers. Failure is ignored — priority
  // is an optimization, never a correctness requirement.
  if (options_.nice_value != 0) {
    setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                options_.nice_value);
  }
#endif
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    ScrubSlice();
  }
}

Scrubber::Stats Scrubber::stats() const {
  Stats s;
  s.slices = slices_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.blocks_scrubbed = blocks_.load(std::memory_order_relaxed);
  s.corruptions_found = corruptions_.load(std::memory_order_relaxed);
  s.blocks_repaired = repaired_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ingest
}  // namespace tsunami
