// Scrubber: background integrity sweeps over the serving store.
//
// EnsureReadable verifies a block's XxHash64 checksum exactly once — on its
// first scan touch. A bit that rots *after* that touch (or in a block no
// query ever reads) stays invisible until it silently corrupts a result.
// The Scrubber closes that gap: a low-priority thread (same
// `background_nice` discipline as the Compactor) walks the current
// snapshot's sorted index block by block on idle cycles, recomputing every
// checksum with EncodedColumn::ScrubBlock. A mismatch quarantines the
// block — scans skip it and flag results degraded, exactly as if a query
// had tripped over it — and the Scrubber immediately feeds the hit into
// the existing quarantine-and-repair path (IngestStore::RepairQuarantined,
// which publishes a healed copy rebuilt from the fold backup).
//
// Sweeps are pace-limited (blocks_per_slice per wakeup) so scrubbing never
// competes with serving for memory bandwidth; a fold/reorg publish restarts
// the sweep against the new snapshot (the old blocks are gone).
//
// Fault site (src/common/fault_injection.h): `scrub.corrupt_block` — the
// scrubber's recomputed hash mismatches for the matching block index,
// driving the quarantine + repair path without corrupting memory.
#ifndef TSUNAMI_INGEST_SCRUBBER_H_
#define TSUNAMI_INGEST_SCRUBBER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/ingest/ingest_store.h"

namespace tsunami {
namespace ingest {

struct ScrubberOptions {
  /// Sleep between pace-limited slices.
  int poll_ms = 100;
  /// Blocks verified per wakeup (across columns). The pace limit: at the
  /// defaults a 1M-row, 8-column store (~8k blocks) is fully swept in
  /// ~3 s of idle time while each slice costs well under a millisecond.
  int64_t blocks_per_slice = 256;
  /// Nice value for the scrub thread (Linux; 0 = leave alone). Rides the
  /// same maintenance discipline as IngestOptions::background_nice.
  int nice_value = 10;
  /// Publish a healed copy (IngestStore::RepairQuarantined) as soon as a
  /// sweep finds corruption. Off: quarantine only (tests inspect state).
  bool repair = true;
};

class Scrubber {
 public:
  explicit Scrubber(IngestStore* store, const ScrubberOptions& options = {});
  ~Scrubber();
  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void Start();
  void Stop();  // Idempotent; joins the thread.

  /// One pace-limited slice, runnable synchronously without the thread
  /// (tests, and the examples' soak driver). Returns blocks scrubbed.
  int64_t ScrubSlice();

  struct Stats {
    int64_t slices = 0;
    int64_t sweeps = 0;             // Completed full passes over a version.
    int64_t blocks_scrubbed = 0;
    int64_t corruptions_found = 0;  // Blocks quarantined by the scrubber.
    int64_t blocks_repaired = 0;    // Healed via RepairQuarantined.
  };
  Stats stats() const;

 private:
  void Loop();

  IngestStore* store_;
  ScrubberOptions options_;

  // Sweep cursor; only meaningful while the pinned snapshot still has
  // cursor_version_. Touched only by the scrub thread / ScrubSlice caller.
  uint64_t cursor_version_ = 0;
  int cursor_dim_ = 0;
  int64_t cursor_block_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;

  std::atomic<int64_t> slices_{0};
  std::atomic<int64_t> sweeps_{0};
  std::atomic<int64_t> blocks_{0};
  std::atomic<int64_t> corruptions_{0};
  std::atomic<int64_t> repaired_{0};
};

}  // namespace ingest
}  // namespace tsunami

#endif  // TSUNAMI_INGEST_SCRUBBER_H_
