#include "src/ingest/snapshot.h"

#include <cassert>
#include <utility>

namespace tsunami {
namespace ingest {

ColumnStoreSnapshot::ColumnStoreSnapshot(
    uint64_t version, std::shared_ptr<const TsunamiIndex> index,
    std::vector<std::shared_ptr<const DeltaChunk>> chunks)
    : version_(version), index_(std::move(index)), chunks_(std::move(chunks)) {
  assert(index_ != nullptr);
}

int64_t ColumnStoreSnapshot::ChunkRows() const {
  int64_t rows = 0;
  for (const auto& chunk : chunks_) rows += chunk->committed();
  return rows;
}

std::string ColumnStoreSnapshot::Name() const { return index_->Name(); }

QueryResult ColumnStoreSnapshot::Execute(const Query& query) const {
  QueryResult result = index_->Execute(query);
  for (const auto& chunk : chunks_) chunk->Scan(query, &result);
  return result;
}

QueryPlan ColumnStoreSnapshot::Prepare(const Query& query) const {
  QueryPlan plan = index_->Prepare(query);
  plan.store_version = version_;
  return plan;
}

void ColumnStoreSnapshot::FinishPlan(const QueryPlan& plan,
                                     QueryResult* result) const {
  index_->FinishPlan(plan, result);
  for (const auto& chunk : chunks_) chunk->Scan(plan.query, result);
}

int64_t ColumnStoreSnapshot::IndexSizeBytes() const {
  int64_t bytes = index_->IndexSizeBytes();
  for (const auto& chunk : chunks_) bytes += chunk->MemoryBytes();
  return bytes;
}

SnapshotStore::SnapshotStore(
    std::shared_ptr<const ColumnStoreSnapshot> initial)
    : version_(initial->version()), current_(std::move(initial)) {}

std::shared_ptr<const ColumnStoreSnapshot> SnapshotStore::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

std::shared_ptr<const ColumnStoreSnapshot> SnapshotStore::Pin() const {
  // Pin the epoch *before* loading the pointer: a publisher swaps the
  // pointer before retiring, so whatever version this load observes cannot
  // have been retired at an epoch newer than ours — the epoch manager keeps
  // it un-reclaimed until we unpin (and the shared_ptr keeps the memory
  // safe regardless).
  struct PinHolder {
    std::shared_ptr<const ColumnStoreSnapshot> snap;
    EpochManager* epochs;
    uint64_t epoch;
    ~PinHolder() { epochs->Unpin(epoch); }
  };
  auto holder = std::make_shared<PinHolder>();
  holder->epochs = &epochs_;
  holder->epoch = epochs_.Pin();
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    holder->snap = current_;
  }
  // Aliasing: the returned pointer addresses the snapshot but owns the
  // holder, so dropping the last copy unpins the epoch.
  const ColumnStoreSnapshot* snap = holder->snap.get();
  return std::shared_ptr<const ColumnStoreSnapshot>(std::move(holder), snap);
}

void SnapshotStore::Publish(std::shared_ptr<const ColumnStoreSnapshot> next) {
  assert(next->version() > version());
  version_.store(next->version(), std::memory_order_release);
  std::shared_ptr<const ColumnStoreSnapshot> old;
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    old = std::move(current_);
    current_ = std::move(next);
  }
  // Retire the superseded version: the reclaim callback drops our owning
  // reference once every reader pinned on it has advanced. Readers that
  // still hold it via their own shared_ptr remain safe either way.
  epochs_.Retire([old]() mutable { old.reset(); });
}

}  // namespace ingest
}  // namespace tsunami
