// The immutable published version of an ingesting store, and the
// atomically-swapped holder that hands it out.
//
// A ColumnStoreSnapshot is (sorted TsunamiIndex, list of delta chunks,
// version). Everything a query resolves — grid, zone maps, encoded blocks,
// quarantine state, which chunks exist — is fixed by the snapshot; the only
// thing that moves under a pinned reader is the open chunk's committed row
// count, which is monotone and torn-read-free (release/acquire). Publishing
// never mutates a live snapshot: writers roll chunks, the compactor folds
// them into a new sorted index, and reorganization rebuilds the grid off to
// the side — each publishes a *new* snapshot and retires the old one
// through the epoch manager.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/index.h"
#include "src/core/tsunami.h"
#include "src/ingest/delta_chunk.h"
#include "src/ingest/epoch.h"

namespace tsunami {
namespace ingest {

class ColumnStoreSnapshot : public MultiDimIndex {
 public:
  ColumnStoreSnapshot(uint64_t version,
                      std::shared_ptr<const TsunamiIndex> index,
                      std::vector<std::shared_ptr<const DeltaChunk>> chunks);

  uint64_t version() const { return version_; }
  const TsunamiIndex& index() const { return *index_; }
  const std::shared_ptr<const TsunamiIndex>& index_ptr() const {
    return index_;
  }
  const std::vector<std::shared_ptr<const DeltaChunk>>& chunks() const {
    return chunks_;
  }
  // Rows committed across this snapshot's chunks *right now* (the open
  // chunk keeps absorbing appends after publication).
  int64_t ChunkRows() const;
  int64_t TotalRows() const { return index_->store().size() + ChunkRows(); }

  // MultiDimIndex. Prepare stamps store_version; FinishPlan runs the sorted
  // index's epilogue plus a scan of every chunk (committed rows read at
  // execution time, so replayed plans see fresh rows within this version).
  std::string Name() const override;
  QueryResult Execute(const Query& query) const override;
  QueryPlan Prepare(const Query& query) const override;
  void FinishPlan(const QueryPlan& plan, QueryResult* result) const override;
  uint64_t StoreVersion() const override { return version_; }
  int64_t IndexSizeBytes() const override;
  const ColumnStore& store() const override { return index_->store(); }

 private:
  const uint64_t version_;
  const std::shared_ptr<const TsunamiIndex> index_;
  const std::vector<std::shared_ptr<const DeltaChunk>> chunks_;
};

// Holds the current snapshot behind an atomically-swapped shared_ptr and
// owns the epoch manager that paces reclamation of superseded versions.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::shared_ptr<const ColumnStoreSnapshot> initial);

  // The current snapshot, un-pinned: safe to use because shared_ptr keeps
  // it alive, but does not hold back epoch reclamation. For stats paths and
  // quiesced callers.
  std::shared_ptr<const ColumnStoreSnapshot> Current() const;

  // The current snapshot with its read epoch pinned: the returned pointer
  // unpins when the last copy drops. Queries hold one of these from Prepare
  // until the last chunk finishes.
  std::shared_ptr<const ColumnStoreSnapshot> Pin() const;

  // Swaps `next` in and retires the superseded snapshot through the epoch
  // manager. The caller serializes publishes (IngestStore's publish mutex)
  // and must hand in a strictly newer version.
  void Publish(std::shared_ptr<const ColumnStoreSnapshot> next);

  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  EpochManager& epochs() const { return epochs_; }

 private:
  mutable EpochManager epochs_;
  std::atomic<uint64_t> version_;
  // A leaf mutex held only for the pointer copy/swap — never across a
  // build, a scan, or reclamation — so readers wait at most a few
  // instructions behind a publisher, never behind a reorganization.
  // (std::atomic<shared_ptr> would be the natural fit, but libstdc++'s
  // lock-free _Sp_atomic releases its reader-side spinlock with a relaxed
  // RMW, which ThreadSanitizer — faithfully to the formal memory model —
  // cannot order against the next publisher's write; a real mutex keeps
  // the suite TSan-clean without suppressions.)
  mutable std::mutex current_mu_;
  std::shared_ptr<const ColumnStoreSnapshot> current_;
};

}  // namespace ingest
}  // namespace tsunami
