#include "src/io/serializer.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/fault_injection.h"

namespace tsunami {

namespace {

constexpr uint32_t kMagic = 0x544E534D;  // "TSNM" read little-endian.
// Oldest format version ReadFramedFile still accepts (see the version
// history on kTsunamiFormatVersion in the header).
constexpr uint32_t kMinFormatVersion = 2;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr uint64_t kXxPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kXxPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kXxPrime5 = 0x27D4EB2F165667C5ull;

uint64_t XxRotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

uint64_t XxRead64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Little-endian hosts only, like the rest of the serializer.
}

uint32_t XxRead32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t XxRound(uint64_t acc, uint64_t input) {
  acc += input * kXxPrime2;
  acc = XxRotl(acc, 31);
  return acc * kXxPrime1;
}

uint64_t XxMergeRound(uint64_t acc, uint64_t val) {
  acc ^= XxRound(0, val);
  return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace

uint64_t XxHash64(std::string_view data, uint64_t seed) {
  const char* p = data.data();
  const char* const end = p + data.size();
  uint64_t h;
  if (data.size() >= 32) {
    uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    uint64_t v2 = seed + kXxPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kXxPrime1;
    const char* const limit = end - 32;
    do {
      v1 = XxRound(v1, XxRead64(p));
      v2 = XxRound(v2, XxRead64(p + 8));
      v3 = XxRound(v3, XxRead64(p + 16));
      v4 = XxRound(v4, XxRead64(p + 24));
      p += 32;
    } while (p <= limit);
    h = XxRotl(v1, 1) + XxRotl(v2, 7) + XxRotl(v3, 12) + XxRotl(v4, 18);
    h = XxMergeRound(h, v1);
    h = XxMergeRound(h, v2);
    h = XxMergeRound(h, v3);
    h = XxMergeRound(h, v4);
  } else {
    h = seed + kXxPrime5;
  }
  h += static_cast<uint64_t>(data.size());
  while (p + 8 <= end) {
    h ^= XxRound(0, XxRead64(p));
    h = XxRotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(XxRead32(p)) * kXxPrime1;
    h = XxRotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint8_t>(*p) * kXxPrime5;
    h = XxRotl(h, 11) * kXxPrime1;
    ++p;
  }
  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

void BinaryWriter::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BinaryWriter::PutVarI64(int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  PutVarU64((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarU64(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutValueVec(const std::vector<Value>& values) {
  PutVarU64(values.size());
  for (Value v : values) PutVarI64(v);
}

void BinaryWriter::PutIntVec(const std::vector<int>& values) {
  PutVarU64(values.size());
  for (int v : values) PutVarI64(v);
}

void BinaryWriter::PutDoubleVec(const std::vector<double>& values) {
  PutVarU64(values.size());
  for (double v : values) PutDouble(v);
}

uint8_t BinaryReader::GetU8() {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t BinaryReader::GetFixed32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t BinaryReader::GetFixed64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t BinaryReader::GetVarU64() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = GetU8();
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return ok_ ? v : 0;
  }
  ok_ = false;  // Varint longer than 10 bytes.
  return 0;
}

int64_t BinaryReader::GetVarI64() {
  uint64_t z = GetVarU64();
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double BinaryReader::GetDouble() {
  uint64_t bits = GetFixed64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string BinaryReader::GetString() {
  uint64_t n = GetVarU64();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return std::string();
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

bool BinaryReader::GetValueVec(std::vector<Value>* out) {
  uint64_t n = GetVarU64();
  // A varint needs at least one byte per element: cheap truncation guard.
  if (!ok_ || n > kMaxElements || n > remaining()) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) out->push_back(GetVarI64());
  return ok_;
}

bool BinaryReader::GetIntVec(std::vector<int>* out) {
  uint64_t n = GetVarU64();
  if (!ok_ || n > kMaxElements || n > remaining()) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) {
    out->push_back(static_cast<int>(GetVarI64()));
  }
  return ok_;
}

bool BinaryReader::GetDoubleVec(std::vector<double>* out) {
  uint64_t n = GetVarU64();
  if (!ok_ || n > remaining() / sizeof(double)) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) out->push_back(GetDouble());
  return ok_;
}

const char* ToString(FileError error) {
  switch (error) {
    case FileError::kNone: return "none";
    case FileError::kIoError: return "io_error";
    case FileError::kBadMagic: return "bad_magic";
    case FileError::kBadVersion: return "bad_version";
    case FileError::kBadKind: return "bad_kind";
    case FileError::kTruncated: return "truncated";
    case FileError::kChecksumMismatch: return "checksum_mismatch";
  }
  return "unknown";
}

bool WriteFramedFile(const std::string& path, FileKind kind,
                     std::string_view payload, std::string* error) {
  BinaryWriter header;
  header.PutFixed32(kMagic);
  header.PutFixed32(kTsunamiFormatVersion);
  header.PutFixed32(static_cast<uint32_t>(kind));
  header.PutFixed64(payload.size());
  header.PutFixed32(Crc32(payload));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  bool ok =
      std::fwrite(header.buffer().data(), 1, header.buffer().size(), f) ==
          header.buffer().size() &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to '" + path + "'";
  return ok;
}

bool ReadFramedFile(const std::string& path, FileKind kind,
                    std::string* payload, std::string* error,
                    FileError* code, uint32_t* version_out) {
  if (code != nullptr) *code = FileError::kNone;
  auto fail = [error, code](FileError c, const std::string& message) {
    if (error != nullptr) *error = message;
    if (code != nullptr) *code = c;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail(FileError::kIoError, "cannot open '" + path + "'");
  }
  std::string contents;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);

  // Fault site: simulate a short read (a crash mid-write, a torn copy). The
  // truncation checks below must turn this into a typed error, never UB.
  // The armed spec's `param` is the exact byte offset to cut at (tests sweep
  // it across every section boundary); unset keeps the halve-the-file
  // default.
  if (TSUNAMI_FAULT_FIRES("io.short_read", contents.size())) {
    int64_t cut = fault::Param("io.short_read");
    if (cut < 0 || cut > static_cast<int64_t>(contents.size())) {
      cut = static_cast<int64_t>(contents.size() / 2);
    }
    contents.resize(static_cast<size_t>(cut));
  }

  constexpr size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;
  if (contents.size() < kHeaderSize) {
    return fail(FileError::kTruncated,
                "'" + path + "' is truncated at offset " +
                    std::to_string(contents.size()) + " (header needs " +
                    std::to_string(kHeaderSize) + " bytes)");
  }
  BinaryReader header(std::string_view(contents).substr(0, kHeaderSize));
  if (header.GetFixed32() != kMagic) {
    return fail(FileError::kBadMagic,
                "'" + path + "' is not a tsunami file (bad magic)");
  }
  uint32_t version = header.GetFixed32();
  if (version < kMinFormatVersion || version > kTsunamiFormatVersion) {
    return fail(FileError::kBadVersion,
                "'" + path + "' has unsupported format version " +
                    std::to_string(version));
  }
  uint32_t got_kind = header.GetFixed32();
  if (got_kind != static_cast<uint32_t>(kind)) {
    return fail(FileError::kBadKind,
                "'" + path + "' holds object kind " +
                    std::to_string(got_kind) + ", expected " +
                    std::to_string(static_cast<uint32_t>(kind)));
  }
  uint64_t payload_size = header.GetFixed64();
  uint32_t crc = header.GetFixed32();
  if (contents.size() - kHeaderSize != payload_size) {
    return fail(FileError::kTruncated,
                "'" + path + "' is truncated at offset " +
                    std::to_string(contents.size()) + " (header declares " +
                    std::to_string(payload_size) + " payload bytes at offset " +
                    std::to_string(kHeaderSize) + ")");
  }
  std::string_view body = std::string_view(contents).substr(kHeaderSize);
  if (Crc32(body) != crc) {
    return fail(FileError::kChecksumMismatch,
                "'" + path + "' is corrupt (payload checksum mismatch over " +
                    "bytes [" + std::to_string(kHeaderSize) + ", " +
                    std::to_string(contents.size()) + "))");
  }
  payload->assign(body);
  if (version_out != nullptr) *version_out = version;
  return true;
}

namespace {

bool FsyncFd(int fd) {
#if defined(__linux__)
  return ::fdatasync(fd) == 0;
#else
  return ::fsync(fd) == 0;
#endif
}

}  // namespace

bool FsyncPath(const std::string& path, std::string* error) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for fsync: " + std::strerror(errno);
    }
    return false;
  }
  bool ok = FsyncFd(fd);
  if (!ok && error != nullptr) {
    *error = "fsync of '" + path + "' failed: " + std::strerror(errno);
  }
  ::close(fd);
  return ok;
}

bool FsyncDir(const std::string& dir, std::string* error) {
  int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open directory '" + dir +
               "' for fsync: " + std::strerror(errno);
    }
    return false;
  }
  // Directories want full fsync: the metadata (the new directory entry) is
  // the payload.
  bool ok = ::fsync(fd) == 0;
  if (!ok && error != nullptr) {
    *error = "fsync of directory '" + dir + "' failed: " + std::strerror(errno);
  }
  ::close(fd);
  return ok;
}

bool WriteFramedFileDurable(const std::string& path, FileKind kind,
                            std::string_view payload, std::string* error) {
  const std::string tmp = path + ".tmp";
  if (!WriteFramedFile(tmp, kind, payload, error)) return false;
  if (!FsyncPath(tmp, error)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename '" + tmp + "' to '" + path +
               "': " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return FsyncDir(dir, error);
}

}  // namespace tsunami
