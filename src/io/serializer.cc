#include "src/io/serializer.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace tsunami {

namespace {

constexpr uint32_t kMagic = 0x544E534D;  // "TSNM" read little-endian.
// Version 2: ColumnStore payloads hold per-block codecs + code arrays
// (encoded_column.h) instead of delta-varint raw columns, and the Tsunami
// delta buffer is columnar. Version-1 files are rejected cleanly.
constexpr uint32_t kFormatVersion = 2;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BinaryWriter::PutVarI64(int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  PutVarU64((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarU64(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutValueVec(const std::vector<Value>& values) {
  PutVarU64(values.size());
  for (Value v : values) PutVarI64(v);
}

void BinaryWriter::PutIntVec(const std::vector<int>& values) {
  PutVarU64(values.size());
  for (int v : values) PutVarI64(v);
}

void BinaryWriter::PutDoubleVec(const std::vector<double>& values) {
  PutVarU64(values.size());
  for (double v : values) PutDouble(v);
}

uint8_t BinaryReader::GetU8() {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t BinaryReader::GetFixed32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t BinaryReader::GetFixed64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(GetU8()) << (8 * i);
  return v;
}

uint64_t BinaryReader::GetVarU64() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = GetU8();
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return ok_ ? v : 0;
  }
  ok_ = false;  // Varint longer than 10 bytes.
  return 0;
}

int64_t BinaryReader::GetVarI64() {
  uint64_t z = GetVarU64();
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double BinaryReader::GetDouble() {
  uint64_t bits = GetFixed64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string BinaryReader::GetString() {
  uint64_t n = GetVarU64();
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return std::string();
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

bool BinaryReader::GetValueVec(std::vector<Value>* out) {
  uint64_t n = GetVarU64();
  // A varint needs at least one byte per element: cheap truncation guard.
  if (!ok_ || n > kMaxElements || n > remaining()) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) out->push_back(GetVarI64());
  return ok_;
}

bool BinaryReader::GetIntVec(std::vector<int>* out) {
  uint64_t n = GetVarU64();
  if (!ok_ || n > kMaxElements || n > remaining()) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) {
    out->push_back(static_cast<int>(GetVarI64()));
  }
  return ok_;
}

bool BinaryReader::GetDoubleVec(std::vector<double>* out) {
  uint64_t n = GetVarU64();
  if (!ok_ || n > remaining() / sizeof(double)) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n && ok_; ++i) out->push_back(GetDouble());
  return ok_;
}

bool WriteFramedFile(const std::string& path, FileKind kind,
                     std::string_view payload, std::string* error) {
  BinaryWriter header;
  header.PutFixed32(kMagic);
  header.PutFixed32(kFormatVersion);
  header.PutFixed32(static_cast<uint32_t>(kind));
  header.PutFixed64(payload.size());
  header.PutFixed32(Crc32(payload));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  bool ok =
      std::fwrite(header.buffer().data(), 1, header.buffer().size(), f) ==
          header.buffer().size() &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) *error = "short write to '" + path + "'";
  return ok;
}

bool ReadFramedFile(const std::string& path, FileKind kind,
                    std::string* payload, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open '" + path + "'");
  std::string contents;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);

  constexpr size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;
  if (contents.size() < kHeaderSize) {
    return fail("'" + path + "' is truncated (no header)");
  }
  BinaryReader header(std::string_view(contents).substr(0, kHeaderSize));
  if (header.GetFixed32() != kMagic) {
    return fail("'" + path + "' is not a tsunami file (bad magic)");
  }
  uint32_t version = header.GetFixed32();
  if (version != kFormatVersion) {
    return fail("'" + path + "' has unsupported format version " +
                std::to_string(version));
  }
  uint32_t got_kind = header.GetFixed32();
  if (got_kind != static_cast<uint32_t>(kind)) {
    return fail("'" + path + "' holds object kind " +
                std::to_string(got_kind) + ", expected " +
                std::to_string(static_cast<uint32_t>(kind)));
  }
  uint64_t payload_size = header.GetFixed64();
  uint32_t crc = header.GetFixed32();
  if (contents.size() - kHeaderSize != payload_size) {
    return fail("'" + path + "' is truncated (payload size mismatch)");
  }
  std::string_view body = std::string_view(contents).substr(kHeaderSize);
  if (Crc32(body) != crc) {
    return fail("'" + path + "' is corrupt (checksum mismatch)");
  }
  payload->assign(body);
  return true;
}

}  // namespace tsunami
