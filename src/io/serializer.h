// Binary serialization substrate for index persistence (§8 "Persistence"):
// a little-endian append-only writer, a bounds-checked reader, CRC-32
// integrity checksums, and a framed file format with magic, version, and
// payload checksum. No dependency above src/common.
#ifndef TSUNAMI_IO_SERIALIZER_H_
#define TSUNAMI_IO_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data);

/// Appends primitive values to an in-memory buffer in little-endian order.
/// Integers use LEB128 varints (signed values zigzag encoded), so sorted or
/// small-magnitude columns stay compact.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarU64(uint64_t v);
  void PutVarI64(int64_t v);  // Zigzag encoded.
  void PutDouble(double v);
  void PutString(std::string_view s);

  void PutValueVec(const std::vector<Value>& values);
  void PutIntVec(const std::vector<int>& values);
  void PutDoubleVec(const std::vector<double>& values);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Reads values written by BinaryWriter. Every accessor returns a default
/// value and latches `ok() == false` on underflow or malformed input; the
/// caller checks `ok()` once at the end of a structure.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  bool GetBool() { return GetU8() != 0; }
  uint32_t GetFixed32();
  uint64_t GetFixed64();
  uint64_t GetVarU64();
  int64_t GetVarI64();
  double GetDouble();
  std::string GetString();

  bool GetValueVec(std::vector<Value>* out);
  bool GetIntVec(std::vector<int>* out);
  bool GetDoubleVec(std::vector<double>* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Marks the stream corrupt (used by callers on semantic errors, e.g. an
  /// out-of-range enum value).
  void MarkCorrupt() { ok_ = false; }

 private:
  /// Caps element counts read from the stream so a corrupt length prefix
  /// cannot trigger a huge allocation.
  static constexpr uint64_t kMaxElements = uint64_t{1} << 40;

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Framed file kinds (one per top-level object we persist).
enum class FileKind : uint32_t {
  kDataset = 1,
  kWorkload = 2,
  kTsunamiIndex = 3,
};

/// Writes `payload` to `path` framed as:
///   magic "TSNM" | format version | kind | payload length | crc32 | payload
/// Returns false (with `error` set) on I/O failure.
bool WriteFramedFile(const std::string& path, FileKind kind,
                     std::string_view payload, std::string* error);

/// Reads and validates a framed file; fails on missing file, bad magic,
/// unsupported version, kind mismatch, truncation, or checksum mismatch.
bool ReadFramedFile(const std::string& path, FileKind kind,
                    std::string* payload, std::string* error);

}  // namespace tsunami

#endif  // TSUNAMI_IO_SERIALIZER_H_
