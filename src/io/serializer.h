// Binary serialization substrate for index persistence (§8 "Persistence"):
// a little-endian append-only writer, a bounds-checked reader, CRC-32
// integrity checksums, and a framed file format with magic, version, and
// payload checksum. No dependency above src/common.
#ifndef TSUNAMI_IO_SERIALIZER_H_
#define TSUNAMI_IO_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace tsunami {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data);

/// 64-bit xxhash-style hash over `data` (XXH64 algorithm). Used for the
/// per-block storage checksums: wider and cheaper per byte than CRC-32, so
/// a scan can afford to verify a block on first touch.
uint64_t XxHash64(std::string_view data, uint64_t seed = 0);

/// Current framed-file format version.
/// Version 2: ColumnStore payloads hold per-block codecs + code arrays
/// (encoded_column.h) instead of delta-varint raw columns, and the Tsunami
/// delta buffer is columnar.
/// Version 3: encoded columns append per-block XxHash64 checksums so a
/// corrupt block can be quarantined (not fatal) at load or on first scan
/// touch. Version-2 files are still read (checksums recomputed from the
/// payload, which the frame CRC already validated); version-1 files are
/// rejected cleanly.
inline constexpr uint32_t kTsunamiFormatVersion = 3;

/// Appends primitive values to an in-memory buffer in little-endian order.
/// Integers use LEB128 varints (signed values zigzag encoded), so sorted or
/// small-magnitude columns stay compact.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarU64(uint64_t v);
  void PutVarI64(int64_t v);  // Zigzag encoded.
  void PutDouble(double v);
  void PutString(std::string_view s);

  void PutValueVec(const std::vector<Value>& values);
  void PutIntVec(const std::vector<int>& values);
  void PutDoubleVec(const std::vector<double>& values);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Reads values written by BinaryWriter. Every accessor returns a default
/// value and latches `ok() == false` on underflow or malformed input; the
/// caller checks `ok()` once at the end of a structure.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  bool GetBool() { return GetU8() != 0; }
  uint32_t GetFixed32();
  uint64_t GetFixed64();
  uint64_t GetVarU64();
  int64_t GetVarI64();
  double GetDouble();
  std::string GetString();

  bool GetValueVec(std::vector<Value>* out);
  bool GetIntVec(std::vector<int>* out);
  bool GetDoubleVec(std::vector<double>* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Marks the stream corrupt (used by callers on semantic errors, e.g. an
  /// out-of-range enum value).
  void MarkCorrupt() { ok_ = false; }

  /// Framed-file format version this payload was written under. Defaults to
  /// the current version; ReadFramedFile's caller sets it for older files so
  /// structures with versioned layouts (EncodedColumn) can branch.
  void set_version(uint32_t v) { version_ = v; }
  uint32_t version() const { return version_; }

 private:
  /// Caps element counts read from the stream so a corrupt length prefix
  /// cannot trigger a huge allocation.
  static constexpr uint64_t kMaxElements = uint64_t{1} << 40;

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
  uint32_t version_ = kTsunamiFormatVersion;
};

/// Framed file kinds (one per top-level object we persist).
enum class FileKind : uint32_t {
  kDataset = 1,
  kWorkload = 2,
  kTsunamiIndex = 3,
  /// The durability manifest (src/durability): checkpoint version, snapshot
  /// file, WAL replay cursor, and the live WAL segment range.
  kDurabilityManifest = 4,
};

/// Typed failure cause for ReadFramedFile (and the WAL record reader in
/// src/durability/wal.h, which reuses the same codes), so callers and tests
/// can react to *why* bytes were rejected without parsing the human-readable
/// message. The WAL layer leans on the kTruncated / kChecksumMismatch
/// distinction: a truncated tail is the expected shape of a crash mid-write
/// (replay ends cleanly there), while a checksum mismatch on a *complete*
/// frame means the bytes themselves are corrupt. Every failure message
/// includes the byte offset at which validation failed.
enum class FileError : uint8_t {
  kNone = 0,
  kIoError,            // Missing file / unreadable.
  kBadMagic,           // Not a tsunami file.
  kBadVersion,         // Format version we cannot read.
  kBadKind,            // Frame holds a different object kind.
  kTruncated,          // Short read: header or payload cut off.
  kChecksumMismatch,   // Payload bytes fail the frame CRC / record hash.
};

const char* ToString(FileError error);

/// Writes `payload` to `path` framed as:
///   magic "TSNM" | format version | kind | payload length | crc32 | payload
/// Returns false (with `error` set) on I/O failure.
bool WriteFramedFile(const std::string& path, FileKind kind,
                     std::string_view payload, std::string* error);

/// Reads and validates a framed file; fails on missing file, bad magic,
/// unsupported version, kind mismatch, truncation, or checksum mismatch.
/// On failure `code` (when non-null) carries the typed cause; on success it
/// is kNone and `version` (when non-null) carries the file's format version
/// — pass it to BinaryReader::set_version before decoding the payload.
bool ReadFramedFile(const std::string& path, FileKind kind,
                    std::string* payload, std::string* error,
                    FileError* code = nullptr, uint32_t* version = nullptr);

// --- Durable writes (the WAL / checkpoint substrate) -----------------------
// A plain WriteFramedFile leaves the bytes in the page cache: a crash can
// lose or tear them. The durable variants push bytes to stable storage and
// make the *rename* the commit point, so a reader never observes a
// half-written file — it sees the old version or the new one.

/// fsync (fdatasync where available) an existing file by path.
bool FsyncPath(const std::string& path, std::string* error = nullptr);

/// fsync a directory, making completed renames/creates/unlinks in it
/// durable. Required after the rename in an atomic-replace sequence.
bool FsyncDir(const std::string& dir, std::string* error = nullptr);

/// Atomically replaces `path` with a framed file holding `payload`:
/// write to "<path>.tmp", fsync the file, rename over `path`, fsync the
/// parent directory. On failure the previous `path` (if any) is intact.
bool WriteFramedFileDurable(const std::string& path, FileKind kind,
                            std::string_view payload, std::string* error);

}  // namespace tsunami

#endif  // TSUNAMI_IO_SERIALIZER_H_
