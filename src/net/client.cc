#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/fault_injection.h"
#include "src/common/stats.h"

namespace tsunami {
namespace net {

namespace {

/// poll() for `events` with a seconds timeout; true when the fd is ready.
bool PollFor(int fd, short events, double timeout_seconds) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      std::max(1, static_cast<int>(timeout_seconds * 1000.0));
  while (true) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (n == 0) return false;  // Timeout.
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace

TsunamiClient::TsunamiClient(const ClientOptions& options)
    : options_(options), rng_(options.rng_seed) {}

TsunamiClient::~TsunamiClient() { Close(); }

void TsunamiClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  // Stashed responses for already-answered pipelined requests stay valid.
}

bool TsunamiClient::Connect(std::string* error) {
  if (fd_ >= 0) return true;
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    Close();
    return false;
  };
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail("socket");
  if (options_.rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf_bytes,
                 sizeof(options_.rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return fail("connect");
    if (!PollFor(fd_, POLLOUT, options_.connect_timeout_seconds)) {
      errno = ETIMEDOUT;
      return fail("connect");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      return fail("connect");
    }
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool TsunamiClient::SendAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    size_t len = data.size() - off;
    if (TSUNAMI_FAULT_FIRES("net.short_write", static_cast<int64_t>(len))) {
      len = std::max<size_t>(1, len / 2);
    }
    const ssize_t n = ::send(fd_, data.data() + off, len, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (PollFor(fd_, POLLOUT, options_.io_timeout_seconds)) continue;
      return false;  // Write timeout: the peer stopped draining us.
    }
    return false;
  }
  return true;
}

uint64_t TsunamiClient::Submit(const Query& query, int priority,
                               double deadline_seconds) {
  if (fd_ < 0 && !Connect()) return 0;
  const uint64_t request_id = next_request_id_++;
  FrameHeader header;
  header.type = FrameType::kQuery;
  header.request_id = request_id;
  header.priority = priority;
  // A positive budget must survive the truncation to micros — 0 means
  // "no deadline", so clamp sub-microsecond remainders up to 1.
  header.deadline_micros =
      deadline_seconds <= 0.0
          ? 0
          : std::max<uint64_t>(
                1, static_cast<uint64_t>(deadline_seconds * 1e6));
  std::string frame;
  AppendFrame(header, EncodeQueryPayload(query), &frame);
  if (TSUNAMI_FAULT_FIRES("net.partial_frame",
                          static_cast<int64_t>(request_id))) {
    // Torn frame: deliver a prefix, then vanish. The server must discard
    // the fragment on EOF without ever seeing a parseable query; the
    // request was provably not admitted, so retrying it is safe.
    const std::string_view prefix(frame.data(),
                                  std::max<size_t>(1, frame.size() / 2));
    (void)SendAll(prefix);
    Close();
    return 0;
  }
  if (!SendAll(frame)) {
    Close();
    return 0;
  }
  return request_id;
}

bool TsunamiClient::ReadFrame(FrameHeader* header, std::string* payload) {
  while (true) {
    const HeaderParse hp = ParseFrameHeader(rbuf_, header);
    if (hp == HeaderParse::kBadMagic || hp == HeaderParse::kBadVersion) {
      Close();
      return false;
    }
    if (hp == HeaderParse::kOk) {
      if (header->payload_len > options_.max_frame_payload) {
        Close();
        return false;
      }
      if (rbuf_.size() >= kFrameHeaderSize + header->payload_len) {
        payload->assign(rbuf_, kFrameHeaderSize, header->payload_len);
        rbuf_.erase(0, kFrameHeaderSize + header->payload_len);
        return true;
      }
    }
    if (!PollFor(fd_, POLLIN, options_.io_timeout_seconds)) {
      Close();
      return false;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    Close();  // EOF or hard error (ECONNRESET on an injected RST).
    return false;
  }
}

bool TsunamiClient::StashResponse(const FrameHeader& header,
                                  std::string_view payload) {
  switch (header.type) {
    case FrameType::kResult: {
      ResultPayload decoded;
      if (!DecodeResultPayload(payload, &decoded)) return false;
      ClientResult r;
      r.transport_ok = true;
      r.error = WireError::kNone;
      r.outcome = decoded.outcome;
      r.server_latency_seconds = decoded.server_latency_seconds;
      r.result = std::move(decoded.result);
      ready_[header.request_id] = std::move(r);
      return true;
    }
    case FrameType::kError: {
      ClientResult r;
      r.transport_ok = true;
      if (!DecodeErrorPayload(payload, &r.error, &r.error_message)) {
        return false;
      }
      ready_[header.request_id] = std::move(r);
      return true;
    }
    case FrameType::kInsertAck: {
      InsertAckPayload decoded;
      if (!DecodeInsertAckPayload(payload, &decoded)) return false;
      ClientResult r;
      r.transport_ok = true;
      r.error = WireError::kNone;
      r.outcome = QueryOutcome::kCompleted;
      r.inserted = decoded.accepted;
      r.store_version = decoded.store_version;
      ready_[header.request_id] = std::move(r);
      return true;
    }
    case FrameType::kPong:
      ++pongs_;
      return true;
    case FrameType::kPing:
    case FrameType::kQuery:
    case FrameType::kInsert:
      return false;  // The server never sends these.
  }
  return false;
}

bool TsunamiClient::Await(uint64_t request_id, ClientResult* out) {
  while (true) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      *out = std::move(it->second);
      ready_.erase(it);
      return true;
    }
    if (fd_ < 0) return false;
    FrameHeader header;
    std::string payload;
    if (!ReadFrame(&header, &payload)) return false;
    if (!StashResponse(header, payload)) {
      Close();  // Protocol violation; nothing further can be trusted.
      return false;
    }
  }
}

uint64_t TsunamiClient::SubmitInsert(
    const std::vector<std::vector<Value>>& rows) {
  if (fd_ < 0 && !Connect()) return 0;
  const uint64_t request_id = next_request_id_++;
  FrameHeader header;
  header.type = FrameType::kInsert;
  header.request_id = request_id;
  std::string frame;
  AppendFrame(header, EncodeInsertPayload(rows), &frame);
  if (!SendAll(frame)) {
    Close();
    return 0;
  }
  return request_id;
}

ClientResult TsunamiClient::Insert(
    const std::vector<std::vector<Value>>& rows) {
  ClientResult r;
  const uint64_t request_id = SubmitInsert(rows);
  if (request_id == 0) {
    r.error_message = "submit-insert: transport loss";
    return r;
  }
  if (!AwaitInsert(request_id, &r)) {
    r = ClientResult{};
    r.error_message = "await-insert: transport loss";
  }
  return r;
}

bool TsunamiClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0 && !Connect()) return false;
  if (!SendAll(bytes)) {
    Close();
    return false;
  }
  return true;
}

bool TsunamiClient::Ping() {
  if (fd_ < 0 && !Connect()) return false;
  FrameHeader header;
  header.type = FrameType::kPing;
  header.request_id = next_request_id_++;
  std::string frame;
  AppendFrame(header, {}, &frame);
  if (!SendAll(frame)) {
    Close();
    return false;
  }
  const uint64_t before = pongs_;
  while (pongs_ == before) {
    if (fd_ < 0) return false;
    FrameHeader in;
    std::string payload;
    if (!ReadFrame(&in, &payload)) return false;
    if (!StashResponse(in, payload)) {
      Close();
      return false;
    }
  }
  return true;
}

void TsunamiClient::Backoff(int attempt, double remaining_seconds) {
  double delay = options_.backoff_initial_seconds;
  for (int i = 0; i < attempt && delay < options_.backoff_max_seconds; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, options_.backoff_max_seconds);
  delay *= 0.5 + 0.5 * rng_.NextDouble();  // Jitter: decorrelate retriers.
  if (remaining_seconds > 0.0) delay = std::min(delay, remaining_seconds);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

ClientResult TsunamiClient::Run(const Query& query, int priority,
                                double deadline_seconds) {
  Timer overall;
  ClientResult last;
  last.error_message = "no attempt made";
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    double remaining = 0.0;
    if (deadline_seconds > 0.0) {
      remaining = deadline_seconds - overall.ElapsedSeconds();
      if (remaining <= 0.0) {
        last.transport_ok = false;
        last.outcome = QueryOutcome::kTimedOut;
        last.error_message = "client deadline budget exhausted";
        last.attempts = attempt + 1;
        return last;
      }
    }
    if (fd_ < 0) {
      std::string err;
      if (!Connect(&err)) {
        last = ClientResult{};
        last.error_message = "connect: " + err;
        last.attempts = attempt + 1;
        Backoff(attempt, remaining);
        continue;
      }
    }
    const uint64_t request_id = Submit(query, priority, remaining);
    if (request_id == 0) {
      last = ClientResult{};
      last.error_message = "submit: transport loss";
      last.attempts = attempt + 1;
      Backoff(attempt, remaining);
      continue;
    }
    ClientResult r;
    if (!Await(request_id, &r)) {
      last = ClientResult{};
      last.error_message = "await: transport loss";
      last.attempts = attempt + 1;
      Backoff(attempt, remaining);
      continue;
    }
    r.attempts = attempt + 1;
    if (r.error != WireError::kNone) {
      if (IsRetryable(r.error)) {
        last = std::move(r);
        Backoff(attempt, remaining);
        continue;
      }
      return r;  // kMalformedFrame etc.: retrying cannot help.
    }
    if (r.outcome == QueryOutcome::kShed) {
      // The service evicted it for higher-priority work — identity result,
      // provably not completed, safe to retry.
      last = std::move(r);
      Backoff(attempt, remaining);
      continue;
    }
    return r;  // kCompleted, kFailed, kTimedOut, ...: terminal.
  }
  return last;
}

}  // namespace net
}  // namespace tsunami
