// TsunamiClient: blocking client for the tsunami wire protocol with the
// robustness knobs a caller facing a faulty network needs:
//
//   - Connect / read / write timeouts (poll()-based; the client never
//     blocks indefinitely on a dead or stalled peer).
//   - Pipelining: Submit() many queries before Await()ing any; responses
//     arrive in completion order and are stashed by request id, so awaiting
//     in submission order still works.
//   - Deadline propagation: a per-call deadline budget is stamped into the
//     frame header (remaining micros, recomputed per attempt) and becomes
//     the query's SubmitOptions deadline on the server.
//   - Bounded retry with jittered exponential backoff (Run()): retried are
//     *only* outcomes where the query provably did not complete —
//     retryable wire errors (kQueueFull / kClientBusy / kDraining), the
//     kShed outcome, and transport loss (safe here because queries are
//     read-only; re-executing one cannot corrupt anything). kCompleted and
//     kFailed are never retried.
//
// One client drives one connection and is NOT thread-safe; give each
// client thread its own TsunamiClient.
//
// Fault-injection sites (client-side): "net.partial_frame" makes Submit
// write only a prefix of the frame and drop the connection (a torn frame —
// the server must discard it without ever seeing a parseable query), and
// "net.short_write" truncates socket writes (the send loop resumes).
#ifndef TSUNAMI_NET_CLIENT_H_
#define TSUNAMI_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/random.h"
#include "src/net/wire.h"

namespace tsunami {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_seconds = 5.0;
  /// Per-poll read/write timeout: how long one Await/Submit may sit on a
  /// silent socket before declaring transport loss.
  double io_timeout_seconds = 10.0;
  /// Run() attempts beyond the first (0 = never retry).
  int max_retries = 3;
  double backoff_initial_seconds = 0.005;
  double backoff_max_seconds = 0.25;
  /// Seed for backoff jitter (deterministic per client).
  uint64_t rng_seed = 1;
  uint32_t max_frame_payload = kMaxFramePayload;
  /// SO_RCVBUF for the socket (0 = kernel default). Tests shrink it to
  /// starve the server's flush and exercise its backpressure/stall paths.
  int rcvbuf_bytes = 0;
};

/// Everything one query attempt (or Run() retry loop) produced.
struct ClientResult {
  /// A response frame (result or typed error) was received for this
  /// request. False = transport-level loss: connect/send/recv failure,
  /// timeout, torn frame, or connection reset.
  bool transport_ok = false;
  /// Wire-level error from a kError frame (kNone on a result frame).
  WireError error = WireError::kNone;
  std::string error_message;
  /// Valid when transport_ok && error == kNone.
  QueryOutcome outcome = QueryOutcome::kFailed;
  double server_latency_seconds = 0.0;
  QueryResult result;
  /// kInsertAck fields (insert requests only): rows the server appended
  /// and the store version it observed afterwards.
  int64_t inserted = 0;
  uint64_t store_version = 0;
  int attempts = 1;

  /// A real, completed answer.
  bool ok() const {
    return transport_ok && error == WireError::kNone &&
           outcome == QueryOutcome::kCompleted;
  }
};

class TsunamiClient {
 public:
  explicit TsunamiClient(const ClientOptions& options);
  ~TsunamiClient();

  TsunamiClient(const TsunamiClient&) = delete;
  TsunamiClient& operator=(const TsunamiClient&) = delete;

  /// Connects (with timeout). Returns false with `*error` set on failure.
  /// Idempotent when already connected.
  bool Connect(std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one query frame (pipelining-safe: call repeatedly before
  /// Await). `deadline_seconds` (0 = none) rides the frame header.
  /// Returns the request id, or 0 on transport failure (connection is
  /// closed; the query was not reliably delivered).
  uint64_t Submit(const Query& query, int priority = 0,
                  double deadline_seconds = 0.0);

  /// Blocks (bounded by the io timeout) until `request_id`'s response
  /// arrives; responses for other pipelined requests encountered on the
  /// way are stashed. Returns false on transport loss (connection closed).
  bool Await(uint64_t request_id, ClientResult* out);

  /// Submit + Await + bounded jittered-backoff retry. With a deadline, the
  /// *overall* budget spans all attempts and the remaining budget is
  /// re-stamped on each one.
  ClientResult Run(const Query& query, int priority = 0,
                   double deadline_seconds = 0.0);

  /// Sends one kInsert row batch (pipelining-safe, like Submit). Returns
  /// the request id, or 0 on transport failure.
  uint64_t SubmitInsert(const std::vector<std::vector<Value>>& rows);

  /// Awaits an insert's kInsertAck (or typed error); `out->inserted` and
  /// `out->store_version` carry the ack. False on transport loss.
  bool AwaitInsert(uint64_t request_id, ClientResult* out) {
    return Await(request_id, out);
  }

  /// SubmitInsert + AwaitInsert, no retry: unlike queries, an insert whose
  /// ack was lost may still have been applied, so blind re-sending would
  /// double-insert. The caller owns dedup if it wants at-least-once.
  ClientResult Insert(const std::vector<std::vector<Value>>& rows);

  /// Round-trips a kPing frame. False on transport loss.
  bool Ping();

  /// Writes raw bytes on the connection — the test/fuzz hook for speaking
  /// malformed or hand-rolled frames. False on transport failure.
  bool SendRaw(std::string_view bytes);

 private:
  bool SendAll(std::string_view data);
  /// Reads one whole frame (poll + recv loop). False on timeout, EOF,
  /// protocol violation, or socket error — the connection is closed.
  bool ReadFrame(FrameHeader* header, std::string* payload);
  /// Parses a buffered response frame into a ClientResult keyed by its
  /// request id; returns false on a protocol violation.
  bool StashResponse(const FrameHeader& header, std::string_view payload);
  void Backoff(int attempt, double remaining_seconds);

  const ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string rbuf_;
  std::unordered_map<uint64_t, ClientResult> ready_;
  uint64_t pongs_ = 0;
  Rng rng_;
};

}  // namespace net
}  // namespace tsunami

#endif  // TSUNAMI_NET_CLIENT_H_
