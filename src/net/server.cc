#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/fault_injection.h"

namespace tsunami {
namespace net {

namespace {

/// Seconds -> whole ticks (0 disables the timeout).
uint64_t ToTicks(double seconds, double tick_seconds) {
  if (seconds <= 0.0) return 0;
  const double ticks = seconds / tick_seconds;
  return ticks < 1.0 ? 1 : static_cast<uint64_t>(ticks + 0.5);
}

}  // namespace

TsunamiServer::TsunamiServer(QueryService* service,
                             const ServerOptions& options)
    : service_(service), options_(options) {}

TsunamiServer::~TsunamiServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool TsunamiServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = wakeup_fd_ = epoll_fd_ = -1;
    return false;
  };
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // Listener.
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listener)");
  }
  ev.data.u64 = 1;  // Wakeup eventfd.
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    return fail("epoll_ctl(wakeup)");
  }

  idle_ticks_ = ToTicks(options_.idle_timeout_seconds, options_.tick_seconds);
  stall_ticks_ =
      ToTicks(options_.write_stall_timeout_seconds, options_.tick_seconds);
  started_ = true;
  return true;
}

uint64_t TsunamiServer::NowTick() const {
  return static_cast<uint64_t>(clock_.ElapsedSeconds() / options_.tick_seconds);
}

void TsunamiServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wakeup_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
  }
}

void TsunamiServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wakeup_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
  }
}

ServerStats TsunamiServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return published_stats_;
}

void TsunamiServer::PublishStats() {
  if (options_.governor != nullptr) {
    // Gauge, not admission: per-connection buffers are already bounded by
    // the watermarks, so the governor just observes their aggregate to
    // complete the process-wide memory picture.
    int64_t buffered = 0;
    for (const auto& [id, c] : conns_) {
      buffered += static_cast<int64_t>(c->rbuf.size() + c->wbuf.size());
    }
    options_.governor->SetUsed(ResourcePool::kNetBuffers, buffered);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  published_stats_ = stats_;
}

void TsunamiServer::Run() {
  if (!started_) return;
  clock_.Reset();
  now_tick_ = 0;
  const uint64_t drain_ticks =
      ToTicks(options_.drain_timeout_seconds, options_.tick_seconds);
  const int timeout_ms =
      std::max(1, static_cast<int>(options_.tick_seconds * 1000.0));
  std::vector<epoll_event> events(256);

  while (true) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno != EINTR) break;
      n = 0;
    }
    now_tick_ = NowTick();
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (id == 0) {
        HandleAccept();
        continue;
      }
      if (id == 1) {
        uint64_t drained;
        while (::read(wakeup_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      Conn* c = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(c);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && !FlushConn(c)) continue;
      if ((ev & EPOLLIN) != 0 && !HandleReadable(c)) continue;
    }

    now_tick_ = NowTick();
    PollInflight();
    wheel_.Advance(now_tick_, [this](uint64_t id) { OnConnTimer(id); });

    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (drain_requested_.load(std::memory_order_acquire) && !draining_active_) {
      EnterDrain();
    }
    if (draining_active_) {
      // A connection with no in-flight work and a flushed write buffer has
      // received everything it is owed. Half-close it (FIN) rather than
      // close(): a late frame from the client against a fully closed socket
      // would draw an RST that destroys the already-delivered responses
      // still sitting in the client's receive buffer. Reads continue until
      // the client's EOF, which closes the connection for real.
      for (auto& [id, c] : conns_) {
        if (!c->half_closed && c->inflight == 0 &&
            c->woff >= c->wbuf.size()) {
          ::shutdown(c->fd, SHUT_WR);
          c->half_closed = true;
        }
      }
      if (conns_.empty() && routes_.empty()) break;
      if (drain_ticks > 0 && now_tick_ - drain_start_tick_ >= drain_ticks) {
        break;  // Force: remaining tickets are Awaited below.
      }
    }
    PublishStats();
  }

  // Never leak a ticket: whatever is still in flight is Awaited (blocking)
  // and discarded, then every connection closes.
  AwaitAllRemaining();
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [id, c] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) {
    auto it = conns_.find(id);
    if (it != conns_.end()) CloseConn(it->second.get());
  }
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  PublishStats();
}

void TsunamiServer::HandleAccept() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      ++stats_.accept_failures;
      break;
    }
    if (TSUNAMI_FAULT_FIRES("net.accept_fail", fd)) {
      ++stats_.accept_failures;
      ::close(fd);
      continue;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      ++stats_.refused_at_capacity;
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->epoll_events = EPOLLIN;
    conn->last_activity_tick = now_tick_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ++stats_.accept_failures;
      ::close(fd);
      continue;
    }
    Conn* raw = conn.get();
    conns_.emplace(conn->id, std::move(conn));
    ++stats_.accepted;
    stats_.active_connections = static_cast<int64_t>(conns_.size());
    stats_.peak_connections =
        std::max(stats_.peak_connections, stats_.active_connections);
    ScheduleConnCheck(raw);
  }
}

bool TsunamiServer::HandleReadable(Conn* c) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in += n;
      c->last_activity_tick = now_tick_;
      c->rbuf.append(buf, static_cast<size_t>(n));
      if (!ParseFrames(c)) return false;
      if (c->read_paused || c->closing) break;
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      CloseConn(c);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(c);
    return false;
  }
  return UpdateConn(c);
}

bool TsunamiServer::ParseFrames(Conn* c) {
  size_t off = 0;
  bool alive = true;
  while (alive && !c->closing) {
    const std::string_view view(c->rbuf.data() + off, c->rbuf.size() - off);
    FrameHeader header;
    const HeaderParse hp = ParseFrameHeader(view, &header);
    if (hp == HeaderParse::kNeedMore) break;
    if (hp == HeaderParse::kBadMagic) {
      // Stream sync is gone: nothing after this byte can be framed, and an
      // error frame would land mid-garbage. Close silently.
      ++stats_.bad_magic_closes;
      CloseConn(c);
      return false;
    }
    if (hp == HeaderParse::kBadVersion) {
      ++stats_.bad_version_frames;
      // Past the version check nothing in the header is trustworthy, so
      // the error carries request_id 0, then the connection closes.
      alive = SendError(c, 0, WireError::kBadVersion,
                        "unsupported wire protocol version");
      if (alive) alive = StartClose(c);
      break;
    }
    if (header.payload_len > options_.max_frame_payload ||
        header.payload_len > kMaxFramePayload) {
      ++stats_.oversized_frames;
      alive = SendError(c, header.request_id, WireError::kOversizedFrame,
                        "declared payload exceeds the server's frame cap");
      if (alive) alive = StartClose(c);
      break;
    }
    if (view.size() < kFrameHeaderSize + header.payload_len) break;
    ++stats_.frames_in;
    const std::string_view payload =
        view.substr(kFrameHeaderSize, header.payload_len);
    off += kFrameHeaderSize + header.payload_len;
    alive = HandleFrame(c, header, payload);
  }
  if (!alive) return false;
  if (off > 0) c->rbuf.erase(0, off);
  return true;
}

bool TsunamiServer::HandleFrame(Conn* c, const FrameHeader& header,
                                std::string_view payload) {
  if (c->half_closed) return true;  // Write side is gone; drain silently.
  switch (header.type) {
    case FrameType::kQuery:
      return HandleQuery(c, header, payload);
    case FrameType::kInsert:
      return HandleInsert(c, header, payload);
    case FrameType::kPing: {
      ++stats_.pings;
      FrameHeader pong;
      pong.type = FrameType::kPong;
      pong.request_id = header.request_id;
      return SendFrame(c, pong, {});
    }
    default:
      ++stats_.bad_type_frames;
      return SendError(c, header.request_id, WireError::kBadType,
                       "frame type not accepted by the server");
  }
}

bool TsunamiServer::HandleQuery(Conn* c, const FrameHeader& header,
                                std::string_view payload) {
  if (TSUNAMI_FAULT_FIRES("net.reset", static_cast<int64_t>(c->id))) {
    ++stats_.resets_injected;
    ResetConn(c);
    return false;
  }
  Query query;
  if (!DecodeQueryPayload(payload, &query)) {
    ++stats_.malformed_frames;
    return SendError(c, header.request_id, WireError::kMalformedFrame,
                     "query payload failed strict decode");
  }
  if (draining_active_ || service_->draining()) {
    ++stats_.drain_rejected;
    return SendError(c, header.request_id, WireError::kDraining,
                     "server is draining");
  }
  if (c->inflight >= options_.max_inflight_per_conn) {
    return SendError(c, header.request_id, WireError::kClientBusy,
                     "per-connection in-flight cap reached");
  }

  SubmitOptions submit;
  submit.deadline_seconds =
      header.deadline_micros == 0
          ? 0.0
          : static_cast<double>(header.deadline_micros) * 1e-6;
  submit.priority = header.priority;
  submit.client_id = static_cast<int64_t>(c->id);
  const QueryService::Admission admission = service_->Submit(query, submit);
  if (!admission.admitted()) {
    WireError wire_error = WireError::kQueueFull;
    switch (admission.outcome) {
      case AdmissionOutcome::kDeadlineInfeasible:
        wire_error = WireError::kDeadlineInfeasible;
        break;
      case AdmissionOutcome::kClientBusy:
        wire_error = WireError::kClientBusy;
        break;
      case AdmissionOutcome::kDraining:
        wire_error = WireError::kDraining;
        break;
      default:
        break;
    }
    return SendError(c, header.request_id, wire_error,
                     ToString(admission.outcome));
  }
  ++stats_.queries_admitted;
  ++c->inflight;
  routes_[admission.ticket] = Route{c->id, header.request_id};
  stats_.inflight = static_cast<int64_t>(routes_.size());
  return true;
}

bool TsunamiServer::HandleInsert(Conn* c, const FrameHeader& header,
                                 std::string_view payload) {
  std::vector<std::vector<Value>> rows;
  if (!DecodeInsertPayload(payload, &rows)) {
    ++stats_.malformed_frames;
    ++stats_.inserts_rejected;
    return SendError(c, header.request_id, WireError::kMalformedFrame,
                     "insert payload failed strict decode");
  }
  if (!options_.insert_sink) {
    ++stats_.inserts_rejected;
    return SendError(c, header.request_id, WireError::kReadOnly,
                     "server has no writable store");
  }
  if (draining_active_ || service_->draining()) {
    ++stats_.drain_rejected;
    ++stats_.inserts_rejected;
    return SendError(c, header.request_id, WireError::kDraining,
                     "server is draining");
  }
  // The sink runs on the loop thread: appends are a few cache-line writes
  // per row into an open delta chunk (never an index rebuild — compaction
  // happens on the store's own background thread), so this costs less than
  // a query decode. A sink that rejects the batch (wrong arity, store
  // full) returns a negative count.
  InsertAckPayload ack;
  const int64_t accepted = options_.insert_sink(rows, &ack.store_version);
  if (accepted < 0) {
    ++stats_.inserts_rejected;
    if (accepted == ServerOptions::kSinkNotDurable) {
      return SendError(c, header.request_id, WireError::kDurabilityFailed,
                       "insert batch could not be made durable");
    }
    if (accepted == ServerOptions::kSinkResourceExhausted) {
      // Pre-admission refusal: nothing was applied or logged. The
      // connection stays open and the client may retry after backoff —
      // the store re-arms itself as backlog folds or disk space frees.
      ++stats_.inserts_resource_rejected;
      return SendError(c, header.request_id, WireError::kResourceExhausted,
                       "store under resource pressure; retry after backoff");
    }
    return SendError(c, header.request_id, WireError::kMalformedFrame,
                     "store rejected the insert batch");
  }
  ack.accepted = accepted;
  ++stats_.inserts_accepted;
  stats_.rows_inserted += accepted;
  FrameHeader reply;
  reply.type = FrameType::kInsertAck;
  reply.request_id = header.request_id;
  return SendFrame(c, reply, EncodeInsertAckPayload(ack));
}

void TsunamiServer::PollInflight() {
  if (routes_.empty()) return;
  std::vector<QueryService::Ticket> ready;
  for (const auto& [ticket, route] : routes_) {
    if (service_->Ready(ticket)) ready.push_back(ticket);
  }
  for (QueryService::Ticket ticket : ready) {
    auto rit = routes_.find(ticket);
    if (rit == routes_.end()) continue;
    const Route route = rit->second;
    routes_.erase(rit);
    AwaitInfo info;
    QueryResult result = service_->Await(ticket, &info);
    Conn* c = nullptr;
    if (route.conn_id != 0) {
      auto cit = conns_.find(route.conn_id);
      if (cit != conns_.end()) c = cit->second.get();
    }
    if (c == nullptr) {
      ++stats_.orphaned_awaited;
      continue;
    }
    --c->inflight;
    ResultPayload payload;
    payload.outcome = info.outcome;
    payload.server_latency_seconds = info.latency_seconds;
    payload.result = std::move(result);
    FrameHeader header;
    header.type = FrameType::kResult;
    header.request_id = route.request_id;
    ++stats_.results_sent;
    SendFrame(c, header, EncodeResultPayload(payload));
  }
  stats_.inflight = static_cast<int64_t>(routes_.size());
}

bool TsunamiServer::SendFrame(Conn* c, const FrameHeader& header,
                              std::string_view payload) {
  AppendFrame(header, payload, &c->wbuf);
  ++stats_.frames_out;
  return FlushConn(c);
}

bool TsunamiServer::SendError(Conn* c, uint64_t request_id, WireError error,
                              std::string_view message) {
  ++stats_.errors_sent;
  FrameHeader header;
  header.type = FrameType::kError;
  header.request_id = request_id;
  return SendFrame(c, header, EncodeErrorPayload(error, message));
}

bool TsunamiServer::FlushConn(Conn* c) {
  while (c->woff < c->wbuf.size()) {
    size_t len = c->wbuf.size() - c->woff;
    if (TSUNAMI_FAULT_FIRES("net.short_write", static_cast<int64_t>(len))) {
      len = std::max<size_t>(1, len / 2);
    }
    const ssize_t n =
        ::send(c->fd, c->wbuf.data() + c->woff, len, MSG_NOSIGNAL);
    if (n > 0) {
      c->woff += static_cast<size_t>(n);
      stats_.bytes_out += n;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(c);
    return false;
  }
  if (c->woff >= c->wbuf.size()) {
    c->wbuf.clear();
    c->woff = 0;
    c->stall_since_tick = 0;
    if (c->closing) {
      CloseConn(c);
      return false;
    }
  } else {
    if (c->woff > (size_t{64} << 10)) {
      c->wbuf.erase(0, c->woff);
      c->woff = 0;
    }
    if (c->stall_since_tick == 0) {
      c->stall_since_tick = now_tick_;
      ScheduleConnCheck(c);
    }
  }
  return UpdateConn(c);
}

bool TsunamiServer::UpdateConn(Conn* c) {
  const size_t pending = c->wbuf.size() - c->woff;
  stats_.write_buffer_peak =
      std::max(stats_.write_buffer_peak, static_cast<int64_t>(pending));
  if (pending > options_.max_write_buffer) {
    ++stats_.evicted_stalled;
    CloseConn(c);
    return false;
  }
  if (!c->read_paused && pending > options_.pause_read_watermark) {
    c->read_paused = true;
  } else if (c->read_paused && pending <= options_.resume_read_watermark) {
    c->read_paused = false;
  }
  uint32_t want = 0;
  if (!c->read_paused && !c->closing) want |= EPOLLIN;
  if (pending > 0) want |= EPOLLOUT;
  if (want != c->epoll_events) {
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
    c->epoll_events = want;
  }
  return true;
}

bool TsunamiServer::StartClose(Conn* c) {
  c->closing = true;
  if (c->woff >= c->wbuf.size()) {
    CloseConn(c);
    return false;
  }
  return UpdateConn(c);
}

void TsunamiServer::CloseConn(Conn* c) {
  // Orphan this connection's in-flight tickets: they stay in routes_ and
  // keep being polled/Awaited (so the service never leaks a ticket), but
  // their answers are discarded.
  for (auto& [ticket, route] : routes_) {
    if (route.conn_id == c->id) route.conn_id = 0;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  conns_.erase(c->id);  // Frees *c.
  stats_.active_connections = static_cast<int64_t>(conns_.size());
}

void TsunamiServer::ResetConn(Conn* c) {
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;  // close() now sends RST, not FIN.
  ::setsockopt(c->fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  CloseConn(c);
}

void TsunamiServer::OnConnTimer(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();
  c->next_check_scheduled = false;
  const bool busy = c->inflight > 0 || c->woff < c->wbuf.size();
  if (stall_ticks_ > 0 && c->stall_since_tick > 0 &&
      now_tick_ - c->stall_since_tick >= stall_ticks_) {
    ++stats_.evicted_stalled;
    CloseConn(c);
    return;
  }
  if (idle_ticks_ > 0 && !busy &&
      now_tick_ - c->last_activity_tick >= idle_ticks_) {
    ++stats_.evicted_idle;
    CloseConn(c);
    return;
  }
  // Busy counts as activity: the idle clock restarts once work finishes.
  if (busy) c->last_activity_tick = now_tick_;
  ScheduleConnCheck(c);
}

void TsunamiServer::ScheduleConnCheck(Conn* c) {
  uint64_t due = UINT64_MAX;
  if (idle_ticks_ > 0) {
    due = std::min(due, c->last_activity_tick + idle_ticks_);
  }
  if (stall_ticks_ > 0 && c->stall_since_tick > 0) {
    due = std::min(due, c->stall_since_tick + stall_ticks_);
  }
  if (due == UINT64_MAX) return;
  if (due <= now_tick_) due = now_tick_ + 1;
  if (c->next_check_scheduled && c->next_check_tick <= due) return;
  c->next_check_scheduled = true;
  c->next_check_tick = due;
  wheel_.Schedule(c->id, due);
}

void TsunamiServer::EnterDrain() {
  // Requests already buffered on a socket arrived before the drain did, so
  // they count as in-flight: give every connection one read pass while
  // admission is still open. Without this, a connection whose queries are
  // sitting unread in the kernel buffer looks idle and would be
  // half-closed with its work silently discarded.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, c] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) HandleReadable(it->second.get());
  }
  draining_active_ = true;
  drain_start_tick_ = now_tick_;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (options_.drain_service) service_->BeginDrain();
}

void TsunamiServer::AwaitAllRemaining() {
  for (const auto& [ticket, route] : routes_) {
    AwaitInfo info;
    service_->Await(ticket, &info);
    ++stats_.orphaned_awaited;
  }
  routes_.clear();
  stats_.inflight = 0;
}

}  // namespace net
}  // namespace tsunami
