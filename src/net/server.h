// TsunamiServer: the non-blocking network front end over QueryService.
//
// One epoll event loop owns every connection: accept, frame parse, query
// dispatch, and response flush all happen on the loop thread, while the
// queries themselves execute on the QueryService's work-stealing scheduler.
// The loop never blocks on a query — admitted tickets are *polled* with
// QueryService::Ready() each tick and Awaited only once ready, so a slow
// query can never park the loop (and a chunk killed mid-flight by fault
// injection still completes its ticket through the service's stop record).
//
// Robustness model (the whole point of this layer):
//   - Bounded buffers everywhere. The read buffer holds at most one partial
//     frame plus a socket read; a declared payload above the cap is answered
//     with a typed kOversizedFrame error before a single payload byte is
//     buffered, then the connection closes. The write buffer has a hard cap
//     and watermarks: above `pause_read_watermark` the server *stops
//     reading* that connection (backpressure — a client that won't drain
//     its responses can't pipeline more work), and above
//     `max_write_buffer` the connection is evicted outright.
//   - Slow/idle eviction by timer wheel. A hashed timer wheel fires a
//     per-connection check: a writer stalled past
//     `write_stall_timeout_seconds` or a connection idle past
//     `idle_timeout_seconds` (with nothing in flight) is closed, so stalled
//     readers cannot pin memory or block drain forever.
//   - Per-connection in-flight cap (wire-level kClientBusy) layered on the
//     service's per-client cap (each connection submits with its own
//     client_id) and the service's global bounded admission.
//   - Malformed input is answered, never trusted: a payload that fails its
//     strict decode gets a kMalformedFrame error and the connection lives
//     on (frame sync held); a bad magic closes silently (sync is gone).
//   - Graceful drain. RequestDrain() (async-signal-safe; wired to SIGTERM
//     by tsunami_serverd) stops accepting, puts the service into drain mode
//     (new submissions anywhere are rejected kDraining), answers every
//     in-flight query, flushes, and exits the loop. RequestStop() is the
//     hard variant: in-flight tickets are still Awaited (never leaked) but
//     unflushed responses are dropped.
//
// Fault-injection sites (-DTSUNAMI_FAULT_INJECTION=ON builds):
//   net.accept_fail  — an accepted connection is dropped immediately.
//   net.short_write  — socket writes are truncated (exercises partial-flush
//                      resume paths); also armed client-side.
//   net.reset        — a query frame's connection is closed with SO_LINGER
//                      zero (a real RST) instead of being served.
#ifndef TSUNAMI_NET_SERVER_H_
#define TSUNAMI_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/resource_governor.h"
#include "src/common/stats.h"
#include "src/net/wire.h"
#include "src/serve/query_service.h"

namespace tsunami {
namespace net {

struct ServerOptions {
  /// Bind address. Loopback by default: this is a benchmark/soak daemon,
  /// not an internet-facing service.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the chosen port back with port() after Start().
  int port = 0;
  int listen_backlog = 511;
  /// Accepts beyond this are closed immediately (counted, not served).
  int max_connections = 4096;
  /// Per-frame payload cap (may be below the protocol's kMaxFramePayload).
  uint32_t max_frame_payload = 1u << 20;
  /// Write-buffer watermarks: above pause, stop reading the connection
  /// (backpressure); at/below resume, start reading again; above the hard
  /// cap, evict the connection.
  size_t pause_read_watermark = 1u << 20;
  size_t resume_read_watermark = 256u << 10;
  size_t max_write_buffer = 8u << 20;
  /// Wire-level per-connection in-flight cap (kClientBusy beyond it).
  int max_inflight_per_conn = 64;
  /// SO_SNDBUF for accepted sockets (0 = kernel default). Tests shrink it
  /// to force write-buffer growth and exercise the stall-eviction path.
  int sndbuf_bytes = 0;
  /// A connection with nothing in flight and nothing buffered is evicted
  /// after this long without traffic. 0 disables.
  double idle_timeout_seconds = 60.0;
  /// A connection whose write buffer has not fully drained for this long
  /// (a stalled reader) is evicted. 0 disables.
  double write_stall_timeout_seconds = 10.0;
  /// Drain gives in-flight queries and response flushes this long before
  /// forcing shutdown.
  double drain_timeout_seconds = 30.0;
  /// Event-loop tick: epoll timeout, timer-wheel granularity, and the
  /// ticket-poll cadence.
  double tick_seconds = 0.01;
  /// Whether RequestDrain() also calls QueryService::BeginDrain(). On by
  /// default; a test sharing one service across servers can opt out.
  bool drain_service = true;
  /// Write path for kInsert frames: returns rows appended (all-or-nothing)
  /// and, via *version, the store version observed after the append.
  /// Unset (the default) makes the server read-only — kInsert answers
  /// kReadOnly. Negative returns reject the batch: kSinkRejected answers
  /// kMalformedFrame (wrong arity, store full); kSinkNotDurable answers
  /// kDurabilityFailed (durable mode: the WAL failed before the batch was
  /// fsync'd — the rows were NOT acked); kSinkResourceExhausted answers the
  /// retryable kResourceExhausted (the batch was refused *before*
  /// admission — governor budget or latched ENOSPC — nothing applied, the
  /// connection stays open). A std::function rather than an
  /// ingest::IngestStore* so the net layer stays independent of
  /// src/ingest; tsunami_serverd wires it to IngestStore::InsertBatch (or
  /// DurableIngestStore::TryInsertBatch with --wal-dir).
  std::function<int64_t(const std::vector<std::vector<Value>>& rows,
                        uint64_t* version)>
      insert_sink;
  /// insert_sink return codes (any other negative value maps to
  /// kSinkRejected).
  static constexpr int64_t kSinkRejected = -1;
  static constexpr int64_t kSinkNotDurable = -2;
  static constexpr int64_t kSinkResourceExhausted = -3;
  /// Optional process resource governor (borrowed; must outlive the
  /// server). The loop publishes its aggregate read/write buffer bytes
  /// into ResourcePool::kNetBuffers once per tick — a gauge, not
  /// admission: the buffers are already bounded per connection by the
  /// watermarks above, so the governor only *observes* them to complete
  /// the process-wide memory picture.
  ResourceGovernor* governor = nullptr;
};

/// Loop-thread counters, published once per tick; stats() may be called
/// from any thread and sees at most one tick of lag.
struct ServerStats {
  int64_t accepted = 0;
  int64_t accept_failures = 0;       // accept() errors + injected failures.
  int64_t refused_at_capacity = 0;   // Closed at max_connections.
  int64_t active_connections = 0;    // Gauge.
  int64_t peak_connections = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t queries_admitted = 0;
  int64_t inserts_accepted = 0;      // kInsert frames answered kInsertAck.
  int64_t rows_inserted = 0;         // Rows across those frames.
  int64_t inserts_rejected = 0;      // kInsert answered with a typed error.
  /// Subset of inserts_rejected answered with the retryable
  /// kResourceExhausted (governor budget / latched ENOSPC).
  int64_t inserts_resource_rejected = 0;
  int64_t results_sent = 0;
  int64_t errors_sent = 0;           // Typed kError frames.
  int64_t pings = 0;
  int64_t malformed_frames = 0;
  int64_t oversized_frames = 0;
  int64_t bad_version_frames = 0;
  int64_t bad_type_frames = 0;
  int64_t bad_magic_closes = 0;
  int64_t evicted_idle = 0;
  int64_t evicted_stalled = 0;       // Stall timeout + hard write-cap hits.
  int64_t resets_injected = 0;       // net.reset fires.
  int64_t drain_rejected = 0;        // kQuery frames refused mid-drain.
  /// Tickets whose connection died first: still Awaited (results
  /// discarded) so the service's ticket table never leaks.
  int64_t orphaned_awaited = 0;
  int64_t inflight = 0;              // Gauge: routed tickets not yet ready.
  int64_t write_buffer_peak = 0;     // High-water mark across connections.
};

/// Hashed timer wheel: O(1) schedule, entries hashed into `slots` buckets
/// by fire tick; an entry whose lap has not yet come re-queues for another
/// pass. Drives per-connection idle/stall checks without scanning every
/// connection every tick.
class TimerWheel {
 public:
  explicit TimerWheel(size_t slots = 256) : slots_(slots) {}

  void Schedule(uint64_t id, uint64_t fire_tick) {
    slots_[fire_tick % slots_.size()].push_back(Entry{id, fire_tick});
  }

  /// Advances to `now_tick`, invoking fn(id) for every due entry.
  template <typename Fn>
  void Advance(uint64_t now_tick, Fn&& fn) {
    while (last_tick_ < now_tick) {
      ++last_tick_;
      std::vector<Entry>& slot = slots_[last_tick_ % slots_.size()];
      scratch_.clear();
      scratch_.swap(slot);
      for (const Entry& e : scratch_) {
        if (e.fire_tick <= last_tick_) {
          fn(e.id);
        } else {
          slot.push_back(e);  // Not this lap.
        }
      }
    }
  }

 private:
  struct Entry {
    uint64_t id;
    uint64_t fire_tick;
  };
  std::vector<std::vector<Entry>> slots_;
  std::vector<Entry> scratch_;
  uint64_t last_tick_ = 0;
};

class TsunamiServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit TsunamiServer(QueryService* service,
                         const ServerOptions& options = {});
  ~TsunamiServer();

  TsunamiServer(const TsunamiServer&) = delete;
  TsunamiServer& operator=(const TsunamiServer&) = delete;

  /// Binds, listens, and sets up epoll. Must be called (once) before Run().
  /// Returns false with `*error` set on failure.
  bool Start(std::string* error = nullptr);

  /// The bound port (after Start(); meaningful when options.port == 0).
  int port() const { return port_; }

  /// The blocking event loop; returns after drain completes or
  /// RequestStop(). Typically run on its own thread.
  void Run();

  /// Begin graceful drain: stop accepting, reject new queries with
  /// kDraining, finish and flush in-flight work, then exit Run().
  /// Async-signal-safe (atomic store + eventfd write) — call it from a
  /// SIGTERM handler. Idempotent.
  void RequestDrain();

  /// Hard stop: exit Run() now. In-flight tickets are still Awaited (and
  /// discarded) so the service never leaks; unflushed responses are
  /// dropped. Async-signal-safe.
  void RequestStop();

  bool draining() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

 private:
  /// One client connection, owned by the loop thread.
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::string rbuf;          // At most one partial frame + a read chunk.
    std::string wbuf;          // Pending responses.
    size_t woff = 0;           // Flushed prefix of wbuf.
    bool read_paused = false;  // Backpressure: above pause watermark.
    bool closing = false;      // Flush remaining wbuf, then close.
    /// Drain half-close: the write side is shut down (client saw FIN after
    /// its last result) and reads continue until the client's EOF. A plain
    /// close() here would RST the socket if the client writes one more
    /// frame, destroying already-delivered responses in its receive buffer.
    bool half_closed = false;
    uint32_t epoll_events = 0;
    int inflight = 0;          // Tickets routed to this connection.
    uint64_t last_activity_tick = 0;
    uint64_t stall_since_tick = 0;  // 0 = write buffer empty or moving.
    /// Earliest outstanding timer-wheel check for this connection; used to
    /// suppress duplicate wheel entries.
    bool next_check_scheduled = false;
    uint64_t next_check_tick = 0;
  };

  /// Where a completed ticket's answer goes. conn_id 0 = orphaned (the
  /// connection died first); the ticket is still polled and Awaited.
  struct Route {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
  };

  uint64_t NowTick() const;
  void HandleAccept();
  /// All Handle*/flush helpers return false when they closed the
  /// connection (the Conn pointer is dead).
  bool HandleReadable(Conn* c);
  bool ParseFrames(Conn* c);
  bool HandleFrame(Conn* c, const FrameHeader& header,
                   std::string_view payload);
  bool HandleQuery(Conn* c, const FrameHeader& header,
                   std::string_view payload);
  bool HandleInsert(Conn* c, const FrameHeader& header,
                    std::string_view payload);
  bool SendFrame(Conn* c, const FrameHeader& header, std::string_view payload);
  bool SendError(Conn* c, uint64_t request_id, WireError error,
                 std::string_view message);
  bool FlushConn(Conn* c);
  /// Recomputes read-pause state and the epoll interest set.
  bool UpdateConn(Conn* c);
  /// Flush what's pending, then close (now if the buffer is empty).
  bool StartClose(Conn* c);
  void CloseConn(Conn* c);
  /// SO_LINGER{1,0} + close: an abrupt RST, for the net.reset site.
  void ResetConn(Conn* c);
  /// Ready-ticket sweep: Await completed tickets and queue their response
  /// frames (or discard, for orphans).
  void PollInflight();
  /// Timer-wheel callback: evict stalled writers / idle connections,
  /// reschedule the rest.
  void OnConnTimer(uint64_t conn_id);
  void ScheduleConnCheck(Conn* c);
  void EnterDrain();
  /// Awaits every remaining routed ticket (blocking — loop exit only).
  void AwaitAllRemaining();
  void PublishStats();

  QueryService* service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  int port_ = 0;
  bool started_ = false;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};

  // --- Loop-thread state (no locking; Run() owns it). ---
  Timer clock_;
  uint64_t now_tick_ = 0;
  uint64_t idle_ticks_ = 0;
  uint64_t stall_ticks_ = 0;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wakeup eventfd.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::unordered_map<QueryService::Ticket, Route> routes_;
  TimerWheel wheel_;
  bool draining_active_ = false;
  uint64_t drain_start_tick_ = 0;
  ServerStats stats_;

  /// Published snapshot for cross-thread stats() reads.
  mutable std::mutex stats_mu_;
  ServerStats published_stats_;
};

}  // namespace net
}  // namespace tsunami

#endif  // TSUNAMI_NET_SERVER_H_
