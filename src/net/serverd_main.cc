// tsunami_serverd: the standalone network serving daemon.
//
// Builds a Tsunami index over a synthetic correlated table (the same shape
// the examples and benchmarks use), wraps it in a bounded-admission
// QueryService, and serves the tsunami wire protocol (src/net/wire.h) until
// told to stop:
//
//   tsunami_serverd [--port=N] [--host=A.B.C.D] [--rows=N]
//                   [--max-queued-queries=N] [--max-queued-chunks=N]
//                   [--max-inflight-per-client=N] [--max-inflight-per-conn=N]
//                   [--idle-timeout=SECONDS] [--drain-timeout=SECONDS]
//                   [--wal-dir=PATH] [--no-durable-acks]
//                   [--memory-budget=BYTES] [--wal-budget=BYTES]
//                   [--plan-cache-bytes=BYTES] [--max-segment-bytes=BYTES]
//                   [--commit-delay-micros=N] [--scrub-ms=N]
//
// --wal-dir turns on durable ingest (src/durability): inserts are logged to
// a write-ahead log with fsync'd group commit, folds checkpoint durably, and
// a restart with the same --wal-dir recovers every acknowledged insert — a
// kInsertAck then means *fsync'd*, not just visible. --no-durable-acks keeps
// the WAL but acks on enqueue (async logging).
//
// Resource governance (src/common/resource_governor.h): --memory-budget
// bounds the in-memory ingest backlog (delta chunks + sealed-but-unfolded
// chunks, half each), --wal-budget bounds WAL bytes on disk, and
// --plan-cache-bytes bounds the serving plan cache. Over-budget inserts are
// answered with the *retryable* kResourceExhausted wire error — refused
// before admission, connection stays open — and admission resumes by itself
// as the backlog folds or disk space frees (the durable store re-arms after
// ENOSPC without a restart). --max-segment-bytes rotates WAL segments by
// size between checkpoints; --commit-delay-micros shapes group commit
// (larger batches per fsync at the cost of ack latency); --scrub-ms runs a
// background scrubber that re-verifies block checksums on idle cycles and
// repairs what it finds through the quarantine path (0 = off).
//
// SIGTERM / SIGINT trigger a *graceful drain*: the listener closes, new
// queries are answered with typed kDraining errors, in-flight queries
// finish and flush, then the daemon exits 0. A second signal forces a hard
// stop (in-flight tickets are still awaited — never leaked — but unflushed
// responses are dropped).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>

#include "src/common/random.h"
#include "src/common/resource_governor.h"
#include "src/core/tsunami.h"
#include "src/durability/durable_store.h"
#include "src/ingest/ingest_store.h"
#include "src/ingest/scrubber.h"
#include "src/net/server.h"
#include "src/serve/query_service.h"

using namespace tsunami;

namespace {

net::TsunamiServer* g_server = nullptr;
volatile std::sig_atomic_t g_signals_seen = 0;

// Async-signal-safe: RequestDrain/RequestStop are an atomic store plus an
// eventfd write.
void HandleSignal(int) {
  if (g_server == nullptr) return;
  const std::sig_atomic_t seen = g_signals_seen;
  g_signals_seen = seen + 1;
  if (seen == 0) {
    g_server->RequestDrain();
  } else {
    g_server->RequestStop();
  }
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions server_options;
  server_options.port = 7411;
  ServiceOptions service_options;
  service_options.max_queued_queries = 256;
  service_options.max_queued_chunks = 4096;
  service_options.max_inflight_per_client = 32;
  int64_t rows = 200000;
  std::string wal_dir;
  bool durable_acks = true;
  int64_t memory_budget = 0;
  int64_t wal_budget = 0;
  int64_t plan_cache_bytes = 0;
  int64_t max_segment_bytes = 0;
  int64_t commit_delay_micros = 0;
  int64_t scrub_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--no-durable-acks") == 0) {
      durable_acks = false;
    } else if (ParseFlag(argv[i], "--wal-dir", &v)) {
      wal_dir = v;
    } else if (ParseFlag(argv[i], "--memory-budget", &v)) {
      memory_budget = std::atoll(v);
    } else if (ParseFlag(argv[i], "--wal-budget", &v)) {
      wal_budget = std::atoll(v);
    } else if (ParseFlag(argv[i], "--plan-cache-bytes", &v)) {
      plan_cache_bytes = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-segment-bytes", &v)) {
      max_segment_bytes = std::atoll(v);
    } else if (ParseFlag(argv[i], "--commit-delay-micros", &v)) {
      commit_delay_micros = std::atoll(v);
    } else if (ParseFlag(argv[i], "--scrub-ms", &v)) {
      scrub_ms = std::atoll(v);
    } else if (ParseFlag(argv[i], "--port", &v)) {
      server_options.port = std::atoi(v);
    } else if (ParseFlag(argv[i], "--host", &v)) {
      server_options.host = v;
    } else if (ParseFlag(argv[i], "--rows", &v)) {
      rows = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-queued-queries", &v)) {
      service_options.max_queued_queries = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-queued-chunks", &v)) {
      service_options.max_queued_chunks = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-inflight-per-client", &v)) {
      service_options.max_inflight_per_client = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-inflight-per-conn", &v)) {
      server_options.max_inflight_per_conn = std::atoi(v);
    } else if (ParseFlag(argv[i], "--idle-timeout", &v)) {
      server_options.idle_timeout_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--drain-timeout", &v)) {
      server_options.drain_timeout_seconds = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  Rng rng(11);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 256; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    q.type = i % 2;
    workload.push_back(q);
  }
  // The governor outlives everything that charges it (declared first =
  // destroyed last).
  ResourceGovernor::Budgets budgets;
  // --memory-budget covers the whole ingest backlog: open delta chunks and
  // sealed-but-unfolded chunks, half each.
  budgets.delta_backlog_bytes = memory_budget / 2;
  budgets.sealed_chunk_bytes = memory_budget - memory_budget / 2;
  budgets.wal_disk_bytes = wal_budget;
  budgets.plan_cache_bytes = plan_cache_bytes;
  ResourceGovernor governor(budgets);
  ingest::IngestOptions ingest_options;
  ingest_options.index.cluster_queries = false;
  ingest_options.governor = &governor;
  // Destruction order: `service` (declared below) dies first, then these.
  std::unique_ptr<durability::DurableIngestStore> durable;
  std::unique_ptr<ingest::IngestStore> owned_index;
  if (!wal_dir.empty()) {
    durability::DurabilityOptions dopts;
    dopts.dir = wal_dir;
    dopts.durable_acks = durable_acks;
    dopts.max_segment_bytes = max_segment_bytes;
    dopts.wal_commit_delay_micros =
        static_cast<uint32_t>(commit_delay_micros);
    dopts.ingest = ingest_options;
    std::string derr;
    durable = durability::DurableIngestStore::Open(data, workload, dopts,
                                                  &derr);
    if (durable == nullptr) {
      std::fprintf(stderr, "tsunami_serverd: durable open failed: %s\n",
                   derr.c_str());
      return 1;
    }
    const durability::RecoveryInfo& rec = durable->recovery();
    std::printf(
        "tsunami_serverd: durable store at %s (%s: checkpoint v%llu, "
        "%lld rows, replayed %lld rows in %.3fs%s)\n",
        wal_dir.c_str(), rec.recovered ? "recovered" : "bootstrapped",
        static_cast<unsigned long long>(rec.checkpoint_version),
        static_cast<long long>(rec.checkpoint_rows),
        static_cast<long long>(rec.replayed_rows), rec.seconds,
        rec.wal_tail_status != FileError::kNone ? ", torn tail tolerated"
                                                : "");
  } else {
    owned_index =
        std::make_unique<ingest::IngestStore>(data, workload, ingest_options);
  }
  ingest::IngestStore& index =
      durable != nullptr ? durable->store() : *owned_index;
  std::printf("tsunami_serverd: built %s over %lld rows\n",
              index.Name().c_str(), static_cast<long long>(data.size()));

  service_options.plan_cache_max_bytes = plan_cache_bytes;
  service_options.governor = &governor;
  QueryService service(&index, service_options);
  // Publishes (fold, reorg, repair, chunk roll) eagerly drop cached plans
  // bound to the superseded snapshot so idle cache entries stop pinning it.
  index.AddPublishListener(
      [&service, &index](uint64_t) { service.plan_cache().InvalidateIndex(index); });
  const int dims = data.dims();
  durability::DurableIngestStore* dur = durable.get();
  ingest::IngestStore* idx = &index;
  server_options.insert_sink =
      [dur, idx, dims](const std::vector<std::vector<Value>>& rows,
                       uint64_t* version) -> int64_t {
    for (const std::vector<Value>& row : rows) {
      if (static_cast<int>(row.size()) != dims) {
        return net::ServerOptions::kSinkRejected;
      }
    }
    if (dur != nullptr) {
      // Durable mode: the ack is released only after the WAL group commit
      // fsyncs the batch (or immediately with --no-durable-acks).
      switch (dur->TryInsertBatch(rows)) {
        case durability::InsertResult::kOk:
          break;
        case durability::InsertResult::kResourceExhausted:
          // Refused before admission (budget or latched ENOSPC): nothing
          // applied or logged — retryable, and the store re-arms itself.
          return net::ServerOptions::kSinkResourceExhausted;
        case durability::InsertResult::kNotDurable:
        case durability::InsertResult::kRejected:
          return net::ServerOptions::kSinkNotDurable;
      }
      *version = idx->version();
      return static_cast<int64_t>(rows.size());
    }
    // In-memory mode: TryInsertBatch applies the governor's backlog budget
    // (plain InsertBatch charges but never refuses).
    if (idx->TryInsertBatch(rows) == ingest::InsertAdmit::kResourceExhausted) {
      return net::ServerOptions::kSinkResourceExhausted;
    }
    *version = idx->version();
    return static_cast<int64_t>(rows.size());
  };
  server_options.governor = &governor;
  net::TsunamiServer server(&service, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "tsunami_serverd: start failed: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("tsunami_serverd: listening on %s:%d (%d workers)\n",
              server_options.host.c_str(), server.port(),
              service.scheduler().num_threads());
  std::fflush(stdout);

  // Optional background checksum scrubber: re-verifies block checksums on
  // idle cycles (niced, pace-limited) and repairs hits through the
  // quarantine path before a query ever touches the rotted block.
  std::unique_ptr<ingest::Scrubber> scrubber;
  if (scrub_ms > 0) {
    ingest::ScrubberOptions sopts;
    sopts.poll_ms = static_cast<int>(scrub_ms);
    scrubber = std::make_unique<ingest::Scrubber>(&index, sopts);
    scrubber->Start();
  }

  server.Run();

  if (scrubber != nullptr) scrubber->Stop();

  // Join the background compactor before teardown: `service` (declared
  // after `index`) is destroyed first, and a fold landing during exit would
  // notify the publish listener into its plan cache.
  index.StopBackground();

  if (durable != nullptr) {
    const durability::DurableIngestStore::Stats d = durable->stats();
    std::printf(
        "tsunami_serverd: durability: batches=%lld rows=%lld acked=%lld "
        "failed_acks=%lld group_commits=%lld checkpoints=%lld (+%lld "
        "failed) segments_deleted=%lld\n",
        static_cast<long long>(d.batches_logged),
        static_cast<long long>(d.rows_logged),
        static_cast<long long>(d.durable_acks),
        static_cast<long long>(d.failed_acks),
        static_cast<long long>(d.wal.group_commits),
        static_cast<long long>(d.checkpoints),
        static_cast<long long>(d.checkpoint_failures),
        static_cast<long long>(d.segments_deleted));
    if (d.enospc_latches > 0 || d.resource_rejections > 0 ||
        d.size_rotations > 0) {
      std::printf(
          "tsunami_serverd: pressure: resource_rejections=%lld "
          "enospc_latches=%lld rearms=%lld size_rotations=%lld\n",
          static_cast<long long>(d.resource_rejections),
          static_cast<long long>(d.enospc_latches),
          static_cast<long long>(d.rearms),
          static_cast<long long>(d.size_rotations));
    }
  }
  if (scrubber != nullptr) {
    const ingest::Scrubber::Stats sc = scrubber->stats();
    std::printf(
        "tsunami_serverd: scrubber: sweeps=%lld blocks=%lld corrupt=%lld "
        "repaired=%lld\n",
        static_cast<long long>(sc.sweeps),
        static_cast<long long>(sc.blocks_scrubbed),
        static_cast<long long>(sc.corruptions_found),
        static_cast<long long>(sc.blocks_repaired));
  }

  const net::ServerStats stats = server.stats();
  const ingest::IngestStore::Stats store_stats = index.stats();
  std::printf(
      "tsunami_serverd: drained. conns accepted=%lld frames in/out=%lld/%lld "
      "queries=%lld results=%lld errors=%lld orphaned=%lld evicted "
      "idle/stalled=%lld/%lld rows_inserted=%lld compactions=%lld "
      "store_version=%llu\n",
      static_cast<long long>(stats.accepted),
      static_cast<long long>(stats.frames_in),
      static_cast<long long>(stats.frames_out),
      static_cast<long long>(stats.queries_admitted),
      static_cast<long long>(stats.results_sent),
      static_cast<long long>(stats.errors_sent),
      static_cast<long long>(stats.orphaned_awaited),
      static_cast<long long>(stats.evicted_idle),
      static_cast<long long>(stats.evicted_stalled),
      static_cast<long long>(store_stats.rows_ingested),
      static_cast<long long>(store_stats.compactions),
      static_cast<unsigned long long>(store_stats.version));
  g_server = nullptr;
  return 0;
}
