// tsunami_serverd: the standalone network serving daemon.
//
// Builds a Tsunami index over a synthetic correlated table (the same shape
// the examples and benchmarks use), wraps it in a bounded-admission
// QueryService, and serves the tsunami wire protocol (src/net/wire.h) until
// told to stop:
//
//   tsunami_serverd [--port=N] [--host=A.B.C.D] [--rows=N]
//                   [--max-queued-queries=N] [--max-queued-chunks=N]
//                   [--max-inflight-per-client=N] [--max-inflight-per-conn=N]
//                   [--idle-timeout=SECONDS] [--drain-timeout=SECONDS]
//
// SIGTERM / SIGINT trigger a *graceful drain*: the listener closes, new
// queries are answered with typed kDraining errors, in-flight queries
// finish and flush, then the daemon exits 0. A second signal forces a hard
// stop (in-flight tickets are still awaited — never leaked — but unflushed
// responses are dropped).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/random.h"
#include "src/core/tsunami.h"
#include "src/ingest/ingest_store.h"
#include "src/net/server.h"
#include "src/serve/query_service.h"

using namespace tsunami;

namespace {

net::TsunamiServer* g_server = nullptr;
volatile std::sig_atomic_t g_signals_seen = 0;

// Async-signal-safe: RequestDrain/RequestStop are an atomic store plus an
// eventfd write.
void HandleSignal(int) {
  if (g_server == nullptr) return;
  const std::sig_atomic_t seen = g_signals_seen;
  g_signals_seen = seen + 1;
  if (seen == 0) {
    g_server->RequestDrain();
  } else {
    g_server->RequestStop();
  }
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions server_options;
  server_options.port = 7411;
  ServiceOptions service_options;
  service_options.max_queued_queries = 256;
  service_options.max_queued_chunks = 4096;
  service_options.max_inflight_per_client = 32;
  int64_t rows = 200000;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--port", &v)) {
      server_options.port = std::atoi(v);
    } else if (ParseFlag(argv[i], "--host", &v)) {
      server_options.host = v;
    } else if (ParseFlag(argv[i], "--rows", &v)) {
      rows = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-queued-queries", &v)) {
      service_options.max_queued_queries = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-queued-chunks", &v)) {
      service_options.max_queued_chunks = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-inflight-per-client", &v)) {
      service_options.max_inflight_per_client = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-inflight-per-conn", &v)) {
      server_options.max_inflight_per_conn = std::atoi(v);
    } else if (ParseFlag(argv[i], "--idle-timeout", &v)) {
      server_options.idle_timeout_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--drain-timeout", &v)) {
      server_options.drain_timeout_seconds = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  Rng rng(11);
  Dataset data(3, {});
  data.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    Value x = rng.UniformValue(0, 1000000);
    data.AppendRow(
        {x, x + rng.UniformValue(-5000, 5000), rng.UniformValue(0, 10000)});
  }
  Workload workload;
  for (int i = 0; i < 256; ++i) {
    Query q;
    Value lo = rng.UniformValue(0, 900000);
    q.filters.push_back(Predicate{0, lo, lo + 50000});
    q.type = i % 2;
    workload.push_back(q);
  }
  ingest::IngestOptions ingest_options;
  ingest_options.index.cluster_queries = false;
  ingest::IngestStore index(data, workload, ingest_options);
  std::printf("tsunami_serverd: built %s over %lld rows\n",
              index.Name().c_str(), static_cast<long long>(data.size()));

  QueryService service(&index, service_options);
  // Publishes (fold, reorg, repair, chunk roll) eagerly drop cached plans
  // bound to the superseded snapshot so idle cache entries stop pinning it.
  index.AddPublishListener(
      [&service, &index](uint64_t) { service.plan_cache().InvalidateIndex(index); });
  const int dims = data.dims();
  server_options.insert_sink =
      [&index, dims](const std::vector<std::vector<Value>>& rows,
                     uint64_t* version) -> int64_t {
    for (const std::vector<Value>& row : rows) {
      if (static_cast<int>(row.size()) != dims) return -1;
    }
    const int64_t accepted = index.InsertBatch(rows);
    *version = index.version();
    return accepted;
  };
  net::TsunamiServer server(&service, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "tsunami_serverd: start failed: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("tsunami_serverd: listening on %s:%d (%d workers)\n",
              server_options.host.c_str(), server.port(),
              service.scheduler().num_threads());
  std::fflush(stdout);

  server.Run();

  // Join the background compactor before teardown: `service` (declared
  // after `index`) is destroyed first, and a fold landing during exit would
  // notify the publish listener into its plan cache.
  index.StopBackground();

  const net::ServerStats stats = server.stats();
  const ingest::IngestStore::Stats store_stats = index.stats();
  std::printf(
      "tsunami_serverd: drained. conns accepted=%lld frames in/out=%lld/%lld "
      "queries=%lld results=%lld errors=%lld orphaned=%lld evicted "
      "idle/stalled=%lld/%lld rows_inserted=%lld compactions=%lld "
      "store_version=%llu\n",
      static_cast<long long>(stats.accepted),
      static_cast<long long>(stats.frames_in),
      static_cast<long long>(stats.frames_out),
      static_cast<long long>(stats.queries_admitted),
      static_cast<long long>(stats.results_sent),
      static_cast<long long>(stats.errors_sent),
      static_cast<long long>(stats.orphaned_awaited),
      static_cast<long long>(stats.evicted_idle),
      static_cast<long long>(stats.evicted_stalled),
      static_cast<long long>(store_stats.rows_ingested),
      static_cast<long long>(store_stats.compactions),
      static_cast<unsigned long long>(store_stats.version));
  g_server = nullptr;
  return 0;
}
