#include "src/net/wire.h"

#include <cstring>

#include "src/io/serializer.h"

namespace tsunami {
namespace net {

namespace {

/// Upper bound on filters / aggregates one query frame may carry. Far above
/// anything the planner produces; a count beyond it is corruption, and
/// rejecting it here keeps a malformed length prefix from driving a huge
/// allocation.
constexpr uint64_t kMaxQueryFilters = 4096;
constexpr uint64_t kMaxWireAggs = 4096;
constexpr uint64_t kMaxErrorMessage = 4096;

void PutLe16(uint16_t v, char* out) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
}

void PutLe32(uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void PutLe64(uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

uint16_t GetLe16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint16_t>(static_cast<uint8_t>(p[1]))
                                << 8));
}

uint32_t GetLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* ToString(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "none";
    case WireError::kMalformedFrame:
      return "malformed-frame";
    case WireError::kOversizedFrame:
      return "oversized-frame";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kQueueFull:
      return "queue-full";
    case WireError::kDeadlineInfeasible:
      return "deadline-infeasible";
    case WireError::kClientBusy:
      return "client-busy";
    case WireError::kDraining:
      return "draining";
    case WireError::kReadOnly:
      return "read-only";
    case WireError::kDurabilityFailed:
      return "durability-failed";
    case WireError::kResourceExhausted:
      return "resource-exhausted";
  }
  return "unknown-wire-error";
}

bool IsRetryable(WireError error) {
  switch (error) {
    case WireError::kQueueFull:
    case WireError::kClientBusy:
    case WireError::kDraining:
    // Refused before admission: nothing was applied or logged, so a retry
    // cannot duplicate work; the store re-arms itself as pressure clears.
    case WireError::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

void AppendFrame(const FrameHeader& header, std::string_view payload,
                 std::string* out) {
  char h[kFrameHeaderSize];
  PutLe32(kFrameMagic, h);
  PutLe16(header.version, h + 4);
  h[6] = static_cast<char>(header.type);
  h[7] = static_cast<char>(header.flags);
  PutLe64(header.request_id, h + 8);
  PutLe32(static_cast<uint32_t>(payload.size()), h + 16);
  PutLe32(static_cast<uint32_t>(header.priority), h + 20);
  PutLe64(header.deadline_micros, h + 24);
  out->append(h, kFrameHeaderSize);
  out->append(payload.data(), payload.size());
}

HeaderParse ParseFrameHeader(std::string_view buffer, FrameHeader* out) {
  if (buffer.size() < kFrameHeaderSize) return HeaderParse::kNeedMore;
  const char* p = buffer.data();
  if (GetLe32(p) != kFrameMagic) return HeaderParse::kBadMagic;
  out->version = GetLe16(p + 4);
  if (out->version != kWireVersion) return HeaderParse::kBadVersion;
  out->type = static_cast<FrameType>(static_cast<uint8_t>(p[6]));
  out->flags = static_cast<uint8_t>(p[7]);
  out->request_id = GetLe64(p + 8);
  out->payload_len = GetLe32(p + 16);
  out->priority = static_cast<int32_t>(GetLe32(p + 20));
  out->deadline_micros = GetLe64(p + 24);
  return HeaderParse::kOk;
}

std::string EncodeQueryPayload(const Query& query) {
  BinaryWriter w;
  w.PutVarU64(query.filters.size());
  for (const Predicate& p : query.filters) {
    w.PutVarI64(p.dim);
    w.PutVarI64(p.lo);
    w.PutVarI64(p.hi);
  }
  w.PutVarU64(static_cast<uint64_t>(query.num_aggs()));
  for (int i = 0; i < query.num_aggs(); ++i) {
    const AggregateSpec spec = query.agg_spec(i);
    w.PutU8(static_cast<uint8_t>(spec.op));
    w.PutVarI64(spec.column);
  }
  w.PutVarI64(query.type);
  return w.Release();
}

bool DecodeQueryPayload(std::string_view payload, Query* out) {
  BinaryReader r(payload);
  Query q;
  const uint64_t num_filters = r.GetVarU64();
  if (!r.ok() || num_filters > kMaxQueryFilters) return false;
  q.filters.reserve(num_filters);
  for (uint64_t i = 0; i < num_filters && r.ok(); ++i) {
    Predicate p;
    p.dim = static_cast<int>(r.GetVarI64());
    p.lo = r.GetVarI64();
    p.hi = r.GetVarI64();
    if (p.dim < 0) return false;
    q.filters.push_back(p);
  }
  const uint64_t num_aggs = r.GetVarU64();
  if (!r.ok() || num_aggs == 0 || num_aggs > kMaxWireAggs) return false;
  std::vector<AggregateSpec> specs;
  specs.reserve(num_aggs);
  for (uint64_t i = 0; i < num_aggs && r.ok(); ++i) {
    const uint8_t op = r.GetU8();
    if (op > static_cast<uint8_t>(AggKind::kAvg)) return false;
    AggregateSpec spec;
    spec.op = static_cast<AggKind>(op);
    spec.column = static_cast<int>(r.GetVarI64());
    if (spec.column < 0) return false;
    specs.push_back(spec);
  }
  q.type = static_cast<int>(r.GetVarI64());
  if (!r.ok() || !r.AtEnd()) return false;
  q.SetAggregates(std::move(specs));
  *out = q;
  return true;
}

std::string EncodeResultPayload(const ResultPayload& payload) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(payload.outcome));
  w.PutDouble(payload.server_latency_seconds);
  const QueryResult& r = payload.result;
  w.PutVarI64(r.agg);
  w.PutVarI64(r.scanned);
  w.PutVarI64(r.matched);
  w.PutVarI64(r.cell_ranges);
  w.PutBool(r.degraded);
  w.PutVarI64(r.quarantined_blocks);
  w.PutVarU64(r.extra.size());
  for (int64_t v : r.extra) w.PutVarI64(v);
  return w.Release();
}

bool DecodeResultPayload(std::string_view payload, ResultPayload* out) {
  BinaryReader r(payload);
  ResultPayload p;
  const uint8_t outcome = r.GetU8();
  if (outcome > static_cast<uint8_t>(QueryOutcome::kAlreadyConsumed)) {
    return false;
  }
  p.outcome = static_cast<QueryOutcome>(outcome);
  p.server_latency_seconds = r.GetDouble();
  p.result.agg = r.GetVarI64();
  p.result.scanned = r.GetVarI64();
  p.result.matched = r.GetVarI64();
  p.result.cell_ranges = r.GetVarI64();
  p.result.degraded = r.GetBool();
  p.result.quarantined_blocks = r.GetVarI64();
  const uint64_t num_extra = r.GetVarU64();
  if (!r.ok() || num_extra > kMaxWireAggs) return false;
  p.result.extra.reserve(num_extra);
  for (uint64_t i = 0; i < num_extra && r.ok(); ++i) {
    p.result.extra.push_back(r.GetVarI64());
  }
  if (!r.ok() || !r.AtEnd()) return false;
  *out = std::move(p);
  return true;
}

std::string EncodeErrorPayload(WireError error, std::string_view message) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(error));
  w.PutString(message.substr(0, kMaxErrorMessage));
  return w.Release();
}

bool DecodeErrorPayload(std::string_view payload, WireError* error,
                        std::string* message) {
  BinaryReader r(payload);
  const uint8_t code = r.GetU8();
  if (code > static_cast<uint8_t>(WireError::kResourceExhausted)) return false;
  std::string text = r.GetString();
  if (!r.ok() || !r.AtEnd()) return false;
  *error = static_cast<WireError>(code);
  if (message != nullptr) *message = std::move(text);
  return true;
}

std::string EncodeInsertPayload(const std::vector<std::vector<Value>>& rows) {
  BinaryWriter w;
  w.PutVarU64(rows.size());
  const uint64_t dims = rows.empty() ? 0 : rows[0].size();
  w.PutVarU64(dims);
  for (const std::vector<Value>& row : rows) {
    for (Value v : row) w.PutVarI64(v);
  }
  return w.Release();
}

bool DecodeInsertPayload(std::string_view payload,
                         std::vector<std::vector<Value>>* out) {
  BinaryReader r(payload);
  const uint64_t num_rows = r.GetVarU64();
  const uint64_t dims = r.GetVarU64();
  if (!r.ok() || num_rows > static_cast<uint64_t>(kMaxInsertRows) ||
      dims > static_cast<uint64_t>(kMaxInsertDims)) {
    return false;
  }
  // An empty batch is legal (a client-side flush with nothing buffered); a
  // row with zero columns is not.
  if (num_rows > 0 && dims == 0) return false;
  std::vector<std::vector<Value>> rows;
  rows.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows && r.ok(); ++i) {
    std::vector<Value> row(dims);
    for (uint64_t d = 0; d < dims; ++d) row[d] = r.GetVarI64();
    rows.push_back(std::move(row));
  }
  if (!r.ok() || !r.AtEnd()) return false;
  *out = std::move(rows);
  return true;
}

std::string EncodeInsertAckPayload(const InsertAckPayload& payload) {
  BinaryWriter w;
  w.PutVarI64(payload.accepted);
  w.PutVarU64(payload.store_version);
  return w.Release();
}

bool DecodeInsertAckPayload(std::string_view payload, InsertAckPayload* out) {
  BinaryReader r(payload);
  InsertAckPayload p;
  p.accepted = r.GetVarI64();
  p.store_version = r.GetVarU64();
  if (!r.ok() || !r.AtEnd() || p.accepted < 0) return false;
  *out = p;
  return true;
}

}  // namespace net
}  // namespace tsunami
